//! Coverage for flow provenance and solver instrumentation.
//!
//! * Every `(variable, production)` pair of a traced solution must have a
//!   finite [`Provenance::explain`] chain that terminates in a seed site
//!   ("introduced at …") — chains cannot cycle because each hop follows
//!   the first-insertion justification, which strictly decreases in
//!   insertion time.
//! * The solver's cache and shard counters must be internally consistent
//!   (`hits + misses == queries`, shard partitions cover the variables,
//!   one wall-time sample per round).

use nuspi::cfa::{solve_parallel, solve_traced, Constraints};
use nuspi_bench::genproc::{random_process, GenConfig};
use nuspi_protocols::suite;

#[test]
fn every_flow_in_the_protocol_suite_has_a_seed_rooted_explanation() {
    for spec in suite() {
        let (sol, prov) = solve_traced(Constraints::generate(&spec.process));
        let mut chains = 0;
        for (id, fv) in sol.flow_vars() {
            for prod in sol.prods_of_id(id) {
                let story = prov.explain(&sol, fv, prod);
                chains += 1;
                assert!(
                    !story.is_empty(),
                    "{}: {fv} has a production without provenance",
                    spec.name
                );
                assert!(
                    story[0].contains("introduced at"),
                    "{}: chain for {fv} does not start at a seed site: {story:?}",
                    spec.name
                );
                assert!(
                    story.iter().all(|hop| !hop.contains("cycle")),
                    "{}: cyclic provenance for {fv}: {story:?}",
                    spec.name
                );
            }
        }
        assert!(chains > 0, "{}: no flows at all", spec.name);
    }
}

#[test]
fn every_flow_in_random_processes_has_a_seed_rooted_explanation() {
    let cfg = GenConfig::default();
    for seed in 0..60u64 {
        let p = random_process(seed, &cfg);
        let (sol, prov) = solve_traced(Constraints::generate(&p));
        for (id, fv) in sol.flow_vars() {
            for prod in sol.prods_of_id(id) {
                let story = prov.explain(&sol, fv, prod);
                assert!(
                    story.first().is_some_and(|h| h.contains("introduced at")),
                    "seed {seed}: chain for {fv} not seed-rooted: {story:?}"
                );
            }
        }
    }
}

#[test]
fn sequential_cache_counters_are_consistent_across_the_suite() {
    for spec in suite() {
        let sol = nuspi::analyze(&spec.process);
        let st = sol.stats();
        assert_eq!(
            st.cache_hits + st.cache_misses,
            st.intersection_queries,
            "{}: every query is a hit or a miss",
            spec.name
        );
        assert_eq!(
            st.round_millis.len(),
            st.rounds,
            "{}: one wall-time sample per round",
            spec.name
        );
        assert!(st.per_shard.is_empty(), "sequential solver has no shards");
    }
}

#[test]
fn parallel_counters_are_populated_and_consistent_across_the_suite() {
    let mut total_queries = 0;
    for spec in suite() {
        let sol = solve_parallel(Constraints::generate(&spec.process), 4);
        let st = sol.stats();
        assert_eq!(st.per_shard.len(), 4, "{}", spec.name);
        assert_eq!(
            st.cache_hits + st.cache_misses,
            st.intersection_queries,
            "{}",
            spec.name
        );
        for (i, sh) in st.per_shard.iter().enumerate() {
            assert_eq!(
                sh.cache_hits + sh.cache_misses,
                sh.intersection_queries,
                "{} shard {i}",
                spec.name
            );
        }
        assert_eq!(
            st.per_shard.iter().map(|s| s.owned_vars).sum::<usize>(),
            st.flow_vars,
            "{}",
            spec.name
        );
        assert_eq!(
            st.per_shard.iter().map(|s| s.productions).sum::<usize>(),
            st.productions,
            "{}",
            spec.name
        );
        assert_eq!(st.round_millis.len(), st.rounds, "{}", spec.name);
        assert!(
            st.per_shard.iter().any(|s| s.deltas_sent > 0),
            "{}: a non-trivial protocol must exchange deltas",
            spec.name
        );
        total_queries += st.intersection_queries;
    }
    // Every protocol in the suite decrypts, so the intersection machinery
    // must have been exercised. (The work-stealing solver no longer
    // re-queries settled intersections every round the way the BSP one
    // did, so suite solves can legitimately never need the memo cache.)
    assert!(total_queries > 0, "suite never queried an intersection");
}

#[test]
fn parallel_memo_cache_serves_cross_round_retries() {
    // A permanently locked decryption is retried at every round
    // boundary; once the grammar stops growing, those retries must be
    // answered by the persistent negative cache. One worker keeps the
    // drain order (and hence the round structure) deterministic.
    let src = "k1a<k1>.0 \
               | k1a(t1). k1b<t1>.0 \
               | k1b(t2). k1c<t2>.0 \
               | k1c(t3). kc2(z1). case z1 of {x1}:t3 in kezchan<x1>.0 \
               | kezchan<kez>.0 \
               | kezchan(kk2). c(w). case w of {y}:kk2 in e<y>.0 \
               | deadchan(kdead). c(u). case u of {v}:kdead in f<v>.0 \
               | kc2<{k2, new r1}:k1>.0 \
               | c<{m, new rc}:kez>.0 \
               | c<{m, new rh}:k2>.0";
    let p = nuspi_syntax::parse_process(src).unwrap();
    let st = solve_parallel(Constraints::generate(&p), 1).stats().clone();
    assert!(
        st.rounds >= 3,
        "staged unlock needs multiple rounds: {st:?}"
    );
    assert!(st.cache_hits > 0, "retries never hit the memo: {st:?}");
    let (last_hits, last_misses) = st.round_memo[st.rounds - 1];
    assert!(last_hits >= 1 && last_misses == 0, "{:?}", st.round_memo);
}
