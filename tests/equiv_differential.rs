//! Differential wall: the dynamic Theorem 5 oracle versus the static
//! analysis, over the whole protocol suite plus seeded random corpora.
//!
//! The contract is *soundness of the static side relative to the game*:
//! whenever `static_message_independence` certifies independence, the
//! bounded hedged-bisimulation oracle must not distinguish the two
//! fresh-name instantiations. The converse direction is not asserted —
//! the static analysis over-approximates and the game is budgeted — but
//! `Unknown` verdicts are counted and capped so budget regressions are
//! caught here rather than silently eroding coverage.

use nuspi_equiv::{independence_oracle, EquivConfig, Verdict};
use nuspi_protocols::{open_examples, suite};
use nuspi_security::static_message_independence;
use nuspi_semantics::{Rng, SplitMix64};
use nuspi_syntax::{builder as b, Name, Process, Symbol, Var};

/// Tighter budgets than the default: the wall runs 25+ cases and only
/// needs enough fuel to separate the clearly-broken specs. Raising these
/// can only move verdicts `Unknown -> {Bisimilar, Distinguished}`.
fn wall_cfg() -> EquivConfig {
    if cfg!(debug_assertions) {
        // `cargo test -q` runs unoptimised: play the same game at a lower
        // budget so the wall stays quick. Release CI runs the full wall.
        EquivConfig {
            game_depth: 5,
            max_plays: 2_000,
            tau_depth: 20,
            tau_states: 600,
            max_injections: 16,
            ..EquivConfig::default()
        }
    } else {
        EquivConfig {
            game_depth: 6,
            max_plays: 12_000,
            tau_depth: 24,
            tau_states: 1_000,
            max_injections: 16,
            ..EquivConfig::default()
        }
    }
}

struct Outcome {
    name: String,
    statically_independent: bool,
    verdict: &'static str,
    plays: usize,
}

/// The attacker's initial knowledge: the declared public channels plus
/// every policy-public free name of the open process (compromised keys,
/// identities — `is_closed` only closes variables, not names).
fn oracle_publics(
    open: &Process,
    policy: &nuspi_security::Policy,
    channels: &[Symbol],
) -> Vec<Symbol> {
    let mut v: Vec<Symbol> = open
        .free_names()
        .into_iter()
        .map(|n| n.canonical())
        .filter(|s| policy.is_public(*s))
        .chain(channels.iter().copied())
        .collect();
    v.sort_by_key(|s| s.as_str().to_owned());
    v.dedup();
    v
}

fn run_case(
    name: &str,
    open: &Process,
    x: Var,
    policy: &nuspi_security::Policy,
    channels: &[Symbol],
) -> Outcome {
    let public = oracle_publics(open, policy, channels);
    let stat = static_message_independence(open, x, policy);
    let dynamic = independence_oracle(open, x, &public, &wall_cfg());
    if stat.implies_independence() {
        assert!(
            !matches!(dynamic.verdict, Verdict::Distinguished { .. }),
            "SOUNDNESS VIOLATION on {name}: static analysis certifies message \
             independence but the oracle distinguished:\n{:#?}",
            dynamic.verdict
        );
    }
    Outcome {
        name: name.to_string(),
        statically_independent: stat.implies_independence(),
        verdict: dynamic.verdict.tag(),
        plays: dynamic.plays,
    }
}

#[test]
fn protocol_suite_static_sound_wrt_oracle() {
    let mut outcomes = Vec::new();
    let mut skipped = Vec::new();
    for spec in suite() {
        let Some((open, x)) = spec.process.abstract_restriction(spec.secret) else {
            skipped.push(spec.name);
            continue;
        };
        outcomes.push(run_case(
            spec.name,
            &open,
            x,
            &spec.policy,
            &spec.public_channels,
        ));
    }
    for ex in open_examples() {
        outcomes.push(run_case(
            ex.name,
            &ex.process,
            ex.var,
            &ex.policy,
            &ex.public_channels,
        ));
    }
    let table: Vec<String> = outcomes
        .iter()
        .map(|o| {
            format!(
                "{:32} static_independent={:5} oracle={:13} plays={}",
                o.name, o.statically_independent, o.verdict, o.plays
            )
        })
        .collect();
    eprintln!("{}", table.join("\n"));
    assert!(
        skipped.is_empty(),
        "specs whose secret is not an abstractable restriction: {skipped:?}"
    );
    // The suite must exercise both sides of the differential: some cases
    // the static analysis certifies, some it rejects.
    let certified = outcomes.iter().filter(|o| o.statically_independent).count();
    assert!(
        certified >= 5,
        "only {certified} certified cases:\n{table:?}"
    );
    assert!(
        outcomes.len() - certified >= 5,
        "only {} rejected cases",
        outcomes.len() - certified
    );
    // The oracle must produce real work — the clearly-broken variants
    // have to come out Distinguished, not Unknown. At the debug budget
    // 11 of the 12 flawed specs are separated (plus channel-flow); the
    // release budget also separates otway-rees-key-in-clear.
    let distinguished = outcomes
        .iter()
        .filter(|o| o.verdict == "distinguished")
        .count();
    assert!(
        distinguished >= 12,
        "oracle distinguished only {distinguished} cases:\n{}",
        table.join("\n")
    );
    // Unknowns are allowed (budgets are finite) but capped: a budget or
    // determinism regression that floods the wall with Unknown fails here.
    let unknown = outcomes.iter().filter(|o| o.verdict == "unknown").count();
    assert!(
        unknown <= 10,
        "{unknown}/{} verdicts are Unknown — budgets regressed:\n{}",
        outcomes.len(),
        table.join("\n")
    );
}

/// A small seeded generator of open processes `P(x)` over public
/// channels and a restricted key, biased to produce both leaky and
/// confining shapes.
fn random_open(rng: &mut SplitMix64) -> (Process, Var) {
    let x = Var::fresh("x");
    let k = Name::global("kr");
    let depth = rng.gen_range_inclusive(1, 3);
    let body = random_body(rng, x, depth);
    (b::restrict(k, body), x)
}

fn random_body(rng: &mut SplitMix64, x: Var, depth: usize) -> Process {
    let chan = if rng.gen_bool(0.5) { "c" } else { "d" };
    if depth == 0 {
        return b::nil();
    }
    // Weighted toward confining shapes so a healthy share of the corpus
    // is statically certified; the leak/guard arms keep the other share
    // genuinely distinguishable.
    match rng.gen_range(0..10) {
        // Leak x in the clear.
        0 => b::output(b::name(chan), b::var(x), random_body(rng, x, depth - 1)),
        // Seal x under the restricted key.
        1..=3 => b::output(
            b::name(chan),
            b::enc(
                vec![b::var(x)],
                Name::global("r"),
                b::name_expr(Name::global("kr")),
            ),
            random_body(rng, x, depth - 1),
        ),
        // Send something unrelated.
        4 | 5 => b::output(
            b::name(chan),
            b::pair(b::name("a"), b::name("b")),
            random_body(rng, x, depth - 1),
        ),
        // Guard on x against a public name (a value test — statically
        // flagged, dynamically distinguishable by injection).
        6 => b::guard(b::var(x), b::name("a"), random_body(rng, x, depth - 1)),
        // Receive and continue.
        7 | 8 => {
            let y = Var::fresh("y");
            b::input(b::name(chan), y, random_body(rng, x, depth - 1))
        }
        // Fork.
        _ => b::par(
            random_body(rng, x, depth - 1),
            random_body(rng, x, depth - 1),
        ),
    }
}

#[test]
fn random_corpus_static_sound_wrt_oracle() {
    let policy = nuspi_security::Policy::new();
    let public: Vec<Symbol> = vec![Symbol::intern("c"), Symbol::intern("d")];
    let cfg = wall_cfg();
    let mut rng = SplitMix64::seed_from_u64(0x5eed_cafe);
    let mut certified = 0usize;
    let mut distinguished = 0usize;
    for i in 0..48 {
        let (open, x) = random_open(&mut rng);
        let stat = static_message_independence(&open, x, &policy);
        let dynamic = independence_oracle(&open, x, &public, &cfg);
        if stat.implies_independence() {
            certified += 1;
            assert!(
                !matches!(dynamic.verdict, Verdict::Distinguished { .. }),
                "SOUNDNESS VIOLATION on random case #{i} ({open}): static says \
                 independent, oracle says {:#?}",
                dynamic.verdict
            );
        }
        if matches!(dynamic.verdict, Verdict::Distinguished { .. }) {
            distinguished += 1;
        }
    }
    // The corpus must actually stress both sides of the fence.
    assert!(certified >= 8, "only {certified}/48 random cases certified");
    assert!(
        distinguished >= 6,
        "only {distinguished}/48 random cases distinguished"
    );
}
