//! Round-trips the protocol suite through the `nuspi serve` JSON-lines
//! session and pins the determinism contract: the response stream is
//! byte-identical whether the engine runs one worker or four, and
//! whether a case arrives as a single line or inside a batch. Only the
//! `stats` op is exempt — it reports the actual pool and cache state.

use nuspi::engine::jsonio::{escape, Json};
use nuspi::engine::{serve, AnalysisEngine, EngineConfig};
use nuspi_protocols::suite;

/// One `lint` request line per closed protocol, plus one `batch` line
/// repeating the whole suite (warm by then), plus a `stats` probe.
fn session_input() -> String {
    let mut lines = String::new();
    let mut batch_items = Vec::new();
    for spec in suite() {
        let mut secrets: Vec<String> = spec
            .policy
            .secrets()
            .map(|s| format!("\"{}\"", escape(s.as_str())))
            .collect();
        secrets.sort();
        let item = format!(
            "{{\"id\":\"{}\",\"op\":\"lint\",\"process\":\"{}\",\"secrets\":[{}]}}",
            escape(spec.name),
            escape(&spec.source),
            secrets.join(",")
        );
        lines.push_str(&item);
        lines.push('\n');
        batch_items.push(item);
    }
    lines.push_str(&format!(
        "{{\"op\":\"batch\",\"requests\":[{}]}}\n",
        batch_items.join(",")
    ));
    lines.push_str("{\"id\":\"meters\",\"op\":\"stats\"}\n");
    lines
}

fn run_session(jobs: usize, input: &str) -> Vec<String> {
    let engine = AnalysisEngine::new(EngineConfig {
        jobs,
        ..EngineConfig::default()
    });
    let mut out = Vec::new();
    serve(&engine, input.as_bytes(), &mut out).unwrap();
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(str::to_owned)
        .collect()
}

#[test]
fn serve_is_byte_identical_across_worker_counts() {
    let input = session_input();
    let one = run_session(1, &input);
    let four = run_session(4, &input);

    let n = suite().len();
    // One line per single request, one per batch element, one for stats.
    assert_eq!(one.len(), 2 * n + 1);
    assert_eq!(four.len(), one.len());

    let payload = |lines: &[String]| -> Vec<String> {
        lines
            .iter()
            .filter(|l| !l.contains("\"op\":\"stats\""))
            .cloned()
            .collect()
    };
    assert_eq!(payload(&one), payload(&four));

    for line in &one {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        if v.get("op").and_then(Json::as_str) == Some("stats") {
            continue;
        }
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"), "{line}");
    }

    // The batched repeat of the suite is answered from the cache: the
    // stats probe at the end of either session must report it.
    for lines in [&one, &four] {
        let stats = Json::parse(lines.last().unwrap()).unwrap();
        let cache = stats.get("cache").expect("stats line has cache meters");
        let hits = cache.get("hits").and_then(Json::as_u64).unwrap();
        let misses = cache.get("misses").and_then(Json::as_u64).unwrap();
        assert_eq!(misses, n as u64);
        assert_eq!(hits, n as u64);
    }

    // Batch answers mirror the single-shot answers case by case: the
    // suite's verdicts are independent of how the requests were framed.
    assert_eq!(&one[..n], &one[n..2 * n]);
}
