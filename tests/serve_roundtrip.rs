//! Round-trips the protocol suite through the `nuspi serve` JSON-lines
//! session and pins the determinism contract: the response stream is
//! byte-identical whether the engine runs one worker or four, whether
//! a case arrives as a single line or inside a batch — and whether the
//! transport is the stdin/stdout pipe or a TCP connection (including
//! several interleaved connections sharing one engine). Only the
//! `stats` op is exempt — it reports the actual pool and cache state.

use nuspi::engine::jsonio::{escape, Json};
use nuspi::engine::{serve, AnalysisEngine, EngineConfig};
use nuspi_net::{spawn, NetConfig};
use nuspi_protocols::suite;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Arc;

/// One `lint` request line per closed protocol, plus one `batch` line
/// repeating the whole suite (warm by then), plus a `stats` probe.
fn session_input() -> String {
    let mut lines = String::new();
    let mut batch_items = Vec::new();
    for spec in suite() {
        let mut secrets: Vec<String> = spec
            .policy
            .secrets()
            .map(|s| format!("\"{}\"", escape(s.as_str())))
            .collect();
        secrets.sort();
        let item = format!(
            "{{\"id\":\"{}\",\"op\":\"lint\",\"process\":\"{}\",\"secrets\":[{}]}}",
            escape(spec.name),
            escape(&spec.source),
            secrets.join(",")
        );
        lines.push_str(&item);
        lines.push('\n');
        batch_items.push(item);
    }
    lines.push_str(&format!(
        "{{\"op\":\"batch\",\"requests\":[{}]}}\n",
        batch_items.join(",")
    ));
    lines.push_str("{\"id\":\"meters\",\"op\":\"stats\"}\n");
    lines
}

fn run_session(jobs: usize, input: &str) -> Vec<String> {
    let engine = AnalysisEngine::new(EngineConfig {
        jobs,
        ..EngineConfig::default()
    });
    let mut out = Vec::new();
    serve(&engine, input.as_bytes(), &mut out).unwrap();
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(str::to_owned)
        .collect()
}

/// Sends `input` over one TCP connection and collects the full
/// response transcript (the server closes the socket once every line
/// is answered, because the client shuts down its write half).
fn tcp_session(addr: std::net::SocketAddr, input: &str) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(input.as_bytes()).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    BufReader::new(stream)
        .lines()
        .map_while(Result::ok)
        .collect()
}

/// Non-stats lines of a transcript (the only op whose body depends on
/// pool and cache state).
fn payload(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .filter(|l| !l.contains("\"op\":\"stats\""))
        .cloned()
        .collect()
}

#[test]
fn serve_is_byte_identical_across_worker_counts() {
    let input = session_input();
    let one = run_session(1, &input);
    let four = run_session(4, &input);

    let n = suite().len();
    // One line per single request, one per batch element, one for stats.
    assert_eq!(one.len(), 2 * n + 1);
    assert_eq!(four.len(), one.len());

    assert_eq!(payload(&one), payload(&four));

    for line in &one {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        if v.get("op").and_then(Json::as_str) == Some("stats") {
            continue;
        }
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"), "{line}");
    }

    // The batched repeat of the suite is answered from the cache: the
    // stats probe at the end of either session must report it.
    for lines in [&one, &four] {
        let stats = Json::parse(lines.last().unwrap()).unwrap();
        let cache = stats.get("cache").expect("stats line has cache meters");
        let hits = cache.get("hits").and_then(Json::as_u64).unwrap();
        let misses = cache.get("misses").and_then(Json::as_u64).unwrap();
        assert_eq!(misses, n as u64);
        assert_eq!(hits, n as u64);
    }

    // Batch answers mirror the single-shot answers case by case: the
    // suite's verdicts are independent of how the requests were framed.
    assert_eq!(&one[..n], &one[n..2 * n]);
}

#[test]
fn serve_tcp_transcript_is_byte_identical_to_pipe() {
    let input = session_input();
    let pipe = run_session(2, &input);

    let engine = Arc::new(AnalysisEngine::new(EngineConfig {
        jobs: 2,
        ..EngineConfig::default()
    }));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let server = spawn(engine, listener, NetConfig::default()).unwrap();
    let tcp = tcp_session(server.local_addr(), &input);
    server.drain();
    server.join();

    assert_eq!(tcp.len(), pipe.len());
    assert_eq!(payload(&tcp), payload(&pipe));
    // The stats line differs in meter values but not in shape.
    Json::parse(tcp.last().unwrap()).unwrap();
}

/// Each client's line stream, tagged with per-client ids and rotated so
/// concurrent sessions interleave distinct cases at any moment.
fn client_input(client: usize) -> String {
    let specs = suite();
    let n = specs.len();
    let mut lines = String::new();
    for i in 0..n {
        let spec = &specs[(i + client * 3) % n];
        let mut secrets: Vec<String> = spec
            .policy
            .secrets()
            .map(|s| format!("\"{}\"", escape(s.as_str())))
            .collect();
        secrets.sort();
        lines.push_str(&format!(
            "{{\"id\":\"{}@{client}\",\"op\":\"lint\",\"process\":\"{}\",\"secrets\":[{}]}}\n",
            escape(spec.name),
            escape(&spec.source),
            secrets.join(",")
        ));
    }
    lines
}

#[test]
fn serve_tcp_interleaves_concurrent_clients_without_crosstalk() {
    const CLIENTS: usize = 4;
    let engine = Arc::new(AnalysisEngine::new(EngineConfig {
        jobs: 4,
        ..EngineConfig::default()
    }));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let server = spawn(engine, listener, NetConfig::default()).unwrap();
    let addr = server.local_addr();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|k| std::thread::spawn(move || (k, tcp_session(addr, &client_input(k)))))
        .collect();
    for h in handles {
        let (k, got) = h.join().unwrap();
        // The reference transcript comes from a cold single-worker pipe
        // session; the shared TCP engine was warm and concurrent, so
        // equality here is the byte-identity invariant end to end —
        // and, because ids are client-tagged, proof the responses were
        // demultiplexed to the right socket in the right order.
        let expected = run_session(1, &client_input(k));
        assert_eq!(got, expected, "client {k} transcript diverged");
    }
    server.drain();
    server.join();
}
