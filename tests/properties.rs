//! Property-based tests (proptest) over core invariants of the calculus
//! and the analysis: evaluation, canonicalisation, the Dolev–Yao closure,
//! kind/sort operators, and subject reduction on seeded random processes.

use nuspi::security::{kind, sort, Kind, Knowledge, Policy, Sort};
use nuspi::semantics::{commitments, eval, CommitConfig, EvalMode};
use nuspi::syntax::{builder as b, Expr, Name, Value};
use nuspi_bench::genproc::{random_process, GenConfig};
use proptest::prelude::*;
use std::rc::Rc;

/// A strategy for random concrete values over a small alphabet.
fn value_strategy() -> impl Strategy<Value = Rc<Value>> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(|i| Value::name(format!("n{i}").as_str())),
        Just(Value::zero()),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Value::suc),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Value::pair(a, b)),
            (proptest::collection::vec(inner.clone(), 0..3), inner, 0u8..3).prop_map(
                |(payload, key, r)| Value::enc(
                    payload,
                    Name::global(format!("r{r}").as_str()),
                    key
                )
            ),
        ]
    })
}

/// A strategy for random closed expressions.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(|i| b::name(&format!("n{i}"))),
        (0u32..4).prop_map(b::numeral),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(b::suc),
            (inner.clone(), inner.clone()).prop_map(|(a, b_)| b::pair(a, b_)),
            (inner.clone(), inner).prop_map(|(p, k)| b::enc_auto(vec![p], k)),
        ]
    })
}

proptest! {
    #[test]
    fn canonicalize_is_idempotent(w in value_strategy()) {
        let once = w.canonicalize();
        prop_assert_eq!(once.canonicalize(), once);
    }

    #[test]
    fn canonicalize_preserves_kind_and_sort(w in value_strategy()) {
        let policy = Policy::with_secrets(["n0", "n1"]);
        let tracked = nuspi::Symbol::intern("n2");
        let c = w.canonicalize();
        prop_assert_eq!(kind(&w, &policy), kind(&c, &policy));
        prop_assert_eq!(sort(&w, tracked), sort(&c, tracked));
    }

    #[test]
    fn evaluation_restricts_exactly_the_fresh_confounders(e in expr_strategy()) {
        let r = eval(&e, EvalMode::NuSpi).unwrap();
        // Every restricted name occurs in the value, is non-source, and
        // there are no duplicates (the "w.o. duplicates" side condition).
        let mut seen = std::collections::HashSet::new();
        for n in &r.restricted {
            prop_assert!(!n.is_source());
            prop_assert!(r.value.contains_name(*n));
            prop_assert!(seen.insert(*n));
        }
    }

    #[test]
    fn evaluation_is_deterministic_up_to_confounders(e in expr_strategy()) {
        let a = eval(&e, EvalMode::NuSpi).unwrap();
        let b_ = eval(&e, EvalMode::NuSpi).unwrap();
        prop_assert_eq!(a.value.canonicalize(), b_.value.canonicalize());
        prop_assert_eq!(a.restricted.len(), b_.restricted.len());
    }

    #[test]
    fn classic_mode_evaluation_is_fully_deterministic(e in expr_strategy()) {
        let a = eval(&e, EvalMode::ClassicSpi).unwrap();
        let b_ = eval(&e, EvalMode::ClassicSpi).unwrap();
        prop_assert_eq!(a.value, b_.value);
        prop_assert!(a.restricted.is_empty());
    }

    #[test]
    fn knowledge_closure_is_extensive_and_idempotent(ws in proptest::collection::vec(value_strategy(), 0..6)) {
        let mut k = Knowledge::from_names(["c"]);
        for w in &ws {
            k.learn(Rc::clone(w));
        }
        // extensive: everything learned is derivable
        for w in &ws {
            prop_assert!(k.can_derive(w));
        }
        // idempotent: re-learning changes nothing
        let before = k.len();
        for w in &ws {
            k.learn(Rc::clone(w));
        }
        prop_assert_eq!(k.len(), before);
    }

    #[test]
    fn derivable_values_stay_derivable_as_knowledge_grows(
        ws in proptest::collection::vec(value_strategy(), 1..5),
        extra in value_strategy(),
    ) {
        let mut k = Knowledge::from_names(["c"]);
        for w in &ws {
            k.learn(Rc::clone(w));
        }
        let derivable: Vec<Rc<Value>> = ws.iter().filter(|w| k.can_derive(w)).cloned().collect();
        k.learn(extra);
        for w in &derivable {
            prop_assert!(k.can_derive(w), "monotonicity of C(W)");
        }
    }

    #[test]
    fn secret_key_ciphertexts_are_public_kind(payload in value_strategy()) {
        let policy = Policy::with_secrets(["sk"]);
        let ct = Value::enc(vec![payload], Name::global("r"), Value::name("sk"));
        prop_assert_eq!(kind(&ct, &policy), Kind::P);
    }

    #[test]
    fn ciphertext_sort_is_always_independent(payload in value_strategy(), key in value_strategy()) {
        let tracked = nuspi::Symbol::intern("n0");
        let ct = Value::enc(vec![payload], Name::global("r"), key);
        prop_assert_eq!(sort(&ct, tracked), Sort::I);
    }

    #[test]
    fn commitments_of_closed_processes_have_closed_residuals(seed in 0u64..400) {
        let p = random_process(seed, &GenConfig::default());
        for c in commitments(&p, &CommitConfig::default()) {
            match c.agent {
                nuspi::semantics::Agent::Proc(q) => prop_assert!(q.is_closed()),
                nuspi::semantics::Agent::Conc(conc) => prop_assert!(conc.body.is_closed()),
                nuspi::semantics::Agent::Abs(abs) => {
                    let mut fv = abs.body.free_vars();
                    fv.remove(&abs.var);
                    prop_assert!(fv.is_empty());
                }
            }
        }
    }

    #[test]
    fn analysis_predicts_every_immediate_output(seed in 0u64..300) {
        // One-step subject reduction, clause (3), on random processes.
        let p = random_process(seed, &GenConfig::default());
        let sol = nuspi::analyze(&p);
        for c in commitments(&p, &CommitConfig::default()) {
            if let (nuspi::semantics::Action::Out(m), nuspi::semantics::Agent::Conc(conc)) =
                (&c.action, &c.agent)
            {
                prop_assert!(
                    sol.contains(nuspi::FlowVar::Zeta(conc.label), &conc.value),
                    "seed {seed}: ζ({:?}) misses {}",
                    conc.label,
                    conc.value
                );
                prop_assert!(
                    sol.contains(nuspi::FlowVar::Kappa(m.canonical()), &conc.value),
                    "seed {seed}: κ({}) misses {}",
                    m.canonical(),
                    conc.value
                );
            }
        }
    }

    #[test]
    fn parse_print_round_trip_preserves_structure(seed in 0u64..300) {
        let p = random_process(seed, &GenConfig::default());
        let printed = p.to_string();
        let q = nuspi::parse_process(&printed)
            .map_err(|e| TestCaseError::fail(format!("{printed}: {e}")))?;
        prop_assert_eq!(p.size(), q.size());
        prop_assert_eq!(p.free_names().len(), q.free_names().len());
    }
}
