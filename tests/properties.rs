//! Property-based tests over core invariants of the calculus and the
//! analysis: evaluation, canonicalisation, the Dolev–Yao closure,
//! kind/sort operators, and subject reduction on seeded random processes.
//!
//! Runs on the in-tree harness (`nuspi_bench::testkit`) — seeded
//! generators plus greedy shrinking, no external crates.

use nuspi::security::{kind, sort, Kind, Knowledge, Policy, Sort};
use nuspi::semantics::{commitments, eval, CommitConfig, EvalMode, Rng};
use nuspi::syntax::{Name, Value};
use nuspi_bench::genproc::{random_process, GenConfig};
use nuspi_bench::testkit::{
    check, ensure, ensure_eq, random_expr, random_value, shrink_expr, shrink_value, shrink_vec,
};
use std::rc::Rc;

#[test]
fn canonicalize_is_idempotent() {
    check(
        "canonicalize-idempotent",
        256,
        |rng| random_value(rng, 3),
        shrink_value,
        |w| {
            let once = w.canonicalize();
            ensure_eq(once.canonicalize(), once)
        },
    );
}

#[test]
fn canonicalize_preserves_kind_and_sort() {
    check(
        "canonicalize-preserves-kind-sort",
        256,
        |rng| random_value(rng, 3),
        shrink_value,
        |w| {
            let policy = Policy::with_secrets(["n0", "n1"]);
            let tracked = nuspi::Symbol::intern("n2");
            let c = w.canonicalize();
            ensure_eq(kind(w, &policy), kind(&c, &policy))?;
            ensure_eq(sort(w, tracked), sort(&c, tracked))
        },
    );
}

#[test]
fn evaluation_restricts_exactly_the_fresh_confounders() {
    check(
        "eval-restricts-fresh-confounders",
        256,
        |rng| random_expr(rng, 3),
        shrink_expr,
        |e| {
            let r = eval(e, EvalMode::NuSpi).map_err(|err| err.to_string())?;
            // Every restricted name occurs in the value, is non-source, and
            // there are no duplicates (the "w.o. duplicates" side condition).
            let mut seen = std::collections::HashSet::new();
            for n in &r.restricted {
                ensure(!n.is_source(), || format!("{n} is a source name"))?;
                ensure(r.value.contains_name(*n), || {
                    format!("{n} restricted but absent from {}", r.value)
                })?;
                ensure(seen.insert(*n), || format!("{n} restricted twice"))?;
            }
            Ok(())
        },
    );
}

#[test]
fn evaluation_is_deterministic_up_to_confounders() {
    check(
        "eval-deterministic-up-to-confounders",
        256,
        |rng| random_expr(rng, 3),
        shrink_expr,
        |e| {
            let a = eval(e, EvalMode::NuSpi).map_err(|err| err.to_string())?;
            let b_ = eval(e, EvalMode::NuSpi).map_err(|err| err.to_string())?;
            ensure_eq(a.value.canonicalize(), b_.value.canonicalize())?;
            ensure_eq(a.restricted.len(), b_.restricted.len())
        },
    );
}

#[test]
fn classic_mode_evaluation_is_fully_deterministic() {
    check(
        "classic-eval-deterministic",
        256,
        |rng| random_expr(rng, 3),
        shrink_expr,
        |e| {
            let a = eval(e, EvalMode::ClassicSpi).map_err(|err| err.to_string())?;
            let b_ = eval(e, EvalMode::ClassicSpi).map_err(|err| err.to_string())?;
            ensure_eq(a.value, b_.value)?;
            ensure(a.restricted.is_empty(), || {
                format!("classic mode restricted {:?}", a.restricted)
            })
        },
    );
}

#[test]
fn knowledge_closure_is_extensive_and_idempotent() {
    check(
        "knowledge-closure-extensive-idempotent",
        128,
        |rng| {
            let n = rng.gen_range(0..6);
            (0..n).map(|_| random_value(rng, 3)).collect::<Vec<_>>()
        },
        |ws| shrink_vec(ws, shrink_value),
        |ws| {
            let mut k = Knowledge::from_names(["c"]);
            for w in ws {
                k.learn(Rc::clone(w));
            }
            // extensive: everything learned is derivable
            for w in ws {
                ensure(k.can_derive(w), || format!("learned {w} not derivable"))?;
            }
            // idempotent: re-learning changes nothing
            let before = k.len();
            for w in ws {
                k.learn(Rc::clone(w));
            }
            ensure_eq(k.len(), before)
        },
    );
}

#[test]
fn derivable_values_stay_derivable_as_knowledge_grows() {
    check(
        "knowledge-closure-monotone",
        128,
        |rng| {
            let n = rng.gen_range_inclusive(1, 4);
            let ws: Vec<_> = (0..n).map(|_| random_value(rng, 3)).collect();
            let extra = random_value(rng, 3);
            (ws, extra)
        },
        |(ws, extra)| {
            let mut out: Vec<_> = shrink_vec(ws, shrink_value)
                .into_iter()
                .filter(|ws2| !ws2.is_empty())
                .map(|ws2| (ws2, Rc::clone(extra)))
                .collect();
            out.extend(shrink_value(extra).into_iter().map(|e| (ws.clone(), e)));
            out
        },
        |(ws, extra)| {
            let mut k = Knowledge::from_names(["c"]);
            for w in ws {
                k.learn(Rc::clone(w));
            }
            let derivable: Vec<Rc<Value>> =
                ws.iter().filter(|w| k.can_derive(w)).cloned().collect();
            k.learn(Rc::clone(extra));
            for w in &derivable {
                ensure(k.can_derive(w), || {
                    format!("monotonicity of C(W) broken at {w}")
                })?;
            }
            Ok(())
        },
    );
}

#[test]
fn secret_key_ciphertexts_are_public_kind() {
    check(
        "secret-key-ciphertexts-public",
        256,
        |rng| random_value(rng, 3),
        shrink_value,
        |payload| {
            let policy = Policy::with_secrets(["sk"]);
            let ct = Value::enc(
                vec![Rc::clone(payload)],
                Name::global("r"),
                Value::name("sk"),
            );
            ensure_eq(kind(&ct, &policy), Kind::P)
        },
    );
}

#[test]
fn ciphertext_sort_is_always_independent() {
    check(
        "ciphertext-sort-independent",
        256,
        |rng| (random_value(rng, 3), random_value(rng, 3)),
        |(p, k)| {
            let mut out: Vec<_> = shrink_value(p)
                .into_iter()
                .map(|p2| (p2, Rc::clone(k)))
                .collect();
            out.extend(shrink_value(k).into_iter().map(|k2| (Rc::clone(p), k2)));
            out
        },
        |(payload, key)| {
            let tracked = nuspi::Symbol::intern("n0");
            let ct = Value::enc(vec![Rc::clone(payload)], Name::global("r"), Rc::clone(key));
            ensure_eq(sort(&ct, tracked), Sort::I)
        },
    );
}

#[test]
fn commitments_of_closed_processes_have_closed_residuals() {
    for seed in 0..400u64 {
        let p = random_process(seed, &GenConfig::default());
        for c in commitments(&p, &CommitConfig::default()) {
            match c.agent {
                nuspi::semantics::Agent::Proc(q) => assert!(q.is_closed(), "seed {seed}"),
                nuspi::semantics::Agent::Conc(conc) => {
                    assert!(conc.body.is_closed(), "seed {seed}")
                }
                nuspi::semantics::Agent::Abs(abs) => {
                    let mut fv = abs.body.free_vars();
                    fv.remove(&abs.var);
                    assert!(fv.is_empty(), "seed {seed}");
                }
            }
        }
    }
}

#[test]
fn analysis_predicts_every_immediate_output() {
    // One-step subject reduction, clause (3), on random processes.
    for seed in 0..300u64 {
        let p = random_process(seed, &GenConfig::default());
        let sol = nuspi::analyze(&p);
        for c in commitments(&p, &CommitConfig::default()) {
            if let (nuspi::semantics::Action::Out(m), nuspi::semantics::Agent::Conc(conc)) =
                (&c.action, &c.agent)
            {
                assert!(
                    sol.contains(nuspi::FlowVar::Zeta(conc.label), &conc.value),
                    "seed {seed}: ζ({:?}) misses {}",
                    conc.label,
                    conc.value
                );
                assert!(
                    sol.contains(nuspi::FlowVar::Kappa(m.canonical()), &conc.value),
                    "seed {seed}: κ({}) misses {}",
                    m.canonical(),
                    conc.value
                );
            }
        }
    }
}

/// Rebuilds `p` with every restriction binder renamed to a globally
/// fresh name — an α-renaming, so all digests must be invariant.
fn freshen_restrictions(p: &nuspi::Process) -> nuspi::Process {
    use nuspi::Process as P;
    match p {
        P::Nil => P::Nil,
        P::Output { chan, msg, then } => P::Output {
            chan: chan.clone(),
            msg: msg.clone(),
            then: Box::new(freshen_restrictions(then)),
        },
        P::Input { chan, var, then } => P::Input {
            chan: chan.clone(),
            var: *var,
            then: Box::new(freshen_restrictions(then)),
        },
        P::Par(l, r) => P::Par(
            Box::new(freshen_restrictions(l)),
            Box::new(freshen_restrictions(r)),
        ),
        P::Restrict { name, body } => {
            let fresh = name.freshen();
            P::Restrict {
                name: fresh,
                body: Box::new(freshen_restrictions(&body.rename_name(*name, fresh))),
            }
        }
        P::Hide { name, body } => {
            let fresh = name.freshen();
            P::Hide {
                name: fresh,
                body: Box::new(freshen_restrictions(&body.rename_name(*name, fresh))),
            }
        }
        P::Match { lhs, rhs, then } => P::Match {
            lhs: lhs.clone(),
            rhs: rhs.clone(),
            then: Box::new(freshen_restrictions(then)),
        },
        P::Replicate(q) => P::Replicate(Box::new(freshen_restrictions(q))),
        P::Let {
            fst,
            snd,
            expr,
            then,
        } => P::Let {
            fst: *fst,
            snd: *snd,
            expr: expr.clone(),
            then: Box::new(freshen_restrictions(then)),
        },
        P::CaseNat {
            expr,
            zero,
            pred,
            succ,
        } => P::CaseNat {
            expr: expr.clone(),
            zero: Box::new(freshen_restrictions(zero)),
            pred: *pred,
            succ: Box::new(freshen_restrictions(succ)),
        },
        P::CaseDec {
            expr,
            vars,
            key,
            then,
        } => P::CaseDec {
            expr: expr.clone(),
            vars: vars.clone(),
            key: key.clone(),
            then: Box::new(freshen_restrictions(then)),
        },
    }
}

#[test]
fn alpha_equivalent_processes_have_equal_digests() {
    use nuspi::syntax::{alpha_equivalent, alpha_hash, canonical_digest};
    for seed in 0..400u64 {
        let p = random_process(seed, &GenConfig::default());
        let q = freshen_restrictions(&p);
        assert!(
            alpha_equivalent(&p, &q),
            "seed {seed}: binder freshening must be an α-renaming of {p}"
        );
        assert_eq!(
            canonical_digest(&p),
            canonical_digest(&q),
            "seed {seed}: canonical digest must be α-invariant for {p}"
        );
        assert_eq!(alpha_hash(&p), alpha_hash(&q), "seed {seed}");
        // Idempotent: freshening again still lands in the same class.
        let r = freshen_restrictions(&q);
        assert_eq!(canonical_digest(&p), canonical_digest(&r), "seed {seed}");
    }
}

#[test]
fn single_node_perturbations_change_the_digest() {
    use nuspi::syntax::{alpha_equivalent, canonical_digest, Name};
    for seed in 0..400u64 {
        let p = random_process(seed, &GenConfig::default());
        let d = canonical_digest(&p);

        // Insert one node at the root.
        let wrapped = nuspi::Process::Replicate(Box::new(p.clone()));
        assert!(!alpha_equivalent(&p, &wrapped), "seed {seed}");
        assert_ne!(d, canonical_digest(&wrapped), "seed {seed}: !P vs P");

        let parred = nuspi::Process::Par(Box::new(p.clone()), Box::new(nuspi::Process::Nil));
        assert!(!alpha_equivalent(&p, &parred), "seed {seed}");
        assert_ne!(d, canonical_digest(&parred), "seed {seed}: P|0 vs P");

        // Renaming a *free* name is a semantic change, not an α-step —
        // the digest must move (guarded: the name must actually occur
        // free, and the renaming must not collide with another name).
        let renamed = p.rename_name(Name::global("c"), Name::global("zz-perturbed-free-name"));
        if !alpha_equivalent(&p, &renamed) {
            assert_ne!(d, canonical_digest(&renamed), "seed {seed}: free rename");
        }
    }
}

/// Rebuilds `p` with every `new` binder swapped for `hide`, counting
/// the swaps. Zero swaps means `p` is restriction-free.
fn hide_restrictions(p: &nuspi::Process, swapped: &mut usize) -> nuspi::Process {
    use nuspi::Process as P;
    match p {
        P::Restrict { name, body } => {
            *swapped += 1;
            P::Hide {
                name: *name,
                body: Box::new(hide_restrictions(body, swapped)),
            }
        }
        P::Nil => P::Nil,
        P::Output { chan, msg, then } => P::Output {
            chan: chan.clone(),
            msg: msg.clone(),
            then: Box::new(hide_restrictions(then, swapped)),
        },
        P::Input { chan, var, then } => P::Input {
            chan: chan.clone(),
            var: *var,
            then: Box::new(hide_restrictions(then, swapped)),
        },
        P::Par(l, r) => P::Par(
            Box::new(hide_restrictions(l, swapped)),
            Box::new(hide_restrictions(r, swapped)),
        ),
        P::Hide { name, body } => P::Hide {
            name: *name,
            body: Box::new(hide_restrictions(body, swapped)),
        },
        P::Match { lhs, rhs, then } => P::Match {
            lhs: lhs.clone(),
            rhs: rhs.clone(),
            then: Box::new(hide_restrictions(then, swapped)),
        },
        P::Replicate(q) => P::Replicate(Box::new(hide_restrictions(q, swapped))),
        P::Let {
            fst,
            snd,
            expr,
            then,
        } => P::Let {
            fst: *fst,
            snd: *snd,
            expr: expr.clone(),
            then: Box::new(hide_restrictions(then, swapped)),
        },
        P::CaseNat {
            expr,
            zero,
            pred,
            succ,
        } => P::CaseNat {
            expr: expr.clone(),
            zero: Box::new(hide_restrictions(zero, swapped)),
            pred: *pred,
            succ: Box::new(hide_restrictions(succ, swapped)),
        },
        P::CaseDec {
            expr,
            vars,
            key,
            then,
        } => P::CaseDec {
            expr: expr.clone(),
            vars: vars.clone(),
            key: key.clone(),
            then: Box::new(hide_restrictions(then, swapped)),
        },
    }
}

#[test]
fn hide_and_new_are_distinct_binders_in_the_digest() {
    use nuspi::syntax::{alpha_equivalent, canonical_digest};
    // Pinned pairs: the same body under the two binders must sit in
    // different α-classes with different digests.
    let pairs = [
        ("(new x) c<x>.0", "(hide x) c<x>.0"),
        (
            "(new k) (new m) c<{m, new r}:k>.0",
            "(hide k) (new m) c<{m, new r}:k>.0",
        ),
        ("(new a) (a<0>.0 | a(y).0)", "(hide a) (a<0>.0 | a(y).0)"),
    ];
    for (new_src, hide_src) in pairs {
        let pn = nuspi::parse_process(new_src).unwrap();
        let ph = nuspi::parse_process(hide_src).unwrap();
        assert!(
            !alpha_equivalent(&pn, &ph),
            "{new_src} vs {hide_src}: binders must not be conflated"
        );
        assert_ne!(
            canonical_digest(&pn),
            canonical_digest(&ph),
            "{new_src} vs {hide_src}: digest must separate hide from new"
        );
    }
    // `hide` is still α-invariant on its own: freshening the binder's
    // id (the α-step in this calculus — canonical base names carry
    // policy meaning and stay put) keeps the digest fixed.
    let a = nuspi::parse_process("(hide x) c<x>.0").unwrap();
    let b = freshen_restrictions(&a);
    assert!(alpha_equivalent(&a, &b));
    assert_eq!(canonical_digest(&a), canonical_digest(&b));
    // Perturbation over the random corpus: swapping every `new` for
    // `hide` must move the digest whenever there is a binder to swap.
    for seed in 0..200u64 {
        let p = random_process(seed, &GenConfig::default());
        let mut swapped = 0;
        let q = hide_restrictions(&p, &mut swapped);
        if swapped > 0 {
            assert!(!alpha_equivalent(&p, &q), "seed {seed}");
            assert_ne!(
                canonical_digest(&p),
                canonical_digest(&q),
                "seed {seed}: {swapped} binder swaps left the digest unchanged"
            );
        }
    }
}

#[test]
fn digests_are_byte_stable_across_runs() {
    use nuspi::syntax::canonical_digest;
    // Pinned hex digests: these change only when the canonical-form or
    // hash algorithm changes, which must be a deliberate decision (the
    // engine's on-disk/archived cache keys and trace correlation both
    // lean on cross-run stability).
    let pinned = [
        ("0", "fda1c23f6296f7b42584d6f2a074a7c5"),
        (
            "(new k) (new m) c<{m, new r}:k>.0",
            "d2a0a460235b4dab15c0a41e848eb5af",
        ),
        (
            "!(ping<0>.0 | ping(x).pong<x>.0)",
            "0fa6ee124034ca0a5994da5356e69a20",
        ),
    ];
    for (src, hex) in pinned {
        let p = nuspi::parse_process(src).unwrap();
        assert_eq!(
            canonical_digest(&p).to_hex(),
            hex,
            "digest of {src:?} drifted — cache keys would miss across versions"
        );
        // And stable within the run, including through an α-renaming.
        assert_eq!(
            canonical_digest(&freshen_restrictions(&p)).to_hex(),
            hex,
            "{src:?}"
        );
    }
    // Random processes: recomputation is reproducible.
    for seed in 0..200u64 {
        let p = random_process(seed, &GenConfig::default());
        assert_eq!(
            canonical_digest(&p),
            canonical_digest(&p.clone()),
            "seed {seed}"
        );
    }
}

#[test]
fn parse_print_round_trip_preserves_structure() {
    for seed in 0..300u64 {
        let p = random_process(seed, &GenConfig::default());
        let printed = p.to_string();
        let q = nuspi::parse_process(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: {printed}: {e}"));
        assert_eq!(p.size(), q.size(), "seed {seed}");
        assert_eq!(p.free_names().len(), q.free_names().len(), "seed {seed}");
    }
}
