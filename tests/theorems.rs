//! Cross-crate integration tests: the paper's five theorems, checked
//! end-to-end through the public APIs.

use nuspi::protocols::{self, suite};
use nuspi::security::{
    carefulness, confinement, message_independent, reveals, standard_battery,
    static_message_independence, IntruderConfig, Knowledge,
};
use nuspi::semantics::ExecConfig;
use nuspi::{Symbol, Value};
use nuspi_bench::genproc::{random_process, GenConfig};
use nuspi_bench::theorems::{check_moore_meet, check_subject_reduction};
use nuspi_cfa::FiniteEstimate;

fn exec() -> ExecConfig {
    ExecConfig {
        max_depth: 9,
        max_states: 500,
        ..ExecConfig::default()
    }
}

// ---- Theorem 1: subject reduction ------------------------------------

#[test]
fn theorem1_holds_on_the_protocol_suite() {
    for spec in suite() {
        let stats = check_subject_reduction(&spec.process, &exec())
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert!(stats.states_checked > 0);
    }
}

#[test]
fn theorem1_holds_on_random_processes() {
    let gcfg = GenConfig {
        components: 5,
        max_prefixes: 3,
        ..GenConfig::default()
    };
    let cfg = ExecConfig {
        max_depth: 5,
        max_states: 150,
        ..ExecConfig::default()
    };
    for seed in 1000..1100 {
        check_subject_reduction(&random_process(seed, &gcfg), &cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

// ---- Theorem 2: Moore family ------------------------------------------

#[test]
fn theorem2_meet_preserves_acceptability() {
    // Two hand-built acceptable estimates for a flat relay.
    let p = nuspi::parse_process("c<m>.0 | c(x).d<x>.0").unwrap();
    let sol = nuspi::analyze(&p);
    // Concretise the least solution (flat process → name productions).
    let mut least = FiniteEstimate::new();
    for (id, fv) in sol.flow_vars() {
        for prod in sol.prods_of_id(id) {
            if let nuspi_cfa::Prod::Name(n) = prod {
                let w = Value::name(nuspi::syntax::Name::global(*n));
                match fv {
                    nuspi::FlowVar::Rho(x) => {
                        least.add_rho(x, w);
                    }
                    nuspi::FlowVar::Kappa(c) => {
                        least.add_kappa(c, w);
                    }
                    nuspi::FlowVar::Zeta(l) => {
                        least.add_zeta(l, w);
                    }
                    nuspi::FlowVar::Aux(_) => {}
                }
            }
        }
    }
    assert!(least.accepts(&p), "{:?}", least.verify(&p));
    // Pad it two different ways; both stay acceptable; meet recovers it.
    let mut a = least.clone();
    a.add_kappa(Symbol::intern("d"), Value::name("padA"));
    let mut b = least.clone();
    b.add_kappa(Symbol::intern("d"), Value::name("padB"));
    check_moore_meet(&p, &a, &b).unwrap();
    let met = a.meet(&b);
    assert!(
        least.leq(&met) && met.leq(&least),
        "meet recovers the least"
    );
}

// ---- Theorem 3: confined ⟹ careful ------------------------------------

#[test]
fn theorem3_no_confined_process_is_careless() {
    for spec in suite() {
        let conf = confinement(&spec.process, &spec.policy);
        let care = carefulness(&spec.process, &spec.policy, &exec());
        if conf.is_confined() {
            assert!(
                care.is_careful(),
                "{}: confined but careless: {:?}",
                spec.name,
                care.violations
            );
        }
        assert_eq!(conf.is_confined(), spec.expect_confined, "{}", spec.name);
    }
}

#[test]
fn theorem3_contrapositive_on_random_processes() {
    // No randomly generated process may be confined-yet-careless.
    let gcfg = GenConfig::default();
    let policy = nuspi::Policy::with_secrets(["fresh0", "fresh1", "fresh2", "key0", "key1"]);
    let cfg = ExecConfig {
        max_depth: 5,
        max_states: 150,
        ..ExecConfig::default()
    };
    for seed in 2000..2120 {
        let p = random_process(seed, &gcfg);
        if !policy.free_secret_names(&p).is_empty() {
            continue; // ill-formed w.r.t. the policy; confinement rejects trivially
        }
        let conf = confinement(&p, &policy);
        if conf.is_confined() {
            let care = carefulness(&p, &policy, &cfg);
            assert!(
                care.is_careful(),
                "seed {seed}: confined but careless: {:?}\n{p}",
                care.violations
            );
        }
    }
}

// ---- Theorem 4: confined ⟹ Dolev–Yao secret ---------------------------

#[test]
fn theorem4_no_confined_protocol_reveals_its_secret() {
    let cfg = IntruderConfig {
        max_depth: 10,
        max_states: 4000,
        ..IntruderConfig::default()
    };
    for spec in suite().into_iter().filter(|s| s.expect_confined) {
        let k0 = Knowledge::from_names(spec.public_channels.iter().copied());
        assert!(
            reveals(&spec.process, &k0, spec.secret, &cfg).is_none(),
            "{}: confined protocol revealed {}",
            spec.name,
            spec.secret
        );
    }
}

#[test]
fn theorem4_contrapositive_attacks_exist_on_rejected_variants() {
    // At least the three shallow flaws must be exploitable quickly.
    let cfg = IntruderConfig {
        max_depth: 10,
        max_states: 6000,
        ..IntruderConfig::default()
    };
    for name in ["wmf-key-in-clear", "wmf-payload-in-clear", "ns-nonce-leak"] {
        let spec = suite().into_iter().find(|s| s.name == name).unwrap();
        let k0 = Knowledge::from_names(spec.public_channels.iter().copied());
        assert!(
            reveals(&spec.process, &k0, spec.secret, &cfg).is_some(),
            "{name}: planted flaw not exploited"
        );
    }
}

// ---- Theorem 5: confined + invariant ⟹ message independent ------------

#[test]
fn theorem5_static_pass_implies_no_distinguisher() {
    let m1 = Value::numeral(0);
    let m2 = Value::numeral(3);
    for ex in protocols::open_examples() {
        let report = static_message_independence(&ex.process, ex.var, &ex.policy);
        let battery = standard_battery(&ex.public_channels, &[m1.clone(), m2.clone()]);
        let dynamic = message_independent(
            &ex.process,
            ex.var,
            &m1,
            &m2,
            &battery,
            &ExecConfig::default(),
        );
        if report.implies_independence() {
            assert!(
                dynamic.is_ok(),
                "{}: static pass but distinguished: {}",
                ex.name,
                dynamic.unwrap_err()
            );
        }
        assert_eq!(
            report.implies_independence(),
            ex.expect_independent,
            "{}",
            ex.name
        );
    }
}

#[test]
fn theorem5_separates_dolev_yao_from_noninterference() {
    // The §5 implicit flow: Dolev–Yao secure (the secret is never sent),
    // yet not message independent — the paper's headline separation.
    let ex = protocols::implicit_flow();
    let secret = Value::name(nuspi::security::n_star_name());
    let closed = ex.process.subst(ex.var, &secret);
    let k0 = Knowledge::from_names(["c"]);
    let cfg = IntruderConfig::default();
    assert!(
        reveals(&closed, &k0, nuspi::security::n_star(), &cfg).is_none(),
        "the comparison never *sends* the secret"
    );
    let report = static_message_independence(&ex.process, ex.var, &ex.policy);
    assert!(!report.implies_independence(), "but independence fails");
}

// ---- Cross-validation: two independent carefulness implementations -----

#[test]
fn carefulness_monitor_agrees_with_exhaustive_trace_scan() {
    use nuspi::security::{kind, Kind};
    use nuspi::semantics::all_traces;
    // The state-space monitor and a per-trace scan must agree on every
    // (small) protocol: a violation exists in some reachable state iff it
    // occurs along some trace.
    for spec in suite().into_iter().take(8) {
        let cfg = ExecConfig {
            max_depth: 8,
            max_states: 400,
            ..ExecConfig::default()
        };
        let monitor = carefulness(&spec.process, &spec.policy, &cfg);
        let mut trace_violation = false;
        for t in all_traces(&spec.process, &cfg, 400) {
            for step in &t.steps {
                for out in &step.outputs {
                    if spec.policy.is_public(out.channel.canonical())
                        && kind(&out.value, &spec.policy) == Kind::S
                    {
                        trace_violation = true;
                    }
                }
            }
        }
        // The monitor also sees *offered* (not yet fired) outputs, so it
        // can only find more than the trace scan — never less.
        if trace_violation {
            assert!(
                !monitor.is_careful(),
                "{}: trace scan found a violation the monitor missed",
                spec.name
            );
        }
        if monitor.is_careful() {
            assert!(
                !trace_violation,
                "{}: monitor careful but a trace violates",
                spec.name
            );
        }
    }
}
