//! Golden-file checks for the engine's `equiv` backend.
//!
//! Every case is submitted through a full [`AnalysisEngine`] at several
//! worker counts and both cache temperatures, and the response body is
//! compared byte-for-byte against `tests/golden/equiv/<name>.json`.
//! Regenerate the goldens with
//!
//! ```text
//! NUSPI_BLESS=1 cargo test -q --test equiv_golden
//! ```
//!
//! The same test asserts the determinism contract directly: verdicts,
//! traces, and play meters are byte-identical at 1, 2, 4, and 8 workers,
//! and a warm resubmission is a cache hit with the identical body.

use nuspi::engine::{AnalysisEngine, EngineConfig, Request};
use nuspi::equiv::EquivConfig;
use nuspi_protocols::broken_twins;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("equiv")
}

fn bless() -> bool {
    std::env::var_os("NUSPI_BLESS").is_some()
}

/// Budgets pinned explicitly so the blessed bodies survive re-tunes of
/// `EquivConfig::default()` — and match between debug and release, since
/// the game is deterministic by construction, not by optimization level.
fn pinned() -> EquivConfig {
    EquivConfig {
        game_depth: 5,
        max_plays: 4_000,
        tau_depth: 20,
        tau_states: 600,
        max_injections: 16,
        ..EquivConfig::default()
    }
}

fn engine(jobs: usize) -> AnalysisEngine {
    AnalysisEngine::new(EngineConfig {
        jobs,
        equiv: pinned(),
        ..EngineConfig::default()
    })
}

/// Named source pairs: each honest/broken protocol twin, plus the small
/// binder-semantics pairs the laws wall pins traces for.
fn cases() -> Vec<(String, String, String)> {
    let mut out = vec![
        (
            "new-vs-hide".to_owned(),
            "(new n) c<n>.0".to_owned(),
            "(hide n) c<n>.0".to_owned(),
        ),
        (
            "sealed-twins".to_owned(),
            "(new k) c<{a, new r}:k>.0".to_owned(),
            "(new k2) c<{b, new r2}:k2>.0".to_owned(),
        ),
    ];
    for (honest, broken) in broken_twins() {
        out.push((
            format!("{}-vs-{}", honest.name, broken.name),
            honest.source.to_owned(),
            broken.source.to_owned(),
        ));
    }
    out
}

fn check_case(name: &str, left: &str, right: &str) {
    // Cold bodies at every worker count must agree byte-for-byte.
    let mut bodies = Vec::new();
    for jobs in [1, 2, 4, 8] {
        let resp = engine(jobs).submit(Request::equiv(left, right));
        assert!(resp.is_ok(), "{name} at jobs={jobs}: {}", resp.body);
        assert!(!resp.cached, "{name} at jobs={jobs}: fresh engine hit");
        bodies.push((jobs, resp.body));
    }
    let (_, body) = &bodies[0];
    for (jobs, other) in &bodies[1..] {
        assert_eq!(
            body, other,
            "{name}: body differs between jobs=1 and jobs={jobs}"
        );
    }

    // Warm resubmission — same engine, both pair orders — is a hit.
    let eng = engine(4);
    let cold = eng.submit(Request::equiv(left, right));
    let warm = eng.submit(Request::equiv(right, left));
    assert!(!cold.cached && warm.cached, "{name}: warm path missed");
    assert_eq!(cold.body, warm.body, "{name}: warm body deviates");
    assert_eq!(body, &cold.body, "{name}: second engine deviates");

    let path = golden_dir().join(format!("{name}.json"));
    if bless() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, body.as_bytes()).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{name}: missing golden file {} ({e}); run with NUSPI_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        body.as_ref(),
        expected,
        "{name}: equiv body deviates from the golden file {}; \
         run with NUSPI_BLESS=1 to re-bless if intentional",
        path.display()
    );
}

#[test]
fn equiv_bodies_match_golden_at_any_worker_count() {
    for (name, left, right) in cases() {
        check_case(&name, &left, &right);
    }
}

#[test]
fn no_stale_golden_files() {
    let live: std::collections::BTreeSet<String> = cases()
        .into_iter()
        .map(|(name, _, _)| format!("{name}.json"))
        .collect();
    let Ok(entries) = std::fs::read_dir(golden_dir()) else {
        return; // nothing blessed yet (fresh checkout mid-bless)
    };
    for entry in entries {
        let file = entry.unwrap().file_name().into_string().unwrap();
        assert!(
            live.contains(&file),
            "stale golden file {file}: no case produces it any more"
        );
    }
}

#[test]
fn twin_goldens_record_a_distinction() {
    // The broken twins are *dynamically* separable: their goldens must
    // carry a distinguishing trace, not a budget excuse.
    for (honest, broken) in broken_twins() {
        let resp = engine(2).submit(Request::equiv(&honest.source, &broken.source));
        assert!(
            resp.body.contains("\"verdict\":\"distinguished\""),
            "{} vs {}: {}",
            honest.name,
            broken.name,
            resp.body
        );
    }
}
