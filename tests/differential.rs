//! Differential testing of the three solvers.
//!
//! The optimised solvers — the sequential worklist ([`solve`]) and the
//! work-stealing parallel solver ([`solve_parallel`] at 1, 2, 4 and 8
//! threads) — must compute exactly the same estimate `(ρ, κ, ζ)`
//! as the deliberately naive round-robin reference ([`solve_reference`])
//! on every input: the protocol suite plus hundreds of seeded random
//! processes. On flat processes, leastness is additionally re-checked
//! against the finite-set saturation oracle and the Moore-family meet
//! (Theorem 2).

use nuspi::cfa::{
    solve, solve_parallel, solve_reference, solve_suite, Constraints, FiniteEstimate,
};
use nuspi_bench::flatref::{concretize_flat, random_flat_process, saturate_flat};
use nuspi_bench::genproc::{random_process, GenConfig};
use nuspi_bench::testkit::{check, ensure, shrink_u64};
use nuspi_bench::theorems::check_moore_meet;
use nuspi_protocols::suite;
use nuspi_semantics::rng::Rng as _;
use nuspi_syntax::{Process, Symbol, Value};

/// Solves one labelled process with every solver and checks pairwise
/// semantic equality of the results.
fn assert_solvers_agree(p: &Process, ctx: &str) {
    let seq = solve(Constraints::generate(p));
    let refr = solve_reference(Constraints::generate(p));
    seq.estimate_eq(&refr)
        .unwrap_or_else(|e| panic!("{ctx}: sequential vs reference: {e}"));
    for threads in [1, 2, 4, 8] {
        let par = solve_parallel(Constraints::generate(p), threads);
        seq.estimate_eq(&par)
            .unwrap_or_else(|e| panic!("{ctx}: sequential vs parallel({threads}): {e}"));
    }
}

#[test]
fn property_parallel_matches_reference_at_every_thread_count() {
    // The testkit variant of the differential wall: 200 fresh seeds per
    // run (shift the stream with NUSPI_TESTKIT_SEED), shrinking a
    // failing seed toward a small reproducer.
    check(
        "parallel-equals-reference",
        200,
        |rng| rng.next_u64() % 100_000,
        shrink_u64,
        |seed| {
            let p = random_process(*seed, &GenConfig::default());
            let refr = solve_reference(Constraints::generate(&p));
            for threads in [1usize, 2, 4, 8] {
                let par = solve_parallel(Constraints::generate(&p), threads);
                ensure(refr.estimate_eq(&par).is_ok(), || {
                    format!(
                        "seed {seed}: parallel({threads}) disagrees with the reference: {}",
                        refr.estimate_eq(&par).unwrap_err()
                    )
                })?;
            }
            Ok(())
        },
    );
}

#[test]
fn solvers_agree_on_random_processes() {
    let cfg = GenConfig::default();
    for seed in 0..200u64 {
        let p = random_process(seed, &cfg);
        assert_solvers_agree(&p, &format!("seed {seed}"));
    }
}

#[test]
fn solvers_agree_on_larger_random_processes() {
    let cfg = GenConfig {
        components: 6,
        max_prefixes: 4,
        channels: 4,
        keys: 3,
        restrict_pct: 40,
    };
    for seed in 0..40u64 {
        let p = random_process(seed, &cfg);
        assert_solvers_agree(&p, &format!("large seed {seed}"));
    }
}

#[test]
fn solvers_agree_on_the_protocol_suite() {
    for spec in suite() {
        assert_solvers_agree(&spec.process, spec.name);
    }
}

#[test]
fn suite_batch_api_agrees_with_sequential_solves() {
    let specs = suite();
    let batch: Vec<Constraints> = specs
        .iter()
        .map(|s| Constraints::generate(&s.process))
        .collect();
    let sols = solve_suite(batch, 4);
    for (spec, sol) in specs.iter().zip(&sols) {
        let solo = solve(Constraints::generate(&spec.process));
        solo.estimate_eq(sol)
            .unwrap_or_else(|e| panic!("{}: batch vs solo: {e}", spec.name));
    }
}

#[test]
fn parallel_solution_is_least_on_flat_processes() {
    // Flat processes admit finite estimates, so leastness can be checked
    // exactly: the parallel solution must equal the naive finite
    // saturation, sit below padded acceptable estimates, and the padded
    // estimates must satisfy the Moore-family meet property.
    for seed in 0..60u64 {
        let p = random_flat_process(seed);
        let par = solve_parallel(Constraints::generate(&p), 4);
        let least = concretize_flat(&par);
        assert!(least.accepts(&p), "seed {seed}: {:?}", least.verify(&p));

        let reference = saturate_flat(&p, &FiniteEstimate::new());
        assert!(
            least.leq(&reference) && reference.leq(&least),
            "seed {seed}: parallel solution ≠ flat saturation"
        );

        let mut pad1 = FiniteEstimate::new();
        pad1.add_kappa(Symbol::intern("ch0"), Value::name("junkA"));
        let mut pad2 = FiniteEstimate::new();
        pad2.add_kappa(Symbol::intern("ch1"), Value::name("junkB"));
        let e1 = saturate_flat(&p, &pad1);
        let e2 = saturate_flat(&p, &pad2);
        check_moore_meet(&p, &e1, &e2).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            least.leq(&e1) && least.leq(&e2),
            "seed {seed}: least solution must sit below every acceptable estimate"
        );
    }
}

#[test]
fn thread_count_does_not_change_the_estimate_only_the_sharding() {
    // Same process, growing shard counts (including more shards than
    // variables would warrant): always the same estimate, and the shard
    // partition always covers the variables exactly once.
    let p = random_process(7, &GenConfig::default());
    let base = solve_parallel(Constraints::generate(&p), 1);
    for threads in [2, 3, 5, 8, 16] {
        let sol = solve_parallel(Constraints::generate(&p), threads);
        base.estimate_eq(&sol)
            .unwrap_or_else(|e| panic!("{threads} threads: {e}"));
        let st = sol.stats();
        assert_eq!(st.per_shard.len(), threads);
        assert_eq!(
            st.per_shard.iter().map(|s| s.owned_vars).sum::<usize>(),
            st.flow_vars,
            "{threads} threads: shards must partition the variables"
        );
    }
}
