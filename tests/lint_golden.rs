//! Golden-file checks for the lint engine's JSON backend.
//!
//! Every protocol of the suite (and every open example, in its tracked
//! `n*` form) is linted and the JSON report compared byte-for-byte
//! against `tests/golden/lint/<name>.json`. Regenerate the goldens with
//!
//! ```text
//! NUSPI_BLESS=1 cargo test -q --test lint_golden
//! ```
//!
//! The same test asserts the stability contract directly: two runs are
//! byte-identical, the 1-shard and 4-shard solver layouts are
//! byte-identical, and every semantic (`E...`) diagnostic carries a
//! non-empty witness trace whose steps name concrete rules.

use nuspi::diagnostics::{lint, lint_with, to_json, LintConfig, Severity};
use nuspi::Policy;
use nuspi_protocols::{open_examples, suite};
use nuspi_security::{n_star, n_star_name};
use nuspi_syntax::{builder, Process, Value};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("lint")
}

fn bless() -> bool {
    std::env::var_os("NUSPI_BLESS").is_some()
}

/// Every linted case: the closed protocols, and the open examples in the
/// tracked form the §5 analyses use (`(νn*) P[n*/x]`, `n*` secret).
fn cases() -> Vec<(String, Process, Policy)> {
    let mut out = Vec::new();
    for spec in suite() {
        out.push((spec.name.to_owned(), spec.process, spec.policy));
    }
    for ex in open_examples() {
        let tracked = builder::restrict(
            n_star_name(),
            ex.process.subst(ex.var, &Value::name(n_star_name())),
        );
        let mut policy = ex.policy.clone();
        policy.add_secret(n_star());
        out.push((format!("open-{}", ex.name), tracked, policy));
    }
    out
}

fn check_case(name: &str, process: &Process, policy: &Policy) {
    let diags = lint(process, policy);

    // Witness contract: every semantic diagnostic explains itself with
    // concrete rules.
    for d in diags.iter().filter(|d| d.code.starts_with('E')) {
        assert!(
            !d.witness.is_empty(),
            "{name}: {} has an empty witness: {d:?}",
            d.code
        );
        for step in &d.witness {
            assert!(
                !step.rule.is_empty() && !step.detail.is_empty(),
                "{name}: witness step without a rule: {d:?}"
            );
        }
    }
    for d in diags.iter().filter(|d| d.severity == Severity::Error) {
        assert!(
            d.code.starts_with('E'),
            "{name}: error without E code: {d:?}"
        );
    }

    let json = to_json(&diags);

    // Stability: a second run and a sharded run must match byte-for-byte.
    assert_eq!(
        json,
        to_json(&lint(process, policy)),
        "{name}: lint output differs between two identical runs"
    );
    assert_eq!(
        json,
        to_json(&lint_with(
            process,
            policy,
            LintConfig {
                shards: 4,
                ..LintConfig::default()
            }
        )),
        "{name}: lint output differs between 1-shard and 4-shard solving"
    );

    let path = golden_dir().join(format!("{name}.json"));
    if bless() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, &json).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{name}: missing golden file {} ({e}); run with NUSPI_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        json,
        expected,
        "{name}: lint JSON deviates from the golden file {}; \
         run with NUSPI_BLESS=1 to re-bless if intentional",
        path.display()
    );
}

#[test]
fn protocol_suite_matches_golden_diagnostics() {
    for (name, process, policy) in cases() {
        check_case(&name, &process, &policy);
    }
}

#[test]
fn no_stale_golden_files() {
    let live: std::collections::BTreeSet<String> = cases()
        .into_iter()
        .map(|(name, _, _)| format!("{name}.json"))
        .collect();
    let Ok(entries) = std::fs::read_dir(golden_dir()) else {
        return; // nothing blessed yet (fresh checkout mid-bless)
    };
    for entry in entries {
        let file = entry.unwrap().file_name().into_string().unwrap();
        assert!(
            live.contains(&file),
            "stale golden file {file}: no case produces it any more"
        );
    }
}

#[test]
fn flawed_protocols_lint_with_errors_and_honest_ones_without() {
    for spec in suite() {
        let diags = lint(&spec.process, &spec.policy);
        let has_errors = diags.iter().any(|d| d.severity == Severity::Error);
        assert_eq!(
            has_errors, !spec.expect_confined,
            "{}: expected confined={} but errors={} ({diags:?})",
            spec.name, spec.expect_confined, has_errors
        );
    }
}
