//! The conservative-extension wall.
//!
//! The graded security lattice is sold as a *conservative* extension: on
//! the two-point lattice with no `hide` binders, every verdict, lint
//! JSON byte, and serve transcript must be identical to the historical
//! binary secret/public partition. This suite proves it differentially
//! rather than asserting it:
//!
//! * every protocol of the suite and every tracked open example is
//!   linted twice — once under its shipped binary policy, once under an
//!   explicitly constructed `Policy::with_lattice(SecLattice::two_point())`
//!   twin — and the JSON must be byte-identical at 1 and 4 solver
//!   shards, and equal to the committed golden file;
//! * the `examples/lang/` ladder gets the same treatment through the
//!   frontend's derived policies;
//! * the serve transcript for the whole suite is byte-identical across
//!   worker counts (1 vs 4) and cache temperature (a cold engine vs the
//!   warm second pass of a doubled session).

use nuspi::diagnostics::{lint_with, to_json, LintConfig};
use nuspi::engine::jsonio::{escape, Json};
use nuspi::engine::{serve, AnalysisEngine, EngineConfig};
use nuspi::Policy;
use nuspi_protocols::{open_examples, suite};
use nuspi_security::{n_star, n_star_name, SecLattice};
use nuspi_syntax::{builder, Process, Value};
use std::path::PathBuf;

/// The two-point-lattice twin of a binary policy: the same secrets, but
/// declared over an explicitly constructed classical lattice instead of
/// the `Policy::with_secrets` default. The twin must stay ungraded —
/// that is the gate that keeps the historical code paths.
fn two_point_twin(policy: &Policy) -> Policy {
    let mut twin = Policy::with_lattice(SecLattice::two_point());
    let mut secrets: Vec<String> = policy.secrets().map(|s| s.as_str().to_owned()).collect();
    secrets.sort();
    for s in secrets {
        twin.add_secret(s.as_str());
    }
    assert!(
        !twin.is_graded(),
        "a two-point twin with bottom clearance must not count as graded"
    );
    twin
}

/// Every linted case, mirroring `tests/lint_golden.rs`: the closed
/// protocols plus the open examples in their tracked `n*` form.
fn cases() -> Vec<(String, Process, Policy)> {
    let mut out = Vec::new();
    for spec in suite() {
        out.push((spec.name.to_owned(), spec.process, spec.policy));
    }
    for ex in open_examples() {
        let tracked = builder::restrict(
            n_star_name(),
            ex.process.subst(ex.var, &Value::name(n_star_name())),
        );
        let mut policy = ex.policy.clone();
        policy.add_secret(n_star());
        out.push((format!("open-{}", ex.name), tracked, policy));
    }
    out
}

fn lint_json(process: &Process, policy: &Policy, shards: usize) -> String {
    to_json(&lint_with(
        process,
        policy,
        LintConfig {
            shards,
            ..LintConfig::default()
        },
    ))
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("lint")
}

#[test]
fn suite_lint_json_is_byte_identical_under_the_explicit_two_point_lattice() {
    for (name, process, policy) in cases() {
        let twin = two_point_twin(&policy);
        let baseline = lint_json(&process, &policy, 1);
        for shards in [1, 4] {
            assert_eq!(
                baseline,
                lint_json(&process, &twin, shards),
                "{name}: explicit two-point lattice diverges at {shards} shard(s)"
            );
        }
        // And both agree with the committed golden bytes, so the wall is
        // anchored to the repository, not to this process's output.
        let path = golden_dir().join(format!("{name}.json"));
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{name}: missing golden file {} ({e})", path.display()));
        assert_eq!(baseline, golden, "{name}: lint JSON deviates from golden");
    }
}

/// The `examples/lang/` ladder, embedded so the wall always covers the
/// committed programs (same set the bench `lang` suite measures).
const LANG_LADDER: &[(&str, &str)] = &[
    ("01_hello", include_str!("../examples/lang/01_hello.nu")),
    (
        "02_channels",
        include_str!("../examples/lang/02_channels.nu"),
    ),
    (
        "03_channels_leak",
        include_str!("../examples/lang/03_channels_leak.nu"),
    ),
    (
        "04_functions",
        include_str!("../examples/lang/04_functions.nu"),
    ),
    (
        "05_functions_leak",
        include_str!("../examples/lang/05_functions_leak.nu"),
    ),
    ("06_cycle", include_str!("../examples/lang/06_cycle.nu")),
    (
        "07_cycle_leak",
        include_str!("../examples/lang/07_cycle_leak.nu"),
    ),
    ("08_secret", include_str!("../examples/lang/08_secret.nu")),
    (
        "09_secret_leak",
        include_str!("../examples/lang/09_secret_leak.nu"),
    ),
];

#[test]
fn lang_ladder_lint_json_is_byte_identical_under_the_explicit_two_point_lattice() {
    for (name, src) in LANG_LADDER {
        let compiled = nuspi_lang::compile(name, src)
            .unwrap_or_else(|e| panic!("{name}: ladder program failed to compile: {e:?}"));
        assert!(
            !compiled.policy.is_graded(),
            "{name}: the committed ladder is binary-labelled"
        );
        let twin = two_point_twin(&compiled.policy);
        let baseline = lint_json(&compiled.process, &compiled.policy, 1);
        for shards in [1, 4] {
            assert_eq!(
                baseline,
                lint_json(&compiled.process, &twin, shards),
                "{name}: explicit two-point lattice diverges at {shards} shard(s)"
            );
        }
    }
}

/// One `lint` request line per closed protocol (same framing the serve
/// round-trip suite uses, minus the stats probe so transcripts compare
/// byte-for-byte).
fn wall_input() -> String {
    let mut lines = String::new();
    for spec in suite() {
        let mut secrets: Vec<String> = spec
            .policy
            .secrets()
            .map(|s| format!("\"{}\"", escape(s.as_str())))
            .collect();
        secrets.sort();
        lines.push_str(&format!(
            "{{\"id\":\"{}\",\"op\":\"lint\",\"process\":\"{}\",\"secrets\":[{}]}}\n",
            escape(spec.name),
            escape(&spec.source),
            secrets.join(",")
        ));
    }
    lines
}

fn run_session(jobs: usize, input: &str) -> Vec<String> {
    let engine = AnalysisEngine::new(EngineConfig {
        jobs,
        ..EngineConfig::default()
    });
    let mut out = Vec::new();
    serve(&engine, input.as_bytes(), &mut out).unwrap();
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(str::to_owned)
        .collect()
}

#[test]
fn serve_transcripts_are_byte_identical_across_workers_and_cache_temperature() {
    let input = wall_input();
    let n = suite().len();

    // Cold engines, 1 and 4 workers.
    let cold_one = run_session(1, &input);
    let cold_four = run_session(4, &input);
    assert_eq!(cold_one.len(), n);
    assert_eq!(cold_one, cold_four, "worker count changed the transcript");

    // Warm pass: a doubled session answers the second half from the
    // cache; those answers must be the cold transcript, byte for byte.
    let doubled = format!("{input}{input}{{\"id\":\"meters\",\"op\":\"stats\"}}\n");
    for jobs in [1, 4] {
        let lines = run_session(jobs, &doubled);
        assert_eq!(lines.len(), 2 * n + 1);
        assert_eq!(
            &lines[..n],
            &cold_one[..],
            "cold half diverged ({jobs} jobs)"
        );
        assert_eq!(
            &lines[n..2 * n],
            &cold_one[..],
            "warm (cached) half diverged ({jobs} jobs)"
        );
        // Prove the warm half really came from the cache.
        let stats = Json::parse(lines.last().unwrap()).unwrap();
        let cache = stats.get("cache").expect("stats line has cache meters");
        assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(n as u64));
        assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(n as u64));
    }
}
