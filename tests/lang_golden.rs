//! Golden-file checks for the annotated-source frontend.
//!
//! Every program on the `examples/lang/` ladder is compiled and checked
//! and its pretty JSON report compared byte-for-byte against
//! `tests/golden/lang/<stem>.json`. Regenerate the goldens with
//!
//! ```text
//! NUSPI_BLESS=1 cargo test -q --test lang_golden
//! ```
//!
//! The same suite asserts the frontend's stability contract directly:
//! the verdict matches the `// expect:` header committed in each
//! program, two runs are byte-identical, the 1-shard and 4-shard solver
//! layouts are byte-identical, every insecure rung anchors a witness to
//! the exact file:line:column of both the labeled origin and the
//! violating sink, resubmitting a formatting-only edit that keeps every
//! declaration in place is an engine cache hit, and an edit that moves
//! declarations to other lines misses and is re-anchored.

use nuspi::engine::{AnalysisEngine, Request};
use nuspi::lang::{check_to_json, check_with, Verdict};
use std::path::PathBuf;

fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn golden_dir() -> PathBuf {
    manifest_dir().join("tests").join("golden").join("lang")
}

fn bless() -> bool {
    std::env::var_os("NUSPI_BLESS").is_some()
}

/// Every ladder program: `(stem, relative file name, source, expected verdict)`.
/// The relative name goes into the report (and the golden file) so the
/// JSON is machine-independent.
fn ladder() -> Vec<(String, String, String, Verdict)> {
    let dir = manifest_dir().join("examples").join("lang");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("examples/lang/ missing") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("nu") {
            continue;
        }
        let stem = path.file_stem().unwrap().to_str().unwrap().to_owned();
        let src = std::fs::read_to_string(&path).unwrap();
        let expect = match src
            .lines()
            .next()
            .and_then(|l| l.strip_prefix("// expect: "))
        {
            Some("secure") => Verdict::Secure,
            Some("insecure") => Verdict::Insecure,
            other => panic!("{stem}: bad `// expect:` header {other:?}"),
        };
        let rel = format!("examples/lang/{stem}.nu");
        out.push((stem, rel, src, expect));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(out.len() >= 8, "ladder too short: {} programs", out.len());
    out
}

#[test]
fn ladder_matches_expected_verdicts_and_goldens() {
    for (stem, rel, src, expect) in ladder() {
        let report = check_with(&rel, &src, 1);
        assert_eq!(report.verdict, expect, "{stem}: wrong verdict");

        if expect == Verdict::Insecure {
            // Witness anchoring contract: some diagnostic names the
            // exact declaration site of both the labeled origin and the
            // violating sink.
            let anchored = report
                .diags
                .iter()
                .find(|d| d.origin.is_some() && d.sink.is_some())
                .unwrap_or_else(|| panic!("{stem}: no diagnostic with both anchors"));
            let o = anchored.origin.as_ref().unwrap();
            let s = anchored.sink.as_ref().unwrap();
            assert!(o.line > 0 && o.col > 0, "{stem}: origin unanchored {o:?}");
            assert!(s.line > 0 && s.col > 0, "{stem}: sink unanchored {s:?}");
            assert!(
                anchored
                    .message
                    .contains(&format!("{rel}:{}:{}", o.line, o.col)),
                "{stem}: message misses origin site: {}",
                anchored.message
            );
            assert!(
                anchored
                    .message
                    .contains(&format!("{rel}:{}:{}", s.line, s.col)),
                "{stem}: message misses sink site: {}",
                anchored.message
            );
        }

        let json = check_to_json(&report);
        assert_eq!(
            json,
            check_to_json(&check_with(&rel, &src, 1)),
            "{stem}: output differs between two identical runs"
        );
        assert_eq!(
            json,
            check_to_json(&check_with(&rel, &src, 4)),
            "{stem}: output differs between 1-shard and 4-shard solving"
        );

        let path = golden_dir().join(format!("{stem}.json"));
        if bless() {
            std::fs::create_dir_all(golden_dir()).unwrap();
            std::fs::write(&path, &json).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{stem}: missing golden file {} ({e}); run with NUSPI_BLESS=1 to create it",
                path.display()
            )
        });
        assert_eq!(
            json,
            expected,
            "{stem}: check JSON deviates from the golden file {}; \
             run with NUSPI_BLESS=1 to re-bless if intentional",
            path.display()
        );
    }
}

#[test]
fn no_stale_golden_files() {
    let live: std::collections::BTreeSet<String> = ladder()
        .into_iter()
        .map(|(stem, _, _, _)| format!("{stem}.json"))
        .collect();
    let Ok(entries) = std::fs::read_dir(golden_dir()) else {
        return; // nothing blessed yet (fresh checkout mid-bless)
    };
    for entry in entries {
        let file = entry.unwrap().file_name().into_string().unwrap();
        assert!(
            live.contains(&file),
            "stale golden file {file}: no case produces it any more"
        );
    }
}

/// Reformats a program without touching its token sequence *or* any
/// token's line/column: every line gains trailing blanks and a comment
/// banner is appended at the end. The lowered process is α-identical
/// (minted names derive from declaration order) and every declaration
/// site stays put, so the engine must serve the cached body.
fn reformat_in_place(src: &str) -> String {
    let mut out = String::new();
    for line in src.lines() {
        out.push_str(line);
        out.push_str("  \n");
    }
    out.push_str("\n// reformatted copy; must still hit the cache\n");
    out
}

/// Reformats a program by prepending a two-line banner: the token
/// sequence (and hence the lowered α-digest) is unchanged, but every
/// declaration moves down two lines — the report's anchors must move
/// with it, so the engine must NOT serve the cached body.
fn reformat_shifting_lines(src: &str) -> String {
    format!("// shifted copy; anchors move, so the cache must miss\n\n{src}")
}

#[test]
fn engine_analyze_source_caches_on_the_lowered_digest() {
    let engine = AnalysisEngine::with_jobs(2);
    for (stem, rel, src, expect) in ladder() {
        let cold = engine.submit(Request::AnalyzeSource {
            file: rel.clone(),
            source: src.clone(),
            shards: 1,
        });
        assert!(cold.is_ok(), "{stem}: {}", cold.body);
        assert!(!cold.cached, "{stem}: cold submission already cached");

        // Identical resubmission: warm hit, byte-identical body.
        let warm = engine.submit(Request::AnalyzeSource {
            file: rel.clone(),
            source: src.clone(),
            shards: 1,
        });
        assert!(warm.cached, "{stem}: identical resubmission missed");
        assert_eq!(cold.body, warm.body, "{stem}: warm body differs");

        // A formatting-only edit that keeps every declaration in place
        // lowers to the same α-digest and the same source map, so it is
        // a cache hit too.
        let reformatted = engine.submit(Request::AnalyzeSource {
            file: rel.clone(),
            source: reformat_in_place(&src),
            shards: 1,
        });
        assert!(reformatted.cached, "{stem}: reformatted source missed");
        assert_eq!(cold.body, reformatted.body, "{stem}: reformat body differs");

        // A reformat that moves declarations to other lines must NOT be
        // served the cached body: its anchors would point at the wrong
        // lines of the new file. Same α-digest, different source map ⇒
        // different key, freshly anchored report.
        let shifted = engine.submit(Request::AnalyzeSource {
            file: rel.clone(),
            source: reformat_shifting_lines(&src),
            shards: 1,
        });
        assert!(
            !shifted.cached,
            "{stem}: line-shifting reformat served a stale cached body"
        );
        if expect == Verdict::Insecure {
            assert_ne!(
                cold.body, shifted.body,
                "{stem}: shifted anchors should change the report"
            );
            let moved = check_with(&rel, &reformat_shifting_lines(&src), 1);
            let anchored = moved
                .diags
                .iter()
                .find(|d| d.origin.is_some())
                .expect("anchored diagnostic");
            let o = anchored.origin.as_ref().unwrap();
            assert!(
                shifted
                    .body
                    .contains(&format!("{rel}:{}:{}", o.line, o.col)),
                "{stem}: shifted body not re-anchored: {}",
                shifted.body
            );
        }

        // Shards are a solver layout, not an analysis input: excluded
        // from the key, so a sharded resubmission shares the entry.
        let sharded = engine.submit(Request::AnalyzeSource {
            file: rel.clone(),
            source: src.clone(),
            shards: 4,
        });
        assert!(sharded.cached, "{stem}: sharded resubmission missed");
        assert_eq!(cold.body, sharded.body, "{stem}: sharded body differs");
    }
}

#[test]
fn engine_analyze_source_compile_errors_are_uncacheable_errors() {
    let engine = AnalysisEngine::with_jobs(1);
    let req = Request::analyze_source("broken.nu", "func main( {");
    let a = engine.submit(req.clone());
    assert!(!a.is_ok(), "{}", a.body);
    assert!(a.body.contains("broken.nu:1:12"), "{}", a.body);
    let b = engine.submit(req);
    assert!(!b.cached, "error bodies must not be cached");
}
