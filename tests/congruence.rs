//! Structural-congruence properties (the paper's `≡`): restrictions may
//! be placed differently as long as their effect is the same, and the
//! commitment relation must not care. These tests build ≡-variants of
//! processes and compare observable behaviour.

use nuspi::semantics::{commitments, explore_tau, Action, CommitConfig, ExecConfig};
use nuspi::syntax::{alpha_equivalent, alpha_hash, builder as b, Name, Process};
use nuspi_bench::genproc::{random_process, GenConfig};

/// Pushes a top-level restriction inward over a parallel composition when
/// the name is free in only one side — the paradigmatic `≡` step
/// `(νr)(P | Q) ≡ P | (νr)Q` when `r ∉ fn(P)`.
fn push_restriction(p: &Process) -> Option<Process> {
    if let Process::Restrict { name, body } = p {
        if let Process::Par(left, right) = &**body {
            let in_left = left.free_names().contains(name);
            let in_right = right.free_names().contains(name);
            if in_left && !in_right {
                return Some(b::par(
                    b::restrict(*name, (**left).clone()),
                    (**right).clone(),
                ));
            }
            if in_right && !in_left {
                return Some(b::par(
                    (**left).clone(),
                    b::restrict(*name, (**right).clone()),
                ));
            }
        }
    }
    None
}

fn action_signature(p: &Process) -> Vec<String> {
    let mut sigs: Vec<String> = commitments(p, &CommitConfig::default())
        .into_iter()
        .map(|c| match c.action {
            Action::Tau => "τ".to_owned(),
            Action::In(m) => format!("{}?", m.canonical()),
            Action::Out(m) => format!("{}!", m.canonical()),
        })
        .collect();
    sigs.sort();
    sigs
}

#[test]
fn pushed_restrictions_preserve_commitment_actions() {
    let cases = [
        "(new s) (c<s>.0 | d<0>.0)",
        "(new s) (d<0>.0 | c<s>.0)",
        "(new k) (c<{m, new r}:k>.0 | c(x).0)",
    ];
    for src in cases {
        let p = nuspi::parse_process(src).unwrap();
        let Some(q) = push_restriction(&p) else {
            continue;
        };
        assert_eq!(
            action_signature(&p),
            action_signature(&q),
            "{src}: ≡-variants must offer the same actions"
        );
    }
}

#[test]
fn pushed_restrictions_preserve_the_state_space() {
    let src = "(new s) (c<s>.0 | c(x).d<x>.0)";
    let p = nuspi::parse_process(src).unwrap();
    let q = match &p {
        Process::Restrict { name, body } => match &**body {
            Process::Par(l, r) => b::par(b::restrict(*name, (**l).clone()), (**r).clone()),
            _ => unreachable!(),
        },
        _ => unreachable!(),
    };
    // s is syntactically free only on the left, so the push is a genuine
    // ≡ step; the right side receives s by scope extrusion either way.
    let stats_p = explore_tau(&p, &ExecConfig::default(), |_, _| true);
    let stats_q = explore_tau(&q, &ExecConfig::default(), |_, _| true);
    assert_eq!(stats_p.states, stats_q.states);
}

#[test]
fn unused_restriction_is_behaviourally_inert() {
    // (νn)P with n ∉ fn(P): same actions, same reachable-state count.
    let p = nuspi::parse_process("c<0>.0 | c(x).d<x>.0").unwrap();
    let q = b::restrict(Name::global("unused"), p.clone());
    assert_eq!(action_signature(&p), action_signature(&q));
    let sp = explore_tau(&p, &ExecConfig::default(), |_, _| true);
    let sq = explore_tau(&q, &ExecConfig::default(), |_, _| true);
    assert_eq!(sp.states, sq.states);
}

#[test]
fn analysis_is_invariant_under_restriction_placement() {
    // The CFA ignores restriction structure entirely (Table 2's (νn)P
    // clause), so ≡-variants get literally identical κ components.
    let p = nuspi::parse_process("(new s) (c<s>.0 | d<0>.0)").unwrap();
    let q = push_restriction(&p).unwrap();
    let sol_p = nuspi::analyze(&p);
    let sol_q = nuspi::analyze(&q);
    for chan in ["c", "d"] {
        let sym = nuspi::Symbol::intern(chan);
        assert_eq!(
            sol_p.kappa(sym).len(),
            sol_q.kappa(sym).len(),
            "κ({chan}) differs across ≡-variants"
        );
    }
}

#[test]
fn alpha_hash_is_stable_across_clone_and_print() {
    for seed in 0..150u64 {
        let p = random_process(seed, &GenConfig::default());
        assert_eq!(alpha_hash(&p), alpha_hash(&p.clone()), "seed {seed}");
        assert!(alpha_equivalent(&p, &p), "seed {seed}");
    }
}

#[test]
fn freshened_restrictions_stay_alpha_equivalent() {
    // Renaming every top-level restriction binder to a fresh variant
    // (the executor's discipline) is invisible to α-equivalence.
    for seed in 0..150u64 {
        let p = random_process(seed, &GenConfig::default());
        let q = freshen_top_restrictions(&p);
        assert!(alpha_equivalent(&p, &q), "seed {seed}: {p}\n!=\n{q}");
        assert_eq!(alpha_hash(&p), alpha_hash(&q), "seed {seed}");
    }
}

fn freshen_top_restrictions(p: &Process) -> Process {
    match p {
        Process::Restrict { name, body } => {
            let fresh = name.freshen();
            Process::Restrict {
                name: fresh,
                body: Box::new(body.rename_name(*name, fresh)),
            }
        }
        Process::Par(a, b_) => Process::Par(
            Box::new(freshen_top_restrictions(a)),
            Box::new(freshen_top_restrictions(b_)),
        ),
        other => other.clone(),
    }
}
