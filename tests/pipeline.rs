//! End-to-end pipeline tests through the `nuspi` facade: parse → print →
//! re-parse → analyse → audit, across the whole protocol suite.

use nuspi::protocols::suite;
use nuspi::{Analyzer, ExecConfig};
use nuspi_cfa::accept;

#[test]
fn audits_match_expected_verdicts_across_the_suite() {
    for spec in suite() {
        let analyzer = Analyzer::new()
            .policy(spec.policy.clone())
            .exec_config(ExecConfig {
                max_depth: 9,
                max_states: 500,
                ..ExecConfig::default()
            });
        let audit = analyzer.audit(&spec.process).expect("closed");
        assert_eq!(
            audit.confinement.is_confined(),
            spec.expect_confined,
            "{}: static verdict",
            spec.name
        );
        if spec.expect_confined {
            assert!(audit.carefulness.is_careful(), "{}", spec.name);
        }
    }
}

#[test]
fn printed_protocols_reparse_with_identical_analysis_shape() {
    for spec in suite() {
        let printed = spec.process.to_string();
        let reparsed = nuspi::parse_process(&printed).unwrap_or_else(|e| {
            panic!(
                "{}: printed form does not re-parse: {e}\n{printed}",
                spec.name
            )
        });
        assert_eq!(spec.process.size(), reparsed.size(), "{}", spec.name);
        assert!(reparsed.is_closed(), "{}", spec.name);
        // The re-parsed process (fresh labels, fresh binder ids) gets the
        // same verdict.
        let report = nuspi::confinement(&reparsed, &spec.policy);
        assert_eq!(
            report.is_confined(),
            spec.expect_confined,
            "{}: verdict drifted across print/parse",
            spec.name
        );
    }
}

#[test]
fn least_solutions_verify_against_table2_across_the_suite() {
    for spec in suite() {
        let sol = nuspi::analyze(&spec.process);
        let violations = accept::verify(&sol, &spec.process);
        assert!(violations.is_empty(), "{}: {violations:?}", spec.name);
    }
}

#[test]
fn attacker_closed_solutions_also_verify() {
    for spec in suite() {
        let secret = spec.policy.secrets().collect();
        let att = nuspi_cfa::analyze_with_attacker(&spec.process, &secret);
        let violations = accept::verify(&att.solution, &spec.process);
        assert!(violations.is_empty(), "{}: {violations:?}", spec.name);
    }
}

#[test]
fn attacker_closure_only_grows_the_estimate() {
    // Lemma 1 / Proposition 1 shape: the attacker-closed solution is an
    // upper bound of the plain least solution, production-wise.
    for spec in suite() {
        let plain = nuspi::analyze(&spec.process);
        let secret = spec.policy.secrets().collect();
        let att = nuspi_cfa::analyze_with_attacker(&spec.process, &secret);
        for (id, fv) in plain.flow_vars() {
            if matches!(fv, nuspi::FlowVar::Aux(_)) {
                continue;
            }
            for prod in plain.prods_of_id(id) {
                // Compare at the level of production *heads*: child ids
                // differ between runs, so check by shape.
                let closed = att.solution.prods_of(fv);
                let found = closed.iter().any(|p| {
                    std::mem::discriminant(p) == std::mem::discriminant(prod)
                        || closed.contains(prod)
                });
                assert!(
                    found,
                    "{}: {fv} lost a production under the attacker closure",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn facade_reveals_agrees_with_direct_call() {
    let spec = nuspi::protocols::wmf::wmf_key_in_clear();
    let analyzer = Analyzer::new().policy(spec.policy.clone());
    let via_facade = analyzer.reveals(
        &spec.process,
        spec.public_channels.iter().copied(),
        spec.secret,
    );
    assert!(via_facade.is_some());
}

#[test]
fn example1_estimate_matches_the_paper_shape() {
    // κ of each public WMF channel holds ciphertexts only; every bound
    // variable's ρ is public-kind (the paper's ρ(bv) = Val_P row).
    let spec = nuspi::protocols::wmf::wmf();
    let report = nuspi::confinement(&spec.process, &spec.policy);
    let kinds = &report.kinds;
    for c in &spec.public_channels {
        let id = report
            .solution
            .var_id(nuspi::FlowVar::Kappa(*c))
            .expect("channel analysed");
        let f = kinds.facts(id);
        assert!(f.may_public && !f.may_secret, "κ({c}) must be ⊆ Val_P");
    }
    // Every ρ component is inhabited — the estimate covers all six bound
    // variables exactly as the paper's Example 1 table does. (ρ(s)/ρ(y)
    // hold the secret session key; Val_P constrains channels, not ρ.)
    let rho_count = report
        .solution
        .flow_vars()
        .filter(|(id, fv)| {
            matches!(fv, nuspi::FlowVar::Rho(_)) && !report.solution.prods_of_id(*id).is_empty()
        })
        .count();
    assert_eq!(rho_count, 6, "x, s, t, y, z, q");
    assert!(report.is_confined());
}
