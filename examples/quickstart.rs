//! Quickstart: parse a νSPI protocol, run the Control Flow Analysis, and
//! check the three secrecy notions of the paper in one call.
//!
//! Run with: `cargo run --example quickstart`

use nuspi::{Analyzer, FlowVar, Symbol, Value};

fn main() -> Result<(), nuspi::Error> {
    // A tiny protocol: a sender ships a restricted payload under a
    // restricted key; a receiver decrypts and forwards a signal.
    let source = "
        (new k) (new secret) (
          net<{secret, new r}:k>.0
        | net(x). case x of {y}:k in done<0>.0
        )";

    // 1. Parse.
    let process = nuspi::parse_process(source)?;
    println!("process: {process}\n");

    // 2. Run the CFA on its own: the least estimate (ρ, κ, ζ).
    let solution = nuspi::analyze(&process);
    let stats = solution.stats();
    println!(
        "least solution: {} flow variables, {} productions, {} edges",
        stats.flow_vars, stats.productions, stats.edges
    );
    // What can travel on the public channel `net`? Only the ciphertext:
    let ciphertext = Value::enc(
        vec![Value::name("secret")],
        nuspi::syntax::Name::global("r"),
        Value::name("k"),
    );
    let net = FlowVar::Kappa(Symbol::intern("net"));
    println!(
        "  ζ predicts the ciphertext on `net`: {}",
        solution.contains(net, &ciphertext)
    );
    println!(
        "  ζ predicts the bare secret on `net`: {}",
        solution.contains(net, &Value::name("secret"))
    );

    // 3. The packaged audit: confinement (static, Definition 4),
    //    carefulness (dynamic monitor, Definition 3), and a bounded
    //    Dolev–Yao intruder (Definition 5).
    let analyzer = Analyzer::new().secrets(["k", "secret"]);
    let audit = analyzer.audit(&process)?;
    println!("\naudit of the honest protocol:\n{audit}");
    assert!(audit.is_secure());

    // 4. Break it: leak the key on the network first.
    let broken =
        nuspi::parse_process("(new k) (new secret) (net<k>.0 | net<{secret, new r}:k>.0)")?;
    let audit = analyzer.audit(&broken)?;
    println!("\naudit of the broken variant:\n{audit}");
    assert!(!audit.is_secure());

    println!("\nquickstart done: honest certified, broken rejected.");
    Ok(())
}
