// expect: secure
//
// A cyclic topology: two replicated forwarders form a ring in which the
// labeled seed circulates forever. The ring is built from restricted
// channels, so nothing escapes.
func node(into, from) {
	for {
		x := <-into
		from <- x
	}
}

func main() {
	a := make(chan)
	b := make(chan)
	go node(a, b)
	go node(b, a)
	//nuspi::label::{high}
	seed := 5
	a <- seed
}
