// expect: insecure
//
// The secret key reaches the log sink inside an arithmetic expression.
// Addition lowers to a pair, so taint joins: `key + 1` carries the
// secret even though it is not sent verbatim.
func main() {
	//nuspi::secret
	key := 42
	//nuspi::sink::{}
	log := make(chan)
	log <- key + 1
}
