// expect: insecure
//
// The same relay as 04, but main hands it the sink channel instead of
// an internal one. Channel arguments pass through call inlining, so the
// send inside `emit` is a send on the sink.
func emit(c, v) {
	c <- v
}

func main() {
	//nuspi::sink::{}
	out := make(chan)
	//nuspi::label::{high}
	pin := 3
	emit(out, pin)
}
