// expect: secure
//
// A labeled value travels between two internal channels. Both are
// restricted names, so the high token never reaches the sink: only the
// constant 0 does.
func main() {
	//nuspi::sink::{}
	out := make(chan)
	a := make(chan)
	b := make(chan)
	//nuspi::label::{high}
	token := 7
	a <- token
	x := <-a
	b <- x
	out <- 0
}
