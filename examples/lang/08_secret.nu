// expect: secure
//
// A `secret` local is stronger than a label: the minted name itself is
// declared secret to the policy. Kept on an internal vault channel
// (and only branched on via a public toggle) it stays confined.
func main() {
	//nuspi::secret
	key := 42
	vault := make(chan)
	toggle := 1
	if toggle {
		vault <- key
	} else {
		vault <- 0
	}
}
