// expect: secure
//
// The smallest program: one internal channel and one send. Nothing is
// labeled, so there is nothing to leak.
func main() {
	ch := make(chan)
	ch <- 1
}
