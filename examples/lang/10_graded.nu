// expect: secure
//
// Graded labels go beyond high/low: this token sits at
// conf:confidential on the 4-point diamond lattice. Kept on an
// internal channel it never crosses the attacker's clearance
// (conf:public,integ:trusted), so the program is secure.
func main() {
	//nuspi::label::{conf:confidential}
	token := 7
	vault := make(chan)
	vault <- token
	x := <-vault
	vault <- x
}
