// expect: secure
//
// Nested function calls: main spawns a two-stage relay that keeps the
// labeled value on an internal channel. The sink only ever carries the
// constant 0.
func relay(c, v) {
	c <- v
}

func stage(c, v) {
	relay(c, v)
}

func main() {
	//nuspi::sink::{}
	out := make(chan)
	ch := make(chan)
	//nuspi::label::{high}
	pin := 9
	go stage(ch, pin)
	out <- 0
}
