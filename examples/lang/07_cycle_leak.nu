// expect: insecure
//
// The ring from 06 with a drain attached: one node forwards whatever
// circulates onto the sink, so the seed eventually reaches it.
func node(into, from) {
	for {
		x := <-into
		from <- x
	}
}

func drain(into, pub) {
	for {
		x := <-into
		pub <- x
	}
}

func main() {
	//nuspi::sink::{}
	out := make(chan)
	a := make(chan)
	b := make(chan)
	go node(a, b)
	go drain(b, out)
	//nuspi::label::{high}
	seed := 5
	a <- seed
}
