// expect: insecure
//
// The same graded token shipped to an observable sink: the level
// conf:restricted,integ:external is not below the attacker clearance
// conf:public,integ:trusted, so the lattice-flow check (E009) names
// the violated edge alongside the classical confinement errors.
func main() {
	//nuspi::sink::{}
	out := make(chan)
	//nuspi::label::{conf:restricted,integ:external}
	key := 7
	out <- key
}
