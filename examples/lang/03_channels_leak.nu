// expect: insecure
//
// Same topology as 02, except the value received from the internal
// channel is forwarded to the sink. The flow analysis tracks the token
// through the receive binding.
func main() {
	//nuspi::sink::{}
	out := make(chan)
	a := make(chan)
	//nuspi::label::{high}
	token := 7
	a <- token
	x := <-a
	out <- x
}
