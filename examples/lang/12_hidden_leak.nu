// expect: insecure
//
// A `hide`-bound name is secret by construction and its scope is a
// hard wall: the dynamic semantics refuses to extrude it. Sending it
// to a sink is therefore almost certainly a bug — the estimate flags
// the attempted escape (W106) and, since hidden names are secret, the
// classical confinement errors fire alongside.
func main() {
	//nuspi::sink::{}
	out := make(chan)
	//nuspi::hide
	nonce := 3
	out <- nonce
}
