//! Attack gallery: every flawed protocol variant in the suite, rejected
//! statically and (where the bounded intruder's budgets reach) broken
//! dynamically with a printed attack trace.
//!
//! Run with: `cargo run --release --example attack_detection`
//! (release strongly recommended — the intruder searches a large space).

use nuspi::protocols::flawed_suite;
use nuspi::{confinement, reveals, IntruderConfig, Knowledge};

fn main() {
    let cheap = IntruderConfig {
        max_depth: 16,
        max_states: 20_000,
        max_injections: 12,
        ..IntruderConfig::default()
    };
    let forging = IntruderConfig {
        max_depth: 8,
        max_states: 60_000,
        max_injections: 10,
        pair_components: 8,
        ..IntruderConfig::default()
    };
    let mut broken = 0;
    let flawed = flawed_suite();
    for spec in &flawed {
        println!("== {} — {} ==", spec.name, spec.description);
        let report = confinement(&spec.process, &spec.policy);
        assert!(
            !report.is_confined(),
            "{}: flawed variants must be rejected statically",
            spec.name
        );
        println!("  static: rejected ({})", report.violations[0]);

        let public_names: Vec<_> = spec
            .process
            .free_names()
            .into_iter()
            .map(|n| n.canonical())
            .filter(|n| spec.policy.is_public(*n))
            .collect();
        let k0 = Knowledge::from_names(public_names);
        let attack = reveals(&spec.process, &k0, spec.secret, &cheap)
            .or_else(|| reveals(&spec.process, &k0, spec.secret, &forging));
        match attack {
            Some(attack) => {
                broken += 1;
                println!("  dynamic: secret `{}` extracted:", spec.secret);
                for step in &attack.trace {
                    println!("    - {step}");
                }
            }
            None => println!("  dynamic: no attack within budget"),
        }
        println!();
    }
    println!(
        "attack_detection done: {}/{} flawed variants broken concretely, {}/{} rejected statically.",
        broken,
        flawed.len(),
        flawed.len(),
        flawed.len()
    );
}
