//! The paper's Example 1 end-to-end: the Wide Mouthed Frog key exchange,
//! analysed three ways.
//!
//! * statically: the CFA certifies confinement (Definition 4), so by
//!   Theorem 4 the payload is Dolev–Yao secret;
//! * dynamically: the carefulness monitor (Definition 3) watches every
//!   bounded execution, including with a hostile replaying context;
//! * operationally: the bounded active intruder tries — and fails — to
//!   derive the payload; on the flawed variant it succeeds and prints the
//!   attack.
//!
//! Run with: `cargo run --example wmf_secrecy`

use nuspi::protocols::wmf;
use nuspi::semantics::{explore_tau, ExecConfig};
use nuspi::{Analyzer, Knowledge};

fn main() {
    let spec = wmf::wmf();
    println!("== {} ==\n{}\n", spec.name, spec.source.trim());

    // How far does the honest session actually run?
    let stats = explore_tau(&spec.process, &ExecConfig::default(), |_, _| true);
    println!(
        "bounded exploration: {} states, {} transitions, truncated: {}\n",
        stats.states, stats.transitions, stats.truncated
    );

    let analyzer = Analyzer::new().policy(spec.policy.clone());
    let audit = analyzer.audit(&spec.process).expect("closed process");
    println!("audit:\n{audit}\n");
    assert!(audit.is_secure(), "Example 1 must be certified");

    // The same pipeline rejects the broken server that forwards the
    // session key in clear, and the intruder shows its work.
    let flawed = wmf::wmf_key_in_clear();
    println!("== {} ==", flawed.name);
    let analyzer = Analyzer::new().policy(flawed.policy.clone());
    let audit = analyzer.audit(&flawed.process).expect("closed process");
    println!("audit:\n{audit}");
    assert!(!audit.is_secure());

    let k0 = Knowledge::from_names(flawed.public_channels.iter().copied());
    if let Some(attack) = nuspi::reveals(
        &flawed.process,
        &k0,
        flawed.secret,
        &nuspi::IntruderConfig::default(),
    ) {
        println!("\nconcrete attack on {}:", flawed.name);
        for step in &attack.trace {
            println!("  - {step}");
        }
    }
    println!("\nwmf_secrecy done: honest WMF certified, flawed WMF broken.");
}
