//! Audit the whole protocol suite and print a verdict table — the
//! "who wins" overview of the reproduction: honest protocols are
//! certified on all three secrecy checks; every flawed variant fails the
//! static check.
//!
//! Run with: `cargo run --release --example protocol_suite`

use nuspi::protocols::suite;
use nuspi::Analyzer;

fn main() {
    println!(
        "{:<26} {:>9} {:>9} {:>8} {:>8}",
        "protocol", "confined", "careful", "attacks", "secure"
    );
    println!("{}", "-".repeat(66));
    let mut mismatches = 0;
    for spec in suite() {
        let analyzer = Analyzer::new().policy(spec.policy.clone());
        let audit = analyzer.audit(&spec.process).expect("closed process");
        let ok = audit.is_secure() == spec.expect_confined;
        if !ok {
            mismatches += 1;
        }
        println!(
            "{:<26} {:>9} {:>9} {:>8} {:>8}{}",
            spec.name,
            audit.confinement.is_confined(),
            audit.carefulness.is_careful(),
            audit.attacks.len(),
            audit.is_secure(),
            if ok { "" } else { "   <-- UNEXPECTED" }
        );
        assert_eq!(
            audit.confinement.is_confined(),
            spec.expect_confined,
            "{}: static verdict drifted",
            spec.name
        );
    }
    assert_eq!(mismatches, 0);
    println!("\nprotocol_suite done: every verdict matches the expected column.");
}
