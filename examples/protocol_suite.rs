//! Audit the whole protocol suite and print a verdict table — the
//! "who wins" overview of the reproduction: honest protocols are
//! certified on all three secrecy checks; every flawed variant fails the
//! static check.
//!
//! Run with: `cargo run --release --example protocol_suite`

use nuspi::cfa::Constraints;
use nuspi::protocols::suite;
use nuspi::{analyze_parallel, solve_suite, Analyzer};

fn main() {
    // Batch-solve the whole suite's CFA up front (solve_suite runs the
    // specs concurrently) and cross-check each estimate against the
    // sharded per-process solver.
    let specs = suite();
    let batch = solve_suite(
        specs
            .iter()
            .map(|s| Constraints::generate(&s.process))
            .collect(),
        4,
    );
    for (spec, sol) in specs.iter().zip(&batch) {
        let sharded = analyze_parallel(&spec.process, 4);
        sol.estimate_eq(&sharded)
            .unwrap_or_else(|e| panic!("{}: batch vs sharded estimate drifted: {e}", spec.name));
    }
    println!(
        "CFA: {} protocols batch-solved; sharded solver agrees on every estimate.\n",
        specs.len()
    );

    println!(
        "{:<26} {:>9} {:>9} {:>8} {:>8}",
        "protocol", "confined", "careful", "attacks", "secure"
    );
    println!("{}", "-".repeat(66));
    let mut mismatches = 0;
    for spec in suite() {
        let analyzer = Analyzer::new().policy(spec.policy.clone());
        let audit = analyzer.audit(&spec.process).expect("closed process");
        let ok = audit.is_secure() == spec.expect_confined;
        if !ok {
            mismatches += 1;
        }
        println!(
            "{:<26} {:>9} {:>9} {:>8} {:>8}{}",
            spec.name,
            audit.confinement.is_confined(),
            audit.carefulness.is_careful(),
            audit.attacks.len(),
            audit.is_secure(),
            if ok { "" } else { "   <-- UNEXPECTED" }
        );
        assert_eq!(
            audit.confinement.is_confined(),
            spec.expect_confined,
            "{}: static verdict drifted",
            spec.name
        );
    }
    assert_eq!(mismatches, 0);
    println!("\nprotocol_suite done: every verdict matches the expected column.");
}
