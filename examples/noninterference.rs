//! Non-interference (§5 of the paper): message independence via the CFA.
//!
//! Walks the paper's motivating open processes `P(x)`:
//!
//! * the implicit flow `[x is 0] c⟨0⟩` — Dolev–Yao-secret (nothing is
//!   ever *sent*) yet distinguishable, rejected by the invariance check;
//! * the channel flow `x⟨0⟩`;
//! * an encrypted forwarder, which passes both the static premises of
//!   Theorem 5 and a battery of concrete public tests.
//!
//! Run with: `cargo run --example noninterference`

use nuspi::protocols::open_examples;
use nuspi::security::{message_independent, standard_battery, static_message_independence};
use nuspi::semantics::ExecConfig;
use nuspi::Value;

fn main() {
    let cfg = ExecConfig::default();
    let m1 = Value::numeral(0);
    let m2 = Value::numeral(7);
    for ex in open_examples() {
        println!("== {} — {} ==", ex.name, ex.description);
        println!("P(x) = {}", ex.process);

        // Theorem 5's static premises: confinement (with the tracking
        // name n* declared secret) and invariance (Definition 7).
        let report = static_message_independence(&ex.process, ex.var, &ex.policy);
        println!(
            "  confinement: {}",
            if report.confinement.is_confined() {
                "ok".to_owned()
            } else {
                format!("{}", report.confinement.violations[0])
            }
        );
        println!(
            "  invariance:  {}",
            if report.invariance.is_empty() {
                "ok".to_owned()
            } else {
                format!("{}", report.invariance[0])
            }
        );
        let static_verdict = report.implies_independence();
        println!("  static ⟹ message independent: {static_verdict}");

        // The dynamic side: Definition 9 over a battery of public tests.
        let battery = standard_battery(&ex.public_channels, &[m1.clone(), m2.clone()]);
        match message_independent(&ex.process, ex.var, &m1, &m2, &battery, &cfg) {
            Ok(()) => println!("  battery of {} tests: no distinguisher", battery.len()),
            Err(d) => println!("  battery: {d}"),
        }

        assert_eq!(static_verdict, ex.expect_independent, "{}", ex.name);
        println!();
    }
    println!("noninterference done: all verdicts as the paper predicts.");
}
