#!/usr/bin/env bash
# Perf-regression gate: re-runs the bench suites and compares them to
# the committed artifacts/bench/BENCH_*.json baselines. Any flag is
# passed through to the bench_gate binary:
#
#   scripts/bench_gate.sh                 # full-budget gate (local)
#   scripts/bench_gate.sh --smoke         # cheap CI gate
#   scripts/bench_gate.sh --bless         # re-bless the baselines
#   scripts/bench_gate.sh --suite solver  # one suite only
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run --release -q -p nuspi-bench --bin bench_gate -- "$@"
