#!/usr/bin/env bash
# Offline CI gate for the nuspi workspace: tier-1 build + tests, the
# differential solver suite, and formatting. No network access needed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

echo "==> differential solver suite (sequential / work-stealing / reference)"
cargo test -q --test differential
cargo test -q --test provenance_stats

echo "==> incremental differential wall"
cargo test -q -p nuspi-cfa --test incremental_diff

echo "==> lint golden files (incl. ns-lowe / splice-as and their broken variants)"
cargo test -q --test lint_golden

echo "==> lattice conservative-extension wall (2-point twin policies, serve transcripts)"
cargo test -q --test lattice_wall

echo "==> lattice laws (join/meet/order/flow-judgment properties)"
cargo test -q -p nuspi-security --test lattice_laws

echo "==> lang ladder golden files, determinism, parser robustness"
cargo test -q --test lang_golden
cargo test -q -p nuspi-lang
cargo test -q -p nuspi-lang --test determinism
cargo test -q -p nuspi-lang --test robustness

echo "==> equiv walls (laws, miner, differential oracle, goldens)"
cargo test -q -p nuspi-equiv
cargo test -q -p nuspi-equiv --test laws
cargo test -q -p nuspi-equiv --test miner
cargo test -q --test equiv_differential
cargo test -q --test equiv_golden

echo "==> digest properties, jsonio edge cases, engine stress, trace schema"
cargo test -q --test properties digest  # the three canonical-digest properties
cargo test -q -p nuspi-engine --test jsonio_edge
cargo test -q -p nuspi-engine --test stress
cargo test -q -p nuspi-engine --test trace

echo "==> bench regression gate (smoke)"
./scripts/bench_gate.sh --smoke

echo "==> nuspi serve round-trip smoke test"
serve_out=$(printf '%s\n' \
  '{"id":"r1","op":"audit","process":"(new k) (new m) c<{m, new r}:k>.0","secrets":["m","k"]}' \
  '{"id":"r2","op":"audit","process":"(new k) (new m) c<{m, new r}:k>.0","secrets":["m","k"]}' \
  '{"id":"i1","op":"solve_incremental","process":"a<m>.0 | a(x). b<x>.0"}' \
  '{"id":"s","op":"stats"}' \
  | ./target/release/nuspi serve --jobs 2)
echo "$serve_out"
[ "$(echo "$serve_out" | wc -l)" -eq 4 ] || { echo "serve: expected 4 response lines"; exit 1; }
echo "$serve_out" | sed -n 1p | grep -q '"secure":true' || { echo "serve: audit verdict missing"; exit 1; }
[ "$(echo "$serve_out" | sed -n 1p | sed 's/r1/rX/')" = "$(echo "$serve_out" | sed -n 2p | sed 's/r2/rX/')" ] \
  || { echo "serve: repeat not byte-identical"; exit 1; }
echo "$serve_out" | sed -n 3p | grep -q '"op":"solve_incremental"' || { echo "serve: incremental op missing"; exit 1; }
echo "$serve_out" | sed -n 3p | grep -q '"components":2' || { echo "serve: incremental components missing"; exit 1; }
echo "$serve_out" | sed -n 4p | grep -q '"hits":1' || { echo "serve: cache hit not reported"; exit 1; }
echo "$serve_out" | sed -n 4p | grep -q '"incremental":{"calls":1' || { echo "serve: incremental meters missing"; exit 1; }

echo "==> nuspi serve equiv smoke test"
equiv_out=$(printf '%s\n' \
  '{"id":"e1","op":"equiv","left":"(new n) c<n>.0","right":"(hide n) c<n>.0"}' \
  '{"id":"e2","op":"equiv","left":"(hide n) c<n>.0","right":"(new n) c<n>.0"}' \
  | ./target/release/nuspi serve --jobs 2)
[ "$(echo "$equiv_out" | wc -l)" -eq 2 ] || { echo "equiv: expected 2 response lines"; exit 1; }
echo "$equiv_out" | sed -n 1p | grep -q '"verdict":"distinguished"' || { echo "equiv: verdict missing"; exit 1; }
echo "$equiv_out" | sed -n 1p | grep -q '"trace":\[' || { echo "equiv: distinguishing trace missing"; exit 1; }
# The pair cache key is order-independent: the swapped pair is the same
# entry, so the body must be byte-identical.
[ "$(echo "$equiv_out" | sed -n 1p | sed 's/e1/eX/')" = "$(echo "$equiv_out" | sed -n 2p | sed 's/e2/eX/')" ] \
  || { echo "equiv: swapped pair not byte-identical"; exit 1; }

echo "==> nuspi equiv CLI exit codes"
left_f=$(mktemp); right_f=$(mktemp)
printf '(new n) c<n>.0\n' >"$left_f"
printf '(hide n) c<n>.0\n' >"$right_f"
rc=0; ./target/release/nuspi equiv "$left_f" "$left_f" >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 0 ] || { echo "equiv CLI: reflexive pair should exit 0, got $rc"; exit 1; }
rc=0; ./target/release/nuspi equiv "$left_f" "$right_f" >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 1 ] || { echo "equiv CLI: distinguished pair should exit 1, got $rc"; exit 1; }
rm -f "$left_f" "$right_f"

echo "==> nuspi serve analyze_source smoke test"
lang_out=$(printf '%s\n' \
  '{"id":"a1","op":"analyze_source","file":"leak.nu","source":"func main() {\n//nuspi::sink::{}\nout := make(chan)\n//nuspi::label::{high}\npin := 4\nout <- pin\n}"}' \
  '{"id":"a2","op":"analyze_source","file":"leak.nu","source":"func main() {\n//nuspi::sink::{}\nout   :=   make(chan)\n//nuspi::label::{high}\npin   :=   4\nout   <-   pin\n}"}' \
  | ./target/release/nuspi serve --jobs 2)
[ "$(echo "$lang_out" | wc -l)" -eq 2 ] || { echo "analyze_source: expected 2 response lines"; exit 1; }
echo "$lang_out" | sed -n 1p | grep -q '"verdict":"insecure"' || { echo "analyze_source: verdict missing"; exit 1; }
echo "$lang_out" | sed -n 1p | grep -q 'leak.nu:5:1' || { echo "analyze_source: origin anchor missing"; exit 1; }
# The second request is the same program reformatted: the α-digest cache
# key is unchanged, so the body must be byte-identical.
[ "$(echo "$lang_out" | sed -n 1p | sed 's/a1/aX/')" = "$(echo "$lang_out" | sed -n 2p | sed 's/a2/aX/')" ] \
  || { echo "analyze_source: reformatted resubmission not byte-identical"; exit 1; }

echo "==> nuspi check ladder verdicts"
for f in examples/lang/*.nu; do
  expect=$(head -1 "$f" | sed 's|// expect: ||')
  if ./target/release/nuspi check "$f" >/dev/null 2>&1; then got=secure; else got=insecure; fi
  [ "$got" = "$expect" ] || { echo "ladder: $f expected $expect, got $got"; exit 1; }
done

echo "==> nuspi serve --trace smoke test"
trace_file=$(mktemp)
traced_out=$(printf '%s\n' \
  '{"id":"r1","op":"audit","process":"(new k) (new m) c<{m, new r}:k>.0","secrets":["m","k"]}' \
  '{"id":"r2","op":"audit","process":"(new k) (new m) c<{m, new r}:k>.0","secrets":["m","k"]}' \
  '{"id":"s","op":"stats"}' \
  | ./target/release/nuspi serve --jobs 2 --trace "$trace_file" 2>/dev/null)
grep -q '"type":"span"' "$trace_file" || { echo "trace: no spans recorded"; exit 1; }
grep -q '"name":"engine.exec"' "$trace_file" || { echo "trace: engine.exec span missing"; exit 1; }
grep -q '"type":"counter"' "$trace_file" || { echo "trace: no counters recorded"; exit 1; }
rm -f "$trace_file"
# Tracing must not change the response bytes (modulo the stats obs section).
[ "$(echo "$serve_out" | sed -n 1p)" = "$(echo "$traced_out" | sed -n 1p)" ] \
  || { echo "trace: response bytes changed under tracing"; exit 1; }

echo "==> nuspi serve --listen network smoke test (persistent cache)"
net_dir=$(mktemp -d)
net_out=$(mktemp -d)
net_log=$(mktemp)
net_fifo=$(mktemp -u)
mkfifo "$net_fifo"
scrape_port() {  # the server prints "listening on 127.0.0.1:PORT" on stderr
  local log=$1 port="" _i
  for _i in $(seq 1 100); do
    port=$(sed -n 's/^listening on 127\.0\.0\.1://p' "$log" | head -1)
    [ -n "$port" ] && break
    sleep 0.1
  done
  echo "$port"
}
./target/release/nuspi serve --listen 127.0.0.1:0 --cache-dir "$net_dir" --jobs 2 \
  <"$net_fifo" 2>"$net_log" &
net_pid=$!
exec 9>"$net_fifo"  # hold the server's stdin open; closing fd 9 drains it
port=$(scrape_port "$net_log")
[ -n "$port" ] || { echo "net: server never reported its port"; exit 1; }

# Four concurrent clients over /dev/tcp, same audit, distinct ids.
client_pids=""
for k in 1 2 3 4; do
  (
    exec 3<>"/dev/tcp/127.0.0.1/$port"
    printf '{"id":"n%d","op":"audit","process":"(new k) (new m) c<{m, new r}:k>.0","secrets":["m","k"]}\n' "$k" >&3
    IFS= read -r line <&3
    printf '%s\n' "$line" >"$net_out/client$k.out"
  ) &
  client_pids="$client_pids $!"
done
for p in $client_pids; do wait "$p"; done
for k in 1 2 3 4; do
  grep -q '"secure":true' "$net_out/client$k.out" || { echo "net: client $k verdict missing"; exit 1; }
  [ "$(sed "s/n$k/nX/" "$net_out/client$k.out")" = "$(sed 's/n1/nX/' "$net_out/client1.out")" ] \
    || { echo "net: client $k transcript diverged"; exit 1; }
done

exec 9>&-  # stdin EOF: graceful drain
wait "$net_pid" || { echo "net: server exited nonzero on drain"; exit 1; }
grep -q '^draining$' "$net_log" || { echo "net: drain never announced"; exit 1; }

# Restart over the same cache dir: the body must come back verbatim from
# disk (a store hit, not a recompute), byte-identical to the first life.
# Fresh fifo and log — the first life's "listening on" line is stale.
net_fifo2=$(mktemp -u)
net_log2=$(mktemp)
mkfifo "$net_fifo2"
./target/release/nuspi serve --listen 127.0.0.1:0 --cache-dir "$net_dir" --jobs 2 \
  <"$net_fifo2" 2>"$net_log2" &
net_pid=$!
exec 9>"$net_fifo2"
port=$(scrape_port "$net_log2")
[ -n "$port" ] || { echo "net: restarted server never reported its port"; exit 1; }
exec 3<>"/dev/tcp/127.0.0.1/$port"
printf '{"id":"n1","op":"audit","process":"(new k) (new m) c<{m, new r}:k>.0","secrets":["m","k"]}\n' >&3
IFS= read -r warm_line <&3
printf '{"id":"s","op":"stats"}\n' >&3
IFS= read -r stats_line <&3
exec 3<&- 3>&-
[ "$warm_line" = "$(cat "$net_out/client1.out")" ] \
  || { echo "net: restart response not byte-identical to first life"; exit 1; }
echo "$stats_line" | grep -q '"store":{"hits":1' || { echo "net: disk store hit not reported"; exit 1; }
exec 9>&-
wait "$net_pid" || { echo "net: restarted server exited nonzero on drain"; exit 1; }

echo "==> nuspi cache inspection"
./target/release/nuspi cache verify --cache-dir "$net_dir" || { echo "cache: verify failed"; exit 1; }
./target/release/nuspi cache stats --cache-dir "$net_dir" | grep -q 'live entries: 1' \
  || { echo "cache: stats miscounted"; exit 1; }
rm -rf "$net_dir" "$net_out" "$net_log" "$net_fifo" "$net_log2" "$net_fifo2"

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "CI PASS"
