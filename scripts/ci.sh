#!/usr/bin/env bash
# Offline CI gate for the nuspi workspace: tier-1 build + tests, the
# differential solver suite, and formatting. No network access needed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

echo "==> differential solver suite (sequential / work-stealing / reference)"
cargo test -q --test differential
cargo test -q --test provenance_stats

echo "==> incremental differential wall"
cargo test -q -p nuspi-cfa --test incremental_diff

echo "==> lint golden files"
cargo test -q --test lint_golden

echo "==> digest properties, jsonio edge cases, engine stress, trace schema"
cargo test -q --test properties digest  # the three canonical-digest properties
cargo test -q -p nuspi-engine --test jsonio_edge
cargo test -q -p nuspi-engine --test stress
cargo test -q -p nuspi-engine --test trace

echo "==> bench regression gate (smoke)"
./scripts/bench_gate.sh --smoke

echo "==> nuspi serve round-trip smoke test"
serve_out=$(printf '%s\n' \
  '{"id":"r1","op":"audit","process":"(new k) (new m) c<{m, new r}:k>.0","secrets":["m","k"]}' \
  '{"id":"r2","op":"audit","process":"(new k) (new m) c<{m, new r}:k>.0","secrets":["m","k"]}' \
  '{"id":"i1","op":"solve_incremental","process":"a<m>.0 | a(x). b<x>.0"}' \
  '{"id":"s","op":"stats"}' \
  | ./target/release/nuspi serve --jobs 2)
echo "$serve_out"
[ "$(echo "$serve_out" | wc -l)" -eq 4 ] || { echo "serve: expected 4 response lines"; exit 1; }
echo "$serve_out" | sed -n 1p | grep -q '"secure":true' || { echo "serve: audit verdict missing"; exit 1; }
[ "$(echo "$serve_out" | sed -n 1p | sed 's/r1/rX/')" = "$(echo "$serve_out" | sed -n 2p | sed 's/r2/rX/')" ] \
  || { echo "serve: repeat not byte-identical"; exit 1; }
echo "$serve_out" | sed -n 3p | grep -q '"op":"solve_incremental"' || { echo "serve: incremental op missing"; exit 1; }
echo "$serve_out" | sed -n 3p | grep -q '"components":2' || { echo "serve: incremental components missing"; exit 1; }
echo "$serve_out" | sed -n 4p | grep -q '"hits":1' || { echo "serve: cache hit not reported"; exit 1; }
echo "$serve_out" | sed -n 4p | grep -q '"incremental":{"calls":1' || { echo "serve: incremental meters missing"; exit 1; }

echo "==> nuspi serve --trace smoke test"
trace_file=$(mktemp)
traced_out=$(printf '%s\n' \
  '{"id":"r1","op":"audit","process":"(new k) (new m) c<{m, new r}:k>.0","secrets":["m","k"]}' \
  '{"id":"r2","op":"audit","process":"(new k) (new m) c<{m, new r}:k>.0","secrets":["m","k"]}' \
  '{"id":"s","op":"stats"}' \
  | ./target/release/nuspi serve --jobs 2 --trace "$trace_file" 2>/dev/null)
grep -q '"type":"span"' "$trace_file" || { echo "trace: no spans recorded"; exit 1; }
grep -q '"name":"engine.exec"' "$trace_file" || { echo "trace: engine.exec span missing"; exit 1; }
grep -q '"type":"counter"' "$trace_file" || { echo "trace: no counters recorded"; exit 1; }
rm -f "$trace_file"
# Tracing must not change the response bytes (modulo the stats obs section).
[ "$(echo "$serve_out" | sed -n 1p)" = "$(echo "$traced_out" | sed -n 1p)" ] \
  || { echo "trace: response bytes changed under tracing"; exit 1; }

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "CI PASS"
