#!/usr/bin/env bash
# Offline CI gate for the nuspi workspace: tier-1 build + tests, the
# differential solver suite, and formatting. No network access needed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

echo "==> differential solver suite"
cargo test -q --test differential
cargo test -q --test provenance_stats

echo "==> lint golden files"
cargo test -q --test lint_golden

echo "==> nuspi serve round-trip smoke test"
serve_out=$(printf '%s\n' \
  '{"id":"r1","op":"audit","process":"(new k) (new m) c<{m, new r}:k>.0","secrets":["m","k"]}' \
  '{"id":"r2","op":"audit","process":"(new k) (new m) c<{m, new r}:k>.0","secrets":["m","k"]}' \
  '{"id":"s","op":"stats"}' \
  | ./target/release/nuspi serve --jobs 2)
echo "$serve_out"
[ "$(echo "$serve_out" | wc -l)" -eq 3 ] || { echo "serve: expected 3 response lines"; exit 1; }
echo "$serve_out" | sed -n 1p | grep -q '"secure":true' || { echo "serve: audit verdict missing"; exit 1; }
[ "$(echo "$serve_out" | sed -n 1p | sed 's/r1/rX/')" = "$(echo "$serve_out" | sed -n 2p | sed 's/r2/rX/')" ] \
  || { echo "serve: repeat not byte-identical"; exit 1; }
echo "$serve_out" | sed -n 3p | grep -q '"hits":1' || { echo "serve: cache hit not reported"; exit 1; }

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "CI PASS"
