#!/usr/bin/env bash
# Offline CI gate for the nuspi workspace: tier-1 build + tests, the
# differential solver suite, and formatting. No network access needed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

echo "==> differential solver suite"
cargo test -q --test differential
cargo test -q --test provenance_stats

echo "==> lint golden files"
cargo test -q --test lint_golden

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "CI PASS"
