//! Workspace root for the νSPI reproduction.
//!
//! This crate only hosts the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the library surface
//! lives in the [`nuspi`] facade crate and the `nuspi-*` workspace crates.

#![forbid(unsafe_code)]

pub use nuspi as facade;
