//! # nuspi-obs — structured tracing and metrics, std-only
//!
//! A zero-dependency observability layer for the nuspi workspace:
//!
//! * **spans** — named, timed regions with parent/child nesting tracked
//!   per thread (`span!("cfa.solve")`, `span!("solve.iterate", shard)`);
//! * **counters** — monotonic `u64` totals (`counter("engine.cache.hits", 1)`);
//! * **histograms** — log₂-bucketed microsecond distributions
//!   (`record_us("engine.queue_wait_us", 42)`);
//! * **sinks** — [`summary`] renders a human-readable table,
//!   [`snapshot_jsonl`] emits a machine-readable JSON-lines trace.
//!
//! Everything funnels into one process-global [`Recorder`] guarded by an
//! atomic enabled-flag. The contract that keeps the rest of the workspace
//! honest:
//!
//! > **When the recorder is disabled (the default), instrumentation does
//! > nothing: no allocation, no lock, no clock read.** A single relaxed
//! > atomic load is the entire cost, so instrumented code paths produce
//! > byte-identical outputs whether or not the crate is linked hot.
//!
//! The `span!` macro evaluates its field expression *only* when the
//! recorder is enabled, so even argument construction is free when off.
//!
//! ## Trace schema (JSON lines)
//!
//! Each line of [`snapshot_jsonl`] is one object with a `type` tag:
//!
//! ```text
//! {"type":"span","id":3,"parent":2,"name":"cfa.solve","thread":"nuspi-engine-worker-0","start_us":120,"dur_us":843}
//! {"type":"span","id":3,...,"fields":{"shard":2}}            // with span!(_, key = v)
//! {"type":"counter","name":"engine.cache.hits","value":17}
//! {"type":"hist","name":"engine.queue_wait_us","count":4,"sum_us":90,"min_us":3,"max_us":51,"log2_buckets":[...]}
//! ```
//!
//! Spans appear in **completion order** (children before parents, since a
//! child guard drops first); `parent` is `null` for roots. `start_us` is
//! relative to the instant the recorder was first enabled. Counters and
//! histograms follow the spans, sorted by name.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Number of log₂ buckets kept per histogram (values ≥ 2¹⁸ µs share the top).
pub const HIST_BUCKETS: usize = 20;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static RECORDER: Mutex<Recorder> = Mutex::new(Recorder::new());

thread_local! {
    /// Stack of currently-open span ids on this thread (for parent links).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// A field attached to a span: one key/value pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FieldValue {
    /// An unsigned integer field (shard index, round number, …).
    U64(u64),
    /// A string field (operation name, …).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(u64::from(v))
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// One completed span, as stored by the recorder.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Process-unique span id (monotonic, starts at 1 per [`reset`]).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Static span name, dot-separated `layer.verb[.phase]`.
    pub name: &'static str,
    /// Optional single field recorded at span entry.
    pub field: Option<(&'static str, FieldValue)>,
    /// Name of the thread the span ran on (`"?"` if unnamed).
    pub thread: String,
    /// Start, in microseconds since the recorder was first enabled.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
}

/// Summary statistics plus log₂ buckets for one histogram.
#[derive(Clone, Debug)]
pub struct HistRecord {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (µs).
    pub sum_us: u64,
    /// Smallest sample (µs).
    pub min_us: u64,
    /// Largest sample (µs).
    pub max_us: u64,
    /// `buckets[i]` counts samples `v` with `⌊log₂ v⌋ + 1 = i` (0 ⇒ v = 0);
    /// the top bucket absorbs everything larger.
    pub buckets: [u64; HIST_BUCKETS],
}

impl HistRecord {
    const fn new() -> HistRecord {
        HistRecord {
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }

    fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(v);
        self.min_us = self.min_us.min(v);
        self.max_us = self.max_us.max(v);
        let idx = (64 - u64::leading_zeros(v) as usize).min(HIST_BUCKETS - 1);
        self.buckets[idx] += 1;
    }

    /// Mean sample in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }
}

/// The process-global store behind all instrumentation. Not constructed
/// directly — use the free functions ([`enable`], [`span`], [`counter`],
/// [`record_us`], [`snapshot_jsonl`], [`summary`], [`reset`]).
#[derive(Debug)]
pub struct Recorder {
    epoch: Option<Instant>,
    spans: Vec<SpanRecord>,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, HistRecord>,
}

impl Recorder {
    const fn new() -> Recorder {
        Recorder {
            epoch: None,
            spans: Vec::new(),
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }
}

fn lock() -> MutexGuard<'static, Recorder> {
    RECORDER.lock().unwrap_or_else(|e| e.into_inner())
}

/// Turns recording on. Idempotent; the first call sets the trace epoch.
pub fn enable() {
    let mut g = lock();
    if g.epoch.is_none() {
        g.epoch = Some(Instant::now());
    }
    drop(g);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns recording off without discarding collected data.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether the recorder is currently on. One relaxed atomic load — this is
/// the only cost instrumentation pays when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Disables the recorder and discards all spans, counters, and histograms.
/// Span ids restart at 1 (tests rely on this for determinism).
pub fn reset() {
    ENABLED.store(false, Ordering::SeqCst);
    let mut g = lock();
    g.epoch = None;
    g.spans.clear();
    g.counters.clear();
    g.hists.clear();
    drop(g);
    NEXT_SPAN_ID.store(1, Ordering::SeqCst);
}

/// RAII guard for an open span: records a [`SpanRecord`] when dropped.
/// A guard created while the recorder was disabled is inert.
#[must_use = "a span measures the region until the guard is dropped"]
#[derive(Debug)]
pub struct Span(Option<ActiveSpan>);

#[derive(Debug)]
struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    field: Option<(&'static str, FieldValue)>,
    start: Instant,
}

impl Span {
    /// An inert guard; used by the `span!` macro's disabled branch.
    pub const fn disabled() -> Span {
        Span(None)
    }

    /// The span's id, if it is live (recorder was enabled at entry).
    pub fn id(&self) -> Option<u64> {
        self.0.as_ref().map(|a| a.id)
    }
}

fn begin(name: &'static str, field: Option<(&'static str, FieldValue)>) -> Span {
    if !enabled() {
        return Span(None);
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    Span(Some(ActiveSpan {
        id,
        parent,
        name,
        field,
        start: Instant::now(),
    }))
}

/// Opens a span with no fields. Prefer the [`span!`] macro.
pub fn span(name: &'static str) -> Span {
    begin(name, None)
}

/// Opens a span carrying one key/value field. Prefer the [`span!`] macro,
/// which skips evaluating the value when the recorder is off.
pub fn span_with(name: &'static str, key: &'static str, value: FieldValue) -> Span {
    begin(name, Some((key, value)))
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else { return };
        let dur_us = a.start.elapsed().as_micros() as u64;
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if s.last() == Some(&a.id) {
                s.pop();
            } else if let Some(pos) = s.iter().rposition(|&x| x == a.id) {
                // Out-of-order drop (guard moved across scopes): excise it so
                // later spans still find the right parent.
                s.remove(pos);
            }
        });
        let thread = std::thread::current().name().unwrap_or("?").to_string();
        let mut g = lock();
        let start_us = g
            .epoch
            .map(|e| a.start.duration_since(e).as_micros() as u64)
            .unwrap_or(0);
        g.spans.push(SpanRecord {
            id: a.id,
            parent: a.parent,
            name: a.name,
            field: a.field,
            thread,
            start_us,
            dur_us,
        });
    }
}

/// Opens a span; the preferred spelling for instrumentation sites.
///
/// * `span!("cfa.solve")` — no fields;
/// * `span!("solve.iterate", shard = idx)` — one field;
/// * `span!("solve.iterate", shard)` — shorthand for `shard = shard`.
///
/// With a field, the value expression is evaluated **only when the
/// recorder is enabled**, so disabled tracing allocates nothing.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $key:ident = $value:expr) => {
        if $crate::enabled() {
            $crate::span_with($name, stringify!($key), $crate::FieldValue::from($value))
        } else {
            $crate::Span::disabled()
        }
    };
    ($name:expr, $key:ident) => {
        $crate::span!($name, $key = $key)
    };
}

/// Adds `delta` to the named monotonic counter. No-op while disabled.
pub fn counter(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut g = lock();
    match g.counters.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            g.counters.insert(name.to_string(), delta);
        }
    }
}

/// Records one sample (in microseconds) into the named histogram.
/// No-op while disabled.
pub fn record_us(name: &str, us: u64) {
    if !enabled() {
        return;
    }
    let mut g = lock();
    match g.hists.get_mut(name) {
        Some(h) => h.record(us),
        None => {
            let mut h = HistRecord::new();
            h.record(us);
            g.hists.insert(name.to_string(), h);
        }
    }
}

/// Records a [`Duration`] sample into the named histogram.
pub fn record_duration(name: &str, d: Duration) {
    if !enabled() {
        return;
    }
    record_us(name, d.as_micros() as u64);
}

/// Number of completed spans currently held by the recorder.
pub fn span_count() -> usize {
    lock().spans.len()
}

/// A snapshot of all completed spans (completion order).
pub fn spans() -> Vec<SpanRecord> {
    lock().spans.clone()
}

/// Current value of a counter (0 if never touched).
pub fn counter_value(name: &str) -> u64 {
    lock().counters.get(name).copied().unwrap_or(0)
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders the machine-readable JSON-lines trace (see the module docs for
/// the schema). Does not clear the recorder; pair with [`reset`].
pub fn snapshot_jsonl() -> String {
    let g = lock();
    let mut out = String::new();
    for s in &g.spans {
        let _ = write!(out, "{{\"type\":\"span\",\"id\":{}", s.id);
        match s.parent {
            Some(p) => {
                let _ = write!(out, ",\"parent\":{p}");
            }
            None => out.push_str(",\"parent\":null"),
        }
        out.push_str(",\"name\":\"");
        escape_into(&mut out, s.name);
        out.push_str("\",\"thread\":\"");
        escape_into(&mut out, &s.thread);
        let _ = write!(
            out,
            "\",\"start_us\":{},\"dur_us\":{}",
            s.start_us, s.dur_us
        );
        if let Some((k, v)) = &s.field {
            out.push_str(",\"fields\":{\"");
            escape_into(&mut out, k);
            out.push_str("\":");
            match v {
                FieldValue::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                FieldValue::Str(t) => {
                    out.push('"');
                    escape_into(&mut out, t);
                    out.push('"');
                }
            }
            out.push('}');
        }
        out.push_str("}\n");
    }
    for (name, value) in &g.counters {
        out.push_str("{\"type\":\"counter\",\"name\":\"");
        escape_into(&mut out, name);
        let _ = writeln!(out, "\",\"value\":{value}}}");
    }
    for (name, h) in &g.hists {
        out.push_str("{\"type\":\"hist\",\"name\":\"");
        escape_into(&mut out, name);
        let _ = write!(
            out,
            "\",\"count\":{},\"sum_us\":{},\"min_us\":{},\"max_us\":{},\"log2_buckets\":[",
            h.count,
            h.sum_us,
            if h.count == 0 { 0 } else { h.min_us },
            h.max_us
        );
        for (i, b) in h.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("]}\n");
    }
    out
}

/// Renders a human-readable summary: spans aggregated by name, then
/// counters, then histograms. Empty string when nothing was recorded.
pub fn summary() -> String {
    let g = lock();
    let mut out = String::new();
    if !g.spans.is_empty() {
        #[derive(Default)]
        struct Agg {
            count: u64,
            total_us: u64,
            max_us: u64,
        }
        let mut by_name: BTreeMap<&'static str, Agg> = BTreeMap::new();
        for s in &g.spans {
            let a = by_name.entry(s.name).or_default();
            a.count += 1;
            a.total_us += s.dur_us;
            a.max_us = a.max_us.max(s.dur_us);
        }
        out.push_str("spans (aggregated by name)\n");
        let _ = writeln!(
            out,
            "  {:<28} {:>8} {:>12} {:>10} {:>10}",
            "name", "count", "total_ms", "mean_us", "max_us"
        );
        for (name, a) in &by_name {
            let _ = writeln!(
                out,
                "  {:<28} {:>8} {:>12.3} {:>10} {:>10}",
                name,
                a.count,
                a.total_us as f64 / 1000.0,
                a.total_us / a.count,
                a.max_us
            );
        }
    }
    if !g.counters.is_empty() {
        out.push_str("counters\n");
        for (name, value) in &g.counters {
            let _ = writeln!(out, "  {name:<40} {value:>12}");
        }
    }
    if !g.hists.is_empty() {
        out.push_str("histograms (µs)\n");
        let _ = writeln!(
            out,
            "  {:<34} {:>8} {:>10} {:>10} {:>10}",
            "name", "count", "mean", "min", "max"
        );
        for (name, h) in &g.hists {
            let _ = writeln!(
                out,
                "  {:<34} {:>8} {:>10} {:>10} {:>10}",
                name,
                h.count,
                h.mean_us(),
                if h.count == 0 { 0 } else { h.min_us },
                h.max_us
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global; serialise every test through this.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> MutexGuard<'static, ()> {
        let g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        g
    }

    #[test]
    fn disabled_recorder_records_nothing_and_skips_field_eval() {
        let _g = guard();
        let mut evaluated = false;
        {
            let _s = span!(
                "test.disabled",
                v = {
                    evaluated = true;
                    1u64
                }
            );
            counter("test.counter", 5);
            record_us("test.hist", 10);
        }
        assert!(!evaluated, "field expression ran while disabled");
        assert_eq!(span_count(), 0);
        assert_eq!(counter_value("test.counter"), 0);
        assert_eq!(snapshot_jsonl(), "");
        assert_eq!(summary(), "");
    }

    #[test]
    fn spans_nest_and_record_parents() {
        let _g = guard();
        enable();
        {
            let outer = span!("test.outer");
            let outer_id = outer.id().unwrap();
            {
                let inner = span!("test.inner", shard = 3usize);
                assert_ne!(inner.id(), Some(outer_id));
            }
            let _sibling = span!("test.sibling");
        }
        let spans = spans();
        assert_eq!(spans.len(), 3);
        // Completion order: inner, sibling, outer.
        let inner = spans.iter().find(|s| s.name == "test.inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "test.outer").unwrap();
        let sibling = spans.iter().find(|s| s.name == "test.sibling").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(sibling.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(
            inner.field,
            Some(("shard", FieldValue::U64(3))),
            "field captured"
        );
        reset();
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let _g = guard();
        enable();
        counter("test.hits", 2);
        counter("test.hits", 3);
        record_us("test.wait", 0);
        record_us("test.wait", 7);
        record_us("test.wait", 1_000_000);
        assert_eq!(counter_value("test.hits"), 5);
        let jsonl = snapshot_jsonl();
        assert!(jsonl.contains("{\"type\":\"counter\",\"name\":\"test.hits\",\"value\":5}"));
        assert!(jsonl.contains("\"count\":3,\"sum_us\":1000007,\"min_us\":0,\"max_us\":1000000"));
        let text = summary();
        assert!(text.contains("test.hits"));
        assert!(text.contains("test.wait"));
        reset();
    }

    #[test]
    fn jsonl_escapes_strings() {
        let _g = guard();
        enable();
        {
            let _s = span!("test.field", op = "we\"ird\\\n");
        }
        let jsonl = snapshot_jsonl();
        assert!(jsonl.contains("\"fields\":{\"op\":\"we\\\"ird\\\\\\n\"}"));
        reset();
    }

    #[test]
    fn reset_clears_and_restarts_ids() {
        let _g = guard();
        enable();
        let first = {
            let s = span!("test.a");
            s.id().unwrap()
        };
        assert_eq!(first, 1);
        reset();
        assert_eq!(span_count(), 0);
        assert!(!enabled());
        enable();
        let again = {
            let s = span!("test.b");
            s.id().unwrap()
        };
        assert_eq!(again, 1, "span ids restart after reset");
        reset();
    }

    #[test]
    fn spans_from_other_threads_are_roots_with_thread_names() {
        let _g = guard();
        enable();
        let _outer = span!("test.main");
        std::thread::Builder::new()
            .name("obs-test-worker".to_string())
            .spawn(|| {
                let _s = span!("test.worker");
            })
            .unwrap()
            .join()
            .unwrap();
        let spans = spans();
        let w = spans.iter().find(|s| s.name == "test.worker").unwrap();
        assert_eq!(w.parent, None, "parent links never cross threads");
        assert_eq!(w.thread, "obs-test-worker");
        reset();
    }
}
