//! Message independence — the dynamic non-interference notion
//! (Definitions 8 & 9) and the combined static check of Theorem 5.
//!
//! `P(x)` is *message independent* when `P[M/x] ∼ P[M′/x]` for all closed
//! messages, where `∼` is public testing equivalence: no test `(Q, β)`
//! with public free names can tell the two instantiations apart.
//!
//! All tests is not an enumerable set; [`message_independent`] runs a
//! *battery* of generated distinguishing tests (direct barbs, injection
//! probes, value-comparison probes, numeral probes) over a bounded
//! exploration, for the concrete message pairs the caller supplies. A
//! returned [`Distinguisher`] is a genuine counterexample to independence;
//! passing the battery is evidence for it. Theorem 5's static route —
//! confinement + invariance imply independence — is packaged as
//! [`static_message_independence`].

use crate::confine::{confinement, ConfinementReport};
use crate::invariance::{invariance, InvarianceViolation};
use crate::policy::Policy;
use crate::sort::{n_star, n_star_name, AbstractSort};
use nuspi_semantics::{passes_test, Barb, ExecConfig};
use nuspi_syntax::{builder as b, Process, Symbol, Value, Var};
use std::fmt;
use std::rc::Rc;

/// A public test `(Q, β)` from Definition 8.
#[derive(Clone, Debug)]
pub struct PublicTest {
    /// The observer process `Q` (free names must be public).
    pub observer: Process,
    /// The barb `β` to watch for.
    pub barb: Barb,
    /// A short description for reports.
    pub description: String,
}

/// A counterexample to message independence: a test passed by one
/// instantiation and failed by the other.
#[derive(Clone, Debug)]
pub struct Distinguisher {
    /// The distinguishing test.
    pub test: PublicTest,
    /// Whether `P[M/x]` passed.
    pub with_first: bool,
    /// Whether `P[M′/x]` passed.
    pub with_second: bool,
}

impl fmt::Display for Distinguisher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "test `{}` distinguishes: first {} it, second {} it",
            self.test.description,
            if self.with_first { "passes" } else { "fails" },
            if self.with_second { "passes" } else { "fails" },
        )
    }
}

/// The reserved barb channel used by generated observers. Processes under
/// test must not use it.
pub fn witness_channel() -> Symbol {
    Symbol::intern("witness'")
}

/// Builds the standard battery of distinguishing tests over the given
/// public channels, probing with the given candidate values.
///
/// For each channel `c` the battery contains:
/// * the direct barbs `(0, c)` and `(0, c̄)`;
/// * an *injection* probe `c⟨w⟩.witness⟨0⟩` per candidate `w` — detects
///   readiness to input;
/// * a *comparison* probe `c(y).[y is w] witness⟨0⟩` per candidate —
///   detects output of the specific value `w`;
/// * a *numeral* probe `c(y).case y of 0: witness⟨0⟩, suc(z): 0` —
///   detects output of `0`.
pub fn standard_battery(channels: &[Symbol], probes: &[Rc<Value>]) -> Vec<PublicTest> {
    let w = witness_channel();
    let witness_barb = Barb::Out(w);
    let witness = || b::output(b::name(w.as_str()), b::zero(), b::nil());
    let mut tests = Vec::new();
    for &c in channels {
        let cname = c.as_str();
        tests.push(PublicTest {
            observer: b::nil(),
            barb: Barb::Out(c),
            description: format!("direct output barb on {cname}"),
        });
        tests.push(PublicTest {
            observer: b::nil(),
            barb: Barb::In(c),
            description: format!("direct input barb on {cname}"),
        });
        for probe in probes {
            tests.push(PublicTest {
                observer: b::output(b::name(cname), b::val(Rc::clone(probe)), witness()),
                barb: witness_barb,
                description: format!("inject {probe} on {cname}"),
            });
            let y = Var::fresh("y");
            tests.push(PublicTest {
                observer: b::input(
                    b::name(cname),
                    y,
                    b::guard(b::var(y), b::val(Rc::clone(probe)), witness()),
                ),
                barb: witness_barb,
                description: format!("receive on {cname} and compare with {probe}"),
            });
        }
        let y = Var::fresh("y");
        let z = Var::fresh("z");
        tests.push(PublicTest {
            observer: b::input(
                b::name(cname),
                y,
                b::case_nat(b::var(y), witness(), z, b::nil()),
            ),
            barb: witness_barb,
            description: format!("receive on {cname} and test for 0"),
        });
    }
    tests
}

/// Runs the battery against `P[m1/x]` and `P[m2/x]` (Definition 9 for one
/// message pair). Returns the first distinguishing test, if any.
pub fn message_independent(
    open: &Process,
    x: Var,
    m1: &Rc<Value>,
    m2: &Rc<Value>,
    battery: &[PublicTest],
    cfg: &ExecConfig,
) -> Result<(), Box<Distinguisher>> {
    let p1 = open.subst(x, m1);
    let p2 = open.subst(x, m2);
    for t in battery {
        let r1 = passes_test(&p1, &t.observer, t.barb, cfg);
        let r2 = passes_test(&p2, &t.observer, t.barb, cfg);
        if r1 != r2 {
            return Err(Box::new(Distinguisher {
                test: t.clone(),
                with_first: r1,
                with_second: r2,
            }));
        }
    }
    Ok(())
}

/// The static side of Theorem 5 for `P(x)`: substitute the tracking name
/// `n*` for `x`, require confinement (with `n* ∈ S`) and invariance.
#[derive(Debug)]
pub struct StaticIndependenceReport {
    /// The confinement half (Definition 4).
    pub confinement: ConfinementReport,
    /// The invariance half (Definition 7).
    pub invariance: Vec<InvarianceViolation>,
}

impl StaticIndependenceReport {
    /// Whether both premises of Theorem 5 hold, so the process is message
    /// independent.
    pub fn implies_independence(&self) -> bool {
        self.confinement.is_confined() && self.invariance.is_empty()
    }
}

/// Checks the premises of Theorem 5 on `P(x)`.
pub fn static_message_independence(
    open: &Process,
    x: Var,
    policy: &Policy,
) -> StaticIndependenceReport {
    // `n*` stands in for the bound variable x, so it is not a genuine free
    // secret name; restricting it keeps the analysed process well-formed
    // (fn ⊆ P) without changing the analysis.
    let tracked = b::restrict(n_star_name(), open.subst(x, &Value::name(n_star_name())));
    let mut policy = policy.clone();
    policy.add_secret(n_star());
    let report = confinement(&tracked, &policy);
    let sorts = AbstractSort::compute(&report.solution, n_star());
    let invariance = invariance(&tracked, &report.solution, &sorts);
    StaticIndependenceReport {
        confinement: report,
        invariance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_syntax::parse_process;

    fn channels(cs: &[&str]) -> Vec<Symbol> {
        cs.iter().map(|c| Symbol::intern(c)).collect()
    }

    fn cfg() -> ExecConfig {
        ExecConfig::default()
    }

    /// An open process `P(x)` built by parsing with a fresh input binder:
    /// `probe(x). body` and stripping the input — easier: build directly.
    fn open_forwarder() -> (Process, Var) {
        let x = Var::fresh("x");
        // P(x) = c<{x}:k>.0 under restricted k — independent.
        let k = nuspi_syntax::Name::global("k");
        let p = b::restrict(
            k,
            b::output(
                b::name("c"),
                b::enc(
                    vec![b::var(x)],
                    nuspi_syntax::Name::global("r"),
                    b::name_expr(k),
                ),
                b::nil(),
            ),
        );
        (p, x)
    }

    fn open_leaker() -> (Process, Var) {
        let x = Var::fresh("x");
        // P(x) = c<x>.0 — leaks x outright.
        (b::output(b::name("c"), b::var(x), b::nil()), x)
    }

    fn open_comparer() -> (Process, Var) {
        let x = Var::fresh("x");
        // P(x) = [x is 0] c<0>.0 — implicit flow (§5's motivating case).
        (
            b::guard(
                b::var(x),
                b::zero(),
                b::output(b::name("c"), b::zero(), b::nil()),
            ),
            x,
        )
    }

    #[test]
    fn encrypted_forwarding_is_message_independent() {
        let (p, x) = open_forwarder();
        let m1 = Value::numeral(0);
        let m2 = Value::numeral(3);
        let battery = standard_battery(&channels(&["c"]), &[m1.clone(), m2.clone()]);
        assert!(message_independent(&p, x, &m1, &m2, &battery, &cfg()).is_ok());
    }

    #[test]
    fn direct_leak_is_distinguished() {
        let (p, x) = open_leaker();
        let m1 = Value::numeral(0);
        let m2 = Value::name("a");
        let battery = standard_battery(&channels(&["c"]), &[m1.clone(), m2.clone()]);
        let d = message_independent(&p, x, &m1, &m2, &battery, &cfg()).unwrap_err();
        assert!(d.with_first != d.with_second);
    }

    #[test]
    fn implicit_flow_is_distinguished() {
        let (p, x) = open_comparer();
        let m1 = Value::numeral(0); // guard passes
        let m2 = Value::numeral(1); // guard fails
        let battery = standard_battery(&channels(&["c"]), &[Value::zero()]);
        let d = message_independent(&p, x, &m1, &m2, &battery, &cfg()).unwrap_err();
        assert!(d.with_first && !d.with_second);
    }

    #[test]
    fn static_check_accepts_encrypted_forwarding() {
        let (p, x) = open_forwarder();
        let policy = Policy::with_secrets(["k"]);
        let report = static_message_independence(&p, x, &policy);
        assert!(
            report.implies_independence(),
            "conf: {:?}, inv: {:?}",
            report.confinement.violations,
            report.invariance
        );
    }

    #[test]
    fn static_check_rejects_direct_leak_via_confinement() {
        let (p, x) = open_leaker();
        let report = static_message_independence(&p, x, &Policy::new());
        assert!(!report.confinement.is_confined(), "n* is secret and leaks");
        assert!(!report.implies_independence());
    }

    #[test]
    fn static_check_rejects_implicit_flow_via_invariance() {
        let (p, x) = open_comparer();
        let report = static_message_independence(&p, x, &Policy::new());
        assert!(!report.invariance.is_empty());
        assert!(!report.implies_independence());
    }

    #[test]
    fn theorem5_shape_static_implies_dynamic_on_examples() {
        // For each P(x): if the static check passes, the battery must not
        // distinguish; if the battery distinguishes, the static check must
        // have failed (contrapositive of Theorem 5).
        let cases = [open_forwarder(), open_leaker(), open_comparer()];
        let m1 = Value::numeral(0);
        let m2 = Value::numeral(2);
        for (p, x) in cases {
            let report = static_message_independence(&p, x, &Policy::with_secrets(["k"]));
            let battery = standard_battery(&channels(&["c"]), &[m1.clone(), m2.clone()]);
            let dynamic = message_independent(&p, x, &m1, &m2, &battery, &cfg());
            if report.implies_independence() {
                assert!(dynamic.is_ok(), "static pass must imply dynamic pass");
            }
            if dynamic.is_err() {
                assert!(!report.implies_independence());
            }
        }
    }

    #[test]
    fn battery_contains_expected_shapes() {
        let battery = standard_battery(&channels(&["c", "d"]), &[Value::zero()]);
        // 2 direct + 2 probes + 1 numeral per channel.
        assert_eq!(battery.len(), 10);
        assert!(battery.iter().all(|t| t.observer.is_closed()));
    }

    #[test]
    fn distinguisher_displays() {
        let (p, x) = open_leaker();
        let m1 = Value::numeral(0);
        let m2 = Value::name("a");
        let battery = standard_battery(&channels(&["c"]), std::slice::from_ref(&m1));
        let d = message_independent(&p, x, &m1, &m2, &battery, &cfg()).unwrap_err();
        assert!(d.to_string().contains("distinguishes"));
    }

    #[test]
    fn wmf_payload_is_message_independent() {
        // Parameterise WMF on its payload and check both routes.
        let src = "
            (new kAS) (new kBS) (
              ((new kAB) cAS<{kAB, new r1}:kAS>. cAB<{xmsg, new r2}:kAB>.0
               | cBS(t). case t of {y}:kBS in cAB(z). case z of {q}:y in 0)
              | cAS(x). case x of {s}:kAS in cBS<{s, new r3}:kBS>.0
            )";
        let p = parse_process(src).unwrap();
        let (p_open, x) = p.abstract_name(Symbol::intern("xmsg"));
        let policy = Policy::with_secrets(["kAS", "kBS", "kAB"]);
        let report = static_message_independence(&p_open, x, &policy);
        assert!(
            report.implies_independence(),
            "conf: {:?}, inv: {:?}",
            report.confinement.violations,
            report.invariance
        );
        let m1 = Value::numeral(0);
        let m2 = Value::numeral(5);
        let battery =
            standard_battery(&channels(&["cAS", "cBS", "cAB"]), &[m1.clone(), m2.clone()]);
        assert!(message_independent(&p_open, x, &m1, &m2, &battery, &cfg()).is_ok());
    }
}
