//! The security lattice: a product `Level = Conf × Integ` of two finite
//! lattices ("axes"), generalising the paper's binary secret/public kind
//! split to multi-level grading.
//!
//! The paper's development needs only *some* complete lattice of secrecy
//! levels; the implementation historically hard-wired the two-point
//! instance (`public ⊑ secret`). This module makes the lattice a value:
//!
//! * [`Axis`] is a finite lattice of at most [`Axis::MAX_POINTS`] points,
//!   with join/meet/≤ tabulated at construction time and labels pinned in
//!   *index order* — every rendering of axis labels iterates indices, so
//!   displayed output never depends on hash-map iteration order.
//! * [`Level`] is a point of the product lattice: a confidentiality
//!   coordinate and an integrity coordinate, ordered component-wise.
//! * [`SecLattice`] packages the two axes, with the canonical instances
//!   [`SecLattice::two_point`] (the classical high/low split the rest of
//!   the analysis grew up on) and [`SecLattice::diamond4`] (a four-point
//!   diamond per axis for graded policies).
//! * [`LevelSet`] is a set of levels packed into a `u64` bitset (the
//!   product has at most 8 × 8 = 64 points), the working currency of the
//!   abstract level fixpoint in [`crate::flow`].
//!
//! The two-point instance is the *default* everywhere: a policy that
//! never mentions a level degenerates to exactly the old behaviour, and
//! the differential wall in `tests/lattice_wall.rs` holds the whole
//! pipeline to byte-identical output in that case.

use std::fmt;

/// Why an [`Axis`] description was rejected.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LatticeError {
    /// No labels, or more than [`Axis::MAX_POINTS`].
    BadSize(usize),
    /// Two points share a label.
    DuplicateLabel(String),
    /// An ordering pair mentions an unknown label.
    UnknownLabel(String),
    /// The reflexive-transitive closure is not antisymmetric.
    NotAPartialOrder(String, String),
    /// Two points lack a least upper bound (or greatest lower bound).
    NotALattice(String, String),
}

impl fmt::Display for LatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeError::BadSize(n) => {
                write!(f, "axis must have 1..={} points, got {n}", Axis::MAX_POINTS)
            }
            LatticeError::DuplicateLabel(l) => write!(f, "duplicate axis label `{l}`"),
            LatticeError::UnknownLabel(l) => write!(f, "ordering mentions unknown label `{l}`"),
            LatticeError::NotAPartialOrder(a, b) => {
                write!(
                    f,
                    "order is not antisymmetric: `{a}` and `{b}` are equivalent"
                )
            }
            LatticeError::NotALattice(a, b) => {
                write!(f, "`{a}` and `{b}` lack a unique join or meet")
            }
        }
    }
}

/// A finite lattice of at most eight points, one axis of the product.
///
/// Points are identified by their index into the label list; *index order
/// is the pinned display order*. `≤`, join and meet are tabulated once at
/// construction, so queries are branch-free lookups.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Axis {
    name: &'static str,
    labels: Vec<String>,
    /// `up[i]` is the bitmask of all `j` with `i ⊑ j` (reflexive).
    up: Vec<u8>,
    /// Flattened `n × n` join table: `join[i * n + j]`.
    join: Vec<u8>,
    /// Flattened `n × n` meet table.
    meet: Vec<u8>,
    bottom: u8,
    top: u8,
}

impl Axis {
    /// Maximum number of points per axis: keeps a product level-set in a
    /// `u64` bitset (8 × 8 = 64) and an axis up-set in a `u8`.
    pub const MAX_POINTS: usize = 8;

    /// Builds an axis from labels (in pinned display order) and a set of
    /// `a ⊑ b` pairs; the reflexive-transitive closure is taken, then
    /// verified to be a lattice.
    pub fn from_order(
        name: &'static str,
        labels: &[&str],
        le: &[(&str, &str)],
    ) -> Result<Axis, LatticeError> {
        let n = labels.len();
        if n == 0 || n > Axis::MAX_POINTS {
            return Err(LatticeError::BadSize(n));
        }
        for (i, l) in labels.iter().enumerate() {
            if labels[..i].contains(l) {
                return Err(LatticeError::DuplicateLabel((*l).to_owned()));
            }
        }
        let idx = |l: &str| -> Result<usize, LatticeError> {
            labels
                .iter()
                .position(|x| *x == l)
                .ok_or_else(|| LatticeError::UnknownLabel(l.to_owned()))
        };
        // Reflexive base relation, then the declared pairs, then Warshall.
        let mut leq = vec![false; n * n];
        for i in 0..n {
            leq[i * n + i] = true;
        }
        for (a, b) in le {
            leq[idx(a)? * n + idx(b)?] = true;
        }
        for k in 0..n {
            for i in 0..n {
                if leq[i * n + k] {
                    for j in 0..n {
                        if leq[k * n + j] {
                            leq[i * n + j] = true;
                        }
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                if i != j && leq[i * n + j] && leq[j * n + i] {
                    return Err(LatticeError::NotAPartialOrder(
                        labels[i].to_owned(),
                        labels[j].to_owned(),
                    ));
                }
            }
        }
        // Tabulate join/meet: the unique least element of the upper-bound
        // set (resp. greatest of the lower-bound set), if it exists.
        let mut join = vec![0u8; n * n];
        let mut meet = vec![0u8; n * n];
        for i in 0..n {
            for j in 0..n {
                let ubs: Vec<usize> = (0..n)
                    .filter(|&c| leq[i * n + c] && leq[j * n + c])
                    .collect();
                let lubs: Vec<&usize> = ubs
                    .iter()
                    .filter(|&&c| ubs.iter().all(|&d| leq[c * n + d]))
                    .collect();
                let lbs: Vec<usize> = (0..n)
                    .filter(|&c| leq[c * n + i] && leq[c * n + j])
                    .collect();
                let glbs: Vec<&usize> = lbs
                    .iter()
                    .filter(|&&c| lbs.iter().all(|&d| leq[d * n + c]))
                    .collect();
                match (lubs.as_slice(), glbs.as_slice()) {
                    ([l], [g]) => {
                        join[i * n + j] = **l as u8;
                        meet[i * n + j] = **g as u8;
                    }
                    _ => {
                        return Err(LatticeError::NotALattice(
                            labels[i].to_owned(),
                            labels[j].to_owned(),
                        ))
                    }
                }
            }
        }
        let up: Vec<u8> = (0..n)
            .map(|i| {
                (0..n)
                    .filter(|&j| leq[i * n + j])
                    .fold(0u8, |m, j| m | (1 << j))
            })
            .collect();
        // A finite lattice is bounded: fold join/meet over all points.
        let bottom = (1..n as u8).fold(0u8, |b, i| meet[b as usize * n + i as usize]);
        let top = (1..n as u8).fold(0u8, |t, i| join[t as usize * n + i as usize]);
        Ok(Axis {
            name,
            labels: labels.iter().map(|l| (*l).to_owned()).collect(),
            up,
            join,
            meet,
            bottom,
            top,
        })
    }

    /// The classical two-point axis `lo ⊑ hi`.
    pub fn two(name: &'static str, lo: &str, hi: &str) -> Axis {
        Axis::from_order(name, &[lo, hi], &[(lo, hi)]).expect("two-point chain is a lattice")
    }

    /// A four-point diamond `bot ⊑ {left, right} ⊑ top` with `left` and
    /// `right` incomparable.
    pub fn diamond(name: &'static str, bot: &str, left: &str, right: &str, top: &str) -> Axis {
        Axis::from_order(
            name,
            &[bot, left, right, top],
            &[(bot, left), (bot, right), (left, top), (right, top)],
        )
        .expect("diamond is a lattice")
    }

    /// A totally ordered axis, bottom first.
    pub fn chain(name: &'static str, labels: &[&str]) -> Result<Axis, LatticeError> {
        let le: Vec<(&str, &str)> = labels.windows(2).map(|w| (w[0], w[1])).collect();
        Axis::from_order(name, labels, &le)
    }

    /// The axis name (`"conf"` or `"integ"` for the built-in instances).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the axis is the trivial one-point lattice.
    pub fn is_empty(&self) -> bool {
        false // an axis always has at least one point
    }

    /// The label of point `i` (pinned display order = index order).
    pub fn label(&self, i: u8) -> &str {
        &self.labels[i as usize]
    }

    /// Labels in pinned index order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.labels.iter().map(String::as_str)
    }

    /// Resolves a label to its point.
    pub fn index_of(&self, label: &str) -> Option<u8> {
        self.labels.iter().position(|l| l == label).map(|i| i as u8)
    }

    /// `a ⊑ b` on this axis.
    pub fn leq(&self, a: u8, b: u8) -> bool {
        self.up[a as usize] & (1 << b) != 0
    }

    /// Least upper bound.
    pub fn join(&self, a: u8, b: u8) -> u8 {
        self.join[a as usize * self.len() + b as usize]
    }

    /// Greatest lower bound.
    pub fn meet(&self, a: u8, b: u8) -> u8 {
        self.meet[a as usize * self.len() + b as usize]
    }

    /// The least point.
    pub fn bottom(&self) -> u8 {
        self.bottom
    }

    /// The greatest point.
    pub fn top(&self) -> u8 {
        self.top
    }
}

/// A point of the product lattice: one coordinate per axis.
///
/// `Ord` is the *pinned display order* (lexicographic on indices), **not**
/// the lattice order — use [`SecLattice::leq`] for `⊑`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Level {
    /// Confidentiality coordinate (index into the `conf` axis).
    pub conf: u8,
    /// Integrity coordinate (index into the `integ` axis).
    pub integ: u8,
}

impl Level {
    /// Packs the level into a 6-bit index (`conf * 8 + integ`), the bit
    /// position used by [`LevelSet`].
    pub fn bit(self) -> u32 {
        (self.conf as u32) * Axis::MAX_POINTS as u32 + self.integ as u32
    }

    /// Inverse of [`Level::bit`].
    pub fn from_bit(bit: u32) -> Level {
        Level {
            conf: (bit / Axis::MAX_POINTS as u32) as u8,
            integ: (bit % Axis::MAX_POINTS as u32) as u8,
        }
    }
}

/// The product security lattice `Conf × Integ`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SecLattice {
    conf: Axis,
    integ: Axis,
}

impl SecLattice {
    /// The classical instance the binary kind analysis is the image of:
    /// `public ⊑ secret` and `trusted ⊑ tainted`. This is the default
    /// lattice of every [`crate::Policy`].
    pub fn two_point() -> SecLattice {
        SecLattice {
            conf: Axis::two("conf", "public", "secret"),
            integ: Axis::two("integ", "trusted", "tainted"),
        }
    }

    /// The four-point diamond instance used by graded policies and the
    /// tutorial: `public ⊑ {confidential, restricted} ⊑ secret` and
    /// `trusted ⊑ {internal, external} ⊑ tainted`.
    pub fn diamond4() -> SecLattice {
        SecLattice {
            conf: Axis::diamond("conf", "public", "confidential", "restricted", "secret"),
            integ: Axis::diamond("integ", "trusted", "internal", "external", "tainted"),
        }
    }

    /// Builds a product lattice from two axes.
    pub fn product(conf: Axis, integ: Axis) -> SecLattice {
        SecLattice { conf, integ }
    }

    /// The confidentiality axis.
    pub fn conf(&self) -> &Axis {
        &self.conf
    }

    /// The integrity axis.
    pub fn integ(&self) -> &Axis {
        &self.integ
    }

    /// Component-wise `⊑`.
    pub fn leq(&self, a: Level, b: Level) -> bool {
        self.conf.leq(a.conf, b.conf) && self.integ.leq(a.integ, b.integ)
    }

    /// Component-wise join.
    pub fn join(&self, a: Level, b: Level) -> Level {
        Level {
            conf: self.conf.join(a.conf, b.conf),
            integ: self.integ.join(a.integ, b.integ),
        }
    }

    /// Component-wise meet.
    pub fn meet(&self, a: Level, b: Level) -> Level {
        Level {
            conf: self.conf.meet(a.conf, b.conf),
            integ: self.integ.meet(a.integ, b.integ),
        }
    }

    /// The least level (fully public, fully trusted).
    pub fn bottom(&self) -> Level {
        Level {
            conf: self.conf.bottom(),
            integ: self.integ.bottom(),
        }
    }

    /// The greatest level (top secret, fully tainted).
    pub fn top(&self) -> Level {
        Level {
            conf: self.conf.top(),
            integ: self.integ.top(),
        }
    }

    /// The level that classifies a name declared `secret` with no finer
    /// grading: confidentiality top, integrity bottom.
    pub fn secret(&self) -> Level {
        Level {
            conf: self.conf.top(),
            integ: self.integ.bottom(),
        }
    }

    /// Resolves a pair of axis labels to a level.
    pub fn level(&self, conf: &str, integ: &str) -> Option<Level> {
        Some(Level {
            conf: self.conf.index_of(conf)?,
            integ: self.integ.index_of(integ)?,
        })
    }

    /// All levels, in pinned display order (conf-major).
    pub fn levels(&self) -> impl Iterator<Item = Level> + '_ {
        (0..self.conf.len() as u8).flat_map(move |c| {
            (0..self.integ.len() as u8).map(move |i| Level { conf: c, integ: i })
        })
    }

    /// Renders a level with both axis labels, in pinned axis order:
    /// `conf:secret,integ:trusted`.
    pub fn show(&self, l: Level) -> String {
        format!(
            "conf:{},integ:{}",
            self.conf.label(l.conf),
            self.integ.label(l.integ)
        )
    }

    /// The down-set of `l` as a [`LevelSet`]: everything `⊑ l`. The
    /// attacker's clearance down-set is the "observable" region of the
    /// lattice.
    pub fn downset(&self, l: Level) -> LevelSet {
        let mut s = LevelSet::empty();
        for m in self.levels() {
            if self.leq(m, l) {
                s.insert(m);
            }
        }
        s
    }
}

/// A set of product levels packed into a `u64` (bit `l.bit()` set iff
/// `l ∈` the set). The working currency of the abstract level fixpoint.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct LevelSet(pub u64);

impl LevelSet {
    /// The empty set.
    pub fn empty() -> LevelSet {
        LevelSet(0)
    }

    /// The singleton `{l}`.
    pub fn singleton(l: Level) -> LevelSet {
        LevelSet(1u64 << l.bit())
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of levels in the set.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Adds a level; returns whether the set changed.
    pub fn insert(&mut self, l: Level) -> bool {
        let before = self.0;
        self.0 |= 1u64 << l.bit();
        self.0 != before
    }

    /// Membership.
    pub fn contains(self, l: Level) -> bool {
        self.0 & (1u64 << l.bit()) != 0
    }

    /// Set union.
    pub fn union(self, other: LevelSet) -> LevelSet {
        LevelSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: LevelSet) -> LevelSet {
        LevelSet(self.0 & other.0)
    }

    /// Set difference.
    pub fn minus(self, other: LevelSet) -> LevelSet {
        LevelSet(self.0 & !other.0)
    }

    /// Iterates members in pinned display order (ascending bit index).
    pub fn iter(self) -> impl Iterator<Item = Level> {
        let bits = self.0;
        (0..64u32)
            .filter(move |b| bits & (1u64 << b) != 0)
            .map(Level::from_bit)
    }

    /// The set of pairwise joins `{a ⊔ b : a ∈ self, b ∈ other}` — the
    /// level of a compound value ranges over the joins of its parts.
    pub fn pairwise_join(self, other: LevelSet, lat: &SecLattice) -> LevelSet {
        let mut out = LevelSet::empty();
        for a in self.iter() {
            for b in other.iter() {
                out.insert(lat.join(a, b));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_point_axis_orders() {
        let a = Axis::two("conf", "public", "secret");
        assert!(a.leq(0, 1));
        assert!(!a.leq(1, 0));
        assert_eq!(a.bottom(), 0);
        assert_eq!(a.top(), 1);
        assert_eq!(a.join(0, 1), 1);
        assert_eq!(a.meet(0, 1), 0);
        assert_eq!(a.label(0), "public");
        assert_eq!(a.index_of("secret"), Some(1));
    }

    #[test]
    fn diamond_join_meet() {
        let a = Axis::diamond("conf", "public", "confidential", "restricted", "secret");
        let (bot, l, r, top) = (0u8, 1u8, 2u8, 3u8);
        assert!(!a.leq(l, r) && !a.leq(r, l), "wings are incomparable");
        assert_eq!(a.join(l, r), top);
        assert_eq!(a.meet(l, r), bot);
        assert_eq!(a.join(bot, l), l);
        assert_eq!(a.meet(top, r), r);
        assert_eq!(a.bottom(), bot);
        assert_eq!(a.top(), top);
    }

    #[test]
    fn non_lattice_is_rejected() {
        // Two maximal elements with no join.
        let err = Axis::from_order("x", &["a", "b", "c"], &[("a", "b"), ("a", "c")]);
        assert!(matches!(err, Err(LatticeError::NotALattice(_, _))));
    }

    #[test]
    fn cycle_is_rejected() {
        let err = Axis::from_order("x", &["a", "b"], &[("a", "b"), ("b", "a")]);
        assert!(matches!(err, Err(LatticeError::NotAPartialOrder(_, _))));
    }

    #[test]
    fn chain_constructor() {
        let a = Axis::chain("conf", &["low", "mid", "high"]).unwrap();
        assert!(a.leq(0, 2));
        assert_eq!(a.join(0, 2), 2);
        assert_eq!(a.top(), 2);
    }

    #[test]
    fn product_order_is_componentwise() {
        let lat = SecLattice::diamond4();
        let a = lat.level("confidential", "trusted").unwrap();
        let b = lat.level("restricted", "internal").unwrap();
        assert!(!lat.leq(a, b) && !lat.leq(b, a));
        let j = lat.join(a, b);
        assert_eq!(lat.show(j), "conf:secret,integ:internal");
        let m = lat.meet(a, b);
        assert_eq!(lat.show(m), "conf:public,integ:trusted");
    }

    #[test]
    fn downset_of_clearance() {
        let lat = SecLattice::two_point();
        let bot = lat.bottom();
        let ds = lat.downset(bot);
        assert!(ds.contains(bot));
        assert_eq!(ds.len(), 1);
        let full = lat.downset(lat.top());
        assert_eq!(full.len(), 4);
    }

    #[test]
    fn level_set_roundtrip_and_order() {
        let lat = SecLattice::diamond4();
        let mut s = LevelSet::empty();
        for l in lat.levels() {
            s.insert(l);
        }
        assert_eq!(s.len(), 16);
        let collected: Vec<Level> = s.iter().collect();
        let expected: Vec<Level> = lat.levels().collect();
        assert_eq!(collected, expected, "iteration order is pinned");
    }

    #[test]
    fn pairwise_join_is_the_compound_rule() {
        let lat = SecLattice::two_point();
        let pubs = LevelSet::singleton(lat.bottom());
        let secs = LevelSet::singleton(lat.secret());
        let both = pubs.union(secs);
        let j = both.pairwise_join(pubs, &lat);
        assert!(j.contains(lat.bottom()) && j.contains(lat.secret()));
        let jj = secs.pairwise_join(secs, &lat);
        assert_eq!(jj, secs);
    }
}
