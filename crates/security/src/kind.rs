//! The `kind` operator (Definition 2), concrete and abstract.
//!
//! `kind : Val′ → {S, P}` classifies a value: a single "drop" of secret
//! makes the whole value secret — *except* under encryption with a secret
//! key, which re-publicises the ciphertext (the protection is the key).
//! Confounders are not considered (they are discarded by decryption), so
//! the kind of an encryption ignores its confounder.
//!
//! The abstract version runs the same classification over the CFA's
//! grammar: for each nonterminal it computes whether its language *may*
//! contain a secret-kind value and whether it may contain a public-kind
//! value, by a monotone fixpoint over the productions.

use crate::policy::Policy;
use nuspi_cfa::{Prod, Solution, VarId};
use nuspi_syntax::Value;
use std::fmt;

/// The kind of a value: secret or public.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Kind {
    /// Secret.
    S,
    /// Public.
    P,
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Kind::S => write!(f, "S"),
            Kind::P => write!(f, "P"),
        }
    }
}

/// `kind(w)` per Definition 2.
pub fn kind(w: &Value, policy: &Policy) -> Kind {
    match w {
        Value::Name(n) => {
            if policy.name_is_secret(*n) {
                Kind::S
            } else {
                Kind::P
            }
        }
        Value::Zero => Kind::P,
        Value::Suc(inner) => kind(inner, policy),
        Value::Pair(a, b) => {
            if kind(a, policy) == Kind::S || kind(b, policy) == Kind::S {
                Kind::S
            } else {
                Kind::P
            }
        }
        Value::Enc { payload, key, .. } => {
            if kind(key, policy) == Kind::S || payload.is_empty() {
                Kind::P
            } else if payload.iter().any(|w| kind(w, policy) == Kind::S) {
                Kind::S
            } else {
                Kind::P
            }
        }
    }
}

/// Per-nonterminal kind facts: whether the language may contain a
/// secret-kind value and whether it may contain a public-kind value.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct KindFacts {
    /// `∃ w ∈ L(v): kind(w) = S`.
    pub may_secret: bool,
    /// `∃ w ∈ L(v): kind(w) = P`.
    pub may_public: bool,
}

impl KindFacts {
    /// Whether the language is (known) non-empty.
    pub fn nonempty(self) -> bool {
        self.may_secret || self.may_public
    }
}

/// The abstract kind analysis: a fixpoint assigning [`KindFacts`] to every
/// flow variable of a solution.
#[derive(Clone, Debug)]
pub struct AbstractKind {
    facts: Vec<KindFacts>,
}

impl AbstractKind {
    /// Runs the fixpoint over the solved grammar.
    pub fn compute(sol: &Solution, policy: &Policy) -> AbstractKind {
        let n = sol.flow_vars().count();
        let mut facts = vec![KindFacts::default(); n];
        loop {
            let mut changed = false;
            for (id, _) in sol.flow_vars() {
                let mut here = facts[id.index()];
                for p in sol.prods_of_id(id) {
                    let f = prod_facts(p, &facts, policy);
                    here.may_secret |= f.may_secret;
                    here.may_public |= f.may_public;
                }
                if here != facts[id.index()] {
                    facts[id.index()] = here;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        AbstractKind { facts }
    }

    /// The facts for a nonterminal.
    pub fn facts(&self, id: VarId) -> KindFacts {
        self.facts.get(id.index()).copied().unwrap_or_default()
    }

    /// The facts of a single production, evaluated against the computed
    /// fixpoint — lets callers single out *which* production of a
    /// flagged κ entry can be secret-kind.
    pub fn facts_of_prod(&self, p: &Prod, policy: &Policy) -> KindFacts {
        prod_facts(p, &self.facts, policy)
    }
}

fn prod_facts(p: &Prod, facts: &[KindFacts], policy: &Policy) -> KindFacts {
    let get = |v: &VarId| facts.get(v.index()).copied().unwrap_or_default();
    match p {
        Prod::Name(n) => {
            if policy.is_secret(*n) {
                KindFacts {
                    may_secret: true,
                    may_public: false,
                }
            } else {
                KindFacts {
                    may_secret: false,
                    may_public: true,
                }
            }
        }
        Prod::Zero => KindFacts {
            may_secret: false,
            may_public: true,
        },
        Prod::Suc(a) => get(a),
        Prod::Pair(a, b) => {
            let (fa, fb) = (get(a), get(b));
            KindFacts {
                // a secret drop in either slot (with the other non-empty)
                may_secret: (fa.may_secret && fb.nonempty()) || (fb.may_secret && fa.nonempty()),
                may_public: fa.may_public && fb.may_public,
            }
        }
        Prod::Enc { args, key, .. } => {
            let fk = get(key);
            let all_nonempty = args.iter().all(|a| get(a).nonempty());
            let all_public = args.iter().all(|a| get(a).may_public);
            let some_secret = args.iter().any(|a| get(a).may_secret);
            KindFacts {
                // secret ciphertext: public key, non-empty payload, a
                // secret drop somewhere, every slot inhabited
                may_secret: fk.may_public && !args.is_empty() && some_secret && all_nonempty,
                // public ciphertext: secret key (any payload), or empty
                // payload, or public key with all-public payload
                may_public: (fk.may_secret && all_nonempty)
                    || (fk.nonempty() && args.is_empty())
                    || (fk.may_public && all_public),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_cfa::{analyze, FlowVar};
    use nuspi_syntax::{parse_process, Name, Symbol, Value};

    fn pol(secrets: &[&str]) -> Policy {
        Policy::with_secrets(secrets.iter().copied())
    }

    #[test]
    fn names_have_declared_kind() {
        let policy = pol(&["k"]);
        assert_eq!(kind(&Value::Name(Name::global("k")), &policy), Kind::S);
        assert_eq!(kind(&Value::Name(Name::global("c")), &policy), Kind::P);
    }

    #[test]
    fn numerals_are_public() {
        let policy = pol(&["k"]);
        assert_eq!(kind(&Value::numeral(4), &policy), Kind::P);
    }

    #[test]
    fn a_drop_of_secret_poisons_pairs() {
        let policy = pol(&["m"]);
        let w = Value::pair(Value::zero(), Value::name("m"));
        assert_eq!(kind(&w, &policy), Kind::S);
        let v = Value::pair(Value::zero(), Value::name("c"));
        assert_eq!(kind(&v, &policy), Kind::P);
    }

    #[test]
    fn suc_inherits_kind() {
        let policy = pol(&["m"]);
        assert_eq!(kind(&Value::suc(Value::name("m")), &policy), Kind::S);
    }

    #[test]
    fn secret_key_publicises_ciphertext() {
        let policy = pol(&["k", "m"]);
        let w = Value::enc(vec![Value::name("m")], Name::global("r"), Value::name("k"));
        assert_eq!(kind(&w, &policy), Kind::P, "protected by the secret key");
    }

    #[test]
    fn public_key_leaves_secret_payload_secret() {
        let policy = pol(&["m"]);
        let w = Value::enc(
            vec![Value::name("m")],
            Name::global("r"),
            Value::name("pubkey"),
        );
        assert_eq!(kind(&w, &policy), Kind::S);
    }

    #[test]
    fn empty_payload_is_public() {
        let policy = pol(&["m"]);
        let w = Value::enc(vec![], Name::global("r"), Value::name("pub"));
        assert_eq!(kind(&w, &policy), Kind::P);
    }

    #[test]
    fn confounders_do_not_affect_kind() {
        let policy = pol(&["r"]);
        let w = Value::enc(vec![Value::zero()], Name::global("r"), Value::name("pub"));
        assert_eq!(kind(&w, &policy), Kind::P, "confounders are discarded");
    }

    #[test]
    fn abstract_kind_matches_concrete_on_wmf_channels() {
        let src = "
            (new kAS) (new kBS) (
              ((new kAB) cAS<{kAB, new r1}:kAS>. cAB<{m, new r2}:kAB>.0
               | cBS(t). case t of {y}:kBS in cAB(z). case z of {q}:y in 0)
              | cAS(x). case x of {s}:kAS in cBS<{s, new r3}:kBS>.0
            )";
        let p = parse_process(src).unwrap();
        let sol = analyze(&p);
        let policy = pol(&["kAS", "kBS", "kAB", "m"]);
        let ak = AbstractKind::compute(&sol, &policy);
        // Everything flowing on the public channels is of kind P: the
        // ciphertexts are protected by secret keys.
        for c in ["cAS", "cBS", "cAB"] {
            let id = sol.var_id(FlowVar::Kappa(Symbol::intern(c))).unwrap();
            let f = ak.facts(id);
            assert!(!f.may_secret, "κ({c}) must be all-public");
            assert!(f.may_public);
        }
    }

    #[test]
    fn abstract_kind_flags_cleartext_secret() {
        let p = parse_process("(new m) c<m>.0").unwrap();
        let sol = analyze(&p);
        let policy = pol(&["m"]);
        let ak = AbstractKind::compute(&sol, &policy);
        let id = sol.var_id(FlowVar::Kappa(Symbol::intern("c"))).unwrap();
        assert!(ak.facts(id).may_secret);
    }

    #[test]
    fn abstract_kind_handles_recursive_grammars() {
        // κ(c) derives arbitrarily deep numerals; all public.
        let p = parse_process("c<0>.0 | !c(x).c<suc(x)>.0").unwrap();
        let sol = analyze(&p);
        let policy = pol(&[]);
        let ak = AbstractKind::compute(&sol, &policy);
        let id = sol.var_id(FlowVar::Kappa(Symbol::intern("c"))).unwrap();
        let f = ak.facts(id);
        assert!(f.may_public && !f.may_secret);
    }

    #[test]
    fn abstract_kind_secret_key_publicises() {
        let p = parse_process("(new k) (new m) c<{m, new r}:k>.0").unwrap();
        let sol = analyze(&p);
        let policy = pol(&["k", "m"]);
        let ak = AbstractKind::compute(&sol, &policy);
        let id = sol.var_id(FlowVar::Kappa(Symbol::intern("c"))).unwrap();
        let f = ak.facts(id);
        assert!(f.may_public && !f.may_secret);
    }

    #[test]
    fn abstract_kind_public_key_leaks() {
        let p = parse_process("(new m) c<{m, new r}:pub>.0").unwrap();
        let sol = analyze(&p);
        let policy = pol(&["m"]);
        let ak = AbstractKind::compute(&sol, &policy);
        let id = sol.var_id(FlowVar::Kappa(Symbol::intern("c"))).unwrap();
        assert!(ak.facts(id).may_secret);
    }
}
