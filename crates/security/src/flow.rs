//! The `level` operator: Definition 2 lifted to the product lattice.
//!
//! `level : Val′ → Conf × Integ` grades a value: the level of a compound
//! is the join of its parts — *except* under encryption with a key the
//! attacker cannot resolve, which re-publicises the ciphertext to lattice
//! bottom (the protection is the key). Confounders are discarded by
//! decryption and do not contribute.
//!
//! The abstract version ([`AbstractLevel`]) runs the same grading over
//! the CFA's grammar: for each nonterminal it computes the *set* of
//! levels its language may inhabit, as a monotone fixpoint over the
//! productions with [`LevelSet`] (a `u64` bitset) as the abstract domain.
//! On the two-point lattice with clearance at bottom this is exactly the
//! binary [`crate::kind::AbstractKind`] analysis — `may_secret` is "some
//! level outside the clearance down-set", `may_public` is "some level
//! inside it" — a correspondence the test suite checks production by
//! production.
//!
//! [`graded_flows`] is the lattice form of the confinement check
//! (Definition 4): no value may flow on an attacker-observable channel at
//! a level outside the attacker's clearance down-set. Ungraded policies
//! never take this path — [`crate::confinement`] remains the binary fast
//! path with byte-identical output.

use crate::lattice::{Level, LevelSet, SecLattice};
use crate::policy::Policy;
use nuspi_cfa::{analyze_with_attacker, FlowVar, Prod, Solution, VarId};
use nuspi_syntax::{Process, Symbol, Value};
use std::fmt;

/// `level(w)`: the lattice grade of a closed value.
pub fn level(w: &Value, policy: &Policy) -> Level {
    let lat = policy.lattice();
    match w {
        Value::Name(n) => policy.level_of(n.canonical()),
        Value::Zero => lat.bottom(),
        Value::Suc(inner) => level(inner, policy),
        Value::Pair(a, b) => lat.join(level(a, policy), level(b, policy)),
        Value::Enc { payload, key, .. } => {
            let protected = !lat.leq(level(key, policy), policy.clearance());
            if protected || payload.is_empty() {
                lat.bottom()
            } else {
                payload
                    .iter()
                    .fold(lat.bottom(), |acc, w| lat.join(acc, level(w, policy)))
            }
        }
    }
}

/// The abstract level analysis: a fixpoint assigning a [`LevelSet`] to
/// every flow variable of a solution. Runs *after* the solver on the
/// solved grammar — the solver itself never sees levels, which is what
/// keeps its transcripts independent of the policy's lattice.
#[derive(Clone, Debug)]
pub struct AbstractLevel {
    facts: Vec<LevelSet>,
    observable: LevelSet,
}

impl AbstractLevel {
    /// Runs the fixpoint over the solved grammar.
    pub fn compute(sol: &Solution, policy: &Policy) -> AbstractLevel {
        let observable = policy.lattice().downset(policy.clearance());
        let n = sol.flow_vars().count();
        let mut facts = vec![LevelSet::empty(); n];
        loop {
            let mut changed = false;
            for (id, _) in sol.flow_vars() {
                let mut here = facts[id.index()];
                for p in sol.prods_of_id(id) {
                    here = here.union(prod_levels(p, &facts, policy, observable));
                }
                if here != facts[id.index()] {
                    facts[id.index()] = here;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        AbstractLevel { facts, observable }
    }

    /// The level set of a nonterminal.
    pub fn facts(&self, id: VarId) -> LevelSet {
        self.facts.get(id.index()).copied().unwrap_or_default()
    }

    /// The level set of a single production, evaluated against the
    /// computed fixpoint — lets callers single out *which* production of
    /// a flagged κ entry escapes the clearance.
    pub fn facts_of_prod(&self, p: &Prod, policy: &Policy) -> LevelSet {
        prod_levels(p, &self.facts, policy, self.observable)
    }

    /// Levels of the nonterminal that escape the attacker's clearance
    /// down-set, in pinned display order.
    pub fn escaping(&self, id: VarId) -> impl Iterator<Item = Level> {
        self.facts(id).minus(self.observable).iter()
    }
}

fn prod_levels(p: &Prod, facts: &[LevelSet], policy: &Policy, observable: LevelSet) -> LevelSet {
    let lat = policy.lattice();
    let get = |v: &VarId| facts.get(v.index()).copied().unwrap_or_default();
    match p {
        Prod::Name(n) => LevelSet::singleton(policy.level_of(*n)),
        Prod::Zero => LevelSet::singleton(lat.bottom()),
        Prod::Suc(a) => get(a),
        Prod::Pair(a, b) => get(a).pairwise_join(get(b), lat),
        Prod::Enc { args, key, .. } => {
            let ks = get(key);
            let mut out = LevelSet::empty();
            if args.is_empty() {
                // Ciphertext with no payload carries nothing: bottom,
                // provided a key inhabits the slot at all.
                if !ks.is_empty() {
                    out.insert(lat.bottom());
                }
                return out;
            }
            if args.iter().any(|a| get(a).is_empty()) {
                // Some slot is uninhabited: the language is empty.
                return out;
            }
            // A key the attacker cannot resolve protects the payload:
            // the ciphertext grades at bottom.
            if !ks.minus(observable).is_empty() {
                out.insert(lat.bottom());
            }
            // A resolvable key exposes the payload joins.
            if !ks.intersect(observable).is_empty() {
                let joined = args
                    .iter()
                    .fold(LevelSet::singleton(lat.bottom()), |acc, a| {
                        acc.pairwise_join(get(a), lat)
                    });
                out = out.union(joined);
            }
            out
        }
    }
}

/// A value may flow on an observable channel at a level outside the
/// attacker's clearance down-set — the lattice edge `level ⋢ clearance`
/// names the violated constraint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FlowViolation {
    /// The observable channel (canonical).
    pub channel: Symbol,
    /// The escaping level of some value in `κ(channel)`.
    pub level: Level,
    /// The level of the channel itself.
    pub channel_level: Level,
    /// The attacker clearance the level escapes.
    pub clearance: Level,
}

impl FlowViolation {
    /// Renders the violated lattice edge with a policy's axis labels.
    pub fn describe(&self, lat: &SecLattice) -> String {
        format!(
            "value at {} may flow on observable channel `{}` (clearance {})",
            lat.show(self.level),
            self.channel,
            lat.show(self.clearance)
        )
    }
}

/// The outcome of the graded flow check.
#[derive(Debug)]
pub struct GradedReport {
    /// The analysed estimate (process composed with the most powerful
    /// attacker below the clearance).
    pub solution: Solution,
    /// The abstract level facts.
    pub levels: AbstractLevel,
    /// Violations in (channel, pinned level order); empty means every
    /// flow respects the lattice.
    pub violations: Vec<FlowViolation>,
}

impl GradedReport {
    /// Whether every flow respects the lattice.
    pub fn is_confined(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for FlowViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "level ({},{}) escapes clearance ({},{}) on `{}`",
            self.level.conf,
            self.level.integ,
            self.clearance.conf,
            self.clearance.integ,
            self.channel
        )
    }
}

/// Checks the lattice form of confinement: solves `p` together with the
/// most powerful attacker *below the clearance* (every name graded above
/// it is opaque, as is every `hide`-bound name), then demands that no
/// observable channel's κ contains a level outside the clearance
/// down-set.
pub fn graded_flows(p: &Process, policy: &Policy) -> GradedReport {
    let policy = policy.with_hidden_of(p);
    let opaque: std::collections::HashSet<Symbol> = policy.opaque_names().into_iter().collect();
    let attacked = analyze_with_attacker(p, &opaque);
    graded_flows_with(&policy, attacked.solution)
}

/// Graded flow check against a caller-provided solution.
pub fn graded_flows_with(policy: &Policy, solution: Solution) -> GradedReport {
    let lat = policy.lattice();
    let clearance = policy.clearance();
    let levels = AbstractLevel::compute(&solution, policy);
    let mut violations = Vec::new();
    let mut channels = solution.channels();
    channels.sort_by_key(|s| s.as_str());
    for chan in channels {
        let channel_level = policy.level_of(chan);
        let observable_chan =
            lat.leq(channel_level, clearance) || chan == nuspi_cfa::attacker::attacker_name();
        if !observable_chan {
            continue; // κ of an unobservable channel is unconstrained
        }
        if let Some(id) = solution.var_id(FlowVar::Kappa(chan)) {
            for l in levels.escaping(id) {
                violations.push(FlowViolation {
                    channel: chan,
                    level: l,
                    channel_level,
                    clearance,
                });
            }
        }
    }
    GradedReport {
        solution,
        levels,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::{kind, AbstractKind, Kind};
    use crate::lattice::SecLattice;
    use nuspi_cfa::analyze;
    use nuspi_syntax::{parse_process, Name};

    fn pol(secrets: &[&str]) -> Policy {
        Policy::with_secrets(secrets.iter().copied())
    }

    fn diamond_pol() -> Policy {
        Policy::with_lattice(SecLattice::diamond4())
    }

    #[test]
    fn concrete_level_projects_to_kind_on_two_point() {
        let policy = pol(&["k", "m"]);
        let lat = policy.lattice().clone();
        let cases = [
            Value::name(Name::global("m")),
            Value::name(Name::global("c")),
            Value::numeral(3),
            Value::pair(Value::zero(), Value::name("m")),
            Value::enc(vec![Value::name("m")], Name::global("r"), Value::name("k")),
            Value::enc(
                vec![Value::name("m")],
                Name::global("r"),
                Value::name("pub"),
            ),
            Value::enc(vec![], Name::global("r"), Value::name("pub")),
        ];
        for w in &cases {
            let l = level(w, &policy);
            let k = kind(w, &policy);
            assert_eq!(
                k == Kind::S,
                !lat.leq(l, policy.clearance()),
                "level/kind disagree on {w}"
            );
        }
    }

    #[test]
    fn abstract_level_projects_to_abstract_kind() {
        // On the two-point lattice, may_secret/may_public of AbstractKind
        // must equal the clearance split of AbstractLevel — per
        // nonterminal, on a corpus exercising every production form.
        let srcs = [
            "(new m) c<m>.0",
            "(new k) (new m) c<{m, new r}:k>.0",
            "(new m) c<{m, new r}:pub>.0",
            "c<0>.0 | !c(x).c<suc(x)>.0",
            "(new m) c<(m, 0)>.0 | c(z). let (a, b) = z in d<a>.0",
            "(new kAS) (new kBS) (
               ((new kAB) cAS<{kAB, new r1}:kAS>. cAB<{m, new r2}:kAB>.0
                | cBS(t). case t of {y}:kBS in cAB(z). case z of {q}:y in 0)
               | cAS(x). case x of {s}:kAS in cBS<{s, new r3}:kBS>.0)",
        ];
        let policy = pol(&["kAS", "kBS", "kAB", "k", "m"]);
        let observable = policy.lattice().downset(policy.clearance());
        for src in srcs {
            let p = parse_process(src).unwrap();
            let sol = analyze(&p);
            let ak = AbstractKind::compute(&sol, &policy);
            let al = AbstractLevel::compute(&sol, &policy);
            for (id, fv) in sol.flow_vars() {
                let kf = ak.facts(id);
                let ls = al.facts(id);
                assert_eq!(
                    kf.may_secret,
                    !ls.minus(observable).is_empty(),
                    "{src}: may_secret mismatch at {fv:?}"
                );
                assert_eq!(
                    kf.may_public,
                    !ls.intersect(observable).is_empty(),
                    "{src}: may_public mismatch at {fv:?}"
                );
            }
        }
    }

    #[test]
    fn graded_flows_match_confinement_on_two_point() {
        let confined = "(new k) (new m) c<{m, new r}:k>.0";
        let leaky = "(new m) c<m>.0";
        let policy = pol(&["k", "m"]);
        let ok = graded_flows(&parse_process(confined).unwrap(), &policy);
        assert!(ok.is_confined(), "{:?}", ok.violations);
        let bad = graded_flows(&parse_process(leaky).unwrap(), &policy);
        assert!(!bad.is_confined());
        // Both the concrete channel and the attacker ether are flagged.
        assert!(bad.violations.iter().any(|v| v.channel.as_str() == "c"));
    }

    #[test]
    fn intermediate_level_escapes_bottom_clearance() {
        // A confidential-graded name is not observable at bottom
        // clearance — the binary analysis could only call it "secret",
        // the graded one names the exact level.
        let mut policy = diamond_pol();
        let lat = policy.lattice().clone();
        let conf = lat.level("confidential", "trusted").unwrap();
        policy.grade("db", conf);
        let p = parse_process("(new db) c<db>.0").unwrap();
        let report = graded_flows(&p, &policy);
        assert!(!report.is_confined());
        let v = report
            .violations
            .iter()
            .find(|v| v.channel.as_str() == "c")
            .expect("violation on the concrete channel");
        assert_eq!(v.level, conf);
        assert_eq!(
            v.describe(&lat),
            "value at conf:confidential,integ:trusted may flow on observable \
             channel `c` (clearance conf:public,integ:trusted)"
        );
    }

    #[test]
    fn clearance_above_grade_permits_the_flow() {
        let mut policy = diamond_pol();
        let lat = policy.lattice().clone();
        let conf = lat.level("confidential", "trusted").unwrap();
        policy.grade("db", conf);
        policy.set_clearance(conf);
        let p = parse_process("(new db) c<db>.0").unwrap();
        let report = graded_flows(&p, &policy);
        assert!(report.is_confined(), "{:?}", report.violations);
    }

    #[test]
    fn incomparable_clearance_still_blocks() {
        // restricted ⋢ confidential: raising clearance along the other
        // wing of the diamond must not unlock the flow.
        let mut policy = diamond_pol();
        let lat = policy.lattice().clone();
        policy.grade("db", lat.level("restricted", "trusted").unwrap());
        policy.set_clearance(lat.level("confidential", "trusted").unwrap());
        let p = parse_process("(new db) c<db>.0").unwrap();
        let report = graded_flows(&p, &policy);
        assert!(!report.is_confined());
    }

    #[test]
    fn key_graded_above_clearance_protects_payload() {
        // Encryption under a confidential key re-publicises — even
        // though the key is not at lattice top.
        let mut policy = diamond_pol();
        let lat = policy.lattice().clone();
        policy.grade("k", lat.level("confidential", "trusted").unwrap());
        policy.grade("m", lat.level("secret", "trusted").unwrap());
        let p = parse_process("(new k) (new m) c<{m, new r}:k>.0").unwrap();
        let report = graded_flows(&p, &policy);
        assert!(report.is_confined(), "{:?}", report.violations);
    }

    #[test]
    fn hidden_name_is_opaque_to_the_attacker() {
        // `hide` needs no policy entry: the bound name is secret by
        // construction, so sending it in clear is a violation.
        let policy = Policy::new();
        let p = parse_process("(hide h) c<h>.0").unwrap();
        let report = graded_flows(&p, &policy);
        assert!(!report.is_confined(), "hidden name escaped unnoticed");
    }
}
