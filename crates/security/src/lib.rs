//! # nuspi-security — secrecy and non-interference on top of the CFA
//!
//! The two applications of §4 and §5 of the paper:
//!
//! **Dolev–Yao secrecy.** The [`kind`] operator (Definition 2) partitions
//! values into secret and public; [`carefulness`] is the dynamic notion
//! (no secret in clear on a public channel, Definition 3);
//! [`confinement`] the static one (a check on the `κ` component,
//! Definition 4); and the [`dolevyao`] module implements the knowledge
//! closure `C(W)` and the bounded active-intruder search of Definition 5.
//! Theorems 3 and 4 — confined processes are careful and never reveal
//! secrets — are validated end-to-end by the test and experiment suites.
//!
//! **Message independence.** The [`sort`] operator (Definition 6) tracks
//! a distinguished name `n*`; [`invariance`] is the static check on
//! sensitive program points (Definition 7); [`message_independent`] the
//! bounded public-testing notion (Definitions 8–9); and
//! [`static_message_independence`] packages Theorem 5's premises
//! (confinement + invariance ⟹ independence).
//!
//! **Graded flows.** The [`lattice`] module generalises the binary
//! partition to a product security lattice `Conf × Integ`
//! ([`SecLattice`]); policies grade names with [`Level`]s and carry an
//! attacker clearance, [`AbstractLevel`] re-grades the solved CFA grammar
//! with level *sets*, and [`graded_flows`] is the lattice form of the
//! confinement check. The two-point instance with clearance at bottom is
//! the binary analysis — same verdicts, same bytes.
//!
//! # Examples
//!
//! ```
//! use nuspi_security::{confinement, Policy};
//! use nuspi_syntax::parse_process;
//!
//! let p = parse_process("(new k) (new m) c<{m, new r}:k>.0")?;
//! let policy = Policy::with_secrets(["k", "m"]);
//! assert!(confinement(&p, &policy).is_confined());
//!
//! let leaky = parse_process("(new m) c<m>.0")?;
//! assert!(!confinement(&leaky, &policy).is_confined());
//! # Ok::<(), nuspi_syntax::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod careful;
mod confine;
pub mod dolevyao;
mod flow;
mod invariance;
mod kind;
pub mod lattice;
mod policy;
mod sort;
mod testing;

pub use audit::{audit, Audit, AuditConfig};
pub use careful::{carefulness, CarefulnessReport, CarefulnessViolation};
pub use confine::{confinement, confinement_with, ConfinementReport, ConfinementViolation};
pub use dolevyao::{reveals, reveals_value, Attack, IntruderConfig, Knowledge};
pub use flow::{
    graded_flows, graded_flows_with, level, AbstractLevel, FlowViolation, GradedReport,
};
pub use invariance::{invariance, InvarianceViolation};
pub use kind::{kind, AbstractKind, Kind, KindFacts};
pub use lattice::{Axis, LatticeError, Level, LevelSet, SecLattice};
pub use policy::Policy;
pub use sort::{n_star, n_star_name, sort, AbstractSort, Sort, SortFacts};
pub use testing::{
    message_independent, standard_battery, static_message_independence, witness_channel,
    Distinguisher, PublicTest, StaticIndependenceReport,
};
