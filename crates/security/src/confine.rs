//! Confinement — the static secrecy check (Definition 4).
//!
//! A process `P` is *confined* w.r.t. the secret partition `S` and an
//! estimate `(ρ, κ, ζ)` when the estimate is acceptable for `P` and
//! `κ(n) = Val_P` for every public channel `n`. The safety-relevant
//! direction of that equation is `κ(n) ⊆ Val_P` — *only public-kind values
//! flow on public channels* — which is what this module checks, using the
//! abstract [`kind`](crate::kind) fixpoint. The `⊇` direction — the
//! channel also carries *everything the environment can produce* — is
//! realised by solving `P` together with the most powerful public
//! attacker of Lemma 1 (see [`nuspi_cfa::attacker`]): attacker-suppliable
//! values flow back into `P`'s destructors, so reflection and type-flaw
//! attacks surface statically, and Proposition 1 (confinement is
//! preserved under composition with public contexts) holds by
//! construction.

use crate::kind::AbstractKind;
use crate::policy::Policy;
use nuspi_cfa::{accept, analyze_with_attacker, FlowVar, Solution};
use nuspi_syntax::{Name, Process, Symbol};
use std::fmt;

/// Why a process failed the confinement check. Variants carry the
/// offending names, channels, and Table 2 clauses as structured data so
/// downstream tooling (the `nuspi-diagnostics` lint passes) can attach
/// spans and witness traces without re-parsing prose.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConfinementViolation {
    /// A free name of the process is secret (the paper demands
    /// `fn(P) ⊆ P`).
    FreeSecretName(Name),
    /// The estimate is not acceptable for the process (Table 2 violation).
    NotAcceptable(accept::Violation),
    /// A secret-kind value may flow on a public channel.
    SecretOnPublicChannel {
        /// The offending public channel (canonical).
        channel: Symbol,
    },
    /// The most powerful attacker's knowledge may contain a secret-kind
    /// value (the revelation Theorem 4 rules out for confined processes).
    SecretDerivableByAttacker,
}

impl fmt::Display for ConfinementViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfinementViolation::FreeSecretName(n) => {
                write!(f, "free name `{n}` is declared secret")
            }
            ConfinementViolation::NotAcceptable(msg) => {
                write!(f, "estimate not acceptable: {msg}")
            }
            ConfinementViolation::SecretOnPublicChannel { channel } => {
                write!(
                    f,
                    "secret-kind value may flow on public channel `{channel}`"
                )
            }
            ConfinementViolation::SecretDerivableByAttacker => {
                write!(
                    f,
                    "a secret-kind value may become derivable by the attacker"
                )
            }
        }
    }
}

/// The outcome of a confinement check, carrying the solution and abstract
/// kind facts for further inspection.
#[derive(Debug)]
pub struct ConfinementReport {
    /// The analysed estimate.
    pub solution: Solution,
    /// The abstract kind facts.
    pub kinds: AbstractKind,
    /// Violations; empty means confined.
    pub violations: Vec<ConfinementViolation>,
}

impl ConfinementReport {
    /// Whether the process is confined.
    pub fn is_confined(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks confinement of `p` w.r.t. `policy`.
///
/// The estimate is the least solution of `P` *extended with the most
/// powerful public attacker* (Lemma 1's estimate): every public channel's
/// `κ` is closed under everything the environment can tap, synthesise and
/// re-inject — the `⊇` half of Definition 4's `κ(n) = Val_P`. This is
/// what surfaces reflection and type-flaw attacks statically.
pub fn confinement(p: &Process, policy: &Policy) -> ConfinementReport {
    // Hidden names are secret by construction; fold them into the policy
    // so the attacker treats them as opaque and the kind fixpoint grades
    // them secret. Processes without `hide` see the policy unchanged.
    let policy = policy.with_hidden_of(p);
    let secret = policy.secrets().collect();
    let attacked = analyze_with_attacker(p, &secret);
    confinement_with(p, &policy, attacked.solution)
}

/// Checks confinement against a caller-provided solution (which must be
/// acceptable for `p`; acceptability is re-validated).
pub fn confinement_with(p: &Process, policy: &Policy, solution: Solution) -> ConfinementReport {
    let mut violations = Vec::new();
    for n in policy.free_secret_names(p) {
        violations.push(ConfinementViolation::FreeSecretName(n));
    }
    for v in accept::verify(&solution, p) {
        violations.push(ConfinementViolation::NotAcceptable(v));
    }
    let kinds = AbstractKind::compute(&solution, policy);
    for chan in solution.channels() {
        if !policy.is_public(chan) {
            continue; // κ of a secret channel is unconstrained
        }
        if let Some(id) = solution.var_id(FlowVar::Kappa(chan)) {
            if kinds.facts(id).may_secret {
                if chan == nuspi_cfa::attacker::attacker_name() {
                    violations.push(ConfinementViolation::SecretDerivableByAttacker);
                } else {
                    violations.push(ConfinementViolation::SecretOnPublicChannel { channel: chan });
                }
            }
        }
    }
    ConfinementReport {
        solution,
        kinds,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_syntax::{builder, parse_process};

    fn pol(secrets: &[&str]) -> Policy {
        Policy::with_secrets(secrets.iter().copied())
    }

    const WMF: &str = "
        (new kAS) (new kBS) (
          ((new kAB) cAS<{kAB, new r1}:kAS>. cAB<{m, new r2}:kAB>.0
           | cBS(t). case t of {y}:kBS in cAB(z). case z of {q}:y in 0)
          | cAS(x). case x of {s}:kAS in cBS<{s, new r3}:kBS>.0
        )";

    /// Example 1 requires m secret, hence restricted; wrap it.
    fn wmf_closed() -> Process {
        let p = parse_process(WMF).unwrap();
        builder::restrict(nuspi_syntax::Name::global("m"), p)
    }

    fn wmf_policy() -> Policy {
        pol(&["kAS", "kBS", "kAB", "m"])
    }

    #[test]
    fn wmf_is_confined() {
        let report = confinement(&wmf_closed(), &wmf_policy());
        assert!(report.is_confined(), "{:?}", report.violations);
    }

    #[test]
    fn cleartext_secret_breaks_confinement() {
        let p = parse_process("(new m) c<m>.0").unwrap();
        let report = confinement(&p, &pol(&["m"]));
        assert!(!report.is_confined());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, ConfinementViolation::SecretOnPublicChannel { .. })));
    }

    #[test]
    fn free_secret_name_is_flagged() {
        let p = parse_process("c<0>.0 | d<m>.0").unwrap();
        let report = confinement(&p, &pol(&["m"]));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, ConfinementViolation::FreeSecretName(_))));
    }

    #[test]
    fn secret_under_public_key_breaks_confinement() {
        let p = parse_process("(new m) c<{m, new r}:pub>.0").unwrap();
        let report = confinement(&p, &pol(&["m"]));
        assert!(!report.is_confined());
    }

    #[test]
    fn secret_channel_may_carry_secrets() {
        // s itself is a secret channel: no constraint on κ(s).
        let p = parse_process("(new s) (new m) (s<m>.0 | s(x).0)").unwrap();
        let report = confinement(&p, &pol(&["s", "m"]));
        assert!(report.is_confined(), "{:?}", report.violations);
    }

    #[test]
    fn wmf_flawed_key_in_clear_is_rejected() {
        // The server forwards the session key unencrypted.
        let src = "
            (new kAS) (new m) (
              ((new kAB) cAS<{kAB, new r1}:kAS>. cAB<{m, new r2}:kAB>.0
               | cBS(y). cAB(z). case z of {q}:y in 0)
              | cAS(x). case x of {s}:kAS in cBS<s>.0
            )";
        let p = parse_process(src).unwrap();
        let report = confinement(&p, &pol(&["kAS", "kAB", "m"]));
        assert!(!report.is_confined());
        assert!(report.violations.iter().any(|v| matches!(
            v,
            ConfinementViolation::SecretOnPublicChannel { channel } if channel.as_str() == "cBS"
        )));
    }

    #[test]
    fn confinement_is_preserved_under_public_context() {
        // Proposition 1: composing a confined process with an attacker
        // that only knows public names keeps it confined.
        let p = wmf_closed();
        let attacker =
            parse_process("cAS(a). cBS<a>.0 | cAB(b). cAB<b>.0 | spy(x). spy<x>.0").unwrap();
        let composed = builder::par(p, attacker);
        let report = confinement(&composed, &wmf_policy());
        assert!(report.is_confined(), "{:?}", report.violations);
    }

    #[test]
    fn hidden_name_needs_no_policy_entry() {
        // `hide h` declares secrecy by construction: leaking h breaks
        // confinement under the empty policy.
        let p = parse_process("(hide h) c<h>.0").unwrap();
        let report = confinement(&p, &Policy::new());
        assert!(!report.is_confined());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, ConfinementViolation::SecretOnPublicChannel { .. })));
    }

    #[test]
    fn hidden_name_under_secret_key_is_confined() {
        let p = parse_process("(new k) (hide h) c<{h, new r}:k>.0").unwrap();
        let report = confinement(&p, &pol(&["k"]));
        assert!(report.is_confined(), "{:?}", report.violations);
    }

    #[test]
    fn report_exposes_solution() {
        let report = confinement(&wmf_closed(), &wmf_policy());
        assert!(report.solution.stats().productions > 0);
    }
}
