//! Security policies: the partition of names into secret and public.
//!
//! §4 of the paper partitions the names `N′` into public names `P` and
//! secret names `S`, closed under indexing (`n ∈ S iff Nₙ ⊆ S`) — which is
//! automatic here because the partition is declared on *canonical* base
//! symbols. Free names of analysed processes are required to be public;
//! secrets must be restricted.

use nuspi_syntax::{Name, Process, Symbol};
use std::collections::HashSet;

/// A partition of canonical names into secret (`S`) and public (`P`).
///
/// Any name whose canonical base is not declared secret is public.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Policy {
    secret: HashSet<Symbol>,
}

impl Policy {
    /// The all-public policy.
    pub fn new() -> Policy {
        Policy::default()
    }

    /// A policy declaring the given canonical names secret.
    pub fn with_secrets<I, S>(secrets: I) -> Policy
    where
        I: IntoIterator<Item = S>,
        S: Into<Symbol>,
    {
        Policy {
            secret: secrets.into_iter().map(Into::into).collect(),
        }
    }

    /// Declares another canonical name secret.
    pub fn add_secret(&mut self, s: impl Into<Symbol>) -> &mut Self {
        self.secret.insert(s.into());
        self
    }

    /// Whether the canonical name is secret (`n ∈ S`).
    pub fn is_secret(&self, n: Symbol) -> bool {
        self.secret.contains(&n)
    }

    /// Whether the canonical name is public (`n ∈ P`).
    pub fn is_public(&self, n: Symbol) -> bool {
        !self.is_secret(n)
    }

    /// Whether a (possibly indexed) name is secret; the partition is closed
    /// under indexing by construction.
    pub fn name_is_secret(&self, n: Name) -> bool {
        self.is_secret(n.canonical())
    }

    /// The declared secret symbols.
    pub fn secrets(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.secret.iter().copied()
    }

    /// The paper's well-formedness demand on analysed processes: all free
    /// names are public (secrets either do not occur or are restricted).
    /// Returns the offending free secret names.
    pub fn free_secret_names(&self, p: &Process) -> Vec<Name> {
        p.free_names()
            .into_iter()
            .filter(|n| self.name_is_secret(*n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_syntax::parse_process;

    #[test]
    fn default_policy_is_all_public() {
        let p = Policy::new();
        assert!(p.is_public(Symbol::intern("anything")));
    }

    #[test]
    fn declared_secrets_are_secret() {
        let p = Policy::with_secrets(["k", "m"]);
        assert!(p.is_secret(Symbol::intern("k")));
        assert!(p.is_secret(Symbol::intern("m")));
        assert!(p.is_public(Symbol::intern("c")));
    }

    #[test]
    fn partition_is_closed_under_indexing() {
        let p = Policy::with_secrets(["k"]);
        let fresh = Name::global("k").freshen();
        assert!(p.name_is_secret(fresh));
        assert!(!p.name_is_secret(Name::global("c").freshen()));
    }

    #[test]
    fn free_secret_names_flags_violations() {
        let policy = Policy::with_secrets(["m"]);
        let leaky = parse_process("c<m>.0").unwrap();
        assert_eq!(policy.free_secret_names(&leaky).len(), 1);
        let ok = parse_process("(new m) c<{m, new r}:k>.0").unwrap();
        assert!(policy.free_secret_names(&ok).is_empty());
    }

    #[test]
    fn add_secret_chains() {
        let mut p = Policy::new();
        p.add_secret("a").add_secret("b");
        assert_eq!(p.secrets().count(), 2);
    }
}
