//! Security policies: the assignment of lattice levels to names.
//!
//! §4 of the paper partitions the names `N′` into public names `P` and
//! secret names `S`, closed under indexing (`n ∈ S iff Nₙ ⊆ S`) — which is
//! automatic here because the partition is declared on *canonical* base
//! symbols. Free names of analysed processes are required to be public;
//! secrets must be restricted.
//!
//! The partition generalises to a grading: a policy carries a
//! [`SecLattice`] (defaulting to the classical two-point instance), an
//! optional level per name, and an attacker *clearance*. A name is
//! "secret" exactly when its level is not below the clearance — so a
//! policy that never mentions a level behaves byte-for-byte like the old
//! binary partition, and `is_secret`/`is_public` keep their meaning.

use crate::lattice::{Level, SecLattice};
use nuspi_syntax::{Name, Process, Symbol};
use std::collections::{BTreeMap, HashSet};

/// A grading of canonical names by security level.
///
/// Any name without a declared level or `secret` flag sits at lattice
/// bottom (public, trusted). Declared secrets without a finer grading sit
/// at [`SecLattice::secret`] (confidentiality top).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Policy {
    secret: HashSet<Symbol>,
    lattice: SecLattice,
    /// Graded entries; a `BTreeMap` for deterministic structural
    /// equality. Renderings sort by *string* (via [`Policy::graded`]),
    /// since `Symbol`'s `Ord` is interning order.
    levels: BTreeMap<Symbol, Level>,
    clearance: Level,
}

impl Default for Policy {
    fn default() -> Policy {
        let lattice = SecLattice::two_point();
        let clearance = lattice.bottom();
        Policy {
            secret: HashSet::new(),
            lattice,
            levels: BTreeMap::new(),
            clearance,
        }
    }
}

impl Policy {
    /// The all-public policy over the two-point lattice.
    pub fn new() -> Policy {
        Policy::default()
    }

    /// A policy declaring the given canonical names secret.
    pub fn with_secrets<I, S>(secrets: I) -> Policy
    where
        I: IntoIterator<Item = S>,
        S: Into<Symbol>,
    {
        Policy {
            secret: secrets.into_iter().map(Into::into).collect(),
            ..Policy::default()
        }
    }

    /// An all-public policy over a custom lattice; the attacker clearance
    /// starts at lattice bottom.
    pub fn with_lattice(lattice: SecLattice) -> Policy {
        let clearance = lattice.bottom();
        Policy {
            secret: HashSet::new(),
            lattice,
            levels: BTreeMap::new(),
            clearance,
        }
    }

    /// Declares another canonical name secret.
    pub fn add_secret(&mut self, s: impl Into<Symbol>) -> &mut Self {
        self.secret.insert(s.into());
        self
    }

    /// Grades a canonical name at an explicit lattice level.
    pub fn grade(&mut self, s: impl Into<Symbol>, level: Level) -> &mut Self {
        self.levels.insert(s.into(), level);
        self
    }

    /// Sets the attacker clearance: the attacker observes exactly the
    /// down-set of this level.
    pub fn set_clearance(&mut self, clearance: Level) -> &mut Self {
        self.clearance = clearance;
        self
    }

    /// The policy's lattice.
    pub fn lattice(&self) -> &SecLattice {
        &self.lattice
    }

    /// The attacker clearance.
    pub fn clearance(&self) -> Level {
        self.clearance
    }

    /// Whether the policy uses anything beyond the classical binary
    /// partition — a graded lattice, explicit levels, or a raised
    /// clearance. Ungraded policies take the historical code paths
    /// unchanged, which is what keeps their output byte-identical.
    pub fn is_graded(&self) -> bool {
        !self.levels.is_empty()
            || self.clearance != self.lattice.bottom()
            || self.lattice != SecLattice::two_point()
    }

    /// The level of a canonical name: its graded entry if present, the
    /// confidentiality top for bare `secret` declarations, bottom
    /// otherwise.
    pub fn level_of(&self, n: Symbol) -> Level {
        if let Some(l) = self.levels.get(&n) {
            *l
        } else if self.secret.contains(&n) {
            self.lattice.secret()
        } else {
            self.lattice.bottom()
        }
    }

    /// Whether the canonical name is secret (`n ∈ S`): its level is not
    /// observable at the attacker clearance.
    pub fn is_secret(&self, n: Symbol) -> bool {
        self.secret.contains(&n)
            || self
                .levels
                .get(&n)
                .is_some_and(|l| !self.lattice.leq(*l, self.clearance))
    }

    /// Whether the canonical name is public (`n ∈ P`).
    pub fn is_public(&self, n: Symbol) -> bool {
        !self.is_secret(n)
    }

    /// Whether a (possibly indexed) name is secret; the partition is closed
    /// under indexing by construction.
    pub fn name_is_secret(&self, n: Name) -> bool {
        self.is_secret(n.canonical())
    }

    /// The declared secret symbols (bare `secret` declarations only; use
    /// [`Policy::opaque_names`] for the full attacker-opaque set).
    pub fn secrets(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.secret.iter().copied()
    }

    /// The graded entries, sorted by name.
    pub fn graded(&self) -> impl Iterator<Item = (Symbol, Level)> + '_ {
        let mut v: Vec<(Symbol, Level)> = self.levels.iter().map(|(s, l)| (*s, *l)).collect();
        v.sort_by_key(|(s, _)| s.as_str());
        v.into_iter()
    }

    /// A copy of the policy with every `hide`-bound name of `p` declared
    /// secret. Hidden names are secret *by construction* — they need no
    /// policy entry, and on a graded lattice they sit at the
    /// confidentiality top like any bare secret. The security checks
    /// apply this augmentation at their entry points, so a process with
    /// no `hide` binder sees the policy unchanged.
    pub fn with_hidden_of(&self, p: &Process) -> Policy {
        let mut out = self.clone();
        for h in p.hidden_names() {
            out.secret.insert(h);
        }
        out
    }

    /// Every name the attacker must not resolve: bare secrets plus graded
    /// names whose level exceeds the clearance. This is the set handed to
    /// the most-powerful-attacker construction.
    pub fn opaque_names(&self) -> Vec<Symbol> {
        let mut out: Vec<Symbol> = self.secret.iter().copied().collect();
        for (s, l) in &self.levels {
            if !self.lattice.leq(*l, self.clearance) && !self.secret.contains(s) {
                out.push(*s);
            }
        }
        out.sort_by_key(|s| s.as_str());
        out
    }

    /// The paper's well-formedness demand on analysed processes: all free
    /// names are public (secrets either do not occur or are restricted).
    /// Returns the offending free secret names.
    pub fn free_secret_names(&self, p: &Process) -> Vec<Name> {
        p.free_names()
            .into_iter()
            .filter(|n| self.name_is_secret(*n))
            .collect()
    }

    /// Canonical JSON rendering. Names sort lexicographically; level
    /// labels render in pinned axis index order via [`SecLattice::show`],
    /// so two structurally equal policies always serialise to the same
    /// bytes regardless of declaration or hash order.
    pub fn to_json(&self) -> String {
        let mut secrets: Vec<&str> = self.secret.iter().map(|s| s.as_str()).collect();
        secrets.sort_unstable();
        let mut out = String::from("{\"secret\":[");
        for (i, s) in secrets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(s);
            out.push('"');
        }
        out.push_str("],\"levels\":{");
        for (i, (s, l)) in self.graded().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(s.as_str());
            out.push_str("\":\"");
            out.push_str(&self.lattice.show(l));
            out.push('"');
        }
        out.push_str("},\"clearance\":\"");
        out.push_str(&self.lattice.show(self.clearance));
        out.push_str("\"}");
        out
    }
}

impl std::fmt::Display for Policy {
    /// Same pinned ordering as [`Policy::to_json`], in prose form.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut secrets: Vec<&str> = self.secret.iter().map(|s| s.as_str()).collect();
        secrets.sort_unstable();
        write!(f, "secret {{{}}}", secrets.join(", "))?;
        if !self.levels.is_empty() {
            write!(f, "; levels {{")?;
            for (i, (s, l)) in self.graded().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{s}: {}", self.lattice.show(l))?;
            }
            write!(f, "}}")?;
        }
        write!(f, "; clearance {}", self.lattice.show(self.clearance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_syntax::parse_process;

    #[test]
    fn default_policy_is_all_public() {
        let p = Policy::new();
        assert!(p.is_public(Symbol::intern("anything")));
        assert!(!p.is_graded());
    }

    #[test]
    fn declared_secrets_are_secret() {
        let p = Policy::with_secrets(["k", "m"]);
        assert!(p.is_secret(Symbol::intern("k")));
        assert!(p.is_secret(Symbol::intern("m")));
        assert!(p.is_public(Symbol::intern("c")));
        assert!(!p.is_graded(), "bare secrets stay on the binary path");
    }

    #[test]
    fn partition_is_closed_under_indexing() {
        let p = Policy::with_secrets(["k"]);
        let fresh = Name::global("k").freshen();
        assert!(p.name_is_secret(fresh));
        assert!(!p.name_is_secret(Name::global("c").freshen()));
    }

    #[test]
    fn free_secret_names_flags_violations() {
        let policy = Policy::with_secrets(["m"]);
        let leaky = parse_process("c<m>.0").unwrap();
        assert_eq!(policy.free_secret_names(&leaky).len(), 1);
        let ok = parse_process("(new m) c<{m, new r}:k>.0").unwrap();
        assert!(policy.free_secret_names(&ok).is_empty());
    }

    #[test]
    fn add_secret_chains() {
        let mut p = Policy::new();
        p.add_secret("a").add_secret("b");
        assert_eq!(p.secrets().count(), 2);
    }

    #[test]
    fn graded_entry_above_clearance_is_secret() {
        let mut p = Policy::with_lattice(SecLattice::diamond4());
        let lat = p.lattice().clone();
        let conf = lat.level("confidential", "trusted").unwrap();
        p.grade("db", conf);
        assert!(p.is_secret(Symbol::intern("db")));
        assert!(p.is_graded());
        // Raise the clearance past the entry: it becomes observable.
        p.set_clearance(conf);
        assert!(p.is_public(Symbol::intern("db")));
    }

    #[test]
    fn bare_secret_sits_at_conf_top() {
        let mut p = Policy::with_lattice(SecLattice::diamond4());
        p.add_secret("k");
        let lat = p.lattice().clone();
        assert_eq!(p.level_of(Symbol::intern("k")), lat.secret());
        assert_eq!(p.level_of(Symbol::intern("c")), lat.bottom());
    }

    #[test]
    fn opaque_names_unions_secrets_and_high_grades() {
        let mut p = Policy::with_lattice(SecLattice::diamond4());
        let lat = p.lattice().clone();
        p.add_secret("k");
        p.grade("db", lat.level("restricted", "trusted").unwrap());
        p.grade("pub", lat.bottom());
        let opaque = p.opaque_names();
        let names: Vec<&str> = opaque.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, ["db", "k"]);
    }

    #[test]
    fn json_is_byte_stable_across_declaration_order() {
        // Satellite: lattice labels render in the pinned order and names
        // sort, so structurally equal policies serialise identically.
        let lat = SecLattice::diamond4();
        let mk = |order: &[&str]| {
            let mut p = Policy::with_lattice(lat.clone());
            for n in order {
                p.add_secret(*n);
            }
            p.grade("db", lat.level("restricted", "internal").unwrap());
            p.grade("audit", lat.level("confidential", "external").unwrap());
            p.set_clearance(lat.level("confidential", "trusted").unwrap());
            p.to_json()
        };
        let a = mk(&["k", "m", "s"]);
        let b = mk(&["s", "k", "m"]);
        assert_eq!(a, b);
        assert_eq!(
            a,
            "{\"secret\":[\"k\",\"m\",\"s\"],\"levels\":{\
             \"audit\":\"conf:confidential,integ:external\",\
             \"db\":\"conf:restricted,integ:internal\"},\
             \"clearance\":\"conf:confidential,integ:trusted\"}"
        );
    }

    #[test]
    fn display_matches_pinned_order() {
        let mut p = Policy::with_secrets(["m", "k"]);
        let lat = p.lattice().clone();
        p.grade("d", lat.secret());
        let shown = p.to_string();
        assert_eq!(
            shown,
            "secret {k, m}; levels {d: conf:secret,integ:trusted}; clearance conf:public,integ:trusted"
        );
    }
}
