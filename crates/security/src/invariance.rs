//! Invariance — the static non-interference check (Definition 7).
//!
//! A process `P(x)` (tracked through the substitution `x := n*`) is
//! *invariant* when the value of `x` is never used where an attacker could
//! grasp it: as a channel, as an encryption key, or in a comparison. The
//! check reads the `ζ` component of the estimate at each sensitive
//! program point:
//!
//! * encryption keys `{…}_{N^l}` and decryption keys must have abstract
//!   sort `I` (no `E`-sorted value reaches them);
//! * channel positions of prefixes and the scrutinees of `let`, integer
//!   `case` and decryption must not contain `n*` itself;
//! * both sides of a match must have sort `I`.
//!
//! Decomposing a term that merely *contains* `x` is allowed; only flow of
//! control may not depend on it.

use crate::sort::{AbstractSort, SortFacts};
use nuspi_cfa::{FlowVar, Prod, Solution};
use nuspi_syntax::{Expr, Label, Process, Symbol, Term};
use std::fmt;

/// A sensitive program point where the tracked name may be grasped.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InvarianceViolation {
    /// An encryption or decryption key may be `E`-sorted.
    ExposedKey {
        /// Label of the key occurrence.
        label: Label,
    },
    /// `n*` may reach a channel position or destructor scrutinee.
    TrackedAtControlPosition {
        /// Label of the occurrence.
        label: Label,
        /// What the position is (diagnostic).
        role: &'static str,
    },
    /// A side of a match may be `E`-sorted.
    ExposedComparison {
        /// Label of the compared occurrence.
        label: Label,
    },
}

impl fmt::Display for InvarianceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvarianceViolation::ExposedKey { label } => {
                write!(f, "key at {label} may expose the tracked message")
            }
            InvarianceViolation::TrackedAtControlPosition { label, role } => {
                write!(f, "tracked name may reach {role} at {label}")
            }
            InvarianceViolation::ExposedComparison { label } => {
                write!(f, "comparison at {label} may depend on the tracked message")
            }
        }
    }
}

/// Checks Definition 7 for `p` against a solution and its abstract sort
/// facts. Returns every violated condition (empty means invariant).
pub fn invariance(p: &Process, sol: &Solution, sorts: &AbstractSort) -> Vec<InvarianceViolation> {
    let mut c = Checker {
        sol,
        sorts,
        tracked: sorts.tracked(),
        violations: Vec::new(),
    };
    c.process(p);
    c.violations
}

struct Checker<'a> {
    sol: &'a Solution,
    sorts: &'a AbstractSort,
    tracked: Symbol,
    violations: Vec<InvarianceViolation>,
}

impl Checker<'_> {
    fn facts(&self, l: Label) -> SortFacts {
        match self.sol.var_id(FlowVar::Zeta(l)) {
            Some(id) => self.sorts.facts(id),
            None => SortFacts::default(),
        }
    }

    fn zeta_has_tracked(&self, l: Label) -> bool {
        self.sol
            .zeta(l)
            .iter()
            .any(|p| matches!(p, Prod::Name(n) if *n == self.tracked))
    }

    fn check_key_sort(&mut self, key: &Expr) {
        if self.facts(key.label).may_exposed {
            self.violations
                .push(InvarianceViolation::ExposedKey { label: key.label });
        }
    }

    fn check_control(&mut self, e: &Expr, role: &'static str) {
        if self.zeta_has_tracked(e.label) {
            self.violations
                .push(InvarianceViolation::TrackedAtControlPosition {
                    label: e.label,
                    role,
                });
        }
    }

    fn check_comparison(&mut self, e: &Expr) {
        if self.facts(e.label).may_exposed {
            self.violations
                .push(InvarianceViolation::ExposedComparison { label: e.label });
        }
    }

    /// Scans an expression for encryption sub-terms, whose key labels are
    /// sensitive regardless of where the encryption occurs.
    fn expr(&mut self, e: &Expr) {
        match &e.term {
            Term::Name(_) | Term::Var(_) | Term::Zero | Term::Val(_) => {}
            Term::Suc(inner) => self.expr(inner),
            Term::Pair(a, b) => {
                self.expr(a);
                self.expr(b);
            }
            Term::Enc { payload, key, .. } => {
                for p in payload {
                    self.expr(p);
                }
                self.check_key_sort(key);
                self.expr(key);
            }
        }
    }

    fn process(&mut self, p: &Process) {
        match p {
            Process::Nil => {}
            Process::Output { chan, msg, then } => {
                self.check_control(chan, "an output channel");
                self.expr(chan);
                self.expr(msg);
                self.process(then);
            }
            Process::Input { chan, then, .. } => {
                self.check_control(chan, "an input channel");
                self.expr(chan);
                self.process(then);
            }
            Process::Par(a, b) => {
                self.process(a);
                self.process(b);
            }
            Process::Restrict { body, .. } | Process::Hide { body, .. } => self.process(body),
            Process::Replicate(q) => self.process(q),
            Process::Match { lhs, rhs, then } => {
                self.check_comparison(lhs);
                self.check_comparison(rhs);
                self.expr(lhs);
                self.expr(rhs);
                self.process(then);
            }
            Process::Let { expr, then, .. } => {
                self.check_control(expr, "a pair-splitting scrutinee");
                self.expr(expr);
                self.process(then);
            }
            Process::CaseNat {
                expr, zero, succ, ..
            } => {
                self.check_control(expr, "an integer-case scrutinee");
                self.expr(expr);
                self.process(zero);
                self.process(succ);
            }
            Process::CaseDec {
                expr, key, then, ..
            } => {
                self.check_control(expr, "a decryption scrutinee");
                self.check_key_sort(key);
                self.expr(expr);
                self.expr(key);
                self.process(then);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::{n_star, n_star_name, AbstractSort};
    use nuspi_cfa::analyze;
    use nuspi_syntax::{builder as b, parse_process, Value, Var};

    fn check(p: &Process) -> Vec<InvarianceViolation> {
        let sol = analyze(p);
        let sorts = AbstractSort::compute(&sol, n_star());
        invariance(p, &sol, &sorts)
    }

    /// Builds `P[n*/x]` from an open process.
    fn track(open: &Process, x: Var) -> Process {
        open.subst(x, &Value::name(n_star_name()))
    }

    #[test]
    fn forwarding_the_message_is_invariant() {
        // P(x) = c<x>.0 — sending x in data position is fine.
        let x = Var::fresh("x");
        let p = track(&b::output(b::name("c"), b::var(x), b::nil()), x);
        assert!(check(&p).is_empty());
    }

    #[test]
    fn using_the_message_as_channel_is_flagged() {
        // P(x) = x<0>.0 — the attacker can see which channel fires.
        let x = Var::fresh("x");
        let p = track(&b::output(b::var(x), b::zero(), b::nil()), x);
        let vs = check(&p);
        assert!(vs
            .iter()
            .any(|v| matches!(v, InvarianceViolation::TrackedAtControlPosition { .. })));
    }

    #[test]
    fn using_the_message_as_key_is_flagged() {
        // P(x) = c<{0}:x>.0 — encrypting under x.
        let x = Var::fresh("x");
        let p = track(
            &b::output(
                b::name("c"),
                b::enc(vec![b::zero()], nuspi_syntax::Name::global("r"), b::var(x)),
                b::nil(),
            ),
            x,
        );
        let vs = check(&p);
        assert!(vs
            .iter()
            .any(|v| matches!(v, InvarianceViolation::ExposedKey { .. })));
    }

    #[test]
    fn comparing_the_message_is_flagged() {
        // P(x) = [x is 0] c<0>.0 — the implicit flow of §5.
        let x = Var::fresh("x");
        let p = track(
            &b::guard(
                b::var(x),
                b::zero(),
                b::output(b::name("c"), b::zero(), b::nil()),
            ),
            x,
        );
        let vs = check(&p);
        assert!(vs
            .iter()
            .any(|v| matches!(v, InvarianceViolation::ExposedComparison { .. })));
    }

    #[test]
    fn case_nat_on_the_message_is_flagged() {
        let src = "c(x). case x of 0: d<0>.0, suc(y): e<0>.0";
        // close it with a sender of n*
        let p = parse_process(&format!("c<n*>.0 | {src}")).unwrap();
        let vs = check(&p);
        assert!(vs
            .iter()
            .any(|v| matches!(v, InvarianceViolation::TrackedAtControlPosition { .. })));
    }

    #[test]
    fn decomposing_a_pair_containing_the_message_is_allowed() {
        // The paper allows destructing terms that contain x — only the
        // scrutinee itself being (exactly) n* is forbidden.
        let p = parse_process("c<(n*, 0)>.0 | c(z). let (a, b) = z in d<a>.0").unwrap();
        // The scrutinee z may be the *pair* containing n*, not n* itself.
        let vs = check(&p);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn encrypting_the_message_under_fixed_key_is_invariant() {
        let p = parse_process("c<{n*, new r}:k>.0").unwrap();
        assert!(check(&p).is_empty());
    }

    #[test]
    fn decryption_key_must_be_independent() {
        // The received x (which may be n*) is used as a decryption key.
        let p = parse_process("c<n*>.0 | c(x). case {0, new r}:k of {y}:x in 0").unwrap();
        let vs = check(&p);
        assert!(vs
            .iter()
            .any(|v| matches!(v, InvarianceViolation::ExposedKey { .. })));
    }

    #[test]
    fn tracked_name_inside_encryption_stays_invariant_downstream() {
        // B decrypts and re-encrypts — never exposing n* to control flow.
        let p = parse_process(
            "(new k) (c<{n*, new r}:k>.0 | c(z). case z of {q}:k in c<{q, new r2}:k>.0)",
        )
        .unwrap();
        assert!(check(&p).is_empty());
    }
}
