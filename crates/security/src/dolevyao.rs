//! The Dolev–Yao intruder: knowledge closure `C(W)` and the revelation
//! relation `R` (§4 of the paper).
//!
//! [`Knowledge`] maintains a set of values closed under *analysis*
//! (projecting pairs, peeling successors, decrypting ciphertexts whose key
//! is derivable) and decides *synthesis* ([`Knowledge::can_derive`]):
//! whether a value is in `C(W)` — constructible from the analysed set by
//! pairing, successor, and encryption with a known confounder. Names can
//! only be known, never synthesised, so secrecy of a name is exactly its
//! absence from the closure.
//!
//! [`reveals`] implements Definition 5 as a bounded active-intruder
//! search: starting from public knowledge `K₀`, the environment runs `R`
//! against the process — silently stepping, receiving on channels it
//! knows, and injecting derivable values — until either the secret
//! becomes derivable (an attack, returned as a narrated trace) or the
//! budget is exhausted. This bounded search is the reproduction's
//! substitute for the paper's universally-quantified attacker (see
//! DESIGN.md): it can *refute* secrecy with a concrete attack and gives
//! evidence for it when no attack is found.

use nuspi_semantics::{commitments, Action, Agent, CommitConfig};
use nuspi_syntax::{Name, Process, Symbol, Value};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashSet};
use std::rc::Rc;

/// An attacker knowledge set, kept closed under analysis.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Knowledge {
    values: BTreeSet<Rc<Value>>,
}

impl Knowledge {
    /// Knowledge of the given (public) canonical names, plus the numeral
    /// `0` (the closure always contains the numbers).
    pub fn from_names<I, S>(names: I) -> Knowledge
    where
        I: IntoIterator<Item = S>,
        S: Into<Symbol>,
    {
        let mut k = Knowledge::default();
        k.values.insert(Value::zero());
        for n in names {
            k.values.insert(Value::name(Name::global(n.into())));
        }
        k.saturate();
        k
    }

    /// Learns a value (e.g. observed on the network) and re-closes under
    /// analysis.
    pub fn learn(&mut self, w: Rc<Value>) {
        if self.values.insert(w) {
            self.saturate();
        }
    }

    /// Analysis closure: pairs are split, successors peeled, and
    /// ciphertexts opened once their key becomes derivable. Runs to
    /// fixpoint (opening one ciphertext may make another key derivable).
    fn saturate(&mut self) {
        loop {
            let mut new: Vec<Rc<Value>> = Vec::new();
            for w in &self.values {
                match &**w {
                    Value::Pair(a, b) => {
                        new.push(Rc::clone(a));
                        new.push(Rc::clone(b));
                    }
                    Value::Suc(inner) => new.push(Rc::clone(inner)),
                    Value::Enc { payload, key, .. } => {
                        if self.can_derive(key) {
                            new.extend(payload.iter().cloned());
                        }
                    }
                    Value::Name(_) | Value::Zero => {}
                }
            }
            let before = self.values.len();
            self.values.extend(new);
            if self.values.len() == before {
                break;
            }
        }
    }

    /// Synthesis: `w ∈ C(W)`?
    pub fn can_derive(&self, w: &Rc<Value>) -> bool {
        if self.values.contains(w) {
            return true;
        }
        match &**w {
            Value::Name(_) => false, // names cannot be synthesised
            Value::Zero => true,
            Value::Suc(inner) => self.can_derive(inner),
            Value::Pair(a, b) => self.can_derive(a) && self.can_derive(b),
            Value::Enc {
                payload,
                confounder,
                key,
            } => {
                // `∀ r ∈ W`: the confounder must itself be known.
                self.values.contains(&Value::name(*confounder))
                    && self.can_derive(key)
                    && payload.iter().all(|p| self.can_derive(p))
            }
        }
    }

    /// Synthesis modulo `⌊·⌋`: can a value with the same *canonical* form
    /// as `w` be derived? Definition 5 phrases revelation canonically
    /// (`⌊w⌋ ∈ W′`), and runtime knowledge holds freshly-indexed names.
    pub fn can_derive_canonical(&self, w: &Value) -> bool {
        let target = w.canonicalize();
        self.derive_canonical(&target)
    }

    fn derive_canonical(&self, target: &Rc<Value>) -> bool {
        if self.values.iter().any(|v| v.canonicalize() == *target) {
            return true;
        }
        match &**target {
            Value::Name(_) => false,
            Value::Zero => true,
            Value::Suc(inner) => self.derive_canonical(&inner.canonicalize()),
            Value::Pair(a, b) => {
                self.derive_canonical(&a.canonicalize()) && self.derive_canonical(&b.canonicalize())
            }
            Value::Enc {
                payload,
                confounder,
                key,
            } => {
                self.values.iter().any(
                    |v| matches!(&**v, Value::Name(n) if n.canonical() == confounder.canonical()),
                ) && self.derive_canonical(&key.canonicalize())
                    && payload
                        .iter()
                        .all(|p| self.derive_canonical(&p.canonicalize()))
            }
        }
    }

    /// Whether any known value is a name with the given canonical base —
    /// the revelation test of Definition 5 for name secrets.
    pub fn knows_name_with_base(&self, base: Symbol) -> bool {
        self.values.iter().any(|w| match &**w {
            Value::Name(n) => n.canonical() == base,
            _ => false,
        })
    }

    /// Whether the exact (indexed) name is known — channel knowledge.
    pub fn knows_channel(&self, n: Name) -> bool {
        self.values.contains(&Value::name(n))
    }

    /// Iterates over the analysed values.
    pub fn iter(&self) -> impl Iterator<Item = &Rc<Value>> {
        self.values.iter()
    }

    /// Number of analysed values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing is known.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Budgets for the active-intruder search.
#[derive(Clone, Debug)]
pub struct IntruderConfig {
    /// Replication unfolding budget per commitment enumeration.
    pub rep_budget: u32,
    /// Maximum interaction depth (τ steps, observations, injections).
    pub max_depth: usize,
    /// Maximum number of explored configurations.
    pub max_states: usize,
    /// Maximum distinct values injected per input opportunity.
    pub max_injections: usize,
    /// How many knowledge values are used as components for depth-1
    /// *synthesised pair* injections (0 disables pair synthesis).
    /// Forging a message from projected parts — e.g. the Otway–Rees
    /// key-in-clear attack re-assembles message 4 as
    /// `(run-id, {N_A, K_AB}K_AS)` — needs this.
    pub pair_components: usize,
    /// Extra values the intruder tries to inject, besides its knowledge.
    pub extra_candidates: Vec<Rc<Value>>,
}

impl Default for IntruderConfig {
    fn default() -> IntruderConfig {
        IntruderConfig {
            rep_budget: 1,
            max_depth: 12,
            max_states: 4000,
            max_injections: 8,
            pair_components: 0,
            extra_candidates: Vec::new(),
        }
    }
}

/// The result of a revelation search: a narrated attack trace if the
/// secret became derivable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Attack {
    /// Human-readable steps of the attack, in order.
    pub trace: Vec<String>,
    /// Size of the final knowledge.
    pub knowledge_size: usize,
}

/// Definition 5, bounded: may `p` reveal a value whose canonical base is
/// `secret` to an environment initially knowing the names `k0`?
///
/// Returns a concrete attack when one is found within the budgets, `None`
/// otherwise (evidence of secrecy, not proof — see DESIGN.md).
pub fn reveals(
    p: &Process,
    k0: &Knowledge,
    secret: Symbol,
    cfg: &IntruderConfig,
) -> Option<Attack> {
    search(p, k0, cfg, &mut |w: &Knowledge| {
        w.knows_name_with_base(secret)
    })
}

/// Like [`reveals`] but for an arbitrary target value: the environment
/// wins when `target` becomes derivable.
pub fn reveals_value(
    p: &Process,
    k0: &Knowledge,
    target: &Rc<Value>,
    cfg: &IntruderConfig,
) -> Option<Attack> {
    let goal = Rc::clone(target);
    search(p, k0, cfg, &mut move |w: &Knowledge| {
        w.can_derive_canonical(&goal)
    })
}

struct Configuration {
    process: Process,
    knowledge: Knowledge,
    trace: Vec<String>,
    depth: usize,
}

/// Best-first exploration order: configurations that have *learned more*
/// are expanded first (knowledge growth dominates, depth breaks ties).
/// This lets deep replay attacks surface long before the breadth of
/// garbage-injection branches exhausts the state budget.
struct Prioritised {
    score: (usize, Reverse<usize>, Reverse<u64>),
    conf: Configuration,
}

impl PartialEq for Prioritised {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score
    }
}
impl Eq for Prioritised {}
impl PartialOrd for Prioritised {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Prioritised {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score.cmp(&other.score)
    }
}

fn search(
    p: &Process,
    k0: &Knowledge,
    cfg: &IntruderConfig,
    goal: &mut dyn FnMut(&Knowledge) -> bool,
) -> Option<Attack> {
    let ccfg = CommitConfig {
        mode: nuspi_semantics::EvalMode::NuSpi,
        rep_budget: cfg.rep_budget,
    };
    if goal(k0) {
        return Some(Attack {
            trace: vec!["secret derivable from initial knowledge".to_owned()],
            knowledge_size: k0.len(),
        });
    }
    let mut queue: BinaryHeap<Prioritised> = BinaryHeap::new();
    let mut ticket = 0u64;
    let push_conf = |queue: &mut BinaryHeap<Prioritised>,
                     visited: &mut HashSet<(Process, BTreeSet<Rc<Value>>)>,
                     ticket: &mut u64,
                     conf: Configuration| {
        let key = (
            conf.process.clone(),
            conf.knowledge.iter().cloned().collect(),
        );
        if visited.insert(key) {
            *ticket += 1;
            queue.push(Prioritised {
                score: (conf.knowledge.len(), Reverse(conf.depth), Reverse(*ticket)),
                conf,
            });
        }
    };
    let mut visited: HashSet<(Process, BTreeSet<Rc<Value>>)> = HashSet::new();
    push_conf(
        &mut queue,
        &mut visited,
        &mut ticket,
        Configuration {
            process: p.clone(),
            knowledge: k0.clone(),
            trace: Vec::new(),
            depth: 0,
        },
    );
    let mut states = 0;
    while let Some(Prioritised { conf, .. }) = queue.pop() {
        if states >= cfg.max_states {
            return None;
        }
        states += 1;
        if conf.depth >= cfg.max_depth {
            continue;
        }
        let cs = commitments(&conf.process, &ccfg);
        for c in &cs {
            match (&c.action, &c.agent) {
                (Action::Tau, Agent::Proc(q)) => {
                    push_conf(
                        &mut queue,
                        &mut visited,
                        &mut ticket,
                        Configuration {
                            process: q.clone(),
                            knowledge: conf.knowledge.clone(),
                            trace: extend(&conf.trace, "internal step".to_owned()),
                            depth: conf.depth + 1,
                        },
                    );
                }
                (Action::Out(m), Agent::Conc(conc)) => {
                    if !conf.knowledge.knows_channel(*m) {
                        continue;
                    }
                    let mut knowledge = conf.knowledge.clone();
                    knowledge.learn(Rc::clone(&conc.value));
                    let step = format!("intercept {} on {}", conc.value, m);
                    let trace = extend(&conf.trace, step);
                    if goal(&knowledge) {
                        let mut trace = trace;
                        trace.push("secret now derivable".to_owned());
                        return Some(Attack {
                            knowledge_size: knowledge.len(),
                            trace,
                        });
                    }
                    push_conf(
                        &mut queue,
                        &mut visited,
                        &mut ticket,
                        Configuration {
                            process: conc.body.clone(),
                            knowledge,
                            trace,
                            depth: conf.depth + 1,
                        },
                    );
                }
                (Action::In(m), Agent::Abs(abs)) => {
                    if !conf.knowledge.knows_channel(*m) {
                        continue;
                    }
                    for v in injection_candidates(&conf.knowledge, cfg) {
                        let next = abs.body.subst(abs.var, &v);
                        push_conf(
                            &mut queue,
                            &mut visited,
                            &mut ticket,
                            Configuration {
                                process: next,
                                knowledge: conf.knowledge.clone(),
                                trace: extend(&conf.trace, format!("inject {v} on {m}")),
                                depth: conf.depth + 1,
                            },
                        );
                    }
                }
                _ => {}
            }
        }
    }
    None
}

fn extend(trace: &[String], step: String) -> Vec<String> {
    let mut t = trace.to_vec();
    t.push(step);
    t
}

fn injection_candidates(k: &Knowledge, cfg: &IntruderConfig) -> Vec<Rc<Value>> {
    // Composite values first: intercepted protocol messages (pairs and
    // ciphertexts) are the most valuable things to replay; bare names and
    // numerals follow.
    let composites = k
        .iter()
        .filter(|v| matches!(&***v, Value::Pair(_, _) | Value::Enc { .. }));
    let names = k.iter().filter(|v| matches!(&***v, Value::Name(_)));
    let rest = k.iter().filter(|v| {
        !matches!(
            &***v,
            Value::Pair(_, _) | Value::Enc { .. } | Value::Name(_)
        )
    });
    let mut out: Vec<Rc<Value>> = composites
        .chain(names)
        .chain(rest)
        .take(cfg.max_injections)
        .cloned()
        .collect();
    // Depth-1 pair synthesis: forged messages of the common
    // `(tag, ciphertext)` shape, assembled from known names and known
    // ciphertexts. This is what re-assembling Otway–Rees message 4 from
    // projected parts needs.
    if cfg.pair_components > 0 {
        let names: Vec<Rc<Value>> = k
            .iter()
            .filter(|v| matches!(&***v, Value::Name(_)))
            .take(cfg.pair_components)
            .cloned()
            .collect();
        let encs: Vec<Rc<Value>> = k
            .iter()
            .filter(|v| matches!(&***v, Value::Enc { .. }))
            .take(cfg.pair_components / 2 + 1)
            .cloned()
            .collect();
        for n in &names {
            for e in &encs {
                for p in [
                    Value::pair(Rc::clone(n), Rc::clone(e)),
                    Value::pair(Rc::clone(e), Rc::clone(n)),
                ] {
                    if !out.contains(&p) {
                        out.push(p);
                    }
                }
            }
        }
    }
    for v in &cfg.extra_candidates {
        if k.can_derive(v) && !out.contains(v) {
            out.push(Rc::clone(v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_syntax::parse_process;

    fn k0(names: &[&str]) -> Knowledge {
        Knowledge::from_names(names.iter().copied())
    }

    fn cfg() -> IntruderConfig {
        IntruderConfig::default()
    }

    #[test]
    fn closure_contains_numbers_and_projections() {
        let mut k = k0(&["c"]);
        k.learn(Value::pair(Value::name("a"), Value::numeral(2)));
        assert!(k.can_derive(&Value::name("a")));
        assert!(k.can_derive(&Value::numeral(1)), "peel successors");
        assert!(k.can_derive(&Value::numeral(9)), "rebuild successors");
        assert!(!k.can_derive(&Value::name("unknown")));
    }

    #[test]
    fn synthesis_builds_pairs() {
        let k = k0(&["a", "b"]);
        let w = Value::pair(
            Value::name("a"),
            Value::pair(Value::name("b"), Value::zero()),
        );
        assert!(k.can_derive(&w));
    }

    #[test]
    fn decryption_requires_the_key() {
        let ct = Value::enc(vec![Value::name("m")], Name::global("r"), Value::name("k"));
        let mut k = k0(&["c"]);
        k.learn(Rc::clone(&ct));
        assert!(!k.can_derive(&Value::name("m")), "key unknown");
        k.learn(Value::name("k"));
        assert!(k.can_derive(&Value::name("m")), "key known → payload out");
    }

    #[test]
    fn nested_decryption_cascades() {
        // {k2}k1 and {m}k2: learning k1 must open both layers.
        let inner = Value::enc(
            vec![Value::name("m")],
            Name::global("r2"),
            Value::name("k2"),
        );
        let outer = Value::enc(
            vec![Value::name("k2")],
            Name::global("r1"),
            Value::name("k1"),
        );
        let mut k = k0(&[]);
        k.learn(inner);
        k.learn(outer);
        assert!(!k.can_derive(&Value::name("m")));
        k.learn(Value::name("k1"));
        assert!(k.can_derive(&Value::name("m")), "cascaded analysis");
    }

    #[test]
    fn encryption_synthesis_needs_a_known_confounder() {
        let k = k0(&["k", "m", "r"]);
        let with_known_conf =
            Value::enc(vec![Value::name("m")], Name::global("r"), Value::name("k"));
        let with_unknown_conf = Value::enc(
            vec![Value::name("m")],
            Name::global("hidden"),
            Value::name("k"),
        );
        assert!(k.can_derive(&with_known_conf));
        assert!(!k.can_derive(&with_unknown_conf));
    }

    #[test]
    fn reveals_nothing_from_silent_process() {
        let p = parse_process("(new m) 0").unwrap();
        assert!(reveals(&p, &k0(&["c"]), Symbol::intern("m"), &cfg()).is_none());
    }

    #[test]
    fn cleartext_leak_is_found() {
        let p = parse_process("(new m) c<m>.0").unwrap();
        let attack = reveals(&p, &k0(&["c"]), Symbol::intern("m"), &cfg());
        assert!(attack.is_some());
        let attack = attack.unwrap();
        assert!(attack.trace.iter().any(|s| s.contains("intercept")));
    }

    #[test]
    fn encrypted_secret_under_restricted_key_survives() {
        let p = parse_process("(new k) (new m) c<{m, new r}:k>.0").unwrap();
        assert!(reveals(&p, &k0(&["c"]), Symbol::intern("m"), &cfg()).is_none());
    }

    #[test]
    fn key_leak_then_ciphertext_is_fatal() {
        // The process leaks the key first, then the ciphertext.
        let p = parse_process("(new k) (new m) (c<k>.0 | c<{m, new r}:k>.0)").unwrap();
        let attack = reveals(&p, &k0(&["c"]), Symbol::intern("m"), &cfg());
        assert!(attack.is_some());
    }

    #[test]
    fn intruder_cannot_use_unknown_channels() {
        // The leak happens on a restricted channel the intruder never
        // learns.
        let p = parse_process("(new d) (new m) (d<m>.0 | d(x).0)").unwrap();
        assert!(reveals(&p, &k0(&["c"]), Symbol::intern("m"), &cfg()).is_none());
    }

    #[test]
    fn extruded_channel_becomes_attack_surface() {
        // The process first publishes its private channel d, then sends
        // the secret on it.
        let p = parse_process("(new d) (new m) c<d>.d<m>.0").unwrap();
        let attack = reveals(&p, &k0(&["c"]), Symbol::intern("m"), &cfg());
        assert!(attack.is_some(), "intruder must chain the extruded channel");
    }

    #[test]
    fn active_injection_unlocks_a_leak() {
        // The process echoes whatever it receives, encrypting the secret
        // under the received key: injecting a known key breaks it.
        let p = parse_process("(new m) c(k). c<{m, new r}:k>.0").unwrap();
        let attack = reveals(&p, &k0(&["c", "evil"]), Symbol::intern("m"), &cfg());
        assert!(attack.is_some(), "inject evil key, decrypt the reply");
    }

    #[test]
    fn oracle_decryption_attack() {
        // A decryption oracle: receives a ciphertext under k and returns
        // the payload in clear. Replaying the protocol's own ciphertext
        // extracts the secret.
        let p =
            parse_process("(new k) (new m) (c<{m, new r}:k>.0 | c(x). case x of {y}:k in c<y>.0)")
                .unwrap();
        let attack = reveals(&p, &k0(&["c"]), Symbol::intern("m"), &cfg());
        assert!(attack.is_some(), "replay ciphertext into the oracle");
    }

    #[test]
    fn wmf_keeps_its_payload_secret() {
        let src = "
            (new m) (new kAS) (new kBS) (
              ((new kAB) cAS<{kAB, new r1}:kAS>. cAB<{m, new r2}:kAB>.0
               | cBS(t). case t of {y}:kBS in cAB(z). case z of {q}:y in 0)
              | cAS(x). case x of {s}:kAS in cBS<{s, new r3}:kBS>.0
            )";
        let p = parse_process(src).unwrap();
        let k = k0(&["cAS", "cBS", "cAB"]);
        assert!(reveals(&p, &k, Symbol::intern("m"), &cfg()).is_none());
        assert!(reveals(&p, &k, Symbol::intern("kAB"), &cfg()).is_none());
    }

    #[test]
    fn reveals_value_targets_structures() {
        let p = parse_process("(new m) c<(m, 0)>.0").unwrap();
        let target = Value::name("m");
        let attack = reveals_value(&p, &k0(&["c"]), &target, &cfg());
        assert!(attack.is_some(), "projection must expose the component");
    }

    #[test]
    fn initial_knowledge_already_contains_public_secret() {
        // Declaring a *public* name as the "secret" target: trivially known.
        let p = parse_process("0").unwrap();
        let attack = reveals(&p, &k0(&["m"]), Symbol::intern("m"), &cfg());
        assert!(attack.is_some());
        assert_eq!(attack.unwrap().trace.len(), 1);
    }
}
