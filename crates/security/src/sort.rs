//! The `sort` operator (Definition 6), concrete and abstract.
//!
//! §5 tracks where the value bound to the distinguished free variable `x`
//! of `P(x)` can reach, by substituting a special canonical name `n*` for
//! it. A value has sort `E` (exposed) when `n*` is visible in it, and sort
//! `I` (independent) when `n*` does not occur or occurs only under an
//! encryption — ciphertexts always have sort `I`.

use nuspi_cfa::{Prod, Solution, VarId};
use nuspi_syntax::{Name, Symbol, Value};
use std::fmt;

/// The distinguished tracking name `n*`. It must belong to the secret
/// partition (`n* ∈ S`) when combining invariance with confinement
/// (Theorem 5).
pub fn n_star() -> Symbol {
    Symbol::intern("n*")
}

/// The tracking name as a [`Name`] value, for substitution into `P(x)`.
pub fn n_star_name() -> Name {
    Name::global(n_star())
}

/// The sort of a value: independent of `n*`, or exposing it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sort {
    /// `n*` is not visible.
    I,
    /// `n*` is visible.
    E,
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::I => write!(f, "I"),
            Sort::E => write!(f, "E"),
        }
    }
}

/// `sort(w)` per Definition 6, tracking the canonical name `tracked`.
pub fn sort(w: &Value, tracked: Symbol) -> Sort {
    match w {
        Value::Name(n) => {
            if n.canonical() == tracked {
                Sort::E
            } else {
                Sort::I
            }
        }
        Value::Zero => Sort::I,
        Value::Suc(inner) => sort(inner, tracked),
        Value::Pair(a, b) => {
            if sort(a, tracked) == Sort::E || sort(b, tracked) == Sort::E {
                Sort::E
            } else {
                Sort::I
            }
        }
        // Encryption hides everything: sort(enc{…}) = I.
        Value::Enc { .. } => Sort::I,
    }
}

/// Per-nonterminal sort facts.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SortFacts {
    /// `∃ w ∈ L(v): sort(w) = E`.
    pub may_exposed: bool,
    /// `∃ w ∈ L(v): sort(w) = I`.
    pub may_independent: bool,
}

impl SortFacts {
    /// Whether the language is (known) non-empty.
    pub fn nonempty(self) -> bool {
        self.may_exposed || self.may_independent
    }
}

/// The abstract sort analysis over a solved grammar.
#[derive(Clone, Debug)]
pub struct AbstractSort {
    facts: Vec<SortFacts>,
    tracked: Symbol,
}

impl AbstractSort {
    /// Runs the fixpoint, tracking the canonical name `tracked`
    /// (typically [`n_star`]).
    pub fn compute(sol: &Solution, tracked: Symbol) -> AbstractSort {
        let n = sol.flow_vars().count();
        let mut facts = vec![SortFacts::default(); n];
        loop {
            let mut changed = false;
            for (id, _) in sol.flow_vars() {
                let mut here = facts[id.index()];
                for p in sol.prods_of_id(id) {
                    let f = prod_facts(p, &facts, tracked);
                    here.may_exposed |= f.may_exposed;
                    here.may_independent |= f.may_independent;
                }
                if here != facts[id.index()] {
                    facts[id.index()] = here;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        AbstractSort { facts, tracked }
    }

    /// The facts for a nonterminal.
    pub fn facts(&self, id: VarId) -> SortFacts {
        self.facts.get(id.index()).copied().unwrap_or_default()
    }

    /// The tracked canonical name.
    pub fn tracked(&self) -> Symbol {
        self.tracked
    }

    /// The facts of a single production, evaluated against the computed
    /// fixpoint — lets callers single out *which* production of a
    /// flagged program point can be `E`-sorted.
    pub fn facts_of_prod(&self, p: &Prod) -> SortFacts {
        prod_facts(p, &self.facts, self.tracked)
    }
}

fn prod_facts(p: &Prod, facts: &[SortFacts], tracked: Symbol) -> SortFacts {
    let get = |v: &VarId| facts.get(v.index()).copied().unwrap_or_default();
    match p {
        Prod::Name(n) => {
            if *n == tracked {
                SortFacts {
                    may_exposed: true,
                    may_independent: false,
                }
            } else {
                SortFacts {
                    may_exposed: false,
                    may_independent: true,
                }
            }
        }
        Prod::Zero => SortFacts {
            may_exposed: false,
            may_independent: true,
        },
        Prod::Suc(a) => get(a),
        Prod::Pair(a, b) => {
            let (fa, fb) = (get(a), get(b));
            SortFacts {
                may_exposed: (fa.may_exposed && fb.nonempty()) || (fb.may_exposed && fa.nonempty()),
                may_independent: fa.may_independent && fb.may_independent,
            }
        }
        Prod::Enc { args, key, .. } => {
            let inhabited = get(key).nonempty() && args.iter().all(|a| get(a).nonempty());
            SortFacts {
                may_exposed: false,
                may_independent: inhabited,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_cfa::{analyze, FlowVar};
    use nuspi_syntax::{builder as b, parse_process, Var};

    #[test]
    fn sorts_of_basic_values() {
        let t = n_star();
        assert_eq!(sort(&Value::Name(n_star_name()), t), Sort::E);
        assert_eq!(sort(&Value::name("a"), t), Sort::I);
        assert_eq!(sort(&Value::numeral(2), t), Sort::I);
    }

    #[test]
    fn pairs_expose_either_component() {
        let t = n_star();
        let w = Value::pair(Value::zero(), Value::name(n_star_name()));
        assert_eq!(sort(&w, t), Sort::E);
    }

    #[test]
    fn encryption_hides_the_tracked_name() {
        let t = n_star();
        let w = Value::enc(
            vec![Value::name(n_star_name())],
            Name::global("r"),
            Value::name("k"),
        );
        assert_eq!(sort(&w, t), Sort::I);
    }

    #[test]
    fn suc_inherits_sort() {
        let t = n_star();
        assert_eq!(sort(&Value::suc(Value::name(n_star_name())), t), Sort::E);
    }

    #[test]
    fn abstract_sort_tracks_flows() {
        // P(x) with x := n*, forwarded in clear on d.
        let x = Var::fresh("x");
        let open = b::input(
            b::name("c"),
            x,
            b::output(b::name("d"), b::var(x), b::nil()),
        );
        let p = b::par(
            b::output(b::name("c"), b::name_expr(n_star_name()), b::nil()),
            open,
        );
        let sol = analyze(&p);
        let d = sol.var_id(FlowVar::Kappa(Symbol::intern("d"))).unwrap();
        let st = AbstractSort::compute(&sol, n_star());
        assert!(st.facts(d).may_exposed);
    }

    #[test]
    fn abstract_sort_encryption_is_independent() {
        let p = parse_process("c<{n*, new r}:k>.0").unwrap();
        let sol = analyze(&p);
        let c = sol.var_id(FlowVar::Kappa(Symbol::intern("c"))).unwrap();
        let st = AbstractSort::compute(&sol, n_star());
        let f = st.facts(c);
        assert!(f.may_independent && !f.may_exposed);
    }

    #[test]
    fn abstract_sort_handles_recursion() {
        let p = parse_process("c<n*>.0 | !c(x).c<suc(x)>.0").unwrap();
        let sol = analyze(&p);
        let c = sol.var_id(FlowVar::Kappa(Symbol::intern("c"))).unwrap();
        let st = AbstractSort::compute(&sol, n_star());
        assert!(st.facts(c).may_exposed);
    }
}
