//! Carefulness — the dynamic secrecy notion (Definition 3).
//!
//! `P` is careful w.r.t. `S` iff along every execution `P →* P′ —α→ P″`,
//! every output premise `R —m̄→ (νr̃)⟨w^l⟩R′` used in the derivation with a
//! public channel `m` sends a public-kind value (`kind(w) = P`).
//!
//! The monitor explores the bounded `τ`-reachable state space and checks
//! *every* commitment's output premises — including those consumed inside
//! internal communications, which the commitment machinery records
//! explicitly. Theorem 3 (confined ⟹ careful) is validated by the test
//! and experiment suites against this monitor.

use crate::kind::{kind, Kind};
use crate::policy::Policy;
use nuspi_semantics::{explore_tau, ExecConfig, ExploreStats};
use nuspi_syntax::{Process, Symbol, Value};
use std::fmt;
use std::rc::Rc;

/// A witnessed violation of carefulness: a secret-kind value sent on a
/// public channel in some reachable state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CarefulnessViolation {
    /// The public channel (canonical).
    pub channel: Symbol,
    /// The secret-kind value that was sent.
    pub value: Rc<Value>,
    /// `τ`-depth bookkeeping: how many states had been visited when the
    /// violation was found.
    pub state_index: usize,
}

impl fmt::Display for CarefulnessViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "secret value {} sent on public channel {}",
            self.value, self.channel
        )
    }
}

/// The outcome of a carefulness run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CarefulnessReport {
    /// Violations found (empty means careful within the explored bound).
    pub violations: Vec<CarefulnessViolation>,
    /// Exploration statistics; if `stats.truncated` the verdict is only
    /// valid for the explored prefix.
    pub stats: ExploreStats,
}

impl CarefulnessReport {
    /// Whether no violation was observed.
    pub fn is_careful(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs the carefulness monitor over the bounded state space of `p`.
pub fn carefulness(p: &Process, policy: &Policy, cfg: &ExecConfig) -> CarefulnessReport {
    // `hide`-bound names are secret by construction (cf. `confinement`).
    let policy = &policy.with_hidden_of(p);
    let mut violations = Vec::new();
    let mut state_index = 0;
    let stats = explore_tau(p, cfg, |_state, commitments| {
        state_index += 1;
        for c in commitments {
            for out in &c.outputs {
                if policy.is_public(out.channel.canonical()) && kind(&out.value, policy) == Kind::S
                {
                    violations.push(CarefulnessViolation {
                        channel: out.channel.canonical(),
                        value: Rc::clone(&out.value),
                        state_index,
                    });
                }
            }
        }
        true
    });
    CarefulnessReport { violations, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_syntax::parse_process;

    fn pol(secrets: &[&str]) -> Policy {
        Policy::with_secrets(secrets.iter().copied())
    }

    fn cfg() -> ExecConfig {
        ExecConfig::default()
    }

    #[test]
    fn public_data_on_public_channels_is_careful() {
        let p = parse_process("c<0>.0 | c(x).d<x>.0").unwrap();
        let r = carefulness(&p, &pol(&["m"]), &cfg());
        assert!(r.is_careful());
        assert!(!r.stats.truncated);
    }

    #[test]
    fn cleartext_secret_is_flagged_immediately() {
        let p = parse_process("(new m) c<m>.0").unwrap();
        let r = carefulness(&p, &pol(&["m"]), &cfg());
        assert!(!r.is_careful());
        assert_eq!(r.violations[0].channel.as_str(), "c");
    }

    #[test]
    fn secret_inside_internal_tau_is_still_flagged() {
        // The secret is consumed by an internal communication on a public
        // channel — Definition 3 covers the output *premise*.
        let p = parse_process("(new m) (c<m>.0 | c(x).0)").unwrap();
        let r = carefulness(&p, &pol(&["m"]), &cfg());
        assert!(!r.is_careful());
    }

    #[test]
    fn secret_on_secret_channel_is_fine() {
        let p = parse_process("(new s) (new m) (s<m>.0 | s(x).0)").unwrap();
        let r = carefulness(&p, &pol(&["s", "m"]), &cfg());
        assert!(r.is_careful(), "{:?}", r.violations);
    }

    #[test]
    fn encrypted_secret_under_secret_key_is_fine() {
        let p = parse_process("(new k) (new m) c<{m, new r}:k>.0").unwrap();
        let r = carefulness(&p, &pol(&["k", "m"]), &cfg());
        assert!(r.is_careful(), "{:?}", r.violations);
    }

    #[test]
    fn leak_deep_in_the_execution_is_found() {
        // The secret only escapes after two handshakes.
        let p = parse_process("(new m) (a<0>.b<0>.c<m>.0 | a(x).0 | b(y).0 | c(z).0)").unwrap();
        let r = carefulness(&p, &pol(&["m"]), &cfg());
        assert!(!r.is_careful());
        assert!(r.violations.iter().any(|v| v.channel.as_str() == "c"));
    }

    #[test]
    fn conditional_leak_behind_match_is_found() {
        // The leak happens only if the guard passes — it does.
        let p = parse_process("(new m) (d<0>.0 | d(x).[x is 0] c<m>.0)").unwrap();
        let r = carefulness(&p, &pol(&["m"]), &cfg());
        assert!(!r.is_careful());
    }

    #[test]
    fn unreachable_leak_is_not_flagged() {
        // The guard can never pass, so the output never fires.
        let p = parse_process("(new m) [0 is suc(0)] c<m>.0").unwrap();
        let r = carefulness(&p, &pol(&["m"]), &cfg());
        assert!(r.is_careful());
    }

    #[test]
    fn decrypt_and_leak_is_found() {
        // The process decrypts its own traffic and then misbehaves.
        let p =
            parse_process("(new k) (new m) (c<{m, new r}:k>.0 | c(x). case x of {y}:k in d<y>.0)")
                .unwrap();
        let r = carefulness(&p, &pol(&["k", "m"]), &cfg());
        assert!(!r.is_careful());
        assert!(r.violations.iter().any(|v| v.channel.as_str() == "d"));
    }

    #[test]
    fn hidden_name_never_extrudes_dynamically() {
        // The no-extrusion commitment rule *drops* any output whose value
        // carries the hidden name, so the monitor observes no leak here —
        // the static checks (confinement, W106) are what report the
        // attempted escape.
        let p = parse_process("(hide h) c<h>.0").unwrap();
        let r = carefulness(&p, &Policy::new(), &cfg());
        assert!(r.is_careful(), "{:?}", r.violations);
    }

    #[test]
    fn hidden_name_leaked_inside_the_scope_is_flagged() {
        // Internal communication on a public channel stays within the
        // hide scope, so it commits — and its output premise carries the
        // hidden name in clear, which the monitor flags with no policy
        // entry for `h`.
        let p = parse_process("(hide h) (c<h>.0 | c(x).0)").unwrap();
        let r = carefulness(&p, &Policy::new(), &cfg());
        assert!(!r.is_careful());
        assert_eq!(r.violations[0].channel.as_str(), "c");
    }

    #[test]
    fn wmf_is_careful() {
        let src = "
            (new m) (new kAS) (new kBS) (
              ((new kAB) cAS<{kAB, new r1}:kAS>. cAB<{m, new r2}:kAB>.0
               | cBS(t). case t of {y}:kBS in cAB(z). case z of {q}:y in 0)
              | cAS(x). case x of {s}:kAS in cBS<{s, new r3}:kBS>.0
            )";
        let p = parse_process(src).unwrap();
        let r = carefulness(&p, &pol(&["kAS", "kBS", "kAB", "m"]), &cfg());
        assert!(r.is_careful(), "{:?}", r.violations);
        assert!(!r.stats.truncated);
    }
}
