//! The combined secrecy audit: every check of §4 in one call.
//!
//! [`audit`] runs the static confinement check (Definition 4), the
//! dynamic carefulness monitor (Definition 3), and a bounded Dolev–Yao
//! revelation search (Definition 5) per declared secret, with the
//! intruder starting from the process's public free names. The result
//! packages all three verdicts plus the solver-effort counters of the
//! underlying CFA run, so callers (the `nuspi check` CLI, the
//! `nuspi-engine` batch service) can report both *what* was decided and
//! *how much work* deciding it took.
//!
//! This used to live in the `nuspi` facade crate; it sits here so lower
//! layers (the engine's worker pool in particular) can audit without
//! depending on the facade.

use crate::careful::{carefulness, CarefulnessReport};
use crate::confine::{confinement, ConfinementReport};
use crate::dolevyao::{reveals, Attack, IntruderConfig, Knowledge};
use crate::policy::Policy;
use nuspi_semantics::ExecConfig;
use nuspi_syntax::{Process, Symbol};
use std::fmt;

/// Budgets for the two dynamic checks an audit runs.
#[derive(Clone, Debug, Default)]
pub struct AuditConfig {
    /// Exploration budgets of the carefulness monitor.
    pub exec: ExecConfig,
    /// Budgets of the bounded Dolev–Yao intruder.
    pub intruder: IntruderConfig,
}

/// The combined outcome of the secrecy checks.
#[derive(Debug)]
pub struct Audit {
    /// The static verdict (Definition 4).
    pub confinement: ConfinementReport,
    /// The dynamic monitor's verdict (Definition 3).
    pub carefulness: CarefulnessReport,
    /// Attacks the bounded intruder found, per secret.
    pub attacks: Vec<(Symbol, Attack)>,
}

impl Audit {
    /// Whether every check passed: confined, careful, no attack found.
    pub fn is_secure(&self) -> bool {
        self.confinement.is_confined() && self.carefulness.is_careful() && self.attacks.is_empty()
    }
}

/// Runs all three secrecy checks on a closed process `p` under `policy`.
///
/// The caller is responsible for `p` being closed (the analyses are
/// defined on closed processes; the `nuspi` facade enforces this at its
/// boundary).
pub fn audit(p: &Process, policy: &Policy, cfg: &AuditConfig) -> Audit {
    let confinement = confinement(p, policy);
    let carefulness = carefulness(p, policy, &cfg.exec);
    let public_names: Vec<Symbol> = p
        .free_names()
        .into_iter()
        .map(|n| n.canonical())
        .filter(|n| policy.is_public(*n))
        .collect();
    let k0 = Knowledge::from_names(public_names);
    let attacks = policy
        .secrets()
        .filter_map(|s| reveals(p, &k0, s, &cfg.intruder).map(|a| (s, a)))
        .collect();
    Audit {
        confinement,
        carefulness,
        attacks,
    }
}

impl fmt::Display for Audit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "confinement: {}",
            if self.confinement.is_confined() {
                "confined".to_owned()
            } else {
                format!("{} violation(s)", self.confinement.violations.len())
            }
        )?;
        writeln!(
            f,
            "carefulness: {}",
            if self.carefulness.is_careful() {
                "careful".to_owned()
            } else {
                format!("{} violation(s)", self.carefulness.violations.len())
            }
        )?;
        if self.attacks.is_empty() {
            writeln!(f, "intruder:    no attack found")?;
        } else {
            for (s, a) in &self.attacks {
                writeln!(f, "intruder:    reveals {s} in {} step(s)", a.trace.len())?;
            }
        }
        // Solver effort of the confinement run — only structural
        // counters, never wall-clock, so the rendering stays
        // deterministic and cacheable.
        let st = self.confinement.solution.stats();
        let shards = st.per_shard.len().max(1);
        write!(
            f,
            "solver:      {} round(s), {} shard(s), {} memo hit(s) / {} miss(es), {} production(s)",
            st.rounds, shards, st.cache_hits, st.cache_misses, st.productions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_syntax::parse_process;

    #[test]
    fn audit_passes_a_tight_process_and_reports_solver_work() {
        let p = parse_process("(new k) (new s) net<{s, new r}:k>.0").unwrap();
        let policy = Policy::with_secrets(["k", "s"]);
        let a = audit(&p, &policy, &AuditConfig::default());
        assert!(a.is_secure(), "{a}");
        let shown = a.to_string();
        assert!(shown.contains("confinement: confined"));
        assert!(shown.contains("solver:"), "{shown}");
        assert!(shown.contains("round(s)"), "{shown}");
        assert!(shown.contains("memo hit(s)"), "{shown}");
        assert!(!shown.ends_with('\n'), "display has no trailing newline");
    }

    #[test]
    fn audit_rejects_a_leak_on_all_fronts() {
        let p = parse_process("(new s) net<s>.0").unwrap();
        let policy = Policy::with_secrets(["s"]);
        let a = audit(&p, &policy, &AuditConfig::default());
        assert!(!a.confinement.is_confined());
        assert!(!a.carefulness.is_careful());
        assert!(!a.attacks.is_empty());
        assert!(!a.is_secure());
        assert!(a.to_string().contains("reveals s"));
    }

    #[test]
    fn display_is_deterministic() {
        let p = parse_process("(new s) net<s>.0").unwrap();
        let policy = Policy::with_secrets(["s"]);
        let a = audit(&p, &policy, &AuditConfig::default()).to_string();
        let b = audit(&p, &policy, &AuditConfig::default()).to_string();
        assert_eq!(a, b);
    }
}
