//! Lattice-law property suite for the graded security lattice.
//!
//! Every product lattice the policy layer can be configured with must
//! actually *be* a lattice: join/meet associative, commutative and
//! absorptive, the order antisymmetric, and the flow judgment
//! `ℓ ⊑ clearance` monotone under clearance raising and antitone under
//! level raising. The suite draws random axis shapes (chains, diamonds,
//! the stock two-point and diamond-4 lattices) and random level pairs
//! through the in-tree testkit harness, shrinking failing seeds.

use nuspi_bench::testkit::{check, ensure, shrink_u64};
use nuspi_security::{graded_flows, Axis, Level, Policy, SecLattice};
use nuspi_semantics::rng::Rng as _;
use nuspi_syntax::parse_process;

/// A deterministic menu of axes, indexed by seed.
fn axis_menu(ix: u64) -> Axis {
    match ix % 6 {
        0 => Axis::two("conf", "public", "secret"),
        1 => Axis::diamond("conf", "public", "confidential", "restricted", "secret"),
        2 => Axis::chain("conf", &["c0", "c1", "c2"]).unwrap(),
        3 => Axis::chain("integ", &["i0", "i1", "i2", "i3", "i4"]).unwrap(),
        4 => Axis::two("integ", "trusted", "tainted"),
        _ => Axis::diamond("integ", "trusted", "internal", "external", "tainted"),
    }
}

/// A deterministic menu of product lattices, indexed by seed.
fn lattice_menu(ix: u64) -> SecLattice {
    match ix % 4 {
        0 => SecLattice::two_point(),
        1 => SecLattice::diamond4(),
        _ => SecLattice::product(axis_menu(ix / 4), axis_menu(ix / 24 + 3)),
    }
}

/// The `n`-th level of `lat` (wrapping), for seeded picking.
fn pick_level(lat: &SecLattice, n: u64) -> Level {
    let all: Vec<Level> = lat.levels().collect();
    all[(n as usize) % all.len()]
}

#[test]
fn join_and_meet_are_commutative_and_associative() {
    check(
        "lattice-join-meet-laws",
        400,
        |rng| rng.next_u64(),
        shrink_u64,
        |seed| {
            let lat = lattice_menu(*seed);
            let a = pick_level(&lat, seed / 7);
            let b = pick_level(&lat, seed / 11 + 1);
            let c = pick_level(&lat, seed / 13 + 2);
            ensure(lat.join(a, b) == lat.join(b, a), || {
                format!("join not commutative: {} vs {}", lat.show(a), lat.show(b))
            })?;
            ensure(lat.meet(a, b) == lat.meet(b, a), || {
                format!("meet not commutative: {} vs {}", lat.show(a), lat.show(b))
            })?;
            ensure(
                lat.join(a, lat.join(b, c)) == lat.join(lat.join(a, b), c),
                || format!("join not associative at {}", lat.show(a)),
            )?;
            ensure(
                lat.meet(a, lat.meet(b, c)) == lat.meet(lat.meet(a, b), c),
                || format!("meet not associative at {}", lat.show(a)),
            )?;
            Ok(())
        },
    );
}

#[test]
fn absorption_laws_hold() {
    check(
        "lattice-absorption",
        400,
        |rng| rng.next_u64(),
        shrink_u64,
        |seed| {
            let lat = lattice_menu(*seed);
            let a = pick_level(&lat, seed / 5);
            let b = pick_level(&lat, seed / 9 + 1);
            ensure(lat.join(a, lat.meet(a, b)) == a, || {
                format!("a ⊔ (a ⊓ b) ≠ a for a={}, b={}", lat.show(a), lat.show(b))
            })?;
            ensure(lat.meet(a, lat.join(a, b)) == a, || {
                format!("a ⊓ (a ⊔ b) ≠ a for a={}, b={}", lat.show(a), lat.show(b))
            })?;
            Ok(())
        },
    );
}

#[test]
fn order_is_antisymmetric_and_agrees_with_join_meet() {
    check(
        "lattice-order-laws",
        400,
        |rng| rng.next_u64(),
        shrink_u64,
        |seed| {
            let lat = lattice_menu(*seed);
            let a = pick_level(&lat, seed / 3);
            let b = pick_level(&lat, seed / 17 + 1);
            if lat.leq(a, b) && lat.leq(b, a) {
                ensure(a == b, || {
                    format!(
                        "antisymmetry: {} ≡ {} but distinct",
                        lat.show(a),
                        lat.show(b)
                    )
                })?;
            }
            // a ≤ b ⟺ a ⊔ b = b ⟺ a ⊓ b = a (order and operations agree).
            ensure(lat.leq(a, b) == (lat.join(a, b) == b), || {
                format!("≤ vs ⊔ mismatch at {}, {}", lat.show(a), lat.show(b))
            })?;
            ensure(lat.leq(a, b) == (lat.meet(a, b) == a), || {
                format!("≤ vs ⊓ mismatch at {}, {}", lat.show(a), lat.show(b))
            })?;
            // Bounds really bound.
            ensure(lat.leq(lat.bottom(), a) && lat.leq(a, lat.top()), || {
                format!("bounds fail at {}", lat.show(a))
            })?;
            Ok(())
        },
    );
}

/// The flow judgment a graded policy decides: does the level of `key`
/// escape past the clearance on the wire process `c<key>.0`?
fn violates(lat: &SecLattice, level: Level, clearance: Level) -> bool {
    let p = parse_process("(new key) c<key>.0").unwrap();
    let mut policy = Policy::with_lattice(lat.clone());
    policy.grade("key", level);
    policy.set_clearance(clearance);
    !graded_flows(&p, &policy).violations.is_empty()
}

#[test]
fn flow_judgment_is_monotone_under_level_raising() {
    check(
        "flow-judgment-monotonicity",
        60,
        |rng| rng.next_u64(),
        shrink_u64,
        |seed| {
            let lat = lattice_menu(*seed);
            let level = pick_level(&lat, seed / 7);
            let raised = lat.join(level, pick_level(&lat, seed / 19 + 1));
            let clearance = pick_level(&lat, seed / 29 + 2);
            // Raising a name's level can only *introduce* violations:
            // if the raised grading is clean, the original was clean.
            if !violates(&lat, raised, clearance) {
                ensure(!violates(&lat, level, clearance), || {
                    format!(
                        "raising {} to {} removed a violation at clearance {}",
                        lat.show(level),
                        lat.show(raised),
                        lat.show(clearance)
                    )
                })?;
            }
            // Raising the clearance can only *remove* violations.
            let higher_clearance = lat.join(clearance, pick_level(&lat, seed / 31 + 3));
            if violates(&lat, level, higher_clearance) {
                ensure(violates(&lat, level, clearance), || {
                    format!(
                        "raising clearance {} to {} introduced a violation for {}",
                        lat.show(clearance),
                        lat.show(higher_clearance),
                        lat.show(level)
                    )
                })?;
            }
            // And the judgment itself matches the order: a violation
            // happens exactly when level ⋢ clearance.
            ensure(
                violates(&lat, level, clearance) != lat.leq(level, clearance),
                || {
                    format!(
                        "flow judgment disagrees with ⊑ for {} at clearance {}",
                        lat.show(level),
                        lat.show(clearance)
                    )
                },
            )?;
            Ok(())
        },
    );
}
