//! The persistence contract, end to end through the engine: a server
//! "restart" (new engine + new store over the same directory) serves
//! previously computed bodies verbatim from disk, and a corrupted log
//! tail is truncated on startup, never served.

use nuspi_engine::{AnalysisEngine, Request};
use nuspi_net::{log_path, DiskStore, StoreConfig};
use std::fs::OpenOptions;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nuspi-persist-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engine_with_store(dir: &PathBuf) -> AnalysisEngine {
    let mut engine = AnalysisEngine::with_jobs(2);
    engine.set_store(Arc::new(DiskStore::open(StoreConfig::at(dir)).unwrap()));
    engine
}

fn requests() -> Vec<Request> {
    vec![
        Request::audit("(new k) (new m) c<{m, new r}:k>.0", &["m", "k"]),
        Request::lint("(new s) net<s>.0", &["s"]),
        Request::solve("a<m>.0 | a(x).b<x>.0"),
        Request::equiv("(new n) c<n>.0", "(hide n) c<n>.0"),
    ]
}

#[test]
fn restart_serves_previous_bodies_from_disk() {
    let dir = tmp_dir("restart");

    // First life: cold computes, persisted on the way out.
    let cold: Vec<_> = {
        let engine = engine_with_store(&dir);
        let responses = engine.submit_requests(requests());
        let stats = engine.stats();
        let store = stats.store.expect("store attached");
        assert_eq!(store.admits, 4, "{store:?}");
        assert_eq!(store.hits, 0);
        responses.into_iter().map(|r| r.body).collect()
    }; // engine dropped: workers join, store closes

    // Second life: same directory, fresh engine, empty memory cache.
    let engine = engine_with_store(&dir);
    let warm = engine.submit_requests(requests());
    let stats = engine.stats();
    let store = stats.store.expect("store attached");
    assert_eq!(store.hits, 4, "every request hit the disk store");
    assert_eq!(store.admits, 0, "nothing recomputed, nothing re-admitted");
    assert_eq!(stats.cache.misses, 4, "memory tier was cold");
    for (old, new) in cold.iter().zip(&warm) {
        assert!(new.cached, "served from the store, flagged cached");
        assert_eq!(old.as_ref(), new.body.as_ref(), "bodies byte-identical");
    }

    // Third submission in the same life: promoted to the memory tier.
    let hot = engine.submit_requests(requests());
    let stats = engine.stats();
    assert_eq!(stats.cache.hits, 4, "repeats hit memory, not disk");
    assert_eq!(stats.store.unwrap().hits, 4, "disk hits did not grow");
    for (old, new) in cold.iter().zip(&hot) {
        assert_eq!(old.as_ref(), new.body.as_ref());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_tail_is_never_served_and_recomputes_identically() {
    let dir = tmp_dir("tail");
    let bodies: Vec<_> = {
        let engine = engine_with_store(&dir);
        engine
            .submit_requests(requests())
            .into_iter()
            .map(|r| r.body)
            .collect()
    };

    // Tear the log mid-way through the last record, as a crash would.
    let path = log_path(&dir);
    let len = std::fs::metadata(&path).unwrap().len();
    OpenOptions::new()
        .write(true)
        .open(&path)
        .unwrap()
        .set_len(len - 7)
        .unwrap();

    let engine = engine_with_store(&dir);
    let warm = engine.submit_requests(requests());
    let stats = engine.stats();
    let store = stats.store.expect("store attached");
    assert_eq!(store.corrupt_skipped, 1, "the tear was noticed once");
    assert_eq!(store.hits, 3, "intact records served");
    assert_eq!(store.misses, 1, "torn record missed, not served");
    assert_eq!(store.admits, 1, "the recompute was re-persisted");
    // The recomputed body is byte-identical to the pre-crash one — the
    // α-invariance guarantee that makes verbatim disk serving safe.
    for (old, new) in bodies.iter().zip(&warm) {
        assert_eq!(old.as_ref(), new.body.as_ref());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admission_threshold_flows_through_the_engine() {
    let dir = tmp_dir("admission");
    let mut engine = AnalysisEngine::with_jobs(1);
    let mut cfg = StoreConfig::at(&dir);
    // Nothing these tiny processes compute takes a minute.
    cfg.min_compute = Duration::from_secs(60);
    engine.set_store(Arc::new(DiskStore::open(cfg).unwrap()));
    engine.submit_requests(requests());
    let store = engine.stats().store.unwrap();
    assert_eq!(store.admits, 0);
    assert_eq!(store.rejects, 4);
    assert_eq!(store.entries, 0, "log stayed empty");
    let _ = std::fs::remove_dir_all(&dir);
}
