//! # nuspi-net — network-native serving with a persistent cache
//!
//! Two independent pieces behind `nuspi serve`:
//!
//! - [`spawn`]: a std-only TCP listener speaking the engine's
//!   JSON-lines protocol, one thread per connection over the shared
//!   worker pool, with bounded per-connection response queues
//!   (backpressure), idle timeouts, a connection limit, and graceful
//!   drain. Per-connection transcripts are byte-identical to the
//!   stdin/stdout pipe for the same request stream — both feed
//!   [`nuspi_engine::answer_line`].
//!
//! - [`DiskStore`]: a persistent tier behind the engine's in-memory
//!   LRU — an append-only, checksummed log keyed by the α-invariant
//!   `canonical_digest`-derived cache key, with a sharded in-memory
//!   index rebuilt by scanning the log on startup, admission by
//!   minimum compute time, and size-bounded eviction via log
//!   compaction. Because cached bodies are pure functions of the
//!   α-equivalence class (the byte-identity invariant the round-trip
//!   suite pins), serving stored bytes verbatim is always correct.
//!
//! The [`inspect`] module implements `nuspi cache
//! stats`/`ls`/`verify`/`compact` over a quiesced store directory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inspect;
mod net;
mod store;

pub use net::{spawn, NetConfig, NetCounters, NetServer};
pub use store::{
    log_path, record_checksum, scan_log, DiskStore, LogScan, ScannedRecord, StoreConfig, MAGIC,
    RECORD_HEADER,
};
