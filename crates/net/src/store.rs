//! The persistent response store: an append-only log of
//! `(key, body)` records behind a sharded in-memory index.
//!
//! ## On-disk format
//!
//! One file, `store.log`, inside the configured directory:
//!
//! ```text
//! magic: b"NUSPIST1"                                    (8 bytes)
//! record*: key u128 LE | len u32 LE | checksum u64 LE | body bytes
//! ```
//!
//! `key` is the engine's α-invariant cache key (derived from
//! `canonical_digest`), `body` is the response body verbatim (UTF-8,
//! no id, no braces — exactly what the memory tier caches), and
//! `checksum` is a [`StableHasher`] over the key and the body bytes,
//! so a record is self-validating: a load whose checksum fails is a
//! miss, never a wrong answer.
//!
//! ## Crash safety
//!
//! The log is append-only and records are self-framing, so the only
//! damage a crash can do is a partial final record. The startup scan
//! stops at the first record that is short or fails its checksum and
//! truncates the file there — everything before the tear is intact
//! (each record was flushed, and with `fsync` on, synced, before its
//! index entry existed), everything after it is discarded and counted
//! in `corrupt_skipped`. Compaction writes a fresh log to a temp file,
//! syncs it, then atomically renames over the old one.
//!
//! ## Concurrency
//!
//! Lookups take one shard lock to copy the index entry, then the
//! reader handle to fetch bytes. Compaction can move a record between
//! those two steps; the per-read checksum catches the stale offset and
//! the lookup retries against the fresh index. Lock order is always
//! writer → shards → reader, so the two paths cannot deadlock.

use nuspi_engine::{StoreMeters, TierTwoCache};
use nuspi_syntax::StableHasher;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::hash::Hasher;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// The log's magic header.
pub const MAGIC: &[u8; 8] = b"NUSPIST1";
/// Bytes of fixed framing per record (key + len + checksum).
pub const RECORD_HEADER: u64 = 16 + 4 + 8;
/// Index shards (must be a power of two).
const SHARDS: usize = 16;
/// Compaction drains the log to this fraction of `max_bytes`.
const COMPACT_TARGET_NUM: u64 = 3;
const COMPACT_TARGET_DEN: u64 = 4;

/// Store construction parameters.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Directory holding `store.log` (created if missing).
    pub dir: PathBuf,
    /// Log size that triggers compaction. `0` means unbounded.
    pub max_bytes: u64,
    /// Admission threshold: bodies computed faster than this are not
    /// persisted (they are cheaper to recompute than to store).
    pub min_compute: Duration,
    /// Whether appends `sync_data` before indexing (on by default;
    /// turning it off trades crash durability for throughput).
    pub fsync: bool,
}

impl StoreConfig {
    /// Defaults rooted at `dir`: unbounded log, zero admission
    /// threshold, fsync on.
    pub fn at(dir: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            dir: dir.into(),
            max_bytes: 0,
            min_compute: Duration::ZERO,
            fsync: true,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct IndexEntry {
    offset: u64, // of the body bytes, past the record header
    len: u32,
    checksum: u64,
    tick: u64, // admission order; compaction evicts oldest first
}

struct WriterState {
    file: File,
    log_len: u64,
    tick: u64,
}

#[derive(Default)]
struct MeterCells {
    hits: AtomicU64,
    misses: AtomicU64,
    admits: AtomicU64,
    rejects: AtomicU64,
    evicted: AtomicU64,
    compactions: AtomicU64,
    corrupt_skipped: AtomicU64,
}

/// The persistent store. Cheap to share: wrap in an [`Arc`] and hand a
/// clone to the engine via `set_store` — all methods take `&self`.
pub struct DiskStore {
    path: PathBuf,
    cfg: StoreConfig,
    shards: Vec<Mutex<HashMap<u128, IndexEntry>>>,
    reader: Mutex<File>,
    writer: Mutex<WriterState>,
    meters: MeterCells,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The record checksum: a stable (endian-independent, seed-fixed) hash
/// of the key and the body bytes.
pub fn record_checksum(key: u128, body: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write_u128(key);
    h.write(body);
    h.finish()
}

fn shard_of(key: u128) -> usize {
    (key as usize) & (SHARDS - 1)
}

/// One record seen by a log scan.
#[derive(Clone, Debug)]
pub struct ScannedRecord {
    /// The record's cache key.
    pub key: u128,
    /// Offset of the body bytes within the log.
    pub offset: u64,
    /// Body length in bytes.
    pub len: u32,
    /// Stored checksum (already verified against the body).
    pub checksum: u64,
}

/// The result of scanning a log from the top.
#[derive(Clone, Debug, Default)]
pub struct LogScan {
    /// Every intact record, in log order (later duplicates of a key
    /// supersede earlier ones).
    pub records: Vec<ScannedRecord>,
    /// Bytes of intact data (header + records) from the top.
    pub intact_bytes: u64,
    /// Bytes past the first tear (crash-torn or corrupt tail).
    pub torn_bytes: u64,
}

impl LogScan {
    /// Index of live records: the last intact record per key.
    pub fn live(&self) -> HashMap<u128, &ScannedRecord> {
        let mut live = HashMap::new();
        for r in &self.records {
            live.insert(r.key, r);
        }
        live
    }
}

/// Path of the log inside `dir`.
pub fn log_path(dir: &Path) -> PathBuf {
    dir.join("store.log")
}

/// Scans a log file, verifying every record's checksum, stopping at
/// the first short or corrupt record. Never modifies the file.
pub fn scan_log(path: &Path) -> io::Result<LogScan> {
    let file = File::open(path)?;
    let total = file.metadata()?.len();
    let mut reader = BufReader::new(file);
    let mut magic = [0u8; 8];
    if reader.read_exact(&mut magic).is_err() || &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: not a nuspi store log (bad magic)", path.display()),
        ));
    }
    let mut scan = LogScan {
        intact_bytes: 8,
        ..LogScan::default()
    };
    let mut offset = 8u64;
    loop {
        let mut header = [0u8; RECORD_HEADER as usize];
        match read_exact_or_eof(&mut reader, &mut header) {
            Ok(true) => {}
            Ok(false) | Err(_) => break, // clean EOF or torn header
        }
        let key = u128::from_le_bytes(header[0..16].try_into().unwrap());
        let len = u32::from_le_bytes(header[16..20].try_into().unwrap());
        let checksum = u64::from_le_bytes(header[20..28].try_into().unwrap());
        let body_offset = offset + RECORD_HEADER;
        if body_offset + u64::from(len) > total {
            break; // torn body
        }
        let mut body = vec![0u8; len as usize];
        if reader.read_exact(&mut body).is_err() {
            break;
        }
        if record_checksum(key, &body) != checksum || std::str::from_utf8(&body).is_err() {
            break; // corrupt record: stop trusting the log here
        }
        scan.records.push(ScannedRecord {
            key,
            offset: body_offset,
            len,
            checksum,
        });
        offset = body_offset + u64::from(len);
        scan.intact_bytes = offset;
    }
    scan.torn_bytes = total - scan.intact_bytes;
    Ok(scan)
}

/// `read_exact` that distinguishes clean EOF (nothing read) from a
/// short read.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..])? {
            0 if filled == 0 => return Ok(false),
            0 => return Err(io::ErrorKind::UnexpectedEof.into()),
            n => filled += n,
        }
    }
    Ok(true)
}

impl DiskStore {
    /// Opens (creating if needed) the store rooted at `cfg.dir`,
    /// scanning the log to rebuild the index. A torn or corrupt tail
    /// is truncated away and counted in `corrupt_skipped`.
    pub fn open(cfg: StoreConfig) -> io::Result<DiskStore> {
        fs::create_dir_all(&cfg.dir)?;
        let path = log_path(&cfg.dir);
        if !path.exists() || fs::metadata(&path)?.len() == 0 {
            let mut f = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&path)?;
            f.write_all(MAGIC)?;
            f.sync_data()?;
        }
        let scan = scan_log(&path)?;
        let shards: Vec<Mutex<HashMap<u128, IndexEntry>>> =
            (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect();
        let mut tick = 0u64;
        let mut superseded = 0u64;
        for r in &scan.records {
            let entry = IndexEntry {
                offset: r.offset,
                len: r.len,
                checksum: r.checksum,
                tick,
            };
            if lock(&shards[shard_of(r.key)])
                .insert(r.key, entry)
                .is_some()
            {
                superseded += 1;
            }
            tick += 1;
        }
        let meters = MeterCells::default();
        if scan.torn_bytes > 0 {
            meters.corrupt_skipped.fetch_add(1, Ordering::Relaxed);
            nuspi_obs::counter("store.corrupt_skipped", 1);
            // Physically drop the tear so future appends start clean.
            OpenOptions::new()
                .write(true)
                .open(&path)?
                .set_len(scan.intact_bytes)?;
        }
        let _ = superseded; // duplicates are legal: last record wins
        let mut writer_file = OpenOptions::new().append(true).open(&path)?;
        writer_file.seek(SeekFrom::End(0))?;
        let store = DiskStore {
            reader: Mutex::new(File::open(&path)?),
            writer: Mutex::new(WriterState {
                file: writer_file,
                log_len: scan.intact_bytes,
                tick,
            }),
            shards,
            path,
            cfg,
            meters,
        };
        Ok(store)
    }

    /// The log's current byte length.
    pub fn log_bytes(&self) -> u64 {
        lock(&self.writer).log_len
    }

    /// Live entries in the index.
    pub fn entries(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }

    fn index_entry(&self, key: u128) -> Option<IndexEntry> {
        lock(&self.shards[shard_of(key)]).get(&key).copied()
    }

    /// Forces a compaction pass: rewrites the log keeping only live
    /// entries (dropping superseded duplicates and, when over the
    /// byte target, the oldest live entries). Returns entries evicted.
    pub fn compact(&self, target_bytes: u64) -> io::Result<u64> {
        let mut writer = lock(&self.writer);
        self.compact_locked(&mut writer, target_bytes)
    }

    /// Compaction with the writer lock held. Takes every shard lock,
    /// then the reader — the same order `put` uses, so no deadlock.
    fn compact_locked(&self, writer: &mut WriterState, target_bytes: u64) -> io::Result<u64> {
        let t = std::time::Instant::now();
        let mut guards: Vec<MutexGuard<'_, HashMap<u128, IndexEntry>>> =
            self.shards.iter().map(lock).collect();
        // Gather live entries, oldest first.
        let mut live: Vec<(u128, IndexEntry)> = guards
            .iter()
            .flat_map(|g| g.iter().map(|(k, e)| (*k, *e)))
            .collect();
        live.sort_by_key(|(_, e)| e.tick);
        // Evict oldest entries until the projected log fits the target.
        let mut projected: u64 = 8 + live
            .iter()
            .map(|(_, e)| RECORD_HEADER + u64::from(e.len))
            .sum::<u64>();
        let mut evicted = 0u64;
        let mut keep_from = 0usize;
        while target_bytes > 0 && projected > target_bytes && keep_from < live.len() {
            projected -= RECORD_HEADER + u64::from(live[keep_from].1.len);
            evicted += 1;
            keep_from += 1;
        }
        let keep = &live[keep_from..];
        // Rewrite to a temp file, then atomically swap it in.
        let tmp_path = self.path.with_extension("log.tmp");
        let mut corrupt = 0u64;
        let mut fresh: Vec<(u128, IndexEntry)> = Vec::with_capacity(keep.len());
        {
            let mut out = BufWriter::new(
                OpenOptions::new()
                    .create(true)
                    .write(true)
                    .truncate(true)
                    .open(&tmp_path)?,
            );
            out.write_all(MAGIC)?;
            let mut offset = 8u64;
            let mut reader = lock(&self.reader);
            let mut tick = writer.tick;
            for (key, entry) in keep {
                let mut body = vec![0u8; entry.len as usize];
                let read_ok = reader.seek(SeekFrom::Start(entry.offset)).is_ok()
                    && reader.read_exact(&mut body).is_ok()
                    && record_checksum(*key, &body) == entry.checksum;
                if !read_ok {
                    corrupt += 1;
                    continue;
                }
                out.write_all(&key.to_le_bytes())?;
                out.write_all(&entry.len.to_le_bytes())?;
                out.write_all(&entry.checksum.to_le_bytes())?;
                out.write_all(&body)?;
                fresh.push((
                    *key,
                    IndexEntry {
                        offset: offset + RECORD_HEADER,
                        len: entry.len,
                        checksum: entry.checksum,
                        tick,
                    },
                ));
                offset += RECORD_HEADER + u64::from(entry.len);
                tick += 1;
            }
            writer.tick = tick;
            let out = out.into_inner().map_err(io::IntoInnerError::into_error)?;
            out.sync_data()?;
            drop(reader);
            fs::rename(&tmp_path, &self.path)?;
            // Reopen both handles on the new file.
            *lock(&self.reader) = File::open(&self.path)?;
            let mut new_writer = OpenOptions::new().append(true).open(&self.path)?;
            new_writer.seek(SeekFrom::End(0))?;
            writer.file = new_writer;
            writer.log_len = offset;
        }
        for g in guards.iter_mut() {
            g.clear();
        }
        for (key, entry) in fresh {
            guards[shard_of(key)].insert(key, entry);
        }
        self.meters.evicted.fetch_add(evicted, Ordering::Relaxed);
        self.meters
            .corrupt_skipped
            .fetch_add(corrupt, Ordering::Relaxed);
        self.meters.compactions.fetch_add(1, Ordering::Relaxed);
        nuspi_obs::counter("store.compact", 1);
        nuspi_obs::record_duration("store.compact_us", t.elapsed());
        Ok(evicted)
    }
}

impl TierTwoCache for DiskStore {
    fn load(&self, key: u128) -> Option<Arc<str>> {
        // A compaction between copying the index entry and reading the
        // bytes can leave a stale offset; the checksum catches it and
        // we retry against the refreshed index.
        for _ in 0..3 {
            let Some(entry) = self.index_entry(key) else {
                break;
            };
            let mut body = vec![0u8; entry.len as usize];
            let read_ok = {
                let mut reader = lock(&self.reader);
                reader.seek(SeekFrom::Start(entry.offset)).is_ok()
                    && reader.read_exact(&mut body).is_ok()
            };
            if read_ok && record_checksum(key, &body) == entry.checksum {
                if let Ok(s) = String::from_utf8(body) {
                    self.meters.hits.fetch_add(1, Ordering::Relaxed);
                    nuspi_obs::counter("store.hit", 1);
                    return Some(Arc::from(s));
                }
            }
        }
        self.meters.misses.fetch_add(1, Ordering::Relaxed);
        nuspi_obs::counter("store.miss", 1);
        None
    }

    fn store(&self, key: u128, body: &str, compute: Duration) {
        if compute < self.cfg.min_compute {
            self.meters.rejects.fetch_add(1, Ordering::Relaxed);
            nuspi_obs::counter("store.reject", 1);
            return;
        }
        let bytes = body.as_bytes();
        let len = match u32::try_from(bytes.len()) {
            Ok(len) => len,
            Err(_) => {
                self.meters.rejects.fetch_add(1, Ordering::Relaxed);
                return; // a >4 GiB body has no business in the log
            }
        };
        let mut writer = lock(&self.writer);
        // Dedupe under the writer lock: α-equivalent concurrent
        // computes race to store the same (key, body); only the first
        // appends.
        if lock(&self.shards[shard_of(key)]).contains_key(&key) {
            self.meters.rejects.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let checksum = record_checksum(key, bytes);
        let offset = writer.log_len;
        let append = (|| -> io::Result<()> {
            writer.file.write_all(&key.to_le_bytes())?;
            writer.file.write_all(&len.to_le_bytes())?;
            writer.file.write_all(&checksum.to_le_bytes())?;
            writer.file.write_all(bytes)?;
            writer.file.flush()?;
            if self.cfg.fsync {
                let t = std::time::Instant::now();
                writer.file.sync_data()?;
                nuspi_obs::record_duration("store.fsync_us", t.elapsed());
            }
            Ok(())
        })();
        if append.is_err() {
            // A torn append is exactly what the startup scan tolerates;
            // poison nothing, just stop indexing this record.
            self.meters.rejects.fetch_add(1, Ordering::Relaxed);
            return;
        }
        writer.log_len = offset + RECORD_HEADER + u64::from(len);
        let tick = writer.tick;
        writer.tick += 1;
        lock(&self.shards[shard_of(key)]).insert(
            key,
            IndexEntry {
                offset: offset + RECORD_HEADER,
                len,
                checksum,
                tick,
            },
        );
        self.meters.admits.fetch_add(1, Ordering::Relaxed);
        nuspi_obs::counter("store.admit", 1);
        if self.cfg.max_bytes > 0 && writer.log_len > self.cfg.max_bytes {
            let target = self.cfg.max_bytes * COMPACT_TARGET_NUM / COMPACT_TARGET_DEN;
            let _ = self.compact_locked(&mut writer, target);
        }
    }

    fn meters(&self) -> StoreMeters {
        StoreMeters {
            hits: self.meters.hits.load(Ordering::Relaxed),
            misses: self.meters.misses.load(Ordering::Relaxed),
            admits: self.meters.admits.load(Ordering::Relaxed),
            rejects: self.meters.rejects.load(Ordering::Relaxed),
            evicted: self.meters.evicted.load(Ordering::Relaxed),
            compactions: self.meters.compactions.load(Ordering::Relaxed),
            corrupt_skipped: self.meters.corrupt_skipped.load(Ordering::Relaxed),
            entries: self.entries() as u64,
            log_bytes: self.log_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nuspi-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_bodies_across_reopen() {
        let dir = tmp_dir("reopen");
        {
            let store = DiskStore::open(StoreConfig::at(&dir)).unwrap();
            store.store(
                7,
                "\"op\":\"solve\",\"status\":\"ok\"",
                Duration::from_millis(5),
            );
            store.store(
                9,
                "\"op\":\"lint\",\"status\":\"ok\"",
                Duration::from_millis(5),
            );
            assert_eq!(store.entries(), 2);
            assert_eq!(
                store.load(7).unwrap().as_ref(),
                "\"op\":\"solve\",\"status\":\"ok\""
            );
        }
        let store = DiskStore::open(StoreConfig::at(&dir)).unwrap();
        assert_eq!(store.entries(), 2);
        assert_eq!(
            store.load(9).unwrap().as_ref(),
            "\"op\":\"lint\",\"status\":\"ok\""
        );
        assert_eq!(store.meters().hits, 1);
        assert!(store.load(8).is_none());
        assert_eq!(store.meters().misses, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn admission_threshold_rejects_cheap_bodies() {
        let dir = tmp_dir("admit");
        let mut cfg = StoreConfig::at(&dir);
        cfg.min_compute = Duration::from_millis(10);
        let store = DiskStore::open(cfg).unwrap();
        store.store(1, "cheap", Duration::from_millis(1));
        store.store(2, "costly", Duration::from_millis(20));
        assert_eq!(store.entries(), 1);
        assert!(store.load(1).is_none());
        assert_eq!(store.load(2).unwrap().as_ref(), "costly");
        let m = store.meters();
        assert_eq!((m.admits, m.rejects), (1, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_keys_append_once() {
        let dir = tmp_dir("dup");
        let store = DiskStore::open(StoreConfig::at(&dir)).unwrap();
        store.store(5, "body", Duration::from_millis(1));
        let len_after_first = store.log_bytes();
        store.store(5, "body", Duration::from_millis(1));
        assert_eq!(store.log_bytes(), len_after_first);
        assert_eq!(store.meters().rejects, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_tail_is_truncated_not_served() {
        let dir = tmp_dir("tear");
        {
            let store = DiskStore::open(StoreConfig::at(&dir)).unwrap();
            store.store(1, "intact-one", Duration::from_millis(1));
            store.store(2, "torn-record", Duration::from_millis(1));
        }
        // Tear the last record: chop bytes off the end of the log.
        let path = log_path(&dir);
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 5)
            .unwrap();
        let store = DiskStore::open(StoreConfig::at(&dir)).unwrap();
        assert_eq!(store.entries(), 1);
        assert!(store.load(2).is_none(), "torn record must never be served");
        assert_eq!(store.load(1).unwrap().as_ref(), "intact-one");
        assert_eq!(store.meters().corrupt_skipped, 1);
        // The file was physically truncated back to the intact prefix.
        assert_eq!(fs::metadata(&path).unwrap().len(), store.log_bytes());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_body_bit_fails_checksum_and_stops_the_scan() {
        let dir = tmp_dir("flip");
        {
            let store = DiskStore::open(StoreConfig::at(&dir)).unwrap();
            store.store(1, "aaaa", Duration::from_millis(1));
            store.store(2, "bbbb", Duration::from_millis(1));
        }
        let path = log_path(&dir);
        // Flip a byte inside the *second* record's body (the log is
        // magic + two records; the last 4 bytes are the second body).
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let store = DiskStore::open(StoreConfig::at(&dir)).unwrap();
        assert_eq!(store.entries(), 1);
        assert_eq!(store.load(1).unwrap().as_ref(), "aaaa");
        assert!(store.load(2).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_evicts_oldest_and_preserves_the_rest() {
        let dir = tmp_dir("compact");
        let store = DiskStore::open(StoreConfig::at(&dir)).unwrap();
        let body = "x".repeat(100);
        for key in 0..10u128 {
            store.store(key, &body, Duration::from_millis(1));
        }
        let full = store.log_bytes();
        let evicted = store.compact(full / 2).unwrap();
        assert!(evicted >= 5, "evicted {evicted}");
        assert!(store.log_bytes() <= full / 2);
        // Newest entries survive, oldest are gone.
        assert!(store.load(9).is_some());
        assert!(store.load(0).is_none());
        let m = store.meters();
        assert_eq!(m.compactions, 1);
        assert_eq!(m.evicted, evicted);
        // Survivors are still served after a reopen.
        drop(store);
        let store = DiskStore::open(StoreConfig::at(&dir)).unwrap();
        assert_eq!(store.load(9).unwrap().as_ref(), body.as_str());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn automatic_compaction_keeps_the_log_bounded() {
        let dir = tmp_dir("auto");
        let mut cfg = StoreConfig::at(&dir);
        cfg.max_bytes = 4096;
        cfg.fsync = false;
        let store = DiskStore::open(cfg).unwrap();
        let body = "y".repeat(200);
        for key in 0..100u128 {
            store.store(key, &body, Duration::from_millis(1));
        }
        assert!(
            store.log_bytes() <= 4096 + 200 + RECORD_HEADER,
            "log stayed near budget: {}",
            store.log_bytes()
        );
        assert!(store.meters().compactions >= 1);
        assert!(store.load(99).is_some(), "newest entry survives");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_load_and_compact_never_serve_wrong_bytes() {
        let dir = tmp_dir("race");
        let mut cfg = StoreConfig::at(&dir);
        cfg.fsync = false;
        let store = Arc::new(DiskStore::open(cfg).unwrap());
        for key in 0..50u128 {
            store.store(key, &format!("body-{key:04}"), Duration::from_millis(1));
        }
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for round in 0..200u128 {
                        let key = round % 50;
                        if let Some(body) = store.load(key) {
                            assert_eq!(body.as_ref(), format!("body-{key:04}"));
                        }
                    }
                })
            })
            .collect();
        for _ in 0..10 {
            store.compact(0).unwrap();
        }
        for r in readers {
            r.join().unwrap();
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
