//! The TCP JSON-lines listener: thread-per-connection over the shared
//! [`AnalysisEngine`], speaking exactly the pipe protocol.
//!
//! Every connection is an independent JSON-lines session: requests in,
//! responses out, in request order, demultiplexed per socket. Lines
//! are answered through [`nuspi_engine::answer_line`] — the same
//! function the stdin/stdout transport uses — so for a fixed request
//! stream the per-connection transcript is byte-identical to the pipe
//! transport, at any worker count or connection count.
//!
//! Flow control is a chain of bounded stages: a slow client blocks its
//! connection's writer thread on the socket, the writer's bounded
//! response queue fills, the reader thread blocks on the queue, and
//! the kernel's TCP window throttles the sender. The engine's worker
//! pool is never held hostage by one slow consumer.
//!
//! Shutdown is cooperative: [`NetServer::drain`] stops the accept
//! loop, readers stop taking new lines, in-flight responses flush, and
//! [`NetServer::join`] returns once every connection thread is done.

use nuspi_engine::{answer_line, AnalysisEngine};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Listener construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Concurrent connections accepted; further clients get an error
    /// line and are closed.
    pub max_connections: usize,
    /// Bound of each connection's response queue (lines buffered
    /// between the answering reader and the flushing writer).
    pub queue_depth: usize,
    /// A connection silent for this long is closed.
    pub idle_timeout: Duration,
    /// Granularity of the accept loop and of drain/idle checks.
    pub poll: Duration,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            max_connections: 64,
            queue_depth: 32,
            idle_timeout: Duration::from_secs(300),
            poll: Duration::from_millis(25),
        }
    }
}

/// A snapshot of the listener's meters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections refused at the connection limit.
    pub rejected: u64,
    /// Connections fully closed (any reason).
    pub closed: u64,
    /// Connections closed by the idle timeout.
    pub idle_closed: u64,
    /// Response lines written across all connections.
    pub responses: u64,
}

#[derive(Default)]
struct Cells {
    accepted: AtomicU64,
    rejected: AtomicU64,
    closed: AtomicU64,
    idle_closed: AtomicU64,
    responses: AtomicU64,
}

struct Shared {
    engine: Arc<AnalysisEngine>,
    cfg: NetConfig,
    drain: AtomicBool,
    active: AtomicUsize,
    cells: Cells,
}

/// A running listener. Dropping it without [`NetServer::join`] leaves
/// the accept thread running for the life of the process — call
/// [`NetServer::drain`] then [`NetServer::join`] for a clean stop.
pub struct NetServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
}

impl NetServer {
    /// The bound address (useful with `--listen 127.0.0.1:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Begins a graceful drain: stop accepting, let connections flush
    /// their in-flight responses and close.
    pub fn drain(&self) {
        self.shared.drain.store(true, Ordering::SeqCst);
    }

    /// Waits for the accept loop and every connection to finish, and
    /// returns the final meters — unlike a [`NetServer::counters`]
    /// snapshot, the totals here are settled: no writer thread is
    /// still mid-increment. Implies nothing about drain — call
    /// [`NetServer::drain`] first, or this blocks until all clients
    /// disconnect on their own.
    pub fn join(mut self) -> NetCounters {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        self.counters()
    }

    /// Live connection count.
    pub fn active(&self) -> usize {
        self.shared.active.load(Ordering::Relaxed)
    }

    /// A snapshot of the listener's meters.
    pub fn counters(&self) -> NetCounters {
        let c = &self.shared.cells;
        NetCounters {
            accepted: c.accepted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            closed: c.closed.load(Ordering::Relaxed),
            idle_closed: c.idle_closed.load(Ordering::Relaxed),
            responses: c.responses.load(Ordering::Relaxed),
        }
    }
}

/// Starts serving `listener` with `engine`. The listener is switched
/// to non-blocking accept so drain can interrupt it; connections
/// themselves use blocking I/O with read timeouts.
pub fn spawn(
    engine: Arc<AnalysisEngine>,
    listener: TcpListener,
    cfg: NetConfig,
) -> io::Result<NetServer> {
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        engine,
        cfg,
        drain: AtomicBool::new(false),
        active: AtomicUsize::new(0),
        cells: Cells::default(),
    });
    let accept_shared = Arc::clone(&shared);
    let accept_handle = std::thread::Builder::new()
        .name("nuspi-net-accept".to_owned())
        .spawn(move || accept_loop(&listener, &accept_shared))?;
    Ok(NetServer {
        local_addr,
        shared,
        accept_handle: Some(accept_handle),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    let mut next_id = 0u64;
    while !shared.drain.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Request/response lines are small; Nagle's algorithm
                // against delayed ACKs would stall closed-loop clients
                // for ~40ms per exchange.
                let _ = stream.set_nodelay(true);
                conns.retain(|h| !h.is_finished());
                if shared.active.load(Ordering::Relaxed) >= shared.cfg.max_connections {
                    shared.cells.rejected.fetch_add(1, Ordering::Relaxed);
                    nuspi_obs::counter("net.rejected", 1);
                    reject(stream);
                    continue;
                }
                shared.active.fetch_add(1, Ordering::Relaxed);
                shared.cells.accepted.fetch_add(1, Ordering::Relaxed);
                nuspi_obs::counter("net.accepted", 1);
                let conn_shared = Arc::clone(shared);
                let id = next_id;
                next_id += 1;
                let handle = std::thread::Builder::new()
                    .name(format!("nuspi-net-conn-{id}"))
                    .spawn(move || {
                        connection(stream, &conn_shared);
                        conn_shared.active.fetch_sub(1, Ordering::Relaxed);
                        conn_shared.cells.closed.fetch_add(1, Ordering::Relaxed);
                        nuspi_obs::counter("net.closed", 1);
                    });
                match handle {
                    Ok(h) => conns.push(h),
                    Err(_) => {
                        // Spawn failure: undo the accounting, drop the
                        // socket; the client sees a reset.
                        shared.active.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.cfg.poll);
            }
            Err(_) => std::thread::sleep(shared.cfg.poll),
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

fn reject(mut stream: TcpStream) {
    let line = "{\"op\":\"serve\",\"status\":\"error\",\
                \"error\":\"server at connection limit\"}\n";
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.shutdown(Shutdown::Both);
}

/// One connection: a reader loop answering lines through the shared
/// engine, and a writer thread flushing responses in order through a
/// bounded queue.
fn connection(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // Short read timeouts turn the blocking read into a poll so the
    // idle deadline and the drain flag are checked between partial
    // reads; `read_until` keeps partial data in `buf` across timeouts.
    let _ = stream.set_read_timeout(Some(shared.cfg.poll.max(Duration::from_millis(1))));
    let (tx, rx) = sync_channel::<QueueItem>(shared.cfg.queue_depth.max(1));
    let depth = Arc::new(AtomicUsize::new(0));
    let writer_shared = Arc::clone(shared);
    let writer_depth = Arc::clone(&depth);
    let writer = std::thread::Builder::new()
        .name("nuspi-net-write".to_owned())
        .spawn(move || writer_loop(write_half, &rx, &writer_shared, &writer_depth));
    let Ok(writer) = writer else {
        return;
    };
    reader_loop(&stream, &tx, shared, &depth);
    drop(tx); // queue closes; the writer flushes what is left and exits
    let _ = writer.join();
    let _ = stream.shutdown(Shutdown::Both);
}

type QueueItem = String;

fn reader_loop(
    stream: &TcpStream,
    tx: &SyncSender<QueueItem>,
    shared: &Arc<Shared>,
    depth: &Arc<AtomicUsize>,
) {
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    let mut last_activity = Instant::now();
    loop {
        if shared.drain.load(Ordering::SeqCst) {
            return; // stop taking lines; in-flight responses still flush
        }
        if last_activity.elapsed() > shared.cfg.idle_timeout {
            shared.cells.idle_closed.fetch_add(1, Ordering::Relaxed);
            nuspi_obs::counter("net.idle_closed", 1);
            return;
        }
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => {
                // EOF. A final unterminated line still gets answered.
                if !buf.is_empty() {
                    answer_into_queue(shared, &buf, tx, depth);
                }
                return;
            }
            Ok(_) if buf.last() == Some(&b'\n') => {
                last_activity = Instant::now();
                let line = std::mem::take(&mut buf);
                if !answer_into_queue(shared, &line, tx, depth) {
                    return; // writer gone: client hung up
                }
            }
            Ok(_) => { /* partial line; keep accumulating */ }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Timeout poll; any bytes read so far stay in `buf`.
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return, // connection error
        }
    }
}

/// Answers one raw line and enqueues its response lines in order.
/// Returns `false` when the writer side is gone.
fn answer_into_queue(
    shared: &Arc<Shared>,
    raw: &[u8],
    tx: &SyncSender<QueueItem>,
    depth: &Arc<AtomicUsize>,
) -> bool {
    let Ok(text) = std::str::from_utf8(raw) else {
        return enqueue(
            tx,
            depth,
            "{\"op\":\"serve\",\"status\":\"error\",\
             \"error\":\"request line is not valid UTF-8\"}"
                .to_owned(),
        );
    };
    let line = text.trim_end_matches(['\n', '\r']);
    if line.trim().is_empty() {
        return true;
    }
    for response in answer_line(&shared.engine, line) {
        if !enqueue(tx, depth, response.to_line()) {
            return false;
        }
    }
    true
}

fn enqueue(tx: &SyncSender<QueueItem>, depth: &Arc<AtomicUsize>, line: String) -> bool {
    if nuspi_obs::enabled() {
        nuspi_obs::record_us("net.queue_depth", depth.load(Ordering::Relaxed) as u64);
    }
    // Fast path keeps the depth gauge honest; the slow path blocks,
    // which is the backpressure working as intended.
    match tx.try_send(line) {
        Ok(()) => {
            depth.fetch_add(1, Ordering::Relaxed);
            true
        }
        Err(TrySendError::Full(line)) => {
            nuspi_obs::counter("net.queue_full", 1);
            match tx.send(line) {
                Ok(()) => {
                    depth.fetch_add(1, Ordering::Relaxed);
                    true
                }
                Err(_) => false,
            }
        }
        Err(TrySendError::Disconnected(_)) => false,
    }
}

fn writer_loop(
    stream: TcpStream,
    rx: &Receiver<QueueItem>,
    shared: &Arc<Shared>,
    depth: &Arc<AtomicUsize>,
) {
    let mut out = io::BufWriter::new(stream);
    while let Ok(line) = rx.recv() {
        depth.fetch_sub(1, Ordering::Relaxed);
        if out.write_all(line.as_bytes()).is_err()
            || out.write_all(b"\n").is_err()
            || out.flush().is_err()
        {
            return; // client gone; reader notices via the closed queue
        }
        shared.cells.responses.fetch_add(1, Ordering::Relaxed);
        nuspi_obs::counter("net.responses", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Arc<AnalysisEngine> {
        Arc::new(AnalysisEngine::with_jobs(2))
    }

    fn start(engine: Arc<AnalysisEngine>, cfg: NetConfig) -> NetServer {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        spawn(engine, listener, cfg).unwrap()
    }

    fn request_lines(stream: &mut TcpStream, lines: &str) -> Vec<String> {
        stream.write_all(lines.as_bytes()).unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let expect = lines.lines().filter(|l| !l.trim().is_empty()).count();
        let reader = BufReader::new(stream);
        reader.lines().map_while(Result::ok).take(expect).collect()
    }

    #[test]
    fn answers_a_session_and_drains_cleanly() {
        let server = start(engine(), NetConfig::default());
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        let got = request_lines(
            &mut c,
            "{\"id\":\"r1\",\"op\":\"solve\",\"process\":\"c<n>.0\"}\n",
        );
        assert_eq!(got.len(), 1);
        assert!(got[0].starts_with("{\"id\":\"r1\""), "{}", got[0]);
        assert!(got[0].contains("\"status\":\"ok\""), "{}", got[0]);
        server.drain();
        let settled = server.join();
        assert_eq!(settled.accepted, 1);
        assert_eq!(settled.responses, 1);
        assert_eq!(settled.closed, 1);
    }

    #[test]
    fn connection_limit_rejects_with_an_error_line() {
        let cfg = NetConfig {
            max_connections: 1,
            ..NetConfig::default()
        };
        let server = start(engine(), cfg);
        // Hold one connection open by keeping its write side alive.
        let holder = TcpStream::connect(server.local_addr()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.active() < 1 {
            assert!(Instant::now() < deadline, "first connection never landed");
            std::thread::yield_now();
        }
        let extra = TcpStream::connect(server.local_addr()).unwrap();
        let mut line = String::new();
        BufReader::new(extra).read_line(&mut line).unwrap();
        assert!(line.contains("connection limit"), "{line}");
        assert_eq!(server.counters().rejected, 1);
        drop(holder);
        server.drain();
        server.join();
    }

    #[test]
    fn idle_connections_are_closed() {
        let cfg = NetConfig {
            idle_timeout: Duration::from_millis(50),
            poll: Duration::from_millis(5),
            ..NetConfig::default()
        };
        let server = start(engine(), cfg);
        let c = TcpStream::connect(server.local_addr()).unwrap();
        // Never send anything; the server should hang up on us.
        let mut reader = BufReader::new(c);
        let mut line = String::new();
        let n = reader.read_line(&mut line).unwrap();
        assert_eq!(n, 0, "server closed the idle connection");
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.counters().idle_closed < 1 {
            assert!(Instant::now() < deadline, "idle close never counted");
            std::thread::sleep(Duration::from_millis(5));
        }
        server.drain();
        server.join();
    }

    #[test]
    fn unterminated_final_line_is_still_answered() {
        let server = start(engine(), NetConfig::default());
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        c.write_all(b"{\"op\":\"solve\",\"process\":\"0\"}")
            .unwrap();
        c.shutdown(Shutdown::Write).unwrap();
        let mut line = String::new();
        BufReader::new(&c).read_line(&mut line).unwrap();
        assert!(line.contains("\"status\":\"ok\""), "{line}");
        server.drain();
        server.join();
    }
}
