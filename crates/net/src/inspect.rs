//! Offline inspection of a store directory — the `nuspi cache`
//! subcommand's implementation. Everything here works on a store that
//! is *not* being served (the scan takes no locks against a live
//! writer; run it on a quiesced directory).

use crate::store::{log_path, scan_log, DiskStore, LogScan, StoreConfig, RECORD_HEADER};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

fn scan_dir(dir: &Path) -> io::Result<LogScan> {
    scan_log(&log_path(dir))
}

/// `nuspi cache stats`: a summary of the log and its live index.
pub fn stats(dir: &Path) -> io::Result<String> {
    let scan = scan_dir(dir)?;
    let live = scan.live();
    let live_bytes: u64 = live
        .values()
        .map(|r| RECORD_HEADER + u64::from(r.len))
        .sum();
    let total_record_bytes: u64 = scan
        .records
        .iter()
        .map(|r| RECORD_HEADER + u64::from(r.len))
        .sum();
    let garbage = total_record_bytes - live_bytes;
    let mut out = String::new();
    let _ = writeln!(out, "store: {}", log_path(dir).display());
    let _ = writeln!(out, "records:      {}", scan.records.len());
    let _ = writeln!(out, "live entries: {}", live.len());
    let _ = writeln!(out, "log bytes:    {}", scan.intact_bytes);
    let _ = writeln!(out, "garbage:      {garbage} (reclaimable by compact)");
    let _ = writeln!(out, "torn tail:    {} bytes", scan.torn_bytes);
    Ok(out)
}

/// `nuspi cache ls`: one line per live entry, newest last.
pub fn ls(dir: &Path) -> io::Result<String> {
    let scan = scan_dir(dir)?;
    let live = scan.live();
    let mut entries: Vec<_> = live.values().collect();
    entries.sort_by_key(|r| r.offset);
    let mut out = String::new();
    for r in entries {
        let _ = writeln!(out, "{:032x}  {:>8} bytes  @{}", r.key, r.len, r.offset);
    }
    Ok(out)
}

/// `nuspi cache verify`: walks every record re-checking checksums.
/// Returns the report and whether the log is fully intact.
pub fn verify(dir: &Path) -> io::Result<(String, bool)> {
    let scan = scan_dir(dir)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "verified {} record(s), {} intact byte(s)",
        scan.records.len(),
        scan.intact_bytes
    );
    let ok = scan.torn_bytes == 0;
    if !ok {
        let _ = writeln!(
            out,
            "FAIL: {} byte(s) past the first torn/corrupt record (a \
             server restart would truncate them)",
            scan.torn_bytes
        );
    } else {
        let _ = writeln!(out, "OK: no torn tail");
    }
    Ok((out, ok))
}

/// `nuspi cache compact`: rewrites the log keeping every live entry,
/// reclaiming superseded duplicates and any torn tail.
pub fn compact(dir: &Path) -> io::Result<String> {
    let before = scan_dir(dir)?.intact_bytes;
    let store = DiskStore::open(StoreConfig::at(dir))?;
    store.compact(0)?;
    let after = store.log_bytes();
    Ok(format!(
        "compacted: {before} -> {after} bytes ({} live entries)\n",
        store.entries()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_engine::TierTwoCache;
    use std::time::Duration;

    #[test]
    fn inspection_round_trip() {
        let dir = std::env::temp_dir().join(format!("nuspi-inspect-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = DiskStore::open(StoreConfig::at(&dir)).unwrap();
            store.store(1, "one", Duration::from_millis(1));
            store.store(2, "two", Duration::from_millis(1));
        }
        let stats = stats(&dir).unwrap();
        assert!(stats.contains("live entries: 2"), "{stats}");
        let ls = ls(&dir).unwrap();
        assert_eq!(ls.lines().count(), 2, "{ls}");
        let (report, ok) = verify(&dir).unwrap();
        assert!(ok, "{report}");
        let compacted = compact(&dir).unwrap();
        assert!(compacted.contains("2 live entries"), "{compacted}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
