//! Trace validation: with the recorder on, a solve request produces a
//! JSON-lines trace that matches the documented schema and whose spans
//! nest (`cfa.solve` under `engine.exec`, rounds under the solve);
//! with the recorder off, serve output is byte-identical to a traced
//! session's. This binary owns the process-global recorder — every test
//! takes `RECORDER_LOCK` so they never race it.

use nuspi_engine::jsonio::Json;
use nuspi_engine::{serve, AnalysisEngine, Request};
use std::sync::Mutex;

static RECORDER_LOCK: Mutex<()> = Mutex::new(());

const SRC: &str = "(new k) (new m) c<{m, new r}:k>.0";

fn ancestors(spans: &[nuspi_obs::SpanRecord], mut id: Option<u64>) -> Vec<u64> {
    let mut chain = Vec::new();
    while let Some(cur) = id {
        chain.push(cur);
        id = spans.iter().find(|s| s.id == cur).and_then(|s| s.parent);
        assert!(chain.len() <= spans.len(), "parent cycle in trace");
    }
    chain
}

#[test]
fn traced_solve_request_has_nested_schema_valid_spans() {
    let _g = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    nuspi_obs::reset();
    nuspi_obs::enable();
    let engine = AnalysisEngine::with_jobs(2);
    let response = engine.submit(Request::solve(SRC));
    assert!(response.is_ok(), "{}", response.body);
    nuspi_obs::disable();

    let spans = nuspi_obs::spans();
    let exec = spans
        .iter()
        .find(|s| s.name == "engine.exec")
        .expect("worker execution span");
    let solve = spans
        .iter()
        .find(|s| s.name == "cfa.solve")
        .expect("solver span");
    let generate = spans
        .iter()
        .find(|s| s.name == "cfa.generate")
        .expect("constraint-generation span");

    // The solver and the generator both ran inside the worker's exec
    // span, on the worker thread.
    assert!(
        ancestors(&spans, solve.parent).contains(&exec.id),
        "cfa.solve must nest under engine.exec: {spans:?}"
    );
    assert!(
        ancestors(&spans, generate.parent).contains(&exec.id),
        "cfa.generate must nest under engine.exec"
    );
    assert_eq!(solve.thread, exec.thread, "same worker thread");
    assert!(
        exec.thread.starts_with("nuspi-engine-worker-"),
        "{}",
        exec.thread
    );
    // Iteration rounds nest directly under the solve span.
    let rounds: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "cfa.solve.round")
        .collect();
    assert!(!rounds.is_empty(), "at least one solver round");
    for r in &rounds {
        assert_eq!(r.parent, Some(solve.id), "round nests under cfa.solve");
    }
    // The exec span carries the op field.
    assert_eq!(
        exec.field,
        Some(("op", nuspi_obs::FieldValue::Str("solve".to_string())))
    );

    // Every trace line is valid JSON and carries the schema's keys.
    let jsonl = nuspi_obs::snapshot_jsonl();
    assert!(!jsonl.is_empty());
    let mut saw_counter = false;
    for line in jsonl.lines() {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("bad trace line {line}: {e}"));
        let ty = v.get("type").and_then(Json::as_str).expect("type tag");
        match ty {
            "span" => {
                assert!(v.get("id").and_then(Json::as_u64).is_some(), "{line}");
                assert!(v.get("parent").is_some(), "{line}");
                assert!(v.get("name").and_then(Json::as_str).is_some(), "{line}");
                assert!(v.get("thread").and_then(Json::as_str).is_some(), "{line}");
                assert!(v.get("start_us").and_then(Json::as_u64).is_some(), "{line}");
                assert!(v.get("dur_us").and_then(Json::as_u64).is_some(), "{line}");
            }
            "counter" => {
                saw_counter = true;
                assert!(v.get("name").and_then(Json::as_str).is_some(), "{line}");
                assert!(v.get("value").and_then(Json::as_u64).is_some(), "{line}");
            }
            "hist" => {
                for key in ["count", "sum_us", "min_us", "max_us"] {
                    assert!(v.get(key).and_then(Json::as_u64).is_some(), "{line}");
                }
                assert!(
                    v.get("log2_buckets").and_then(Json::as_arr).is_some(),
                    "{line}"
                );
            }
            other => panic!("unknown trace line type {other}: {line}"),
        }
    }
    assert!(saw_counter, "solver counters present in the trace");
    // The human summary mentions the same span names.
    let summary = nuspi_obs::summary();
    assert!(summary.contains("engine.exec"), "{summary}");
    assert!(summary.contains("cfa.solve"), "{summary}");
    nuspi_obs::reset();
}

#[test]
fn serve_output_is_byte_identical_with_and_without_tracing() {
    let _g = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    nuspi_obs::reset();
    let session = format!(
        "{{\"id\":\"a\",\"op\":\"audit\",\"process\":\"{SRC}\",\"secrets\":[\"m\",\"k\"]}}\n\
         {{\"id\":\"b\",\"op\":\"solve\",\"process\":\"{SRC}\"}}\n\
         {{\"id\":\"c\",\"op\":\"lint\",\"process\":\"{SRC}\",\"secrets\":[\"m\",\"k\"]}}\n"
    );
    let run_session = || {
        let engine = AnalysisEngine::with_jobs(2);
        let mut out = Vec::new();
        serve(&engine, session.as_bytes(), &mut out).unwrap();
        out
    };
    let quiet = run_session();
    nuspi_obs::enable();
    let traced = run_session();
    nuspi_obs::disable();
    assert_eq!(
        String::from_utf8(quiet).unwrap(),
        String::from_utf8(traced).unwrap(),
        "tracing must never change response bytes"
    );
    assert!(nuspi_obs::span_count() > 0, "the traced run recorded spans");
    nuspi_obs::reset();
}

#[test]
fn stats_op_surfaces_obs_section_only_while_enabled() {
    let _g = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    nuspi_obs::reset();
    let run_stats = || {
        let engine = AnalysisEngine::with_jobs(1);
        let mut out = Vec::new();
        serve(
            &engine,
            "{\"op\":\"solve\",\"process\":\"0\"}\n{\"op\":\"stats\"}\n".as_bytes(),
            &mut out,
        )
        .unwrap();
        String::from_utf8(out).unwrap()
    };
    let quiet = run_stats();
    assert!(!quiet.contains("\"obs\""), "{quiet}");
    nuspi_obs::enable();
    let traced = run_stats();
    nuspi_obs::disable();
    let stats_line = traced
        .lines()
        .find(|l| l.contains("\"op\":\"stats\""))
        .expect("stats line");
    assert!(stats_line.contains("\"obs\":{\"spans\":"), "{stats_line}");
    Json::parse(stats_line).unwrap();
    nuspi_obs::reset();
}
