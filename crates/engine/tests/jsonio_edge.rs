//! Adversarial input through the full serving path: every malformed,
//! truncated, overflowing, or absurdly deep request line must come back
//! as a single error line — the session keeps going and nothing panics.
//! The same corpus is also pushed through `Json::parse` directly so the
//! parser's own error reporting is covered without the protocol on top.

use nuspi_engine::jsonio::{Json, MAX_DEPTH};
use nuspi_engine::{serve, AnalysisEngine};

/// Runs a serve session over `input` and returns one output line per
/// input line.
fn session(input: &str) -> Vec<String> {
    let engine = AnalysisEngine::with_jobs(1);
    let mut out = Vec::new();
    serve(&engine, input.as_bytes(), &mut out).unwrap();
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(str::to_owned)
        .collect()
}

fn adversarial_lines() -> Vec<String> {
    let mut lines = vec![
        // Malformed documents.
        "{".to_owned(),
        "}".to_owned(),
        "[1,".to_owned(),
        "{\"op\":}".to_owned(),
        "{\"op\" \"solve\"}".to_owned(),
        "not json at all".to_owned(),
        "{\"op\":\"solve\"} trailing".to_owned(),
        "nul".to_owned(),
        // Unterminated strings.
        "\"never closed".to_owned(),
        "{\"op\":\"solve\",\"process\":\"0".to_owned(),
        "{\"op\":\"solve\",\"process\":\"0\\".to_owned(),
        // Broken unicode escapes.
        "{\"op\":\"solve\",\"process\":\"\\u12".to_owned(),
        "{\"op\":\"solve\",\"process\":\"\\uZZZZ\"}".to_owned(),
        "{\"op\":\"\\q\"}".to_owned(),
        // Numeric overflow and other unusable numbers.
        "{\"op\":\"solve\",\"process\":\"0\",\"depth\":1e999}".to_owned(),
        "{\"op\":\"solve\",\"process\":\"0\",\"depth\":18446744073709551616}".to_owned(),
        "{\"op\":\"solve\",\"process\":\"0\",\"depth\":-3}".to_owned(),
        "{\"op\":\"solve\",\"process\":\"0\",\"depth\":2.5}".to_owned(),
        "{\"op\":\"solve\",\"process\":\"0\",\"deadline_ms\":1e400}".to_owned(),
        // Structurally valid but not a request object.
        "[]".to_owned(),
        "42".to_owned(),
        "\"solve\"".to_owned(),
        "{\"op\":\"no-such-op\"}".to_owned(),
    ];
    // Nesting far past the parser's cap, in every container shape.
    lines.push(format!(
        "{}{}",
        "[".repeat(MAX_DEPTH + 10),
        "]".repeat(MAX_DEPTH + 10)
    ));
    lines.push("[".repeat(50_000));
    lines.push(format!("{}0", "{\"a\":".repeat(MAX_DEPTH + 10)));
    lines
}

#[test]
fn every_adversarial_line_yields_exactly_one_error_line() {
    let lines = adversarial_lines();
    let input = lines.join("\n") + "\n";
    let out = session(&input);
    assert_eq!(
        out.len(),
        lines.len(),
        "one response line per request line, none dropped"
    );
    for (req, resp) in lines.iter().zip(&out) {
        let short: String = req.chars().take(40).collect();
        assert!(
            resp.contains("\"status\":\"error\""),
            "{short}: expected an error line, got {resp}"
        );
        // Error lines are themselves well-formed JSON objects.
        let v = Json::parse(resp).unwrap_or_else(|e| panic!("{short}: bad error line {resp}: {e}"));
        assert!(
            v.get("error").and_then(Json::as_str).is_some(),
            "{short}: {resp}"
        );
    }
}

#[test]
fn the_session_recovers_after_every_adversarial_line() {
    // Interleave garbage with real work: the good requests must still
    // be answered normally.
    let mut input = String::new();
    for bad in adversarial_lines() {
        input.push_str(&bad);
        input.push('\n');
        input.push_str("{\"op\":\"solve\",\"process\":\"(new n) c<n>.0\"}\n");
    }
    let out = session(&input);
    assert_eq!(out.len(), adversarial_lines().len() * 2);
    for pair in out.chunks(2) {
        assert!(pair[0].contains("\"status\":\"error\""), "{}", pair[0]);
        assert!(pair[1].contains("\"status\":\"ok\""), "{}", pair[1]);
    }
}

#[test]
fn parser_reports_errors_without_panicking_on_the_corpus() {
    for line in adversarial_lines() {
        let short: String = line.chars().take(40).collect();
        match Json::parse(&line) {
            // Structurally valid lines may parse; the protocol layer
            // rejects them later.
            Ok(_) => {}
            Err(e) => assert!(!e.is_empty(), "{short}: empty error message"),
        }
    }
}

#[test]
fn depth_cap_is_tight() {
    // MAX_DEPTH nested arrays parse; one more level is rejected.
    let ok = format!("{}{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
    assert!(Json::parse(&ok).is_ok());
    let too_deep = format!("{}{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
    let err = Json::parse(&too_deep).unwrap_err();
    assert!(err.contains("nesting deeper than"), "{err}");
    // Mixed shapes hit the same cap.
    let mixed = format!("{}1", "{\"k\":[".repeat(MAX_DEPTH));
    assert!(Json::parse(&mixed).is_err());
}

#[test]
fn overflowing_numbers_parse_but_never_become_integers() {
    let v = Json::parse("1e999").unwrap();
    assert_eq!(v.as_u64(), None, "infinite numbers are not integers");
    assert_eq!(v.as_f64(), None, "as_f64 only returns finite numbers");
    let v = Json::parse("18446744073709551616").unwrap(); // u64::MAX + 1
    assert_eq!(v.as_u64(), None, "u64 overflow is rejected");
    let v = Json::parse("-1e999").unwrap();
    assert_eq!(v.as_f64(), None);
}

#[test]
fn unicode_escape_edge_cases() {
    // Lone high surrogate without a low half: replacement character.
    assert_eq!(
        Json::parse("\"\\ud83e\"").unwrap().as_str(),
        Some("\u{fffd}")
    );
    // A full surrogate pair decodes to the astral scalar.
    assert_eq!(
        Json::parse("\"\\ud83e\\udd80\"").unwrap().as_str(),
        Some("🦀")
    );
    // Truncated escapes are errors, not panics.
    for bad in [
        "\"\\u",
        "\"\\u1",
        "\"\\u123",
        "\"\\ud83e\\u12",
        "\"\\uqqqq\"",
    ] {
        assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
    }
}
