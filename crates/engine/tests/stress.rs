//! Concurrency stress: large mixed batches — cacheable analyses,
//! incremental re-solves against the engine's persistent component
//! cache, injected worker panics, and nanosecond deadlines — across
//! several pool widths. The pool must never wedge, the engine's meters
//! (cache and incremental alike) must add up exactly, and a parallel
//! batch must produce byte-identical bodies to the same requests run
//! serially on a one-worker engine.

use nuspi_engine::{AnalysisEngine, Envelope, Request};
use std::time::Duration;

const N: usize = 240;

fn source(i: usize) -> String {
    // Eight distinct closed processes, so batches mix cache misses with
    // repeats that exercise the content-addressed cache.
    let k = i % 8;
    format!("(new m{k}) (new key{k}) (c<{{m{k}, new r}}:key{k}>.0 | c(x). case x of {{y}}:key{k} in d<y>.0)")
}

/// Incremental workloads: three corpora built from overlapping session
/// fragments, so the persistent incremental solver sees genuine
/// cross-request component reuse.
fn incremental_source(i: usize) -> String {
    let j = i % 3;
    format!("a{j}<m>.0 | a{j}(x). b{j}<x>.0 | shared<tok>.0 | shared(y). sink<y>.0")
}

/// The deterministic part of the workload: analyses, incremental
/// re-solves and injected panics, no deadlines (deadline outcomes
/// depend on scheduling).
fn deterministic_envelopes() -> Vec<Envelope> {
    (0..N)
        .map(|i| {
            let src = source(i);
            let secrets = [format!("m{}", i % 8)];
            let secrets: Vec<&str> = secrets.iter().map(String::as_str).collect();
            let req = match i % 8 {
                3 => Request::DebugPanic,
                0 | 4 => Request::audit(&src, &secrets),
                1 | 5 => Request::lint(&src, &secrets),
                6 => Request::solve_incremental(&incremental_source(i)),
                _ => Request::solve(&src),
            };
            Envelope::from(req).with_id(format!("r{i}"))
        })
        .collect()
}

/// The full stress mix: the deterministic workload plus requests with
/// nanosecond deadlines (their responses are timing-dependent — either
/// the analysis body or a deadline error).
fn stress_envelopes() -> Vec<Envelope> {
    let mut out = deterministic_envelopes();
    for i in 0..N / 8 {
        out.push(
            Envelope::from(Request::solve(&source(i)))
                .with_id(format!("d{i}"))
                .with_deadline(Duration::from_nanos(1)),
        );
    }
    out
}

#[test]
fn mixed_batches_do_not_wedge_across_pool_widths() {
    for jobs in [1usize, 2, 8] {
        let engine = AnalysisEngine::with_jobs(jobs);
        let envelopes = stress_envelopes();
        let total = envelopes.len();
        let panics = envelopes
            .iter()
            .filter(|e| matches!(e.request, Request::DebugPanic))
            .count() as u64;
        let deadlines = envelopes.iter().filter(|e| e.deadline.is_some()).count() as u64;

        let responses = engine.submit_batch(envelopes);
        assert_eq!(
            responses.len(),
            total,
            "jobs={jobs}: every request answered"
        );
        for r in &responses {
            let id = r.id.as_deref().unwrap_or("?");
            if let Some(num) = id.strip_prefix('r') {
                let i: usize = num.parse().unwrap();
                if i % 8 == 3 {
                    assert!(!r.is_ok(), "jobs={jobs}: panic job {id} must error");
                    assert!(r.body.contains("panicked"), "jobs={jobs}: {}", r.body);
                } else {
                    assert!(r.is_ok(), "jobs={jobs} {id}: {}", r.body);
                }
            } else {
                // Deadline request: either finished in time or expired.
                assert!(
                    r.is_ok() || r.body.contains("deadline exceeded"),
                    "jobs={jobs} {id}: {}",
                    r.body
                );
            }
        }

        // The meters add up exactly: one response per request, panics
        // all counted and uncacheable, and exactly one cache lookup per
        // cacheable request.
        let stats = engine.stats();
        assert_eq!(stats.jobs, jobs);
        assert_eq!(stats.requests, total as u64, "jobs={jobs}");
        assert_eq!(stats.completed, total as u64, "jobs={jobs}");
        assert_eq!(stats.job_panics, panics, "jobs={jobs}");
        assert_eq!(stats.uncacheable, panics, "jobs={jobs}");
        assert_eq!(
            stats.cache.hits + stats.cache.misses,
            total as u64 - panics,
            "jobs={jobs}: every cacheable request does exactly one lookup"
        );
        assert!(stats.deadline_expirations <= deadlines, "jobs={jobs}");
        assert!(stats.cache.hits > 0, "jobs={jobs}: repeats must hit");

        // Incremental meters: every component a solver run saw was
        // either reused or re-derived — no third bucket, no loss — and
        // repeats served from the engine cache never reach the solver,
        // so calls is bounded by the distinct incremental sources times
        // at most one concurrent duplicate miss each.
        let inc = stats.incremental;
        assert_eq!(
            inc.reuse_hits + inc.reuse_misses,
            inc.components,
            "jobs={jobs}: incremental meter accounting must be exact: {inc:?}"
        );
        assert!(inc.calls >= 1, "jobs={jobs}: incremental requests ran");
        assert!(
            inc.calls <= (N / 8) as u64,
            "jobs={jobs}: engine-cache repeats must not reach the solver: {inc:?}"
        );
        assert!(
            inc.reuse_hits > 0,
            "jobs={jobs}: overlapping corpora must reuse components: {inc:?}"
        );

        // No wedge: the pool still answers fresh work afterwards.
        let after = engine.submit(Request::solve("(new fresh) c<fresh>.0"));
        assert!(after.is_ok(), "jobs={jobs}: pool wedged: {}", after.body);
    }
}

#[test]
fn parallel_batch_is_byte_identical_to_serial() {
    let parallel = AnalysisEngine::with_jobs(8);
    let wide = parallel.submit_batch(deterministic_envelopes());

    let serial = AnalysisEngine::with_jobs(1);
    let narrow: Vec<_> = deterministic_envelopes()
        .into_iter()
        .map(|e| serial.submit(e))
        .collect();

    assert_eq!(wide.len(), narrow.len());
    for (w, n) in wide.iter().zip(&narrow) {
        assert_eq!(w.id, n.id);
        assert_eq!(
            w.body, n.body,
            "{:?}: an 8-worker batch and a serial run must render identical bodies",
            w.id
        );
    }
}

#[test]
fn incremental_meters_account_exactly_under_serial_submission() {
    let engine = AnalysisEngine::with_jobs(2);

    // Three distinct corpora, submitted serially so no concurrent
    // duplicate can double-run: one solver call each.
    for i in 0..3 {
        let r = engine.submit(Request::solve_incremental(&incremental_source(i)));
        assert!(r.is_ok(), "{}", r.body);
        assert!(!r.cached);
    }
    let inc = engine.stats().incremental;
    assert_eq!(inc.calls, 3);
    assert_eq!(inc.reuse_hits + inc.reuse_misses, inc.components);
    // Corpus 0 misses all 4 components; corpora 1 and 2 reuse the two
    // shared ones and derive their two private ones.
    assert_eq!(inc.components, 12);
    assert_eq!(inc.reuse_misses, 8);
    assert_eq!(inc.reuse_hits, 4);
    assert_eq!(inc.noops, 0);

    // Verbatim resubmission: engine-cache hit, solver untouched.
    let r = engine.submit(Request::solve_incremental(&incremental_source(0)));
    assert!(r.cached);
    assert_eq!(engine.stats().incremental, inc);

    // The same *labelled tree* at two fresh render depths (fresh engine
    // keys, so both reach the solver): the first re-stitches corpus 0
    // entirely from cached components; the second is digest- and
    // label-identical to the solver's previous call and must take the
    // no-op fast path. (A re-parsed Source gets fresh labels, which is
    // why Parsed input is needed to observe the no-op through the
    // engine.)
    let p0 = nuspi_syntax::parse_process(&incremental_source(0)).unwrap();
    for (depth, want_noops) in [(5usize, 0u64), (6, 1)] {
        let r = engine.submit(Request::SolveIncremental {
            process: nuspi_engine::ProcessInput::Parsed(p0.clone()),
            depth,
        });
        assert!(r.is_ok() && !r.cached, "{}", r.body);
        assert_eq!(engine.stats().incremental.noops, want_noops);
    }
    let after = engine.stats().incremental;
    assert_eq!(after.calls, 5);
    assert_eq!(
        after.reuse_misses, inc.reuse_misses,
        "everything was cached"
    );
    assert_eq!(
        after.reuse_hits + after.reuse_misses,
        after.components,
        "no-op runs must keep the accounting exact: {after:?}"
    );
}

#[test]
fn repeated_batches_under_churn_stay_consistent() {
    // Re-submitting the same batch over and over on a small pool must
    // keep succeeding, with later rounds fully cache-served.
    let engine = AnalysisEngine::with_jobs(2);
    let mut last_entries = 0;
    for round in 0..4 {
        let responses = engine.submit_batch(deterministic_envelopes());
        assert_eq!(responses.len(), N, "round {round}");
        for r in responses {
            let cacheable = !r.body.contains("panicked");
            if round > 0 && cacheable {
                assert!(r.cached, "round {round} {:?} should be cache-served", r.id);
            }
        }
        let entries = engine.stats().cache_entries;
        if round > 0 {
            assert_eq!(entries, last_entries, "round {round}: no entry churn");
        }
        last_entries = entries;
    }
}
