//! End-to-end engine tests over the full protocol suite: the 21 closed
//! protocols plus the 4 open examples in their tracked `(νn*) P[n*/x]`
//! form — the same 25 cases the lint goldens pin down.
//!
//! The contracts under test are the ones `nuspi serve` sells:
//!
//! * a batch is byte-identical to serial submission, on one worker or
//!   four, cold or warm (response bodies are pure functions of the
//!   request);
//! * repeats — including α-renamed resubmissions — are answered from
//!   the content-addressed cache, and three rounds of the suite reach
//!   at least a 2/3 hit rate;
//! * eviction under a tight byte budget is deterministic (two engines
//!   replaying the same request sequence agree on every hit and miss);
//! * a panicking job is converted to an error response without wedging
//!   the pool.

use nuspi_engine::{AnalysisEngine, EngineConfig, ProcessInput, Request, Response};
use nuspi_protocols::{open_examples, suite};
use nuspi_security::{n_star, n_star_name};
use nuspi_syntax::{builder, parse_process, Process, Value};

/// The 25-case request list: a lint over every suite case. Closed
/// protocols go in as source text (pooled execution); the tracked open
/// examples only exist as ASTs, so they go in parsed (inline execution).
fn suite_requests() -> Vec<Request> {
    let mut out = Vec::new();
    for spec in suite() {
        let mut secrets: Vec<String> = spec
            .policy
            .secrets()
            .map(|s| s.as_str().to_owned())
            .collect();
        secrets.sort();
        out.push(Request::Lint {
            process: ProcessInput::Source(spec.source.clone()),
            secrets,
            shards: 1,
        });
    }
    for ex in open_examples() {
        let tracked = builder::restrict(
            n_star_name(),
            ex.process.subst(ex.var, &Value::name(n_star_name())),
        );
        let mut policy = ex.policy.clone();
        policy.add_secret(n_star());
        let mut secrets: Vec<String> = policy.secrets().map(|s| s.as_str().to_owned()).collect();
        secrets.sort();
        out.push(Request::Lint {
            process: ProcessInput::Parsed(tracked),
            secrets,
            shards: 1,
        });
    }
    assert_eq!(out.len(), 25, "the suite grew; update the tests");
    out
}

fn lines(responses: &[Response]) -> Vec<String> {
    responses.iter().map(Response::to_line).collect()
}

#[test]
fn batch_matches_serial_byte_for_byte_across_jobs_1_and_4() {
    let requests = suite_requests();

    // Serial on one worker, cold cache.
    let serial_engine = AnalysisEngine::with_jobs(1);
    let serial: Vec<Response> = requests
        .iter()
        .map(|r| serial_engine.submit(r.clone()))
        .collect();

    // One batch on four workers, cold cache.
    let batch_engine = AnalysisEngine::with_jobs(4);
    let batch = batch_engine.submit_requests(requests.clone());

    assert_eq!(lines(&serial), lines(&batch));
    for r in serial.iter().chain(&batch) {
        assert!(r.is_ok(), "{}", r.body);
    }
}

#[test]
fn three_repeated_batches_reach_the_hit_rate_target() {
    let requests = suite_requests();
    let engine = AnalysisEngine::with_jobs(4);

    let first = engine.submit_requests(requests.clone());
    for round in 0..2 {
        let again = engine.submit_requests(requests.clone());
        assert_eq!(lines(&first), lines(&again), "round {round}");
        assert!(
            again.iter().all(|r| r.cached),
            "round {round}: every repeat must be a cache hit"
        );
    }

    let stats = engine.stats();
    assert_eq!(stats.requests, 75);
    assert_eq!(stats.cache.misses, 25);
    assert_eq!(stats.cache.hits, 50);
    assert!(
        stats.hit_rate() >= 0.6,
        "hit rate {} below the 60% target",
        stats.hit_rate()
    );
}

#[test]
fn alpha_renamed_resubmission_hits_the_cache() {
    // Disciplined α-conversion: freshen the binder's runtime index (the
    // executor's own renaming) and resubmit. Same canonical class, so
    // the content-addressed key — and the cached body — are shared.
    let p = parse_process("(new k) (new m) c<{m, new r}:k>.0").unwrap();
    let Process::Restrict { name, body } = &p else {
        panic!("expected a restriction at the root")
    };
    let fresh = name.freshen();
    let renamed = Process::Restrict {
        name: fresh,
        body: Box::new(body.rename_name(*name, fresh)),
    };
    assert_ne!(p, renamed, "the renaming must actually change the AST");

    let engine = AnalysisEngine::with_jobs(2);
    let secrets = vec!["k".to_owned(), "m".to_owned()];
    let first = engine.submit(Request::Audit {
        process: ProcessInput::Parsed(p),
        secrets: secrets.clone(),
    });
    assert!(first.is_ok(), "{}", first.body);
    assert!(!first.cached);

    let second = engine.submit(Request::Audit {
        process: ProcessInput::Parsed(renamed),
        secrets,
    });
    assert!(second.cached, "α-renamed resubmission must hit");
    assert_eq!(first.body, second.body);
}

#[test]
fn lru_eviction_is_deterministic_under_a_tight_byte_budget() {
    // Distinct single-output processes: small bodies of similar size.
    let sources: Vec<String> = (0..6).map(|i| format!("chan{i}<n>.0")).collect();
    let solve = |src: &String| Request::solve(src);

    // Size the budget from a probe body so it holds roughly two entries.
    let probe = AnalysisEngine::with_jobs(1).submit(solve(&sources[0]));
    let budget = 2 * (probe.body.len() + nuspi_engine::ENTRY_OVERHEAD) + 8;

    let replay = || {
        let engine = AnalysisEngine::new(EngineConfig {
            jobs: 1,
            cache_bytes: budget,
            ..EngineConfig::default()
        });
        // Fill past the budget, then revisit everything oldest-first.
        let mut hits = Vec::new();
        for src in sources.iter().chain(sources.iter()) {
            hits.push(engine.submit(solve(src)).cached);
        }
        (hits, engine.stats())
    };

    let (hits_a, stats_a) = replay();
    let (hits_b, stats_b) = replay();

    assert_eq!(hits_a, hits_b, "replays must agree on every hit and miss");
    assert_eq!(stats_a.cache.evictions, stats_b.cache.evictions);
    assert_eq!(stats_a.cache.hits, stats_b.cache.hits);
    assert!(
        stats_a.cache.evictions > 0,
        "the budget must actually force evictions: {stats_a:?}"
    );
    // The first pass inserts 6 distinct entries into a ~2-entry cache,
    // so the oldest are gone by the second pass: some misses repeat.
    assert!(
        stats_a.cache.misses > 6,
        "revisiting evicted entries must miss: {stats_a:?}"
    );
    assert!(stats_a.cache_bytes <= budget, "{stats_a:?}");
}

#[test]
fn panicking_job_does_not_wedge_the_pool() {
    let engine = AnalysisEngine::with_jobs(2);
    let poisoned = engine.submit(Request::DebugPanic);
    assert!(
        poisoned.body.contains("analysis panicked"),
        "{}",
        poisoned.body
    );

    // The pool still drains a full batch afterwards.
    let responses = engine.submit_requests(suite_requests());
    assert!(responses.iter().all(Response::is_ok));
    assert_eq!(engine.stats().job_panics, 1);
}
