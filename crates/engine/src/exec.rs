//! Request execution: cache-key derivation and response-body rendering.
//!
//! [`prepare`] turns a [`Request`] into a [`Prepared`] job: the op name,
//! an optional content-addressed cache key, and a [`Runner`] that runs
//! the analysis and renders the body. The key is a [`StableHasher128`]
//! digest over a key-schema version, the op, the process's α-invariant
//! [`canonical_digest`], the sorted secret set, the op's own parameters,
//! and the analysis budgets — everything the body is a function of, and
//! nothing else. Two requests over α-equivalent processes with the same
//! parameters therefore share one cache slot, and a budget change (which
//! can change verdicts) never serves a stale body.
//!
//! The AST is not `Send` (values are `Rc`-shared), so work crosses to
//! the pool as *source text* and is re-parsed on the worker — parsing is
//! a rounding error next to any solver run. Requests that arrive
//! already parsed ([`ProcessInput::Parsed`]) run inline on the
//! submitting thread instead; they still hit and warm the same cache.
//!
//! Bodies are rendered in fixed key order with the same escaping rules
//! as the diagnostics JSON backend, and contain no wall-clock readings,
//! so a body is byte-identical whether computed fresh, served from the
//! cache, or produced under a different worker count.

use crate::engine::{EngineConfig, IncrementalState};
use crate::jsonio::escape;
use crate::request::{error_body, ProcessInput, Request};
use nuspi_diagnostics::{lint_with, to_json_compact, LintConfig};
use nuspi_security::{audit, reveals, AuditConfig, Knowledge, Policy};
use nuspi_syntax::{canonical_digest, parse_process, Process, StableHasher128, Symbol};
use std::collections::HashSet;
use std::fmt::Write as _;
use std::hash::Hasher as _;
use std::sync::Arc;

/// Version of the cache-key schema. Bump when the key derivation or any
/// body layout changes, so stale entries from an older engine can never
/// be served (relevant once the cache outlives one process).
const KEY_VERSION: u8 = 1;

/// How a prepared job executes.
pub(crate) enum Runner {
    /// Runs on a pool worker (captures only `Send` data — source text
    /// and scalar budgets).
    Pooled(Box<dyn FnOnce() -> String + Send + 'static>),
    /// Runs inline on the submitting thread (pre-parsed ASTs, and
    /// requests rejected before analysis).
    Inline(Box<dyn FnOnce() -> String + 'static>),
}

/// A request made ready to run.
pub(crate) struct Prepared {
    /// The protocol op name (for error bodies and stats).
    pub op: &'static str,
    /// The content-addressed key, when the request is cacheable (it
    /// parsed, and is a real analysis rather than a debug job).
    pub key: Option<u128>,
    /// Runs the analysis and renders the body fields (no braces, no id).
    pub run: Runner,
}

fn parse_input(input: &ProcessInput) -> Result<Process, String> {
    let p = input.build()?;
    if !p.is_closed() {
        let mut vars: Vec<String> = p
            .free_vars()
            .into_iter()
            .map(|v| v.symbol().as_str().to_owned())
            .collect();
        vars.sort();
        return Err(format!(
            "process is not closed (free variables: {})",
            vars.join(", ")
        ));
    }
    Ok(p)
}

fn sorted_secrets(secrets: &[String]) -> Vec<String> {
    let mut s = secrets.to_vec();
    s.sort();
    s.dedup();
    s
}

/// Derives the content-addressed key. `extras` carries the op-specific
/// scalar parameters; `strings` the op-specific string parameters (each
/// absorbed length-prefixed by `write`, so concatenations can't collide).
fn derive_key(
    op_tag: u8,
    p: &Process,
    secrets: &[String],
    extras: &[u64],
    strings: &[&str],
    cfg: &EngineConfig,
) -> u128 {
    let mut h = StableHasher128::new();
    h.write_u8(KEY_VERSION);
    h.write_u8(op_tag);
    h.write_u128(canonical_digest(p).0);
    for s in secrets {
        h.write(s.as_bytes());
    }
    for x in extras {
        h.write_u64(*x);
    }
    for s in strings {
        h.write(s.as_bytes());
    }
    // The analysis budgets feed the key through their Debug rendering:
    // any budget change re-keys every entry, which is exactly right —
    // budget changes can change verdicts.
    h.write(format!("{:?} {:?}", cfg.exec, cfg.intruder).as_bytes());
    h.finish128().0
}

fn policy_of(secrets: &[String]) -> Policy {
    Policy::with_secrets(secrets.iter().map(String::as_str))
}

/// The process's free names that the policy calls public — the bounded
/// intruder's default initial knowledge.
fn public_free_names(p: &Process, policy: &Policy) -> Vec<Symbol> {
    let mut names: Vec<Symbol> = p
        .free_names()
        .into_iter()
        .map(|n| n.canonical())
        .filter(|n| policy.is_public(*n))
        .collect();
    names.sort_by_key(|s| s.as_str().to_owned());
    names.dedup();
    names
}

/// Builds the [`Runner`] for an analysis over `input`: pooled for
/// source text (re-parsed on the worker), inline for a pre-parsed AST.
/// `build` must capture only `Send` data.
fn runner(
    op: &'static str,
    input: &ProcessInput,
    p: Process,
    build: impl FnOnce(Process) -> String + Send + 'static,
) -> Runner {
    match input {
        ProcessInput::Source(src) => {
            let src = src.clone();
            Runner::Pooled(Box::new(move || match parse_process(&src) {
                Ok(p) => build(p),
                // Unreachable in practice: the same text parsed at
                // prepare time. Kept as an error body, not a panic.
                Err(e) => error_body(op, &e.to_string()),
            }))
        }
        ProcessInput::Parsed(_) => Runner::Inline(Box::new(move || build(p))),
    }
}

/// Prepares `request` for execution under `cfg`. `incremental` is the
/// engine's persistent incremental solver, shared by every
/// [`Request::SolveIncremental`] job.
pub(crate) fn prepare(
    request: &Request,
    cfg: &EngineConfig,
    incremental: &Arc<IncrementalState>,
) -> Prepared {
    match request {
        Request::Audit { process, secrets } => {
            let op = "audit";
            let secrets = sorted_secrets(secrets);
            match parse_input(process) {
                Err(e) => fail(op, e),
                Ok(p) => {
                    let key = derive_key(1, &p, &secrets, &[], &[], cfg);
                    let (exec, intruder) = (cfg.exec, cfg.intruder);
                    let run = runner(op, process, p, move |p| {
                        let policy = policy_of(&secrets);
                        // Built inside the job: `IntruderConfig` holds
                        // `Rc` values, so only the scalar budgets cross.
                        let audit_cfg = AuditConfig {
                            exec,
                            intruder: intruder.to_config(),
                        };
                        let report = audit(&p, &policy, &audit_cfg);
                        let mut body = String::new();
                        let _ = write!(
                            body,
                            "\"op\":\"audit\",\"status\":\"ok\",\"secure\":{},\
                             \"confined\":{},\"careful\":{},\"attacks\":{},",
                            report.is_secure(),
                            report.confinement.is_confined(),
                            report.carefulness.is_careful(),
                            report.attacks.len()
                        );
                        let _ = write!(body, "\"report\":\"{}\"", escape(&report.to_string()));
                        body
                    });
                    Prepared {
                        op,
                        key: Some(key),
                        run,
                    }
                }
            }
        }
        Request::Lint {
            process,
            secrets,
            shards,
        } => {
            let op = "lint";
            let secrets = sorted_secrets(secrets);
            let shards = (*shards).max(1);
            match parse_input(process) {
                Err(e) => fail(op, e),
                Ok(p) => {
                    // The shard count is *not* part of the key: lint
                    // reports are byte-identical across solver layouts
                    // (a tested invariant of nuspi-diagnostics), so all
                    // layouts share one slot.
                    let key = derive_key(2, &p, &secrets, &[], &[], cfg);
                    let exec = cfg.exec;
                    let run = runner(op, process, p, move |p| {
                        let policy = policy_of(&secrets);
                        let diags = lint_with(&p, &policy, LintConfig { shards, exec });
                        format!(
                            "\"op\":\"lint\",\"status\":\"ok\",\"diagnostics\":{},\"report\":{}",
                            diags.len(),
                            to_json_compact(&diags)
                        )
                    });
                    Prepared {
                        op,
                        key: Some(key),
                        run,
                    }
                }
            }
        }
        Request::Solve {
            process,
            secrets,
            attacker,
            depth,
        } => {
            let op = "solve";
            let secrets = sorted_secrets(secrets);
            let (attacker, depth) = (*attacker, *depth);
            match parse_input(process) {
                Err(e) => fail(op, e),
                Ok(p) => {
                    let key = derive_key(
                        3,
                        &p,
                        &secrets,
                        &[u64::from(attacker), depth as u64],
                        &[],
                        cfg,
                    );
                    let run = runner(op, process, p, move |p| {
                        let solution = if attacker {
                            let secret: HashSet<Symbol> =
                                secrets.iter().map(|s| Symbol::intern(s)).collect();
                            nuspi_cfa::analyze_with_attacker(&p, &secret).solution
                        } else {
                            nuspi_cfa::analyze(&p)
                        };
                        let st = solution.stats();
                        // `render_estimate_for` prints labels/vars as
                        // pre-order ordinals, so the body is a function
                        // of the α-class (cacheable), not of this
                        // parse's run-minted indices.
                        format!(
                            "\"op\":\"solve\",\"status\":\"ok\",\"attacker\":{},\
                             \"rounds\":{},\"productions\":{},\"estimate\":\"{}\"",
                            attacker,
                            st.rounds,
                            st.productions,
                            escape(&solution.render_estimate_for(&p, depth))
                        )
                    });
                    Prepared {
                        op,
                        key: Some(key),
                        run,
                    }
                }
            }
        }
        Request::Reveals {
            process,
            secrets,
            secret,
            known,
        } => {
            let op = "reveals";
            let secrets = sorted_secrets(secrets);
            let known = sorted_secrets(known); // same sort+dedup discipline
            let secret = secret.clone();
            match parse_input(process) {
                Err(e) => fail(op, e),
                Ok(p) => {
                    let known_refs: Vec<&str> = known.iter().map(String::as_str).collect();
                    let key = derive_key(
                        4,
                        &p,
                        &secrets,
                        &[known.len() as u64],
                        &[&secret, &known_refs.join("\u{0}")],
                        cfg,
                    );
                    let intruder = cfg.intruder;
                    let run = runner(op, process, p, move |p| {
                        let policy = policy_of(&secrets);
                        let k0 = if known.is_empty() {
                            Knowledge::from_names(public_free_names(&p, &policy))
                        } else {
                            Knowledge::from_names(known.iter().map(|s| Symbol::intern(s)))
                        };
                        let target = Symbol::intern(&secret);
                        let attack = reveals(&p, &k0, target, &intruder.to_config());
                        let mut body = format!(
                            "\"op\":\"reveals\",\"status\":\"ok\",\"secret\":\"{}\",\
                             \"revealed\":{},\"trace\":[",
                            escape(&secret),
                            attack.is_some()
                        );
                        if let Some(a) = &attack {
                            for (i, step) in a.trace.iter().enumerate() {
                                if i > 0 {
                                    body.push(',');
                                }
                                let _ = write!(body, "\"{}\"", escape(step));
                            }
                        }
                        body.push(']');
                        if let Some(a) = &attack {
                            let _ = write!(body, ",\"knowledge_size\":{}", a.knowledge_size);
                        }
                        body
                    });
                    Prepared {
                        op,
                        key: Some(key),
                        run,
                    }
                }
            }
        }
        Request::SolveIncremental { process, depth } => {
            let op = "solve_incremental";
            let depth = *depth;
            match parse_input(process) {
                Err(e) => fail(op, e),
                Ok(p) => {
                    // Same key family as `solve`: the body is a pure
                    // function of the α-class and the render depth —
                    // reuse accounting is *not* in the body (it depends
                    // on solver warmth), it lives in the engine meters.
                    let key = derive_key(5, &p, &[], &[depth as u64], &[], cfg);
                    let inc = Arc::clone(incremental);
                    let run = runner(op, process, p, move |p| {
                        let (solution, stats) = inc.solve(&p);
                        format!(
                            "\"op\":\"solve_incremental\",\"status\":\"ok\",\
                             \"components\":{},\"estimate\":\"{}\"",
                            stats.components,
                            escape(&solution.render_estimate_for(&p, depth))
                        )
                    });
                    Prepared {
                        op,
                        key: Some(key),
                        run,
                    }
                }
            }
        }
        Request::AnalyzeSource {
            file,
            source,
            shards,
        } => {
            let op = "analyze_source";
            let shards = (*shards).max(1);
            match nuspi_lang::compile(file, source) {
                // Frontend failures are uncacheable error bodies, like
                // parse failures of the νSPI ops.
                Err(e) => fail(op, format!("{file}:{}: {}", e.pos, e.message)),
                Ok(c) => {
                    // Keyed on the α-invariant digest of the *lowered*
                    // process plus the file name (it appears verbatim in
                    // the body's anchors) plus every source-map site
                    // record: the body anchors diagnostics to the
                    // declarations' line:col, so an edit that moves a
                    // declaration must re-key (a cached body would point
                    // at the wrong lines of the new file), while a
                    // formatting-only edit that keeps every declaration
                    // in place still shares the slot. Shards are not in
                    // the key: reports are byte-identical across solver
                    // layouts.
                    let mut anchors = String::new();
                    for (base, site) in &c.map.sites {
                        let _ = write!(
                            anchors,
                            "{base}\u{0}{}\u{0}{}\u{0}{}\u{0}{}:{};",
                            site.ident,
                            site.role.as_str(),
                            site.label.as_deref().unwrap_or(""),
                            site.line,
                            site.col
                        );
                    }
                    let key = derive_key(6, &c.process, &c.secrets, &[], &[file, &anchors], cfg);
                    let (file, source) = (file.clone(), source.clone());
                    // The lowered AST is `Rc`-shared (not `Send`); the
                    // worker recompiles from source, like the νSPI ops
                    // re-parse.
                    let run = Runner::Pooled(Box::new(move || {
                        let report = nuspi_lang::check_with(&file, &source, shards);
                        let errors = report
                            .diags
                            .iter()
                            .filter(|d| d.diag.severity == nuspi_diagnostics::Severity::Error)
                            .count();
                        format!(
                            "\"op\":\"analyze_source\",\"status\":\"ok\",\"file\":\"{}\",\
                             \"verdict\":\"{}\",\"errors\":{},\"report\":{}",
                            escape(&file),
                            report.verdict.as_str(),
                            errors,
                            nuspi_lang::check_to_json_compact(&report)
                        )
                    }));
                    Prepared {
                        op,
                        key: Some(key),
                        run,
                    }
                }
            }
        }
        Request::Equiv { left, right } => {
            let op = "equiv";
            match (parse_input(left), parse_input(right)) {
                (Err(e), _) => fail(op, format!("left: {e}")),
                (_, Err(e)) => fail(op, format!("right: {e}")),
                (Ok(l), Ok(r)) => {
                    // Order-independent pair key: the low digest plays
                    // the `p` slot, the high digest rides in `extras` —
                    // `equiv(P, Q)` and `equiv(Q, P)` share one entry.
                    // The game budgets are keyed for this op only (via
                    // `strings`), so changing them re-keys `equiv`
                    // bodies without touching the static ops' entries.
                    let (dl, dr) = (canonical_digest(&l).0, canonical_digest(&r).0);
                    let plo = if dl <= dr { &l } else { &r };
                    let hi = dl.max(dr);
                    let key = derive_key(
                        7,
                        plo,
                        &[],
                        &[hi as u64, (hi >> 64) as u64],
                        &[&format!("{:?}", cfg.equiv)],
                        cfg,
                    );
                    let equiv_cfg = cfg.equiv;
                    let run = match (left, right) {
                        (ProcessInput::Source(ls), ProcessInput::Source(rs)) => {
                            let (ls, rs) = (ls.clone(), rs.clone());
                            Runner::Pooled(Box::new(move || {
                                match (parse_process(&ls), parse_process(&rs)) {
                                    (Ok(l), Ok(r)) => equiv_body(&l, &r, &equiv_cfg),
                                    (Err(e), _) | (_, Err(e)) => {
                                        error_body("equiv", &e.to_string())
                                    }
                                }
                            }))
                        }
                        // A pre-parsed side pins the job inline: the AST
                        // is `Rc`-shared and cannot cross to the pool.
                        _ => Runner::Inline(Box::new(move || equiv_body(&l, &r, &equiv_cfg))),
                    };
                    Prepared {
                        op,
                        key: Some(key),
                        run,
                    }
                }
            }
        }
        Request::DebugPanic => Prepared {
            op: "debug-panic",
            key: None,
            run: Runner::Pooled(Box::new(|| panic!("debug-panic requested"))),
        },
    }
}

/// Renders the `equiv` body. Re-orients the pair by α-invariant digest
/// first (min digest = `lhs`), so the body — verdict, trace, meters —
/// is a pure function of the *unordered* pair and is byte-identical
/// whichever order the caller submitted and whether it ran pooled or
/// inline.
fn equiv_body(l: &Process, r: &Process, cfg: &nuspi_equiv::EquivConfig) -> String {
    let (dl, dr) = (canonical_digest(l).0, canonical_digest(r).0);
    let (lo, hi, dlo, dhi) = if dl <= dr {
        (l, r, dl, dr)
    } else {
        (r, l, dr, dl)
    };
    // The attacker starts off knowing every free name of either side —
    // the observer of Definition 8 owns the public world.
    let mut public: Vec<Symbol> = lo
        .free_names()
        .into_iter()
        .chain(hi.free_names())
        .map(|n| n.canonical())
        .collect();
    public.sort_by_key(|s| s.as_str().to_owned());
    public.dedup();
    let report = nuspi_equiv::check(lo, hi, &public, cfg);
    let mut body = format!(
        "\"op\":\"equiv\",\"status\":\"ok\",\"verdict\":\"{}\",\
         \"lhs\":\"{dlo:032x}\",\"rhs\":\"{dhi:032x}\",\"plays\":{},\"depth\":{}",
        report.verdict.tag(),
        report.plays,
        report.depth
    );
    match &report.verdict {
        nuspi_equiv::Verdict::Bisimilar => {}
        nuspi_equiv::Verdict::Distinguished { trace } => {
            body.push_str(",\"trace\":[");
            for (i, step) in trace.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                let _ = write!(body, "\"{}\"", escape(step));
            }
            body.push(']');
        }
        nuspi_equiv::Verdict::Unknown { budgets } => {
            body.push_str(",\"budgets\":[");
            for (i, b) in budgets.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                let _ = write!(body, "\"{}\"", escape(b));
            }
            body.push(']');
        }
    }
    body
}

/// A request that failed before reaching a worker (parse error, open
/// process): uncacheable, and its "run" just renders the error.
fn fail(op: &'static str, message: String) -> Prepared {
    Prepared {
        op,
        key: None,
        run: Runner::Inline(Box::new(move || error_body(op, &message))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> EngineConfig {
        EngineConfig::default()
    }

    fn prepare(request: &Request, cfg: &EngineConfig) -> Prepared {
        super::prepare(request, cfg, &Arc::new(IncrementalState::new(1)))
    }

    fn run(p: Prepared) -> String {
        match p.run {
            Runner::Pooled(f) => f(),
            Runner::Inline(f) => f(),
        }
    }

    #[test]
    fn alpha_renamed_resubmissions_share_a_key() {
        // Disciplined α-conversion renames within a canonical class:
        // freshen the binder the way the executor does and resubmit.
        let p = parse_process("(new k) c<k>.0").unwrap();
        let Process::Restrict { name, body } = &p else {
            panic!()
        };
        let fresh = name.freshen();
        let q = Process::Restrict {
            name: fresh,
            body: Box::new(body.rename_name(*name, fresh)),
        };
        assert_ne!(p, q, "syntactically different");
        let a = prepare(
            &Request::Audit {
                process: p.into(),
                secrets: vec!["k".into()],
            },
            &cfg(),
        );
        let b = prepare(
            &Request::Audit {
                process: q.into(),
                secrets: vec!["k".into()],
            },
            &cfg(),
        );
        assert_eq!(a.key, b.key);
        assert!(a.key.is_some());
    }

    #[test]
    fn different_canonical_bases_do_not_share_a_key() {
        // `(new m)` vs `(new z)` differ by canonical base, which the
        // calculus's α-conversion never renames across — distinct keys.
        let a = prepare(&Request::audit("(new m) c<{m, new r}:k>.0", &["m"]), &cfg());
        let b = prepare(&Request::audit("(new z) c<{z, new r}:k>.0", &["m"]), &cfg());
        assert_ne!(a.key, b.key);
    }

    #[test]
    fn different_ops_and_params_get_distinct_keys() {
        let src = "(new m) c<{m, new r}:k>.0";
        let audit = prepare(&Request::audit(src, &["m"]), &cfg());
        let lint = prepare(&Request::lint(src, &["m"]), &cfg());
        let solve = prepare(&Request::solve(src), &cfg());
        let deep = prepare(
            &Request::Solve {
                process: src.into(),
                secrets: Vec::new(),
                attacker: false,
                depth: 7,
            },
            &cfg(),
        );
        let keys = [audit.key, lint.key, solve.key, deep.key];
        for (i, a) in keys.iter().enumerate() {
            assert!(a.is_some());
            for b in keys.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn budget_changes_rekey() {
        let src = "(new m) c<{m, new r}:k>.0";
        let a = prepare(&Request::audit(src, &["m"]), &cfg());
        let mut tight = cfg();
        tight.intruder.max_depth = 2;
        let b = prepare(&Request::audit(src, &["m"]), &tight);
        assert_ne!(a.key, b.key);
    }

    #[test]
    fn incremental_bodies_are_warmth_independent() {
        // The body must be a pure function of the request: a warm
        // re-solve (everything reused) renders byte-identically to the
        // cold one, and matches the plain `solve` estimate.
        let src = "a<m>.0 | a(x).b<x>.0 | c<{m, new r}:k>.0 \
                   | c(z). case z of {y}:k in d<y>.0";
        let state = Arc::new(IncrementalState::new(2));
        let req = Request::solve_incremental(src);
        let cold = run(super::prepare(&req, &cfg(), &state));
        let warm = run(super::prepare(&req, &cfg(), &state));
        assert_eq!(cold, warm);
        assert!(cold.contains("\"components\":4"), "{cold}");
        let plain = run(prepare(&Request::solve(src), &cfg()));
        let estimate = |body: &str| {
            body.split("\"estimate\":\"")
                .nth(1)
                .map(str::to_owned)
                .expect("estimate field")
        };
        assert_eq!(estimate(&cold), estimate(&plain));
        // Distinct op tag: never shares a cache slot with plain solve.
        let a = super::prepare(&req, &cfg(), &state);
        let b = prepare(&Request::solve(src), &cfg());
        assert_ne!(a.key, b.key);
    }

    #[test]
    fn parse_failures_are_uncacheable_error_bodies() {
        let p = prepare(&Request::solve("(new"), &cfg());
        assert!(p.key.is_none());
        let body = run(p);
        assert!(body.contains("\"status\":\"error\""), "{body}");
    }

    #[test]
    fn open_processes_are_rejected() {
        // Free variables are only expressible via the AST (the parser
        // reads bare identifiers as names): take an input continuation.
        let whole = parse_process("c(x). d<x>.0").unwrap();
        let Process::Input { then, .. } = whole else {
            panic!()
        };
        let p = prepare(
            &Request::Solve {
                process: (*then).into(),
                secrets: Vec::new(),
                attacker: false,
                depth: 3,
            },
            &cfg(),
        );
        assert!(p.key.is_none());
        let body = run(p);
        assert!(body.contains("not closed"), "{body}");
        assert!(body.contains("free variables: x"), "{body}");
    }

    #[test]
    fn parsed_inputs_run_inline_and_match_source_bodies() {
        let src = "(new m) c<{m, new r}:k>.0";
        let parsed = parse_process(src).unwrap();
        let via_source = prepare(&Request::solve(src), &cfg());
        let via_ast = prepare(
            &Request::Solve {
                process: parsed.into(),
                secrets: Vec::new(),
                attacker: false,
                depth: 3,
            },
            &cfg(),
        );
        assert_eq!(via_source.key, via_ast.key);
        assert!(matches!(via_source.run, Runner::Pooled(_)));
        assert!(matches!(via_ast.run, Runner::Inline(_)));
        assert_eq!(run(via_source), run(via_ast));
    }

    #[test]
    fn equiv_keys_are_pair_order_independent() {
        let (p, q) = ("(new n) c<n>.0", "(hide n) c<n>.0");
        let a = prepare(&Request::equiv(p, q), &cfg());
        let b = prepare(&Request::equiv(q, p), &cfg());
        assert_eq!(a.key, b.key);
        assert!(a.key.is_some());
        // ... but a different pair is a different slot.
        let c = prepare(&Request::equiv(p, p), &cfg());
        assert_ne!(a.key, c.key);
    }

    #[test]
    fn equiv_budget_changes_rekey_equiv_only() {
        let req = Request::equiv("c<a>.0", "c<b>.0");
        let a = prepare(&req, &cfg());
        let mut tight = cfg();
        tight.equiv.game_depth = 2;
        let b = prepare(&req, &tight);
        assert_ne!(a.key, b.key);
        // The static ops don't depend on the game budgets: their keys —
        // and any persisted cache entries — survive an equiv re-tune.
        let audit = Request::audit("(new m) c<{m, new r}:k>.0", &["m"]);
        assert_eq!(prepare(&audit, &cfg()).key, prepare(&audit, &tight).key);
    }

    #[test]
    fn equiv_bodies_reorient_by_digest() {
        // Submitting the pair in either order renders byte-identical
        // bodies (the cache stores one line for both orientations).
        let (p, q) = ("(new n) c<n>.0", "(hide n) c<n>.0");
        let ab = run(prepare(&Request::equiv(p, q), &cfg()));
        let ba = run(prepare(&Request::equiv(q, p), &cfg()));
        assert_eq!(ab, ba);
        assert!(ab.contains("\"verdict\":\"distinguished\""), "{ab}");
        assert!(ab.contains("\"trace\":["), "{ab}");
    }

    #[test]
    fn equiv_rejects_unparseable_sides_uncached() {
        let p = prepare(&Request::equiv("(new", "0"), &cfg());
        assert!(p.key.is_none());
        let body = run(p);
        assert!(body.contains("\"status\":\"error\""), "{body}");
        assert!(body.contains("left:"), "{body}");
    }

    #[test]
    fn bodies_render_and_are_deterministic() {
        let src = "(new m) c<{m, new r}:k>.0";
        for req in [
            Request::audit(src, &["m", "k"]),
            Request::lint(src, &["m", "k"]),
            Request::solve(src),
            Request::solve_incremental(src),
            Request::reveals(src, &["m", "k"], "m"),
            Request::equiv(src, "(new m2) c<{m2, new r}:k>.0"),
        ] {
            let once = run(prepare(&req, &cfg()));
            let twice = run(prepare(&req, &cfg()));
            assert_eq!(once, twice);
            assert!(once.contains("\"status\":\"ok\""), "{once}");
        }
    }
}
