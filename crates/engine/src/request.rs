//! Request and response types of the analysis service.
//!
//! A [`Request`] names one analysis over one process — the same four
//! workloads the `nuspi` CLI exposes one-shot (`Audit`, `Lint`,
//! `Solve`, `Reveals`) — with the process given either as νSPI source
//! text or as an already-built [`Process`] (API callers resubmitting
//! executor residuals). An [`Envelope`] wraps a request with the
//! protocol envelope fields: an optional correlation id echoed back in
//! the response, and an optional deadline.
//!
//! A [`Response`] carries the rendered JSON body *without* the id, so
//! the body is a pure function of the request and can be shared through
//! the content-addressed cache; [`Response::to_line`] splices the id
//! back in for the wire.

use crate::jsonio::escape;
use nuspi_syntax::{parse_process, Process};
use std::sync::Arc;
use std::time::Duration;

/// The process a request analyses.
#[derive(Clone, Debug)]
pub enum ProcessInput {
    /// νSPI source text, parsed by the engine.
    Source(String),
    /// An already-built process (API callers only; the wire protocol
    /// always sends source).
    Parsed(Process),
}

impl ProcessInput {
    pub(crate) fn build(&self) -> Result<Process, String> {
        match self {
            ProcessInput::Source(src) => parse_process(src).map_err(|e| e.to_string()),
            ProcessInput::Parsed(p) => Ok(p.clone()),
        }
    }
}

impl From<&str> for ProcessInput {
    fn from(src: &str) -> ProcessInput {
        ProcessInput::Source(src.to_owned())
    }
}

impl From<Process> for ProcessInput {
    fn from(p: Process) -> ProcessInput {
        ProcessInput::Parsed(p)
    }
}

/// One analysis request.
#[derive(Clone, Debug)]
pub enum Request {
    /// The full secrecy audit: confinement + carefulness + bounded
    /// Dolev–Yao search per secret ([`nuspi_security::audit`]).
    Audit {
        /// The process to audit.
        process: ProcessInput,
        /// Canonical names declared secret.
        secrets: Vec<String>,
    },
    /// The multi-pass lint engine with witness traces.
    Lint {
        /// The process to lint.
        process: ProcessInput,
        /// Canonical names declared secret.
        secrets: Vec<String>,
        /// Solver shards (`1` = sequential; diagnostics are identical
        /// either way).
        shards: usize,
    },
    /// The bare CFA least solution, optionally composed with the most
    /// powerful public attacker.
    Solve {
        /// The process to solve.
        process: ProcessInput,
        /// Canonical names declared secret (attacker mode only).
        secrets: Vec<String>,
        /// Solve together with the Lemma 1 attacker.
        attacker: bool,
        /// Tree-render depth of the reported estimate.
        depth: usize,
    },
    /// The bounded Dolev–Yao revelation search for one secret.
    Reveals {
        /// The process to attack.
        process: ProcessInput,
        /// Canonical names declared secret.
        secrets: Vec<String>,
        /// The secret whose revelation is searched for.
        secret: String,
        /// Names the intruder knows initially (empty = the process's
        /// public free names).
        known: Vec<String>,
    },
    /// The CFA least solution computed by the engine's persistent
    /// [`IncrementalSolver`](nuspi_cfa::IncrementalSolver): unchanged
    /// top-level components are reused from the per-component solution
    /// cache, so re-solving an edited process only saturates the dirty
    /// frontier. The estimate is identical to [`Request::Solve`] without
    /// attacker composition.
    SolveIncremental {
        /// The process to solve.
        process: ProcessInput,
        /// Tree-render depth of the reported estimate.
        depth: usize,
    },
    /// The annotated-source frontend (`nuspi-lang`): compile a Go-ish
    /// `.nu` program down to νSPI and run the full lint pipeline,
    /// rendering source-anchored diagnostics. Cached on the α-invariant
    /// digest of the *lowered* process, so a formatting-only edit of
    /// the source is a cache hit.
    AnalyzeSource {
        /// The file name used in anchors (never read from disk).
        file: String,
        /// The annotated source text.
        source: String,
        /// Solver shards (`1` = sequential; diagnostics are identical
        /// either way).
        shards: usize,
    },
    /// The dynamic backend: bounded hedged-bisimilarity of two closed
    /// processes ([`nuspi_equiv::check`]), with every free name of
    /// either side as the attacker's initial knowledge. The body is
    /// cached under an *order-independent* pair of α-invariant digests —
    /// `equiv(P, Q)` and `equiv(Q, P)` share one slot (`lhs`/`rhs` in
    /// the body name the digest-sorted orientation).
    Equiv {
        /// One side of the candidate equivalence.
        left: ProcessInput,
        /// The other side.
        right: ProcessInput,
    },
    /// Test-only: a job that panics inside the worker, exercising the
    /// pool's panic isolation. Not reachable from the wire protocol.
    #[doc(hidden)]
    DebugPanic,
}

impl Request {
    /// An audit request over source text.
    pub fn audit(src: &str, secrets: &[&str]) -> Request {
        Request::Audit {
            process: src.into(),
            secrets: secrets.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    /// A lint request over source text (sequential solver).
    pub fn lint(src: &str, secrets: &[&str]) -> Request {
        Request::Lint {
            process: src.into(),
            secrets: secrets.iter().map(|s| (*s).to_owned()).collect(),
            shards: 1,
        }
    }

    /// A plain solve request over source text.
    pub fn solve(src: &str) -> Request {
        Request::Solve {
            process: src.into(),
            secrets: Vec::new(),
            attacker: false,
            depth: 3,
        }
    }

    /// An incremental solve request over source text.
    pub fn solve_incremental(src: &str) -> Request {
        Request::SolveIncremental {
            process: src.into(),
            depth: 3,
        }
    }

    /// A revelation-search request over source text.
    pub fn reveals(src: &str, secrets: &[&str], secret: &str) -> Request {
        Request::Reveals {
            process: src.into(),
            secrets: secrets.iter().map(|s| (*s).to_owned()).collect(),
            secret: secret.to_owned(),
            known: Vec::new(),
        }
    }

    /// An equivalence-check request over two source texts.
    pub fn equiv(left: &str, right: &str) -> Request {
        Request::Equiv {
            left: left.into(),
            right: right.into(),
        }
    }

    /// An annotated-source analysis request (sequential solver).
    pub fn analyze_source(file: &str, source: &str) -> Request {
        Request::AnalyzeSource {
            file: file.to_owned(),
            source: source.to_owned(),
            shards: 1,
        }
    }

    /// The protocol op name.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Audit { .. } => "audit",
            Request::Lint { .. } => "lint",
            Request::Solve { .. } => "solve",
            Request::Reveals { .. } => "reveals",
            Request::SolveIncremental { .. } => "solve_incremental",
            Request::AnalyzeSource { .. } => "analyze_source",
            Request::Equiv { .. } => "equiv",
            Request::DebugPanic => "debug-panic",
        }
    }
}

/// A request plus its protocol envelope: correlation id and deadline.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Echoed back verbatim in the response line.
    pub id: Option<String>,
    /// The analysis to run.
    pub request: Request,
    /// How long the submitter is willing to wait. On expiry the
    /// response is an error, but the job still completes in the pool
    /// and warms the cache.
    pub deadline: Option<Duration>,
}

impl From<Request> for Envelope {
    fn from(request: Request) -> Envelope {
        Envelope {
            id: None,
            request,
            deadline: None,
        }
    }
}

impl Envelope {
    /// Attaches a correlation id.
    pub fn with_id(mut self, id: impl Into<String>) -> Envelope {
        self.id = Some(id.into());
        self
    }

    /// Attaches a deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Envelope {
        self.deadline = Some(deadline);
        self
    }
}

/// One response: the request's id plus the rendered body.
#[derive(Clone, Debug)]
pub struct Response {
    /// The request's correlation id, echoed back.
    pub id: Option<String>,
    /// The response object's fields, rendered as JSON *without* the
    /// enclosing braces and without the id — exactly what the cache
    /// stores and shares between requests.
    pub body: Arc<str>,
    /// Whether the body came from the cache (observability only; never
    /// serialized, so cached and computed responses are byte-identical).
    pub cached: bool,
}

impl Response {
    /// The full JSON-lines wire form (single line, no trailing newline).
    pub fn to_line(&self) -> String {
        match &self.id {
            Some(id) => format!("{{\"id\":\"{}\",{}}}", escape(id), self.body),
            None => format!("{{{}}}", self.body),
        }
    }

    /// Whether the body reports `"status":"ok"`.
    pub fn is_ok(&self) -> bool {
        self.body.starts_with("\"op\":") && self.body.contains("\"status\":\"ok\"")
    }
}

/// Renders an error body for `op`.
pub(crate) fn error_body(op: &str, message: &str) -> String {
    format!(
        "\"op\":\"{}\",\"status\":\"error\",\"error\":\"{}\"",
        escape(op),
        escape(message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_line_splices_id() {
        let r = Response {
            id: Some("r-1".into()),
            body: Arc::from("\"op\":\"audit\",\"status\":\"ok\""),
            cached: false,
        };
        assert_eq!(
            r.to_line(),
            "{\"id\":\"r-1\",\"op\":\"audit\",\"status\":\"ok\"}"
        );
        assert!(r.is_ok());
        let anon = Response { id: None, ..r };
        assert_eq!(anon.to_line(), "{\"op\":\"audit\",\"status\":\"ok\"}");
    }

    #[test]
    fn error_bodies_escape_messages() {
        let b = error_body("audit", "bad \"quote\"");
        assert!(b.contains("\\\"quote\\\""));
        let r = Response {
            id: None,
            body: b.into(),
            cached: false,
        };
        assert!(!r.is_ok());
    }

    #[test]
    fn envelope_builders_compose() {
        let env = Envelope::from(Request::solve("0"))
            .with_id("x")
            .with_deadline(Duration::from_millis(5));
        assert_eq!(env.id.as_deref(), Some("x"));
        assert_eq!(env.deadline, Some(Duration::from_millis(5)));
        assert_eq!(env.request.op(), "solve");
    }
}
