//! A content-addressed LRU cache with a byte budget.
//!
//! Keys are 128-bit stable digests ([`nuspi_syntax::canonical_digest`]
//! plus request parameters — see the engine's key derivation); values
//! are rendered response bodies, shared as `Arc<str>` so a hit never
//! copies the payload. The cache charges each entry its body length
//! plus a fixed per-entry overhead and evicts least-recently-used
//! entries until an insertion fits. Recency is a monotonically
//! increasing tick, so eviction order is a pure function of the
//! operation sequence — no hashing, no wall-clock — which keeps cache
//! behaviour reproducible for the tests and across worker counts.

use std::collections::HashMap;
use std::sync::Arc;

/// Approximate bookkeeping cost charged per entry on top of the body
/// bytes (key, map slot, recency tick).
pub const ENTRY_OVERHEAD: usize = 64;

struct Entry {
    body: Arc<str>,
    cost: usize,
    last_used: u64,
}

/// Monotone counters of cache traffic, snapshot into
/// [`EngineStats`](crate::EngineStats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Bodies stored.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Bodies larger than the whole budget, never stored.
    pub rejected_oversize: u64,
}

/// The byte-budgeted LRU store.
pub struct ByteLru {
    budget: usize,
    bytes: usize,
    tick: u64,
    map: HashMap<u128, Entry>,
    counters: CacheCounters,
}

impl ByteLru {
    /// An empty cache holding at most `budget` bytes of entries.
    pub fn new(budget: usize) -> ByteLru {
        ByteLru {
            budget,
            bytes: 0,
            tick: 0,
            map: HashMap::new(),
            counters: CacheCounters::default(),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: u128) -> Option<Arc<str>> {
        self.tick += 1;
        match self.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.counters.hits += 1;
                nuspi_obs::counter("engine.cache.hits", 1);
                Some(Arc::clone(&entry.body))
            }
            None => {
                self.counters.misses += 1;
                nuspi_obs::counter("engine.cache.misses", 1);
                None
            }
        }
    }

    /// Stores `body` under `key`, evicting least-recently-used entries
    /// until it fits. Bodies that cannot fit even in an empty cache are
    /// rejected (counted, not stored). Re-inserting an existing key
    /// replaces the body.
    pub fn insert(&mut self, key: u128, body: Arc<str>) {
        let cost = body.len() + ENTRY_OVERHEAD;
        if cost > self.budget {
            self.counters.rejected_oversize += 1;
            return;
        }
        if let Some(old) = self.map.remove(&key) {
            self.bytes -= old.cost;
        }
        while self.bytes + cost > self.budget {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("bytes > 0 implies entries exist");
            let evicted = self.map.remove(&oldest).expect("key just found");
            self.bytes -= evicted.cost;
            self.counters.evictions += 1;
            nuspi_obs::counter("engine.cache.evictions", 1);
        }
        self.tick += 1;
        self.map.insert(
            key,
            Entry {
                body,
                cost,
                last_used: self.tick,
            },
        );
        self.bytes += cost;
        self.counters.insertions += 1;
        nuspi_obs::counter("engine.cache.insertions", 1);
    }

    /// Bytes currently charged against the budget.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Number of live entries.
    pub fn entries(&self) -> usize {
        self.map.len()
    }

    /// A snapshot of the traffic counters.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(n: usize) -> Arc<str> {
        Arc::from("x".repeat(n).as_str())
    }

    #[test]
    fn hit_after_insert_and_counters() {
        let mut c = ByteLru::new(1024);
        assert!(c.get(1).is_none());
        c.insert(1, body(10));
        assert_eq!(c.get(1).as_deref(), Some("xxxxxxxxxx"));
        let k = c.counters();
        assert_eq!((k.hits, k.misses, k.insertions), (1, 1, 1));
        assert_eq!(c.entries(), 1);
        assert_eq!(c.bytes(), 10 + ENTRY_OVERHEAD);
    }

    #[test]
    fn lru_eviction_is_deterministic() {
        // Three entries of equal cost in a budget that holds two.
        let cost = 10 + ENTRY_OVERHEAD;
        let mut c = ByteLru::new(2 * cost);
        c.insert(1, body(10));
        c.insert(2, body(10));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(1).is_some());
        c.insert(3, body(10));
        assert_eq!(c.counters().evictions, 1);
        assert!(c.get(2).is_none(), "LRU entry 2 evicted");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert!(c.bytes() <= c.budget());
    }

    #[test]
    fn oversize_bodies_are_rejected_not_stored() {
        let mut c = ByteLru::new(32);
        c.insert(9, body(100));
        assert_eq!(c.entries(), 0);
        assert_eq!(c.counters().rejected_oversize, 1);
        assert!(c.get(9).is_none());
    }

    #[test]
    fn reinsert_replaces_without_leaking_bytes() {
        let mut c = ByteLru::new(1024);
        c.insert(5, body(10));
        c.insert(5, body(20));
        assert_eq!(c.entries(), 1);
        assert_eq!(c.bytes(), 20 + ENTRY_OVERHEAD);
        assert_eq!(c.get(5).map(|b| b.len()), Some(20));
    }

    #[test]
    fn eviction_frees_enough_for_large_entries() {
        let mut c = ByteLru::new(3 * (10 + ENTRY_OVERHEAD));
        c.insert(1, body(10));
        c.insert(2, body(10));
        c.insert(3, body(10));
        // Needs the space of two small entries: evicts the two oldest.
        c.insert(4, body(2 * 10 + ENTRY_OVERHEAD));
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_none());
        assert!(c.get(3).is_some());
        assert!(c.get(4).is_some());
        assert_eq!(c.counters().evictions, 2);
    }
}
