//! # nuspi-engine — the batch analysis service
//!
//! Everything below the `nuspi serve` subcommand: an [`AnalysisEngine`]
//! that owns a fixed-size worker pool (std threads over an mpsc job
//! queue) and answers [`Request`]s — the same `audit` / `lint` /
//! `solve` / `reveals` workloads the CLI runs one-shot — singly or in
//! batches, with repeats served from a content-addressed LRU cache.
//!
//! The cache key is a 128-bit stable digest of the process's
//! α-invariant [`canonical_digest`](nuspi_syntax::canonical_digest),
//! the policy, the request kind and parameters, and the analysis
//! budgets. α-renaming a bound name therefore *hits*; changing a
//! budget, a secret, or the process itself *misses*. Response bodies
//! contain no wall-clock readings and no cached/computed marker, so a
//! batch is byte-identical whether it ran on one worker or eight,
//! cold or warm — the invariant the round-trip suite pins down.
//!
//! [`serve`] wraps the engine in a newline-delimited JSON session
//! (stdin/stdout in the CLI), with per-request deadlines, a `batch`
//! op, a `stats` op exposing [`EngineStats`], and graceful shutdown on
//! end of input.
//!
//! ```
//! use nuspi_engine::{AnalysisEngine, Request};
//!
//! let engine = AnalysisEngine::with_jobs(2);
//! let req = Request::audit("(new k) (new m) c<{m, new r}:k>.0", &["m", "k"]);
//! let first = engine.submit(req.clone());
//! assert!(first.is_ok() && !first.cached);
//!
//! // Resubmission (here verbatim; α-renamed works too): cache hit.
//! let again = engine.submit(req);
//! assert!(again.cached);
//! assert_eq!(first.body, again.body);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod engine;
mod exec;
pub mod jsonio;
mod pool;
mod request;
mod serve;

pub use cache::{CacheCounters, ENTRY_OVERHEAD};
pub use engine::{
    AnalysisEngine, EngineConfig, EngineStats, IncrementalMeters, IntruderBudgets, StoreMeters,
    TierTwoCache, DEFAULT_CACHE_BYTES,
};
pub use pool::WorkerPool;
pub use request::{Envelope, ProcessInput, Request, Response};
pub use serve::{answer_line, serve};
