//! The [`AnalysisEngine`]: worker pool + content-addressed cache +
//! counters, behind a two-call API ([`AnalysisEngine::submit`] /
//! [`AnalysisEngine::submit_batch`]).
//!
//! Submission is dispatch-then-wait. Dispatch checks the cache under
//! the lock and, on a miss, enqueues the prepared job on the pool; the
//! worker runs the analysis inside `catch_unwind`, stores a cacheable
//! body, and hands the result back over a per-request channel. Waiting
//! honours the request's deadline with `recv_timeout`: an expired
//! request gets an error response, but the job still completes on its
//! worker and warms the cache for the retry.
//!
//! Batches dispatch every request before waiting on any, so a batch of
//! N runs N-wide (up to the pool size) and responses come back in
//! request order regardless of completion order.

use crate::cache::{ByteLru, CacheCounters};
use crate::exec::{prepare, Prepared, Runner};
use crate::pool::{lock, WorkerPool};
use crate::request::{error_body, Envelope, Request, Response};
use nuspi_cfa::{IncrementalSolver, IncrementalStats, Solution};
use nuspi_equiv::EquivConfig;
use nuspi_security::IntruderConfig;
use nuspi_semantics::ExecConfig;
use nuspi_syntax::Process;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The scalar budgets of [`IntruderConfig`], in a `Send`-safe form the
/// engine can ship to its workers. The one field left behind is
/// `extra_candidates` (arbitrary `Rc`-shared values): the wire protocol
/// cannot express it, and it cannot cross threads — engine-driven
/// searches always run with the default (empty) candidate set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntruderBudgets {
    /// Replication unfolding budget per commitment enumeration.
    pub rep_budget: u32,
    /// Maximum interaction depth.
    pub max_depth: usize,
    /// Maximum number of explored configurations.
    pub max_states: usize,
    /// Maximum distinct values injected per input opportunity.
    pub max_injections: usize,
    /// Components used for depth-1 synthesised-pair injections.
    pub pair_components: usize,
}

impl Default for IntruderBudgets {
    fn default() -> IntruderBudgets {
        let d = IntruderConfig::default();
        IntruderBudgets {
            rep_budget: d.rep_budget,
            max_depth: d.max_depth,
            max_states: d.max_states,
            max_injections: d.max_injections,
            pair_components: d.pair_components,
        }
    }
}

impl IntruderBudgets {
    /// Expands back into a full [`IntruderConfig`].
    pub fn to_config(self) -> IntruderConfig {
        IntruderConfig {
            rep_budget: self.rep_budget,
            max_depth: self.max_depth,
            max_states: self.max_states,
            max_injections: self.max_injections,
            pair_components: self.pair_components,
            extra_candidates: Vec::new(),
        }
    }
}

/// Engine construction parameters.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineConfig {
    /// Worker threads. `0` means one per available core.
    pub jobs: usize,
    /// Byte budget of the response cache. `0` means the 32 MiB default.
    pub cache_bytes: usize,
    /// Budgets of the carefulness monitor (part of the cache key, so
    /// changing them never serves stale bodies).
    pub exec: ExecConfig,
    /// Budgets of the bounded Dolev–Yao intruder (likewise keyed).
    pub intruder: IntruderBudgets,
    /// Budgets of the hedged-bisimulation game behind the `equiv` op
    /// (keyed for that op only: `equiv` verdicts depend on them, the
    /// static ops do not).
    pub equiv: EquivConfig,
}

/// The default cache byte budget.
pub const DEFAULT_CACHE_BYTES: usize = 32 << 20;

/// Meters of a tier-two (persistent) response store, snapshotted into
/// [`EngineStats::store`] when one is attached.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreMeters {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that found nothing (or a record that failed its
    /// checksum).
    pub misses: u64,
    /// Bodies admitted and appended to the log.
    pub admits: u64,
    /// Bodies rejected by the admission policy (compute time below the
    /// minimum, or already present).
    pub rejects: u64,
    /// Entries evicted by log compaction.
    pub evicted: u64,
    /// Compaction passes run.
    pub compactions: u64,
    /// Corrupt or truncated records skipped during the startup scan.
    pub corrupt_skipped: u64,
    /// Live entries in the in-memory index.
    pub entries: u64,
    /// Bytes currently occupied by the on-disk log.
    pub log_bytes: u64,
}

/// A second cache tier behind the in-memory LRU: consulted on a memory
/// miss, written after a cacheable compute. Implementations must be
/// content-addressed on the same α-invariant key the memory tier uses,
/// so a loaded body is byte-identical to recomputing it.
pub trait TierTwoCache: Send + Sync {
    /// Looks `key` up, returning the stored body verbatim.
    fn load(&self, key: u128) -> Option<Arc<str>>;
    /// Offers a freshly computed body for persistence. `compute` is the
    /// wall-clock cost of producing it, for admission policies that
    /// only persist expensive bodies.
    fn store(&self, key: u128, body: &str, compute: Duration);
    /// A snapshot of the store's meters.
    fn meters(&self) -> StoreMeters;
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    completed: AtomicU64,
    job_panics: AtomicU64,
    deadline_expirations: AtomicU64,
    uncacheable: AtomicU64,
}

/// Meters of the engine's persistent incremental solver. Counted per
/// *solver run*: a `solve_incremental` request answered from the
/// response cache never reaches the solver and leaves these untouched.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrementalMeters {
    /// Incremental solver runs.
    pub calls: u64,
    /// Top-level components across all runs.
    pub components: u64,
    /// Components whose isolated solution was reused from the cache.
    pub reuse_hits: u64,
    /// Components solved in isolation (cache misses).
    pub reuse_misses: u64,
    /// Runs that short-circuited on the digest-identical no-op path.
    pub noops: u64,
}

/// The engine's shared incremental solver plus its meters. One mutex
/// guards the solver state; the meters are lock-free so [`stats`] never
/// waits behind a solve.
///
/// [`stats`]: AnalysisEngine::stats
pub(crate) struct IncrementalState {
    solver: Mutex<IncrementalSolver>,
    calls: AtomicU64,
    components: AtomicU64,
    reuse_hits: AtomicU64,
    reuse_misses: AtomicU64,
    noops: AtomicU64,
}

impl IncrementalState {
    pub(crate) fn new(threads: usize) -> IncrementalState {
        IncrementalState {
            solver: Mutex::new(IncrementalSolver::new(threads)),
            calls: AtomicU64::new(0),
            components: AtomicU64::new(0),
            reuse_hits: AtomicU64::new(0),
            reuse_misses: AtomicU64::new(0),
            noops: AtomicU64::new(0),
        }
    }

    /// Runs the shared solver and meters the reuse accounting. Every
    /// meter delta comes from one [`IncrementalStats`], so after any
    /// quiescent point `reuse_hits + reuse_misses == components`.
    pub(crate) fn solve(&self, p: &Process) -> (Solution, IncrementalStats) {
        let (solution, stats) = lock(&self.solver).solve(p);
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.components
            .fetch_add(stats.components as u64, Ordering::Relaxed);
        self.reuse_hits
            .fetch_add(stats.reuse_hits as u64, Ordering::Relaxed);
        self.reuse_misses
            .fetch_add(stats.reuse_misses as u64, Ordering::Relaxed);
        if stats.noop {
            self.noops.fetch_add(1, Ordering::Relaxed);
        }
        (solution, stats)
    }

    fn meters(&self) -> IncrementalMeters {
        IncrementalMeters {
            calls: self.calls.load(Ordering::Relaxed),
            components: self.components.load(Ordering::Relaxed),
            reuse_hits: self.reuse_hits.load(Ordering::Relaxed),
            reuse_misses: self.reuse_misses.load(Ordering::Relaxed),
            noops: self.noops.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of the engine's meters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EngineStats {
    /// Worker threads in the pool.
    pub jobs: usize,
    /// Cache traffic counters.
    pub cache: CacheCounters,
    /// Bytes currently held by the cache.
    pub cache_bytes: usize,
    /// The cache's byte budget.
    pub cache_budget: usize,
    /// Live cache entries.
    pub cache_entries: usize,
    /// Requests submitted (single or batched).
    pub requests: u64,
    /// Responses produced (from cache or workers).
    pub completed: u64,
    /// Jobs that panicked and were converted to error responses.
    pub job_panics: u64,
    /// Requests whose deadline expired before their job finished.
    pub deadline_expirations: u64,
    /// Requests that could not be cached (parse errors, debug jobs).
    pub uncacheable: u64,
    /// Reuse accounting of the persistent incremental solver.
    pub incremental: IncrementalMeters,
    /// Meters of the tier-two store, when one is attached.
    pub store: Option<StoreMeters>,
}

impl EngineStats {
    /// Cache hits over cacheable lookups, in `[0, 1]`; `0.0` before any
    /// lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache.hits + self.cache.misses;
        if total == 0 {
            0.0
        } else {
            self.cache.hits as f64 / total as f64
        }
    }
}

/// The batch analysis service: a worker pool answering [`Request`]s,
/// with repeats served from a content-addressed cache.
pub struct AnalysisEngine {
    cfg: EngineConfig,
    pool: WorkerPool,
    cache: Arc<Mutex<ByteLru>>,
    counters: Arc<Counters>,
    incremental: Arc<IncrementalState>,
    store: Option<Arc<dyn TierTwoCache>>,
}

/// A dispatched request: either already answered (cache hit, or
/// rejected before reaching a worker) or in flight on the pool.
enum Pending {
    Ready(Response),
    Waiting {
        id: Option<String>,
        op: &'static str,
        deadline: Option<Duration>,
        rx: Receiver<Arc<str>>,
    },
}

impl AnalysisEngine {
    /// Builds an engine from `cfg`, spawning the worker pool up front.
    pub fn new(cfg: EngineConfig) -> AnalysisEngine {
        let jobs = if cfg.jobs == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            cfg.jobs
        };
        let budget = if cfg.cache_bytes == 0 {
            DEFAULT_CACHE_BYTES
        } else {
            cfg.cache_bytes
        };
        let cache = Arc::new(Mutex::new(ByteLru::new(budget)));
        AnalysisEngine {
            pool: WorkerPool::new(jobs),
            cache,
            counters: Arc::new(Counters::default()),
            incremental: Arc::new(IncrementalState::new(jobs)),
            cfg,
            store: None,
        }
    }

    /// Attaches a tier-two (persistent) store behind the memory cache.
    /// Memory misses consult it before computing; cacheable computes
    /// are offered to it. Attach before serving traffic — the store is
    /// part of the engine's lookup path, not hot-swappable.
    pub fn set_store(&mut self, store: Arc<dyn TierTwoCache>) {
        self.store = Some(store);
    }

    /// An engine with default budgets and `jobs` workers.
    pub fn with_jobs(jobs: usize) -> AnalysisEngine {
        AnalysisEngine::new(EngineConfig {
            jobs,
            ..EngineConfig::default()
        })
    }

    /// Number of worker threads.
    pub fn jobs(&self) -> usize {
        self.pool.jobs()
    }

    /// Runs one request to completion.
    pub fn submit(&self, envelope: impl Into<Envelope>) -> Response {
        self.wait(self.dispatch(envelope.into()))
    }

    /// Runs a batch, fanning the misses across the pool, and returns
    /// responses in request order.
    pub fn submit_batch(&self, envelopes: Vec<Envelope>) -> Vec<Response> {
        let pending: Vec<Pending> = envelopes.into_iter().map(|e| self.dispatch(e)).collect();
        pending.into_iter().map(|p| self.wait(p)).collect()
    }

    /// Convenience: submits bare requests with no ids or deadlines.
    pub fn submit_requests(&self, requests: Vec<Request>) -> Vec<Response> {
        self.submit_batch(requests.into_iter().map(Envelope::from).collect())
    }

    fn dispatch(&self, envelope: Envelope) -> Pending {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let Envelope {
            id,
            request,
            deadline,
        } = envelope;
        let Prepared { op, key, run } = prepare(&request, &self.cfg, &self.incremental);
        if let Some(key) = key {
            if let Some(body) = lock(&self.cache).get(key) {
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                return Pending::Ready(Response {
                    id,
                    body,
                    cached: true,
                });
            }
            // Memory miss: consult the tier-two store. A hit is
            // promoted into the memory LRU so repeats stay in tier one.
            if let Some(store) = &self.store {
                if let Some(body) = store.load(key) {
                    lock(&self.cache).insert(key, Arc::clone(&body));
                    self.counters.completed.fetch_add(1, Ordering::Relaxed);
                    return Pending::Ready(Response {
                        id,
                        body,
                        cached: true,
                    });
                }
            }
        } else {
            self.counters.uncacheable.fetch_add(1, Ordering::Relaxed);
        }
        match run {
            Runner::Pooled(run) => {
                let (tx, rx) = channel::<Arc<str>>();
                let cache = Arc::clone(&self.cache);
                let counters = Arc::clone(&self.counters);
                let store = self.store.clone();
                // Clock reads only happen with the recorder on, so the
                // disabled path stays allocation- and syscall-free.
                let enqueued = nuspi_obs::enabled().then(std::time::Instant::now);
                self.pool.spawn(Box::new(move || {
                    if let Some(t) = enqueued {
                        nuspi_obs::record_duration("engine.queue_wait_us", t.elapsed());
                    }
                    let body = execute(run, op, key, &cache, &counters, store.as_deref());
                    let _ = tx.send(body); // receiver may have timed out; fine
                }));
                Pending::Waiting {
                    id,
                    op,
                    deadline,
                    rx,
                }
            }
            // Pre-parsed ASTs (and early rejections) run on the
            // submitting thread: the AST is not `Send`. Deadlines
            // cannot preempt an inline run.
            Runner::Inline(run) => {
                let body = execute(
                    run,
                    op,
                    key,
                    &self.cache,
                    &self.counters,
                    self.store.as_deref(),
                );
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                Pending::Ready(Response {
                    id,
                    body,
                    cached: false,
                })
            }
        }
    }

    fn wait(&self, pending: Pending) -> Response {
        match pending {
            Pending::Ready(r) => r,
            Pending::Waiting {
                id,
                op,
                deadline,
                rx,
            } => {
                let received = match deadline {
                    Some(d) => rx.recv_timeout(d),
                    None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
                };
                let response = match received {
                    Ok(body) => Response {
                        id,
                        body,
                        cached: false,
                    },
                    Err(RecvTimeoutError::Timeout) => {
                        self.counters
                            .deadline_expirations
                            .fetch_add(1, Ordering::Relaxed);
                        nuspi_obs::counter("engine.deadline_expirations", 1);
                        let ms = deadline.map_or(0, |d| d.as_millis());
                        Response {
                            id,
                            body: Arc::from(
                                error_body(op, &format!("deadline exceeded after {ms}ms")).as_str(),
                            ),
                            cached: false,
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => Response {
                        id,
                        body: Arc::from(error_body(op, "worker disconnected").as_str()),
                        cached: false,
                    },
                };
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                response
            }
        }
    }

    /// A snapshot of the engine's meters.
    pub fn stats(&self) -> EngineStats {
        let cache = lock(&self.cache);
        EngineStats {
            jobs: self.pool.jobs(),
            cache: cache.counters(),
            cache_bytes: cache.bytes(),
            cache_budget: cache.budget(),
            cache_entries: cache.entries(),
            requests: self.counters.requests.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            job_panics: self.counters.job_panics.load(Ordering::Relaxed),
            deadline_expirations: self.counters.deadline_expirations.load(Ordering::Relaxed),
            uncacheable: self.counters.uncacheable.load(Ordering::Relaxed),
            incremental: self.incremental.meters(),
            store: self.store.as_ref().map(|s| s.meters()),
        }
    }
}

/// Runs a prepared job, converting a panic into an error body and
/// storing cacheable successes. Shared by the worker and inline paths.
fn execute<F: FnOnce() -> String>(
    run: F,
    op: &'static str,
    key: Option<u128>,
    cache: &Mutex<ByteLru>,
    counters: &Counters,
    store: Option<&dyn TierTwoCache>,
) -> Arc<str> {
    let _sp = nuspi_obs::span!("engine.exec", op = op);
    // Compute time feeds the store's admission policy, so with a store
    // attached the clock is read even while tracing is off.
    let started =
        (nuspi_obs::enabled() || (store.is_some() && key.is_some())).then(std::time::Instant::now);
    let body = match catch_unwind(AssertUnwindSafe(run)) {
        Ok(body) => {
            let body: Arc<str> = Arc::from(body.as_str());
            if let Some(key) = key {
                lock(cache).insert(key, Arc::clone(&body));
                if let (Some(store), Some(t)) = (store, started) {
                    store.store(key, &body, t.elapsed());
                }
            }
            body
        }
        Err(payload) => {
            counters.job_panics.fetch_add(1, Ordering::Relaxed);
            nuspi_obs::counter("engine.exec.panics", 1);
            let msg = panic_message(payload.as_ref());
            Arc::from(error_body(op, &format!("analysis panicked: {msg}")).as_str())
        }
    };
    if let (Some(t), true) = (started, nuspi_obs::enabled()) {
        let busy = t.elapsed();
        nuspi_obs::record_duration("engine.exec_us", busy);
        let current = std::thread::current();
        let worker = current.name().unwrap_or("inline");
        nuspi_obs::counter(
            &format!("engine.worker.{worker}.busy_us"),
            busy.as_micros() as u64,
        );
    }
    body
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "unknown panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "(new k) (new m) c<{m, new r}:k>.0";

    #[test]
    fn submit_then_resubmit_hits_the_cache() {
        let engine = AnalysisEngine::with_jobs(2);
        let first = engine.submit(Request::audit(SRC, &["m", "k"]));
        assert!(first.is_ok(), "{}", first.body);
        assert!(!first.cached);
        let second = engine.submit(Request::audit(SRC, &["m", "k"]));
        assert!(second.cached);
        assert_eq!(first.body, second.body);
        let stats = engine.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn panicking_jobs_become_error_responses() {
        let engine = AnalysisEngine::with_jobs(1);
        let r = engine.submit(Request::DebugPanic);
        assert!(r.body.contains("analysis panicked"), "{}", r.body);
        assert!(r.body.contains("debug-panic requested"), "{}", r.body);
        // The pool survives: ordinary work still completes.
        let ok = engine.submit(Request::solve(SRC));
        assert!(ok.is_ok(), "{}", ok.body);
        let stats = engine.stats();
        assert_eq!(stats.job_panics, 1);
        assert_eq!(stats.uncacheable, 1);
    }

    #[test]
    fn expired_deadlines_report_errors_but_warm_the_cache() {
        let engine = AnalysisEngine::with_jobs(1);
        let req = Request::audit(SRC, &["m", "k"]);
        let expired =
            engine.submit(Envelope::from(req.clone()).with_deadline(Duration::from_nanos(1)));
        if expired.is_ok() {
            // Rare scheduling race: the job finished before the timeout
            // was even armed. Nothing further to check.
            return;
        }
        assert!(
            expired.body.contains("deadline exceeded"),
            "{}",
            expired.body
        );
        assert_eq!(engine.stats().deadline_expirations, 1);
        // The job still completes on its worker; wait for it to land in
        // the cache, then retry.
        for _ in 0..5000 {
            if engine.stats().cache.insertions >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let retry = engine.submit(req);
        assert!(retry.cached, "retry should be served from the warm cache");
        assert!(retry.is_ok());
    }

    #[test]
    fn stats_hit_rate_is_bounded() {
        let stats = EngineStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        let engine = AnalysisEngine::with_jobs(1);
        engine.submit(Request::solve(SRC));
        engine.submit(Request::solve(SRC));
        let rate = engine.stats().hit_rate();
        assert!((rate - 0.5).abs() < 1e-9, "{rate}");
    }
}
