//! A fixed-size worker pool over std threads and an mpsc job queue.
//!
//! Workers pull boxed closures off a shared receiver and run each one
//! inside `catch_unwind`, so a panicking job takes down neither its
//! worker thread nor the queue: the pool keeps draining jobs after any
//! number of panics (the engine layer additionally converts panics into
//! error responses before they ever reach the pool's backstop). Dropping
//! the pool closes the queue and joins every worker — in-flight jobs
//! finish, queued jobs drain, then the threads exit.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// A unit of work: a boxed closure the pool runs on some worker.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Locks a mutex, recovering the guard if a previous holder panicked —
/// the engine's shared state (cache, counters) stays usable after a
/// poisoned job.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The fixed-size worker pool.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    panics: Arc<AtomicU64>,
}

impl WorkerPool {
    /// Spawns `jobs.max(1)` worker threads sharing one queue.
    pub fn new(jobs: usize) -> WorkerPool {
        let jobs = jobs.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let panics = Arc::new(AtomicU64::new(0));
        let handles = (0..jobs)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let panics = Arc::clone(&panics);
                std::thread::Builder::new()
                    .name(format!("nuspi-engine-worker-{i}"))
                    // Analyses recurse over the process term (digesting,
                    // lint passes, constraint generation), so give
                    // workers headroom well past the platform's 2 MiB
                    // spawned-thread default: a stack overflow is an
                    // abort that no catch_unwind can contain.
                    .stack_size(16 * 1024 * 1024)
                    .spawn(move || worker_loop(&rx, &panics))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            handles,
            panics,
        }
    }

    /// Number of worker threads.
    pub fn jobs(&self) -> usize {
        self.handles.len()
    }

    /// Jobs that reached the pool's panic backstop (the engine layer
    /// normally catches panics first, so this stays zero).
    pub fn backstop_panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Enqueues a job. The queue is unbounded; submission never blocks.
    pub fn spawn(&self, job: Job) {
        self.tx
            .as_ref()
            .expect("pool not shut down while alive")
            .send(job)
            .expect("workers alive while pool is alive");
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, panics: &AtomicU64) {
    loop {
        // Take the next job while holding the lock, then release it
        // before running, so one long job never serialises the others.
        let job = match lock(rx).recv() {
            Ok(job) => job,
            Err(_) => return, // queue closed: graceful shutdown
        };
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the queue; workers drain and exit
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn runs_jobs_on_all_workers() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.jobs(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.spawn(Box::new(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(());
            }));
        }
        for _ in 0..64 {
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn zero_jobs_is_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.jobs(), 1);
    }

    #[test]
    fn panicking_jobs_do_not_wedge_the_pool() {
        let pool = WorkerPool::new(2);
        for _ in 0..8 {
            pool.spawn(Box::new(|| panic!("injected failure")));
        }
        // The pool must still process ordinary work afterwards.
        let (tx, rx) = mpsc::channel();
        for i in 0..4 {
            let tx = tx.clone();
            pool.spawn(Box::new(move || {
                let _ = tx.send(i);
            }));
        }
        let mut got: Vec<i32> = (0..4)
            .map(|_| rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        // A worker may still be unwinding its last injected panic when
        // the sentinel jobs finish on the other worker; wait for the
        // backstop counter rather than racing it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while pool.backstop_panics() < 8 {
            assert!(
                std::time::Instant::now() < deadline,
                "backstop never reached 8"
            );
            std::thread::yield_now();
        }
        assert_eq!(pool.backstop_panics(), 8);
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(1);
            for _ in 0..16 {
                let counter = Arc::clone(&counter);
                pool.spawn(Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }));
            }
        } // Drop joins after the queue drains.
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }
}
