//! The JSON-lines front end: one request object per input line, one
//! response object per output line, in request order.
//!
//! ```text
//! → {"id":"r1","op":"audit","process":"(new k) (new m) c<{m, new r}:k>.0","secrets":["m","k"]}
//! ← {"id":"r1","op":"audit","status":"ok","secure":true,...}
//! ```
//!
//! Ops mirror [`Request`]: `audit`, `lint`, `solve`, `solve_incremental`
//! (the persistent per-component solution cache; ideal for re-analysing
//! an edited protocol over a long session), `reveals`, `analyze_source`
//! (the annotated-source `nuspi-lang` frontend: a `source` program plus
//! optional `file` and `shards`), `equiv` (bounded hedged-bisimilarity
//! of a `left` and a `right` process) — plus `batch` (a
//! `requests` array answered as one line per element, in order) and
//! `stats` (the engine's meters; the only op whose body is not a pure
//! function of the request, so it is never cached). Every
//! request may carry an `id` (echoed back) and a `deadline_ms`. A
//! malformed line is answered with an error line rather than ending the
//! session; end of input shuts the engine down gracefully (in-flight
//! jobs finish, workers join).

use crate::engine::{AnalysisEngine, EngineStats};
use crate::jsonio::Json;
use crate::request::{error_body, Envelope, Request, Response};
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};
use std::sync::Arc;
use std::time::Duration;

/// One decoded input line.
enum Decoded {
    One(Box<Envelope>),
    /// Elements that failed to decode keep their slot as an error,
    /// tagged with the element's `id` (when one parsed) so clients can
    /// correlate in-place.
    Batch(Vec<Result<Envelope, (Option<String>, String)>>),
    Stats {
        id: Option<String>,
    },
}

fn opt_str(v: &Json, key: &str) -> Option<String> {
    v.get(key).and_then(Json::as_str).map(str::to_owned)
}

fn str_list(v: &Json, key: &str) -> Result<Vec<String>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(Vec::new()),
        Some(field) => field
            .as_str_arr()
            .ok_or_else(|| format!("`{key}` must be an array of strings")),
    }
}

fn decode_envelope(v: &Json) -> Result<Envelope, String> {
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing `op` field".to_owned())?;
    let process =
        || opt_str(v, "process").ok_or_else(|| format!("op `{op}` requires a `process` string"));
    let request = match op {
        "audit" => Request::Audit {
            process: process()?.as_str().into(),
            secrets: str_list(v, "secrets")?,
        },
        "lint" => Request::Lint {
            process: process()?.as_str().into(),
            secrets: str_list(v, "secrets")?,
            shards: v
                .get("shards")
                .map(|s| {
                    s.as_u64()
                        .ok_or_else(|| "`shards` must be a non-negative integer".to_owned())
                })
                .transpose()?
                .unwrap_or(1) as usize,
        },
        "solve" => Request::Solve {
            process: process()?.as_str().into(),
            secrets: str_list(v, "secrets")?,
            attacker: v.get("attacker").and_then(Json::as_bool).unwrap_or(false),
            depth: v
                .get("depth")
                .map(|d| {
                    d.as_u64()
                        .ok_or_else(|| "`depth` must be a non-negative integer".to_owned())
                })
                .transpose()?
                .unwrap_or(3) as usize,
        },
        "solve_incremental" => Request::SolveIncremental {
            process: process()?.as_str().into(),
            depth: v
                .get("depth")
                .map(|d| {
                    d.as_u64()
                        .ok_or_else(|| "`depth` must be a non-negative integer".to_owned())
                })
                .transpose()?
                .unwrap_or(3) as usize,
        },
        "analyze_source" => Request::AnalyzeSource {
            file: opt_str(v, "file").unwrap_or_else(|| "<input>".to_owned()),
            source: opt_str(v, "source")
                .ok_or_else(|| "op `analyze_source` requires a `source` string".to_owned())?,
            shards: v
                .get("shards")
                .map(|s| {
                    s.as_u64()
                        .ok_or_else(|| "`shards` must be a non-negative integer".to_owned())
                })
                .transpose()?
                .unwrap_or(1) as usize,
        },
        "equiv" => Request::Equiv {
            left: opt_str(v, "left")
                .ok_or_else(|| "op `equiv` requires a `left` string".to_owned())?
                .as_str()
                .into(),
            right: opt_str(v, "right")
                .ok_or_else(|| "op `equiv` requires a `right` string".to_owned())?
                .as_str()
                .into(),
        },
        "reveals" => Request::Reveals {
            process: process()?.as_str().into(),
            secrets: str_list(v, "secrets")?,
            secret: opt_str(v, "secret")
                .ok_or_else(|| "op `reveals` requires a `secret` string".to_owned())?,
            known: str_list(v, "known")?,
        },
        other => return Err(format!("unknown op `{other}`")),
    };
    let mut envelope = Envelope::from(request);
    envelope.id = opt_str(v, "id");
    if let Some(ms) = v.get("deadline_ms") {
        let ms = ms
            .as_u64()
            .ok_or_else(|| "`deadline_ms` must be a non-negative integer".to_owned())?;
        envelope.deadline = Some(Duration::from_millis(ms));
    }
    Ok(envelope)
}

/// Decode errors carry the request's `id` whenever the line (or batch
/// element) parsed far enough to have one, so the error line still
/// correlates.
fn decode_line(line: &str) -> Result<Decoded, (Option<String>, String)> {
    let v = Json::parse(line).map_err(|e| (None, e))?;
    let id = || opt_str(&v, "id");
    match v.get("op").and_then(Json::as_str) {
        Some("stats") => Ok(Decoded::Stats { id: id() }),
        Some("batch") => {
            let items = v
                .get("requests")
                .and_then(Json::as_arr)
                .ok_or_else(|| (id(), "op `batch` requires a `requests` array".to_owned()))?;
            Ok(Decoded::Batch(
                items
                    .iter()
                    .map(|item| decode_envelope(item).map_err(|e| (opt_str(item, "id"), e)))
                    .collect(),
            ))
        }
        _ => decode_envelope(&v)
            .map(|envelope| Decoded::One(Box::new(envelope)))
            .map_err(|e| (id(), e)),
    }
}

/// Renders the stats body (never cached; not byte-stable across worker
/// counts by design — it reports the actual pool and cache state).
fn stats_body(s: &EngineStats) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "\"op\":\"stats\",\"status\":\"ok\",\"jobs\":{},\"requests\":{},\"completed\":{},",
        s.jobs, s.requests, s.completed
    );
    let _ = write!(
        out,
        "\"cache\":{{\"hits\":{},\"misses\":{},\"insertions\":{},\"evictions\":{},\
         \"rejected_oversize\":{},\"bytes\":{},\"budget\":{},\"entries\":{}}},",
        s.cache.hits,
        s.cache.misses,
        s.cache.insertions,
        s.cache.evictions,
        s.cache.rejected_oversize,
        s.cache_bytes,
        s.cache_budget,
        s.cache_entries
    );
    let _ = write!(
        out,
        "\"hit_rate\":{:.3},\"job_panics\":{},\"deadline_expirations\":{},\"uncacheable\":{},",
        s.hit_rate(),
        s.job_panics,
        s.deadline_expirations,
        s.uncacheable
    );
    let _ = write!(
        out,
        "\"incremental\":{{\"calls\":{},\"components\":{},\"reuse_hits\":{},\
         \"reuse_misses\":{},\"noops\":{}}}",
        s.incremental.calls,
        s.incremental.components,
        s.incremental.reuse_hits,
        s.incremental.reuse_misses,
        s.incremental.noops
    );
    // The store section appears only with a tier-two store attached,
    // so plain-pipe transcripts stay byte-identical to earlier builds.
    if let Some(st) = &s.store {
        let _ = write!(
            out,
            ",\"store\":{{\"hits\":{},\"misses\":{},\"admits\":{},\"rejects\":{},\
             \"evicted\":{},\"compactions\":{},\"corrupt_skipped\":{},\"entries\":{},\
             \"log_bytes\":{}}}",
            st.hits,
            st.misses,
            st.admits,
            st.rejects,
            st.evicted,
            st.compactions,
            st.corrupt_skipped,
            st.entries,
            st.log_bytes
        );
    }
    // Tracing telemetry appears only while the recorder is on, so the
    // stats body stays byte-identical whenever tracing is off.
    if nuspi_obs::enabled() {
        let _ = write!(
            out,
            ",\"obs\":{{\"spans\":{},\"serve_requests\":{}}}",
            nuspi_obs::span_count(),
            nuspi_obs::counter_value("serve.requests")
        );
    }
    out
}

fn error_response(id: Option<String>, message: &str) -> Response {
    Response {
        id,
        body: Arc::from(error_body("serve", message).as_str()),
        cached: false,
    }
}

/// Answers one input line with the responses it produces (one for a
/// single request, N for a batch). This is the transport-independent
/// core of the protocol: the stdin/stdout pipe ([`serve`]) and the TCP
/// listener (`nuspi-net`) both feed lines through here, which is what
/// keeps their transcripts byte-identical for the same request stream.
pub fn answer_line(engine: &AnalysisEngine, line: &str) -> Vec<Response> {
    let decoded = decode_line(line);
    let _sp = if nuspi_obs::enabled() {
        let op = match &decoded {
            Err(_) => "malformed",
            Ok(Decoded::Stats { .. }) => "stats",
            Ok(Decoded::Batch(_)) => "batch",
            Ok(Decoded::One(envelope)) => envelope.request.op(),
        };
        nuspi_obs::counter("serve.requests", 1);
        nuspi_obs::span_with("serve.request", "op", nuspi_obs::FieldValue::from(op))
    } else {
        nuspi_obs::Span::disabled()
    };
    match decoded {
        Err((id, e)) => vec![error_response(id, &e)],
        Ok(Decoded::Stats { id }) => vec![Response {
            id,
            body: Arc::from(stats_body(&engine.stats()).as_str()),
            cached: false,
        }],
        Ok(Decoded::One(envelope)) => vec![engine.submit(*envelope)],
        Ok(Decoded::Batch(items)) => {
            // Submit the well-formed elements as one batch (so misses
            // fan out across the pool), then splice the decode errors
            // back into their original slots.
            let mut good = Vec::new();
            let mut slots = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    Ok(envelope) => {
                        slots.push(None);
                        good.push(envelope);
                    }
                    Err((id, e)) => slots.push(Some(error_response(id, &e))),
                }
            }
            let mut answered = engine.submit_batch(good).into_iter();
            slots
                .into_iter()
                .map(|slot| slot.unwrap_or_else(|| answered.next().expect("one per envelope")))
                .collect()
        }
    }
}

/// Runs the JSON-lines session: reads `input` to end of stream, writes
/// one response line per request to `output`, flushing after every
/// line. Returns when input is exhausted; dropping the engine afterwards
/// joins the workers.
pub fn serve(
    engine: &AnalysisEngine,
    input: impl BufRead,
    mut output: impl Write,
) -> io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        for response in answer_line(engine, &line) {
            output.write_all(response.to_line().as_bytes())?;
            output.write_all(b"\n")?;
            output.flush()?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;

    fn engine() -> AnalysisEngine {
        AnalysisEngine::new(EngineConfig {
            jobs: 2,
            ..EngineConfig::default()
        })
    }

    fn run(engine: &AnalysisEngine, input: &str) -> Vec<String> {
        let mut out = Vec::new();
        serve(engine, input.as_bytes(), &mut out).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn round_trips_an_audit_line() {
        let lines = run(
            &engine(),
            "{\"id\":\"r1\",\"op\":\"audit\",\
             \"process\":\"(new k) (new m) c<{m, new r}:k>.0\",\"secrets\":[\"m\",\"k\"]}\n",
        );
        assert_eq!(lines.len(), 1);
        assert!(
            lines[0].starts_with("{\"id\":\"r1\",\"op\":\"audit\""),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains("\"secure\":true"), "{}", lines[0]);
        // Every response line is itself valid JSON.
        Json::parse(&lines[0]).unwrap();
    }

    #[test]
    fn malformed_lines_get_error_lines_and_the_session_continues() {
        let lines = run(
            &engine(),
            "this is not json\n{\"op\":\"nonsense\"}\n{\"op\":\"solve\",\"process\":\"0\"}\n",
        );
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"status\":\"error\""));
        assert!(lines[1].contains("unknown op"));
        assert!(lines[2].contains("\"status\":\"ok\""));
    }

    #[test]
    fn batch_answers_in_order_with_errors_in_place() {
        let lines = run(
            &engine(),
            "{\"op\":\"batch\",\"requests\":[\
             {\"id\":\"a\",\"op\":\"solve\",\"process\":\"0\"},\
             {\"op\":\"bogus\"},\
             {\"id\":\"c\",\"op\":\"solve\",\"process\":\"c<n>.0\"}]}\n",
        );
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"id\":\"a\""));
        assert!(lines[1].contains("unknown op"));
        assert!(lines[2].starts_with("{\"id\":\"c\""));
    }

    #[test]
    fn malformed_batch_elements_echo_their_id() {
        let lines = run(
            &engine(),
            "{\"op\":\"batch\",\"requests\":[\
             {\"id\":\"a\",\"op\":\"solve\",\"process\":\"0\"},\
             {\"id\":\"b\",\"op\":\"bogus\"},\
             {\"id\":\"c\",\"op\":\"lint\"}]}\n",
        );
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"id\":\"a\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"id\":\"b\""), "{}", lines[1]);
        assert!(lines[1].contains("unknown op"), "{}", lines[1]);
        assert!(lines[2].starts_with("{\"id\":\"c\""), "{}", lines[2]);
        assert!(lines[2].contains("requires a `process`"), "{}", lines[2]);
        for line in &lines {
            Json::parse(line).unwrap();
        }
    }

    #[test]
    fn malformed_single_requests_echo_their_id() {
        let lines = run(
            &engine(),
            "{\"id\":\"x\",\"op\":\"nonsense\"}\n{\"id\":7,\"op\":\"nonsense\"}\n",
        );
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"id\":\"x\""), "{}", lines[0]);
        // Non-string ids are not echoed (the protocol's ids are strings).
        assert!(lines[1].starts_with("{\"op\":"), "{}", lines[1]);
    }

    #[test]
    fn stats_op_reports_cache_traffic() {
        let e = engine();
        let input = "{\"op\":\"solve\",\"process\":\"0\"}\n\
                     {\"op\":\"solve\",\"process\":\"0\"}\n\
                     {\"id\":\"s\",\"op\":\"stats\"}\n";
        let lines = run(&e, input);
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0], lines[1],
            "repeat served from cache, byte-identical"
        );
        let stats = &lines[2];
        assert!(
            stats.starts_with("{\"id\":\"s\",\"op\":\"stats\""),
            "{stats}"
        );
        assert!(stats.contains("\"hits\":1"), "{stats}");
        assert!(stats.contains("\"misses\":1"), "{stats}");
        Json::parse(stats).unwrap();
    }

    #[test]
    fn solve_incremental_op_round_trips_and_meters_reuse() {
        let e = engine();
        let input = "{\"id\":\"a\",\"op\":\"solve_incremental\",\
                     \"process\":\"a<m>.0 | a(x).b<x>.0\"}\n\
                     {\"id\":\"b\",\"op\":\"solve_incremental\",\
                     \"process\":\"a<m>.0 | a(x).c<x>.0\"}\n\
                     {\"id\":\"s\",\"op\":\"stats\"}\n";
        let lines = run(&e, input);
        assert_eq!(lines.len(), 3);
        for line in &lines[..2] {
            assert!(line.contains("\"op\":\"solve_incremental\""), "{line}");
            assert!(line.contains("\"status\":\"ok\""), "{line}");
            assert!(line.contains("\"components\":2"), "{line}");
            Json::parse(line).unwrap();
        }
        // The edit kept the `a<m>.0` component: one reuse hit.
        let stats = &lines[2];
        assert!(stats.contains("\"incremental\":{\"calls\":2"), "{stats}");
        assert!(stats.contains("\"reuse_hits\":1"), "{stats}");
        assert!(stats.contains("\"reuse_misses\":3"), "{stats}");
        Json::parse(stats).unwrap();
    }

    #[test]
    fn empty_lines_are_skipped_and_eof_ends_the_session() {
        let lines = run(&engine(), "\n  \n");
        assert!(lines.is_empty());
    }

    #[test]
    fn deadline_ms_is_honoured() {
        let lines = run(
            &engine(),
            "{\"op\":\"audit\",\"process\":\"(new k) (new m) c<{m, new r}:k>.0\",\
             \"secrets\":[\"m\"],\"deadline_ms\":0}\n",
        );
        assert_eq!(lines.len(), 1);
        assert!(
            lines[0].contains("deadline exceeded") || lines[0].contains("\"status\":\"ok\""),
            "{}",
            lines[0]
        );
    }
}
