//! A minimal JSON reader for the serving protocol (std-only; the
//! workspace takes no serde dependency).
//!
//! The *writer* side of the protocol is hand-rolled string building in
//! byte-stable key order, same discipline as `nuspi_diagnostics::to_json`
//! — this module only adds the [`escape`] helper for it. The *reader*
//! side is a small recursive-descent parser into [`Json`], enough to
//! decode request lines: all of RFC 8259 except that numbers are read as
//! `f64` (request fields are small non-negative integers, so nothing is
//! lost). Nesting is capped at [`MAX_DEPTH`] levels so adversarially
//! deep input yields an error line instead of exhausting the stack.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (read as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if this is an
    /// integral number in `u64` range. The bound is strict: `u64::MAX
    /// as f64` rounds *up* to 2^64, so `<=` would admit 2^64 and
    /// silently saturate it to `u64::MAX`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload, if this is a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) if n.is_finite() => Some(*n),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The items of a string array, if this is one.
    pub fn as_str_arr(&self) -> Option<Vec<String>> {
        self.as_arr()?
            .iter()
            .map(|v| v.as_str().map(str::to_owned))
            .collect()
    }
}

/// Maximum container-nesting depth the parser accepts. Deeper input is
/// rejected with an error, never a stack overflow.
pub const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.nested(Parser::array),
            Some(b'{') => self.nested(Parser::object),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!(
                "unexpected `{}` at byte {}",
                char::from(c),
                self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn nested(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<Json, String>,
    ) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            ));
        }
        self.depth += 1;
        let v = f(self);
        self.depth -= 1;
        v
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "non-ascii \\u escape".to_owned())?;
        let v = u16::from_str_radix(text, 16).map_err(|e| format!("bad \\u escape: {e}"))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((u32::from(hi) - 0xd800) << 10)
                                        + (u32::from(lo) - 0xdc00);
                                    char::from_u32(combined).unwrap_or('\u{fffd}')
                                } else {
                                    '\u{fffd}'
                                }
                            } else {
                                char::from_u32(u32::from(hi)).unwrap_or('\u{fffd}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("utf8");
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

/// Escapes a string for a JSON string literal (control characters,
/// quotes, backslashes; non-ASCII passes through as UTF-8). Same
/// discipline as the diagnostics backend, so embedded reports and
/// protocol fields escape identically.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"op":"audit","secrets":["k","m"],"deadline_ms":250}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("audit"));
        assert_eq!(
            v.get("secrets").and_then(Json::as_str_arr),
            Some(vec!["k".to_owned(), "m".to_owned()])
        );
        assert_eq!(v.get("deadline_ms").and_then(Json::as_u64), Some(250));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        let pair = Json::parse(r#""🦀""#).unwrap();
        assert_eq!(pair.as_str(), Some("🦀"));
    }

    #[test]
    fn escape_then_parse_is_identity() {
        let original = "line1\nline2\t\"quoted\" \\ ζ(ℓ#3) \u{1}";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":}",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::parse(r#"{"b":1,"a":2}"#).unwrap();
        let Json::Obj(fields) = v else { panic!() };
        assert_eq!(fields[0].0, "b");
        assert_eq!(fields[1].0, "a");
    }
}
