//! The Needham–Schroeder symmetric-key protocol (single session).
//!
//! ```text
//! Message 1   A → S : A, B, N_A
//! Message 2   S → A : {N_A, B, K_AB, {K_AB, A}K_BS}K_AS
//! Message 3   A → B : {K_AB, A}K_BS
//! Message 4   B → A : {N_B}K_AB
//! Message 5   A → B : {suc(N_B)}K_AB
//! payload     A → B : {M}K_AB
//! ```
//!
//! The nonce handshake uses the calculus' native numerals (`suc`); the
//! ticket is a nested encryption travelling inside message 2.

use crate::spec::ProtocolSpec;

/// A single honest session of Needham–Schroeder symmetric-key, ending
//  with a payload shipped under the freshly established session key.
pub fn needham_schroeder() -> ProtocolSpec {
    ProtocolSpec::build(
        "ns-symmetric",
        "Needham-Schroeder symmetric key: nonce handshake, nested ticket, secret payload",
        "
        (new kas) (new kbs) (new m) (
          (new na) cAS<(a, (b, na))>.
          cSA(resp). case resp of {n, bb, kab, tk}:kas in
          [n is na] [bb is b]
          cAB<tk>. cBA(w). case w of {nb}:kab in
          cAB2<{suc(nb), new r4}:kab>.
          cMSG<{m, new r5}:kab>.0
          |
          cAS(req). let (aa, rest) = req in let (bb2, na2) = rest in
          (new kab) cSA<{na2, bb2, kab, {kab, aa, new r2}:kbs, new r1}:kas>.0
          |
          cAB(tk2). case tk2 of {kab2, aa2}:kbs in
          (new nb) cBA<{nb, new r3}:kab2>.
          cAB2(z). case z of {w2}:kab2 in [w2 is suc(nb)]
          cMSG(mm). case mm of {p}:kab2 in 0
        )",
        &["kas", "kbs", "kab", "m", "nb"],
        &["cAS", "cSA", "cAB", "cBA", "cAB2", "cMSG"],
        "m",
        true,
    )
}

/// Flawed variant: the server sends the ticket *outside* the message-2
/// encryption, paired in clear — a malleability hole. The session key is
/// still protected (the ticket is under `K_BS`), but the variant also
/// leaks the responder nonce by re-sending it in clear, which the
/// analysis flags.
pub fn needham_schroeder_nonce_leak() -> ProtocolSpec {
    ProtocolSpec::build(
        "ns-nonce-leak",
        "NS variant leaking the responder nonce in clear (rejected)",
        "
        (new kas) (new kbs) (new m) (
          (new na) cAS<(a, (b, na))>.
          cSA(resp). case resp of {n, bb, kab, tk}:kas in
          [n is na] [bb is b]
          cAB<tk>. cBA(w). case w of {nb}:kab in
          cAB2<nb>.
          cMSG<{m, new r5}:kab>.0
          |
          cAS(req). let (aa, rest) = req in let (bb2, na2) = rest in
          (new kab) cSA<{na2, bb2, kab, {kab, aa, new r2}:kbs, new r1}:kas>.0
          |
          cAB(tk2). case tk2 of {kab2, aa2}:kbs in
          (new nb) cBA<{nb, new r3}:kab2>.
          cAB2(z). [z is nb]
          cMSG(mm). case mm of {p}:kab2 in 0
        )",
        &["kas", "kbs", "kab", "m", "nb"],
        &["cAS", "cSA", "cAB", "cBA", "cAB2", "cMSG"],
        "nb",
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_semantics::{explore_tau, Barb, ExecConfig};
    use nuspi_syntax::Symbol;

    #[test]
    fn parses_and_closes() {
        assert!(needham_schroeder().process.is_closed());
        assert!(needham_schroeder_nonce_leak().process.is_closed());
    }

    #[test]
    fn honest_session_delivers_the_payload() {
        // The full six-message run must be executable: B eventually inputs
        // on cMSG, so some reachable state exhibits the barb.
        let spec = needham_schroeder();
        let mut delivered = false;
        let cfg = ExecConfig {
            max_depth: 16,
            max_states: 6000,
            ..ExecConfig::default()
        };
        explore_tau(&spec.process, &cfg, |_, cs| {
            if cs
                .iter()
                .any(|c| Barb::Out(Symbol::intern("cMSG")).matches(c.action))
            {
                delivered = true;
                return false;
            }
            true
        });
        assert!(delivered, "session must reach the payload message");
    }
}
