//! The Otway–Rees key-distribution protocol (single session, simplified
//! identities).
//!
//! ```text
//! Message 1   A → B : M, {N_A, M, A, B}K_AS
//! Message 2   B → S : M, {N_A, M, A, B}K_AS, {N_B, M, A, B}K_BS
//! Message 3   S → B : M, {N_A, K_AB}K_AS, {N_B, K_AB}K_BS
//! Message 4   B → A : M, {N_A, K_AB}K_AS
//! payload     A → B : {m}K_AB
//! ```
//!
//! `M` is the public run identifier; both parties bind their nonce, the
//! run id and the identities into their request ciphertext, and the
//! server cross-checks the identifiers before minting the session key.
//! The identities inside the request ciphertexts are essential: dropping
//! them gives messages 1 and 3 the same shape under the same key, and the
//! classic Otway–Rees *type-flaw attack* (reflect message 1 back as
//! message 4, so the public run id is accepted as the session key)
//! becomes possible — the attacker-closed CFA finds exactly that flaw on
//! the untagged variant, see [`otway_rees_untagged`].

use crate::spec::ProtocolSpec;

/// A single honest Otway–Rees session followed by a payload under the
/// distributed session key.
pub fn otway_rees() -> ProtocolSpec {
    ProtocolSpec::build(
        "otway-rees",
        "Otway-Rees key distribution: run-id bound nonces, server cross-check",
        "
        (new kas) (new kbs) (new m) (
          (new na) (new mid) cAB<(mid, {na, mid, a, b, new r1}:kas)>.
          cBA(resp). let (mid2, ca) = resp in [mid2 is mid]
          case ca of {na2, kab}:kas in [na2 is na]
          cMSG<{m, new r5}:kab>.0
          |
          cAB(m1). let (mid3, ca2) = m1 in
          (new nb) cBS<(mid3, (ca2, {nb, mid3, a, b, new r2}:kbs))>.
          cSB(m3). let (mid4, rest) = m3 in let (cas, cbs2) = rest in
          case cbs2 of {nb2, kab2}:kbs in [nb2 is nb]
          cBA<(mid4, cas)>.
          cMSG(mm). case mm of {p}:kab2 in 0
          |
          cBS(m2). let (mid5, rest2) = m2 in let (caa, cbb) = rest2 in
          case caa of {na3, mid6, aa, bb}:kas in
          case cbb of {nb3, mid7, aa2, bb2}:kbs in
          [mid6 is mid7]
          (new kab) cSB<(mid5, ({na3, kab, new r3}:kas, {nb3, kab, new r4}:kbs))>.0
        )",
        &["kas", "kbs", "kab", "m", "na", "nb"],
        &["cAB", "cBA", "cBS", "cSB", "cMSG"],
        "m",
        true,
    )
}

/// The *untagged* Otway–Rees: the request ciphertexts omit the identities,
/// so messages 1 and 3 have the same arity under the same key — the
/// classic type-flaw attack applies (reflect A's own request back to A as
/// message 4; A then accepts the public run identifier as the session
/// key). Expected: rejected by the attacker-closed CFA and broken by the
/// Dolev–Yao intruder.
pub fn otway_rees_untagged() -> ProtocolSpec {
    ProtocolSpec::build(
        "otway-rees-untagged",
        "Otway-Rees without identity tags: classic type-flaw reflection attack",
        "
        (new kas) (new kbs) (new m) (
          (new na) (new mid) cAB<(mid, {na, mid, new r1}:kas)>.
          cBA(resp). let (mid2, ca) = resp in [mid2 is mid]
          case ca of {na2, kab}:kas in [na2 is na]
          cMSG<{m, new r5}:kab>.0
          |
          cAB(m1). let (mid3, ca2) = m1 in
          (new nb) cBS<(mid3, (ca2, {nb, mid3, new r2}:kbs))>.
          cSB(m3). let (mid4, rest) = m3 in let (cas, cbs2) = rest in
          case cbs2 of {nb2, kab2}:kbs in [nb2 is nb]
          cBA<(mid4, cas)>.
          cMSG(mm). case mm of {p}:kab2 in 0
          |
          cBS(m2). let (mid5, rest2) = m2 in let (caa, cbb) = rest2 in
          case caa of {na3, mid6}:kas in
          case cbb of {nb3, mid7}:kbs in
          [mid6 is mid7]
          (new kab) cSB<(mid5, ({na3, kab, new r3}:kas, {nb3, kab, new r4}:kbs))>.0
        )",
        &["kas", "kbs", "kab", "m", "na", "nb"],
        &["cAB", "cBA", "cBS", "cSB", "cMSG"],
        "m",
        false,
    )
}

/// Flawed variant: the server puts the session key for `B` in clear in
/// message 3 (paired rather than encrypted).
pub fn otway_rees_key_in_clear() -> ProtocolSpec {
    ProtocolSpec::build(
        "otway-rees-key-in-clear",
        "Otway-Rees broken at message 3: B's copy of the key travels in clear",
        "
        (new kas) (new kbs) (new m) (
          (new na) (new mid) cAB<(mid, {na, mid, a, b, new r1}:kas)>.
          cBA(resp). let (mid2, ca) = resp in [mid2 is mid]
          case ca of {na2, kab}:kas in [na2 is na]
          cMSG<{m, new r5}:kab>.0
          |
          cAB(m1). let (mid3, ca2) = m1 in
          (new nb) cBS<(mid3, (ca2, {nb, mid3, a, b, new r2}:kbs))>.
          cSB(m3). let (mid4, rest) = m3 in let (cas, kab2) = rest in
          cBA<(mid4, cas)>.
          cMSG(mm). case mm of {p}:kab2 in 0
          |
          cBS(m2). let (mid5, rest2) = m2 in let (caa, cbb) = rest2 in
          case caa of {na3, mid6, aa, bb}:kas in
          case cbb of {nb3, mid7, aa2, bb2}:kbs in
          [mid6 is mid7]
          (new kab) cSB<(mid5, ({na3, kab, new r3}:kas, kab))>.0
        )",
        &["kas", "kbs", "kab", "m", "na", "nb"],
        &["cAB", "cBA", "cBS", "cSB", "cMSG"],
        "m",
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_semantics::{explore_tau, Barb, ExecConfig};
    use nuspi_syntax::Symbol;

    #[test]
    fn parses_and_closes() {
        assert!(otway_rees().process.is_closed());
        assert!(otway_rees_key_in_clear().process.is_closed());
    }

    #[test]
    fn honest_session_delivers_the_payload() {
        let spec = otway_rees();
        let mut delivered = false;
        let cfg = ExecConfig {
            max_depth: 16,
            max_states: 8000,
            ..ExecConfig::default()
        };
        explore_tau(&spec.process, &cfg, |_, cs| {
            if cs
                .iter()
                .any(|c| Barb::Out(Symbol::intern("cMSG")).matches(c.action))
            {
                delivered = true;
                return false;
            }
            true
        });
        assert!(delivered);
    }
}
