//! The Yahalom key-distribution protocol (single session).
//!
//! ```text
//! Message 1   A → B : A, N_A
//! Message 2   B → S : B, {A, N_A, N_B}K_BS
//! Message 3   S → A : {B, K_AB, N_A, N_B}K_AS, {A, K_AB}K_BS
//! Message 4   A → B : {A, K_AB}K_BS, {N_B}K_AB
//! payload     A → B : {m}K_AB
//! ```
//!
//! Yahalom is notable for protecting the responder nonce `N_B`: it only
//! ever travels encrypted, and `A` proves knowledge of the session key by
//! returning it under `K_AB`.

use crate::spec::ProtocolSpec;

/// A single honest Yahalom session followed by a payload under the
/// distributed session key.
pub fn yahalom() -> ProtocolSpec {
    ProtocolSpec::build(
        "yahalom",
        "Yahalom key distribution: responder nonce never in clear",
        "
        (new kas) (new kbs) (new m) (
          (new na) cAB<(a, na)>.
          cSA(m3). let (ca, tk) = m3 in
          case ca of {bb, kab, na2, nbx}:kas in [na2 is na] [bb is b]
          cAB2<(tk, {nbx, new r4}:kab)>.
          cMSG<{m, new r5}:kab>.0
          |
          cAB(m1). let (aa, na3) = m1 in
          (new nb) cBS<(b, {aa, na3, nb, new r1}:kbs)>.
          cAB2(m4). let (tk2, cnb) = m4 in
          case tk2 of {aa2, kab2}:kbs in
          case cnb of {nb2}:kab2 in [nb2 is nb]
          cMSG(mm). case mm of {p}:kab2 in 0
          |
          cBS(m2). let (bb2, cb) = m2 in
          case cb of {aa3, na4, nb3}:kbs in
          (new kab) cSA<({bb2, kab, na4, nb3, new r2}:kas, {aa3, kab, new r3}:kbs)>.0
        )",
        &["kas", "kbs", "kab", "m", "nb"],
        &["cAB", "cSA", "cBS", "cAB2", "cMSG"],
        "m",
        true,
    )
}

/// Flawed variant: message 3 carries the responder nonce back in *clear*
/// alongside the two ciphertexts, destroying its secrecy.
pub fn yahalom_nonce_in_clear() -> ProtocolSpec {
    ProtocolSpec::build(
        "yahalom-nonce-in-clear",
        "Yahalom broken at message 3: responder nonce echoed unencrypted",
        "
        (new kas) (new kbs) (new m) (
          (new na) cAB<(a, na)>.
          cSA(m3). let (ca, rest) = m3 in let (tk, nbclear) = rest in
          case ca of {bb, kab, na2}:kas in [na2 is na] [bb is b]
          cAB2<(tk, {nbclear, new r4}:kab)>.
          cMSG<{m, new r5}:kab>.0
          |
          cAB(m1). let (aa, na3) = m1 in
          (new nb) cBS<(b, {aa, na3, nb, new r1}:kbs)>.
          cAB2(m4). let (tk2, cnb) = m4 in
          case tk2 of {aa2, kab2}:kbs in
          case cnb of {nb2}:kab2 in [nb2 is nb]
          cMSG(mm). case mm of {p}:kab2 in 0
          |
          cBS(m2). let (bb2, cb) = m2 in
          case cb of {aa3, na4, nb3}:kbs in
          (new kab) cSA<({bb2, kab, na4, new r2}:kas, ({aa3, kab, new r3}:kbs, nb3))>.0
        )",
        &["kas", "kbs", "kab", "m", "nb"],
        &["cAB", "cSA", "cBS", "cAB2", "cMSG"],
        "nb",
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_semantics::{explore_tau, Barb, ExecConfig};
    use nuspi_syntax::Symbol;

    #[test]
    fn parses_and_closes() {
        assert!(yahalom().process.is_closed());
        assert!(yahalom_nonce_in_clear().process.is_closed());
    }

    #[test]
    fn honest_session_delivers_the_payload() {
        let spec = yahalom();
        let mut delivered = false;
        let cfg = ExecConfig {
            max_depth: 16,
            max_states: 8000,
            ..ExecConfig::default()
        };
        explore_tau(&spec.process, &cfg, |_, cs| {
            if cs
                .iter()
                .any(|c| Barb::Out(Symbol::intern("cMSG")).matches(c.action))
            {
                delivered = true;
                return false;
            }
            true
        });
        assert!(delivered);
    }
}
