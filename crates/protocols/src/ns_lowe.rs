//! The Needham–Schroeder–Lowe handshake (symmetric rendition, single
//! session).
//!
//! ```text
//! Message 1   A → B : {N_A, A}K_AB
//! Message 2   B → A : {N_A, N_B, B}K_AB      (Lowe: B names itself)
//! Message 3   A → B : {N_B}K_AB
//! payload     A → B : {M}K_AB
//! ```
//!
//! Lowe's amendment binds the responder's identity into message 2, so
//! the initiator can tell *which* session a challenge belongs to. The
//! flawed sibling drops that identity: the initiator can no longer
//! distinguish its session with `B` from a parallel session with the
//! compromised party `C`, and ships the payload under the intruder's
//! key — the concrete outcome of Lowe's man-in-the-middle.

use crate::spec::ProtocolSpec;

/// A single honest Needham–Schroeder–Lowe session over a pre-shared
/// pair key, ending with a payload under that key.
pub fn ns_lowe() -> ProtocolSpec {
    ProtocolSpec::build(
        "ns-lowe",
        "Needham-Schroeder-Lowe: identity-bound nonce handshake, secret payload",
        "
        (new kab) (new m) (
          (new na) cAB<{na, a, new r1}:kab>.
          cBA(resp). case resp of {n, nb, bb}:kab in
          [n is na] [bb is b]
          cAB2<{nb, new r2}:kab>.
          cMSG<{m, new r3}:kab>.0
          |
          cAB(req). case req of {na2, aa}:kab in
          [aa is a]
          (new nb) cBA<{na2, nb, b, new r4}:kab>.
          cAB2(z). case z of {w}:kab in [w is nb]
          cMSG(mm). case mm of {p}:kab in 0
        )",
        &["kab", "m", "na", "nb"],
        &["cAB", "cBA", "cAB2", "cMSG"],
        "m",
        true,
    )
}

/// Flawed variant: message 2 omits the responder identity (the exact
/// link Lowe's fix adds). The initiator cannot tell its session with
/// `B` apart from one with the compromised party `C`, and the payload
/// goes out under `C`'s key `kc` — a free, attacker-known name — so the
/// secret is derivable by the intruder.
pub fn ns_lowe_no_identity() -> ProtocolSpec {
    ProtocolSpec::build(
        "ns-lowe-no-identity",
        "NS-Lowe without the identity link: payload keyed for the intruder (rejected)",
        "
        (new kab) (new m) (
          (new na) cAB<{na, a, new r1}:kab>.
          cBA(resp). case resp of {n, nb}:kab in
          [n is na]
          cAB2<{nb, new r2}:kab>.
          cMSG<{m, new r3}:kc>.0
          |
          cAB(req). case req of {na2, aa}:kab in
          (new nb) cBA<{na2, nb, new r4}:kab>.
          cAB2(z). case z of {w}:kab in [w is nb]
          cMSG(mm). case mm of {p}:kc in 0
        )",
        &["kab", "m", "na", "nb"],
        &["cAB", "cBA", "cAB2", "cMSG"],
        "m",
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_semantics::{explore_tau, Barb, ExecConfig};
    use nuspi_syntax::Symbol;

    #[test]
    fn parses_and_closes() {
        assert!(ns_lowe().process.is_closed());
        assert!(ns_lowe_no_identity().process.is_closed());
    }

    #[test]
    fn honest_session_delivers_the_payload() {
        let spec = ns_lowe();
        let mut delivered = false;
        let cfg = ExecConfig {
            max_depth: 16,
            max_states: 6000,
            ..ExecConfig::default()
        };
        explore_tau(&spec.process, &cfg, |_, cs| {
            if cs
                .iter()
                .any(|c| Barb::Out(Symbol::intern("cMSG")).matches(c.action))
            {
                delivered = true;
                return false;
            }
            true
        });
        assert!(delivered, "session must reach the payload message");
    }
}
