//! The SPLICE/AS authentication protocol (simplified symmetric
//! rendition, single session; timestamps abstracted as nonces).
//!
//! ```text
//! Message 1   C → AS : C, S, N_1
//! Message 2   AS → C : {N_1, S, K_CS, {K_CS, C}K_SA}K_CA
//! Message 3   C → S  : {K_CS, C}K_SA
//! payload     C → S  : {M}K_CS
//! ```
//!
//! The authentication server issues a session key to the client under
//! their long-term key `K_CA` together with a ticket for the server
//! under `K_SA`. The flawed sibling ships the ticket *in clear* beside
//! the encrypted half — the unsigned-ticket weakness behind the
//! Hwang–Chen attack on SPLICE/AS — which hands the session key to the
//! intruder.

use crate::spec::ProtocolSpec;

/// A single honest SPLICE/AS session: key distribution through the
/// authentication server, then a payload under the session key.
pub fn splice_as() -> ProtocolSpec {
    ProtocolSpec::build(
        "splice-as",
        "SPLICE/AS: server-issued session key with a sealed ticket, secret payload",
        "
        (new kca) (new ksa) (new m) (
          (new n1) cCA<(c, (s, n1))>.
          cAC(resp). case resp of {n, ss, kcs, tk}:kca in
          [n is n1] [ss is s]
          cCS<tk>.
          cMSG<{m, new r1}:kcs>.0
          |
          cCA(req). let (cc, rest) = req in let (ss2, n2) = rest in
          (new kcs) cAC<{n2, ss2, kcs, {kcs, cc, new r2}:ksa, new r3}:kca>.0
          |
          cCS(tk2). case tk2 of {kcs2, cc2}:ksa in
          cMSG(mm). case mm of {p}:kcs2 in 0
        )",
        &["kca", "ksa", "kcs", "m"],
        &["cCA", "cAC", "cCS", "cMSG"],
        "m",
        true,
    )
}

/// Flawed variant: the server sends the ticket in clear beside the
/// client's half instead of sealing it under `K_SA`. The session key is
/// readable straight off the wire, so the payload encrypted under it is
/// derivable by the intruder.
pub fn splice_as_ticket_in_clear() -> ProtocolSpec {
    ProtocolSpec::build(
        "splice-as-ticket-in-clear",
        "SPLICE/AS shipping the ticket unsealed: session key on the wire (rejected)",
        "
        (new kca) (new ksa) (new m) (
          (new n1) cCA<(c, (s, n1))>.
          cAC(resp). let (enc, tk) = resp in
          case enc of {n, ss, kcs}:kca in
          [n is n1] [ss is s]
          cCS<tk>.
          cMSG<{m, new r1}:kcs>.0
          |
          cCA(req). let (cc, rest) = req in let (ss2, n2) = rest in
          (new kcs) cAC<({n2, ss2, kcs, new r3}:kca, (kcs, cc))>.0
          |
          cCS(tk2). let (kcs2, cc2) = tk2 in
          cMSG(mm). case mm of {p}:kcs2 in 0
        )",
        &["kca", "ksa", "kcs", "m"],
        &["cCA", "cAC", "cCS", "cMSG"],
        "kcs",
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_semantics::{explore_tau, Barb, ExecConfig};
    use nuspi_syntax::Symbol;

    #[test]
    fn parses_and_closes() {
        assert!(splice_as().process.is_closed());
        assert!(splice_as_ticket_in_clear().process.is_closed());
    }

    #[test]
    fn honest_session_delivers_the_payload() {
        let spec = splice_as();
        let mut delivered = false;
        let cfg = ExecConfig {
            max_depth: 16,
            max_states: 6000,
            ..ExecConfig::default()
        };
        explore_tau(&spec.process, &cfg, |_, cs| {
            if cs
                .iter()
                .any(|c| Barb::Out(Symbol::intern("cMSG")).matches(c.action))
            {
                delivered = true;
                return false;
            }
            true
        });
        assert!(delivered, "session must reach the payload message");
    }
}
