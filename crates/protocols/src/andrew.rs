//! The Andrew secure RPC handshake (BAN-simplified, single session).
//!
//! ```text
//! Message 1   A → B : {N_A}K
//! Message 2   B → A : {suc(N_A), N_B}K
//! Message 3   A → B : {suc(N_B)}K
//! Message 4   B → A : {K', N'_B}K
//! payload     A → B : {m}K'
//! ```
//!
//! `K` is the long-term shared key; the handshake increments nonces with
//! the calculus' native `suc`, and message 4 installs the fresh session
//! key `K'`.

use crate::spec::ProtocolSpec;

/// A single honest Andrew RPC session followed by a payload under the new
/// session key.
pub fn andrew() -> ProtocolSpec {
    ProtocolSpec::build(
        "andrew-rpc",
        "Andrew secure RPC: suc-incremented nonce handshake, fresh session key",
        "
        (new kab0) (new m) (
          (new na) cAB<{na, new r1}:kab0>.
          cBA(m2). case m2 of {san, nb}:kab0 in [san is suc(na)]
          cAB2<{suc(nb), new r2}:kab0>.
          cBA2(m4). case m4 of {kabp, nbp}:kab0 in
          cMSG<{m, new r5}:kabp>.0
          |
          cAB(m1). case m1 of {na2}:kab0 in
          (new nb) cBA<{suc(na2), nb, new r3}:kab0>.
          cAB2(m3). case m3 of {snb}:kab0 in [snb is suc(nb)]
          (new kabp) (new nbp) cBA2<{kabp, nbp, new r4}:kab0>.
          cMSG(mm). case mm of {p}:kabp in 0
        )",
        &["kab0", "kabp", "m", "na", "nb", "nbp"],
        &["cAB", "cBA", "cAB2", "cBA2", "cMSG"],
        "m",
        true,
    )
}

/// Flawed variant: message 4 sends the new session key in clear, paired
/// with the (still encrypted) confirmation nonce.
pub fn andrew_key_in_clear() -> ProtocolSpec {
    ProtocolSpec::build(
        "andrew-key-in-clear",
        "Andrew RPC broken at message 4: new session key travels unencrypted",
        "
        (new kab0) (new m) (
          (new na) cAB<{na, new r1}:kab0>.
          cBA(m2). case m2 of {san, nb}:kab0 in [san is suc(na)]
          cAB2<{suc(nb), new r2}:kab0>.
          cBA2(m4). let (kabp, cnb) = m4 in
          cMSG<{m, new r5}:kabp>.0
          |
          cAB(m1). case m1 of {na2}:kab0 in
          (new nb) cBA<{suc(na2), nb, new r3}:kab0>.
          cAB2(m3). case m3 of {snb}:kab0 in [snb is suc(nb)]
          (new kabp) (new nbp) cBA2<(kabp, {nbp, new r4}:kab0)>.
          cMSG(mm). case mm of {p}:kabp in 0
        )",
        &["kab0", "kabp", "m", "na", "nb", "nbp"],
        &["cAB", "cBA", "cAB2", "cBA2", "cMSG"],
        "m",
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_semantics::{explore_tau, Barb, ExecConfig};
    use nuspi_syntax::Symbol;

    #[test]
    fn parses_and_closes() {
        assert!(andrew().process.is_closed());
        assert!(andrew_key_in_clear().process.is_closed());
    }

    #[test]
    fn honest_session_delivers_the_payload() {
        let spec = andrew();
        let mut delivered = false;
        let cfg = ExecConfig {
            max_depth: 16,
            max_states: 8000,
            ..ExecConfig::default()
        };
        explore_tau(&spec.process, &cfg, |_, cs| {
            if cs
                .iter()
                .any(|c| Barb::Out(Symbol::intern("cMSG")).matches(c.action))
            {
                delivered = true;
                return false;
            }
            true
        });
        assert!(delivered);
    }

    #[test]
    fn nonce_increment_gates_the_handshake() {
        // Sanity: the honest session requires the suc-matches to pass, so
        // at least four internal steps happen before the payload.
        let spec = andrew();
        let mut steps = 0;
        explore_tau(
            &spec.process,
            &ExecConfig {
                max_depth: 16,
                max_states: 8000,
                ..ExecConfig::default()
            },
            |_, _| {
                steps += 1;
                true
            },
        );
        assert!(steps >= 5);
    }
}
