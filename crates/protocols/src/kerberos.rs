//! A Kerberos-style two-server exchange (ticket-granting flow, single
//! session, no timestamps — νSPI has no clock; freshness is carried by
//! nonces).
//!
//! ```text
//! Message 1   C → AS  : C, TGS, N1
//! Message 2   AS → C  : {K_CT, N1, {K_CT, C}K_AT}K_CA     (TGT inside)
//! Message 3   C → TGS : {K_CT, C}K_AT, SRV, N2
//! Message 4   TGS → C : {K_CS, N2, {K_CS, C}K_TS}K_CT     (service ticket)
//! Message 5   C → SRV : {K_CS, C}K_TS
//! payload     C → SRV : {m}K_CS
//! ```
//!
//! Two chained ticket layers exercise the analysis harder than the
//! single-server protocols: the client's second-hop key `K_CT` is itself
//! a *received* value used as a decryption key, and the service key
//! `K_CS` is two hops away from any long-term secret.

use crate::spec::ProtocolSpec;

/// A single honest Kerberos-style session: authentication server,
/// ticket-granting server, service, payload under the service key.
pub fn kerberos() -> ProtocolSpec {
    ProtocolSpec::build(
        "kerberos",
        "Kerberos-style two-hop ticket chain: payload under the service key",
        "
        (new kca) (new kat) (new kts) (new m) (
          -- C (client)
          (new n1) cAS<(cid, (tgs, n1))>.
          cSA(m2). case m2 of {kct, n1b, tgt}:kca in [n1b is n1]
          (new n2) cTG<(tgt, (srv, n2))>.
          cGT(m4). case m4 of {kcs, n2b, st}:kct in [n2b is n2]
          cSV<st>.
          cMSG<{m, new r9}:kcs>.0
          |
          -- AS (authentication server)
          cAS(m1). let (cc, rest) = m1 in let (tt, nn1) = rest in
          (new kct) cSA<{kct, nn1, {kct, cc, new r2}:kat, new r1}:kca>.0
          |
          -- TGS (ticket-granting server)
          cTG(m3). let (tgt2, rest3) = m3 in let (ss, nn2) = rest3 in
          case tgt2 of {kct2, cc2}:kat in
          (new kcs) cGT<{kcs, nn2, {kcs, cc2, new r4}:kts, new r3}:kct2>.0
          |
          -- SRV (service)
          cSV(m5). case m5 of {kcs2, cc3}:kts in
          cMSG(mm). case mm of {p}:kcs2 in 0
        )",
        &["kca", "kat", "kts", "kct", "kcs", "m"],
        &["cAS", "cSA", "cTG", "cGT", "cSV", "cMSG"],
        "m",
        true,
    )
}

/// Flawed variant: the ticket-granting server replies under the *ticket*
/// key `K_AT`-protected identity but sends the fresh service key
/// additionally in clear beside the reply — a debugging tap left in.
pub fn kerberos_debug_tap() -> ProtocolSpec {
    ProtocolSpec::build(
        "kerberos-debug-tap",
        "Kerberos variant with a debug tap leaking the service key",
        "
        (new kca) (new kat) (new kts) (new m) (
          (new n1) cAS<(cid, (tgs, n1))>.
          cSA(m2). case m2 of {kct, n1b, tgt}:kca in [n1b is n1]
          (new n2) cTG<(tgt, (srv, n2))>.
          cGT(m4). case m4 of {kcs, n2b, st}:kct in [n2b is n2]
          cSV<st>.
          cMSG<{m, new r9}:kcs>.0
          |
          cAS(m1). let (cc, rest) = m1 in let (tt, nn1) = rest in
          (new kct) cSA<{kct, nn1, {kct, cc, new r2}:kat, new r1}:kca>.0
          |
          cTG(m3). let (tgt2, rest3) = m3 in let (ss, nn2) = rest3 in
          case tgt2 of {kct2, cc2}:kat in
          (new kcs) (debug<kcs>.0 | cGT<{kcs, nn2, {kcs, cc2, new r4}:kts, new r3}:kct2>.0)
          |
          cSV(m5). case m5 of {kcs2, cc3}:kts in
          cMSG(mm). case mm of {p}:kcs2 in 0
        )",
        &["kca", "kat", "kts", "kct", "kcs", "m"],
        &["cAS", "cSA", "cTG", "cGT", "cSV", "cMSG", "debug"],
        "m",
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_semantics::{explore_tau, Barb, ExecConfig};
    use nuspi_syntax::Symbol;

    #[test]
    fn parses_and_closes() {
        assert!(kerberos().process.is_closed());
        assert!(kerberos_debug_tap().process.is_closed());
    }

    #[test]
    fn honest_session_delivers_the_payload() {
        let spec = kerberos();
        let mut delivered = false;
        let cfg = ExecConfig {
            max_depth: 20,
            max_states: 20000,
            ..ExecConfig::default()
        };
        explore_tau(&spec.process, &cfg, |_, cs| {
            if cs
                .iter()
                .any(|c| Barb::Out(Symbol::intern("cMSG")).matches(c.action))
            {
                delivered = true;
                return false;
            }
            true
        });
        assert!(delivered, "two-hop chain must complete");
    }

    #[test]
    fn two_hop_chain_verdicts() {
        let honest = kerberos();
        let report = nuspi_security::confinement(&honest.process, &honest.policy);
        assert!(report.is_confined(), "{:?}", report.violations);
        let flawed = kerberos_debug_tap();
        let report = nuspi_security::confinement(&flawed.process, &flawed.policy);
        assert!(!report.is_confined());
    }
}
