//! The paper's motivating examples.
//!
//! * §1's **ciphertext-comparison attack**: a process that emits `{0}_k`,
//!   `{1}_k` and `{b}_k` under one key. With algebraic ("classic spi")
//!   perfect encryption the attacker learns `b` by comparing ciphertexts;
//!   νSPI's history-dependent encryption makes all three ciphertexts
//!   distinct and defeats the attack. [`ciphertext_comparison`] is the
//!   process as `P(x)`, and [`ciphertext_comparison_test`] the public test
//!   that distinguishes the two instantiations under classic semantics.
//! * §5's **implicit flow**: `P(x) = [x is 0] c⟨0⟩` — never *sends* the
//!   secret, but its control flow reveals whether `x = 0`. Secrecy in the
//!   Dolev–Yao sense holds; message independence fails, and the invariance
//!   check rejects it.

use crate::spec::OpenExample;
use nuspi_security::{Policy, PublicTest};
use nuspi_semantics::Barb;
use nuspi_syntax::{builder as b, Name, Symbol, Var};

/// §1's process: `P(x) = (νk) c⟨{0,(νr)r}_k⟩. c⟨{1,(νr)r}_k⟩. c⟨{x,(νr)r}_k⟩`.
///
/// All three encryption sites share the *same* confounder binder `r`, so
/// under [`EvalMode::ClassicSpi`](nuspi_semantics::EvalMode) equal
/// plaintexts yield equal ciphertexts — exactly the algebraic spi-calculus
/// behaviour the paper's §1 criticises.
pub fn ciphertext_comparison() -> OpenExample {
    let x = Var::fresh("x");
    let k = Name::global("k");
    let r = Name::global("r");
    let send = |payload, then| {
        b::output(
            b::name("c"),
            b::enc(vec![payload], r, b::name_expr(k)),
            then,
        )
    };
    let body = send(
        b::numeral(0),
        send(b::numeral(1), send(b::var(x), b::nil())),
    );
    OpenExample {
        name: "ciphertext-comparison",
        description: "§1 motivation: secret bit under one key after 0 and 1",
        process: b::restrict(k, body),
        var: x,
        public_channels: vec![Symbol::intern("c")],
        policy: Policy::with_secrets(["k"]),
        expect_independent: true, // under νSPI semantics
    }
}

/// The distinguishing observer of §1: receive all three ciphertexts and
/// compare the third against the first. Under classic spi this passes
/// exactly when `x = 0`.
pub fn ciphertext_comparison_test() -> PublicTest {
    let w = nuspi_security::witness_channel();
    let y1 = Var::fresh("y1");
    let y2 = Var::fresh("y2");
    let y3 = Var::fresh("y3");
    let observer = b::input(
        b::name("c"),
        y1,
        b::input(
            b::name("c"),
            y2,
            b::input(
                b::name("c"),
                y3,
                b::guard(
                    b::var(y3),
                    b::var(y1),
                    b::output(b::name(w.as_str()), b::zero(), b::nil()),
                ),
            ),
        ),
    );
    PublicTest {
        observer,
        barb: Barb::Out(w),
        description: "compare third ciphertext with first".to_owned(),
    }
}

/// §5's implicit flow: `P(x) = [x is 0] c⟨0⟩`.
pub fn implicit_flow() -> OpenExample {
    let x = Var::fresh("x");
    OpenExample {
        name: "implicit-flow",
        description: "§5 motivation: control flow depends on the message",
        process: b::guard(
            b::var(x),
            b::zero(),
            b::output(b::name("c"), b::zero(), b::nil()),
        ),
        var: x,
        public_channels: vec![Symbol::intern("c")],
        policy: Policy::new(),
        expect_independent: false,
    }
}

/// A channel-position flow: `P(x) = x⟨0⟩` — the attacker observes which
/// channel fires.
pub fn channel_flow() -> OpenExample {
    let x = Var::fresh("x");
    OpenExample {
        name: "channel-flow",
        description: "the message is used as a channel",
        process: b::output(b::var(x), b::zero(), b::nil()),
        var: x,
        public_channels: vec![Symbol::intern("c")],
        policy: Policy::new(),
        expect_independent: false,
    }
}

/// A well-behaved forwarder: `P(x) = (νk) c⟨{x,(νr)r}_k⟩` — the message
/// only ever travels encrypted under a restricted key.
pub fn encrypted_forwarder() -> OpenExample {
    let x = Var::fresh("x");
    let k = Name::global("kfwd");
    OpenExample {
        name: "encrypted-forwarder",
        description: "message forwarded under a restricted key (independent)",
        process: b::restrict(
            k,
            b::output(
                b::name("c"),
                b::enc(vec![b::var(x)], Name::global("r"), b::name_expr(k)),
                b::nil(),
            ),
        ),
        var: x,
        public_channels: vec![Symbol::intern("c")],
        policy: Policy::with_secrets(["kfwd"]),
        expect_independent: true,
    }
}

/// Every open example, for sweep-style experiments.
pub fn open_examples() -> Vec<OpenExample> {
    vec![
        ciphertext_comparison(),
        implicit_flow(),
        channel_flow(),
        encrypted_forwarder(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_semantics::{passes_test, EvalMode, ExecConfig};
    use nuspi_syntax::Value;

    #[test]
    fn open_examples_have_exactly_one_free_var() {
        for ex in open_examples() {
            let fv = ex.process.free_vars();
            assert_eq!(fv.len(), 1, "{}", ex.name);
            assert!(fv.contains(&ex.var), "{}", ex.name);
        }
    }

    #[test]
    fn ciphertext_comparison_attack_works_in_classic_spi() {
        let ex = ciphertext_comparison();
        let test = ciphertext_comparison_test();
        let classic = ExecConfig {
            mode: EvalMode::ClassicSpi,
            ..ExecConfig::default()
        };
        let with_zero = ex.process.subst(ex.var, &Value::numeral(0));
        let with_one = ex.process.subst(ex.var, &Value::numeral(1));
        assert!(
            passes_test(&with_zero, &test.observer, test.barb, &classic),
            "x=0 makes the third ciphertext equal the first"
        );
        assert!(
            !passes_test(&with_one, &test.observer, test.barb, &classic),
            "x=1 does not"
        );
    }

    #[test]
    fn ciphertext_comparison_attack_fails_in_nuspi() {
        let ex = ciphertext_comparison();
        let test = ciphertext_comparison_test();
        let nuspi = ExecConfig::default();
        for n in [0, 1] {
            let p = ex.process.subst(ex.var, &Value::numeral(n));
            assert!(
                !passes_test(&p, &test.observer, test.barb, &nuspi),
                "fresh confounders make all ciphertexts distinct (x={n})"
            );
        }
    }

    #[test]
    fn implicit_flow_runs_only_for_zero() {
        let ex = implicit_flow();
        let cfg = ExecConfig::default();
        let idle = b::nil();
        let with_zero = ex.process.subst(ex.var, &Value::numeral(0));
        let with_one = ex.process.subst(ex.var, &Value::numeral(1));
        assert!(passes_test(
            &with_zero,
            &idle,
            Barb::Out(Symbol::intern("c")),
            &cfg
        ));
        assert!(!passes_test(
            &with_one,
            &idle,
            Barb::Out(Symbol::intern("c")),
            &cfg
        ));
    }
}
