//! # nuspi-protocols — a protocol suite for the νSPI analyses
//!
//! Encodings of classic symmetric-key protocols in the νSPI-calculus,
//! each packaged as a [`ProtocolSpec`]: the process, its secret/public
//! partition, and the verdict the CFA is expected to reach. The honest
//! versions are confined (their payload provably secret per Theorem 4);
//! every flawed variant breaks one link and is both rejected statically
//! and attacked dynamically by the Dolev–Yao intruder.
//!
//! The [`motivating`] module contains the paper's §1
//! (ciphertext-comparison) and §5 (implicit-flow) examples as *open*
//! processes `P(x)` for the non-interference experiments.
//!
//! # Examples
//!
//! ```
//! use nuspi_protocols::{suite, wmf};
//! use nuspi_security::confinement;
//!
//! let spec = wmf::wmf();
//! assert!(confinement(&spec.process, &spec.policy).is_confined());
//! assert!(suite().len() >= 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod andrew;
pub mod denning_sacco;
pub mod kerberos;
pub mod motivating;
pub mod ns;
pub mod ns_lowe;
pub mod otway_rees;
mod spec;
pub mod splice;
pub mod wmf;
pub mod yahalom;

pub use motivating::{
    channel_flow, ciphertext_comparison, ciphertext_comparison_test, encrypted_forwarder,
    implicit_flow, open_examples,
};
pub use spec::{OpenExample, ProtocolSpec};

/// The full closed-protocol suite: every honest protocol and every flawed
/// variant, in a stable order.
pub fn suite() -> Vec<ProtocolSpec> {
    vec![
        wmf::wmf(),
        wmf::wmf_key_in_clear(),
        wmf::wmf_payload_in_clear(),
        wmf::wmf_public_key(),
        ns::needham_schroeder(),
        ns::needham_schroeder_nonce_leak(),
        ns_lowe::ns_lowe(),
        ns_lowe::ns_lowe_no_identity(),
        otway_rees::otway_rees(),
        otway_rees::otway_rees_key_in_clear(),
        otway_rees::otway_rees_untagged(),
        yahalom::yahalom(),
        yahalom::yahalom_nonce_in_clear(),
        andrew::andrew(),
        andrew::andrew_key_in_clear(),
        denning_sacco::denning_sacco(),
        denning_sacco::denning_sacco_public_ticket(),
        kerberos::kerberos(),
        kerberos::kerberos_debug_tap(),
        splice::splice_as(),
        splice::splice_as_ticket_in_clear(),
    ]
}

/// Honest/broken sibling pairs whose difference is *dynamically*
/// observable: each broken twin leaks through a value the attacker can
/// read or replay, so the bounded hedged-bisimulation oracle separates
/// the twin while (at matching budgets) not separating the honest spec.
/// Used by the equivalence golden wall and the attack-variant miner.
pub fn broken_twins() -> Vec<(ProtocolSpec, ProtocolSpec)> {
    vec![
        (ns_lowe::ns_lowe(), ns_lowe::ns_lowe_no_identity()),
        (splice::splice_as(), splice::splice_as_ticket_in_clear()),
    ]
}

/// Only the honest (expected-confined) protocols.
pub fn honest_suite() -> Vec<ProtocolSpec> {
    suite().into_iter().filter(|s| s.expect_confined).collect()
}

/// Only the flawed (expected-rejected) variants.
pub fn flawed_suite() -> Vec<ProtocolSpec> {
    suite().into_iter().filter(|s| !s.expect_confined).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_split_between_honest_and_flawed() {
        let all = suite().len();
        assert_eq!(honest_suite().len() + flawed_suite().len(), all);
        assert_eq!(honest_suite().len(), 9);
        assert_eq!(flawed_suite().len(), 12);
    }

    #[test]
    fn suite_names_are_unique() {
        let mut names: Vec<&str> = suite().iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite().len());
    }

    #[test]
    fn every_spec_is_closed_and_names_its_secret() {
        for spec in suite() {
            assert!(spec.process.is_closed(), "{}", spec.name);
            assert!(spec.policy.is_secret(spec.secret), "{}", spec.name);
            assert!(!spec.source.is_empty());
        }
    }

    #[test]
    fn no_free_secret_names_in_any_spec() {
        for spec in suite() {
            assert!(
                spec.policy.free_secret_names(&spec.process).is_empty(),
                "{}: secrets must be restricted",
                spec.name
            );
        }
    }
}
