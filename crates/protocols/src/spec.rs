//! Protocol specifications: a νSPI encoding plus its secrecy policy and
//! the verdict the analysis is expected to reach.

use nuspi_security::Policy;
use nuspi_syntax::{parse_process, Process, Symbol, Var};

/// A closed protocol instance with its policy and expected verdicts.
#[derive(Clone, Debug)]
pub struct ProtocolSpec {
    /// Short identifier (e.g. `"wmf"`).
    pub name: &'static str,
    /// One-line description of the protocol and the property at stake.
    pub description: &'static str,
    /// The νSPI source the process was parsed from.
    pub source: String,
    /// The closed process.
    pub process: Process,
    /// The secret/public partition.
    pub policy: Policy,
    /// The public channels the protocol communicates on.
    pub public_channels: Vec<Symbol>,
    /// The canonical name whose secrecy the protocol is meant to protect.
    pub secret: Symbol,
    /// Whether the CFA is expected to certify confinement (flawed variants
    /// expect `false`).
    pub expect_confined: bool,
}

impl ProtocolSpec {
    pub(crate) fn build(
        name: &'static str,
        description: &'static str,
        source: &str,
        secrets: &[&str],
        public_channels: &[&str],
        secret: &str,
        expect_confined: bool,
    ) -> ProtocolSpec {
        let process =
            parse_process(source).unwrap_or_else(|e| panic!("protocol {name} does not parse: {e}"));
        assert!(process.is_closed(), "protocol {name} must be closed");
        ProtocolSpec {
            name,
            description,
            source: source.to_owned(),
            process,
            policy: Policy::with_secrets(secrets.iter().copied()),
            public_channels: public_channels.iter().map(|c| Symbol::intern(c)).collect(),
            secret: Symbol::intern(secret),
            expect_confined,
        }
    }
}

/// An *open* example `P(x)` used by the non-interference experiments.
#[derive(Clone, Debug)]
pub struct OpenExample {
    /// Short identifier.
    pub name: &'static str,
    /// What the example demonstrates.
    pub description: &'static str,
    /// The open process (exactly one free variable, `var`).
    pub process: Process,
    /// The free variable `x` of `P(x)`.
    pub var: Var,
    /// The public channels the example uses.
    pub public_channels: Vec<Symbol>,
    /// Names that must be kept secret besides the tracked message.
    pub policy: Policy,
    /// Whether Theorem 5's static premises are expected to hold.
    pub expect_independent: bool,
}
