//! The Wide Mouthed Frog key-exchange protocol (the paper's Example 1)
//! and two deliberately flawed variants.
//!
//! ```text
//! Message 1   A → S : {K_AB}K_AS
//! Message 2   S → B : {K_AB}K_BS
//! Message 3   A → B : {M}K_AB
//! ```
//!
//! `A` and `B` share long-term keys with a trusted server `S`; `A` mints a
//! session key, routes it through `S`, and finally ships the payload `M`
//! under the session key. The analysis certifies that `M` stays secret
//! (Example 1's confinement argument); the flawed variants break exactly
//! one link of that argument and are rejected.

use crate::spec::ProtocolSpec;

/// The paper's Example 1, verbatim (with the payload `m` restricted so
/// that it may be declared secret).
pub fn wmf() -> ProtocolSpec {
    ProtocolSpec::build(
        "wmf",
        "Wide Mouthed Frog key exchange (Example 1): payload stays secret",
        "
        (new m) (new kAS) (new kBS) (
          ((new kAB) cAS<{kAB, new r1}:kAS>. cAB<{m, new r2}:kAB>.0
           | cBS(t). case t of {y}:kBS in cAB(z). case z of {q}:y in 0)
          | cAS(x). case x of {s}:kAS in cBS<{s, new r3}:kBS>.0
        )",
        &["kAS", "kBS", "kAB", "m"],
        &["cAS", "cBS", "cAB"],
        "m",
        true,
    )
}

/// Flawed variant: the server forwards the session key *in clear* on the
/// public channel `cBS`. The CFA rejects it and the Dolev–Yao intruder
/// extracts the payload.
pub fn wmf_key_in_clear() -> ProtocolSpec {
    ProtocolSpec::build(
        "wmf-key-in-clear",
        "WMF broken at message 2: server re-sends the session key unencrypted",
        "
        (new m) (new kAS) (
          ((new kAB) cAS<{kAB, new r1}:kAS>. cAB<{m, new r2}:kAB>.0
           | cBS(y). cAB(z). case z of {q}:y in 0)
          | cAS(x). case x of {s}:kAS in cBS<s>.0
        )",
        &["kAS", "kAB", "m"],
        &["cAS", "cBS", "cAB"],
        "m",
        false,
    )
}

/// Flawed variant: `A` skips encryption entirely for message 3.
pub fn wmf_payload_in_clear() -> ProtocolSpec {
    ProtocolSpec::build(
        "wmf-payload-in-clear",
        "WMF broken at message 3: payload sent unencrypted",
        "
        (new m) (new kAS) (new kBS) (
          ((new kAB) cAS<{kAB, new r1}:kAS>. cAB<m>.0
           | cBS(t). case t of {y}:kBS in cAB(z). 0)
          | cAS(x). case x of {s}:kAS in cBS<{s, new r3}:kBS>.0
        )",
        &["kAS", "kBS", "kAB", "m"],
        &["cAS", "cBS", "cAB"],
        "m",
        false,
    )
}

/// Flawed variant: message 3 is encrypted under a *public* constant key.
pub fn wmf_public_key() -> ProtocolSpec {
    ProtocolSpec::build(
        "wmf-public-key",
        "WMF broken at message 3: payload encrypted under a public constant",
        "
        (new m) (new kAS) (new kBS) (
          ((new kAB) cAS<{kAB, new r1}:kAS>. cAB<{m, new r2}:pubkey>.0
           | cBS(t). case t of {y}:kBS in cAB(z). case z of {q}:pubkey in 0)
          | cAS(x). case x of {s}:kAS in cBS<{s, new r3}:kBS>.0
        )",
        &["kAS", "kBS", "kAB", "m"],
        &["cAS", "cBS", "cAB"],
        "m",
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_semantics::{explore_tau, ExecConfig};

    #[test]
    fn all_variants_parse_and_close() {
        for spec in [
            wmf(),
            wmf_key_in_clear(),
            wmf_payload_in_clear(),
            wmf_public_key(),
        ] {
            assert!(spec.process.is_closed(), "{}", spec.name);
            assert!(!spec.public_channels.is_empty());
        }
    }

    #[test]
    fn wmf_completes_three_internal_steps() {
        let spec = wmf();
        let mut max_depth_reached = 0;
        let mut depth = 0;
        explore_tau(&spec.process, &ExecConfig::default(), |_, cs| {
            depth += 1;
            if cs.iter().any(|c| c.action == nuspi_semantics::Action::Tau) {
                max_depth_reached += 1;
            }
            true
        });
        assert!(depth >= 4, "initial + three exchanges, got {depth}");
    }

    #[test]
    fn policies_declare_the_payload_secret() {
        for spec in [wmf(), wmf_key_in_clear(), wmf_payload_in_clear()] {
            assert!(spec.policy.is_secret(spec.secret));
        }
    }
}
