//! The Denning–Sacco symmetric-key protocol (single session, no
//! timestamps) and its replay-prone structure.
//!
//! ```text
//! Message 1   A → S : A, B
//! Message 2   S → A : {B, K_AB, {K_AB, A}K_BS}K_AS
//! Message 3   A → B : {K_AB, A}K_BS
//! payload     A → B : {m}K_AB
//! ```
//!
//! Denning–Sacco fixes Needham–Schroeder's stale-key replay with
//! timestamps; νSPI has no clock, so this encoding is the *core* exchange
//! of a single honest session. Its payload secrecy against an outside
//! intruder still holds (the session key only ever travels under
//! long-term keys) and the CFA certifies it; the flawed variant leaks the
//! ticket's content by encrypting it under the *recipient identity*
//! (a public name) instead of `K_BS`.

use crate::spec::ProtocolSpec;

/// A single honest Denning–Sacco core session.
pub fn denning_sacco() -> ProtocolSpec {
    ProtocolSpec::build(
        "denning-sacco",
        "Denning-Sacco core: nested ticket under long-term keys",
        "
        (new kas) (new kbs) (new m) (
          cAS<(a, b)>.
          cSA(resp). case resp of {bb, kab, tk}:kas in [bb is b]
          cAB<tk>.
          cMSG<{m, new r3}:kab>.0
          |
          cAS(req). let (aa, bb2) = req in
          (new kab) cSA<{bb2, kab, {kab, aa, new r2}:kbs, new r1}:kas>.0
          |
          cAB(tk2). case tk2 of {kab2, aa2}:kbs in
          cMSG(mm). case mm of {p}:kab2 in 0
        )",
        &["kas", "kbs", "kab", "m"],
        &["cAS", "cSA", "cAB", "cMSG"],
        "m",
        true,
    )
}

/// Flawed variant: the server encrypts the ticket under the *recipient's
/// public identity* instead of the long-term key `K_BS` — the intruder
/// decrypts it with public knowledge and takes the session key.
pub fn denning_sacco_public_ticket() -> ProtocolSpec {
    ProtocolSpec::build(
        "denning-sacco-public-ticket",
        "Denning-Sacco broken at the ticket: encrypted under a public identity",
        "
        (new kas) (new kbs) (new m) (
          cAS<(a, b)>.
          cSA(resp). case resp of {bb, kab, tk}:kas in [bb is b]
          cAB<tk>.
          cMSG<{m, new r3}:kab>.0
          |
          cAS(req). let (aa, bb2) = req in
          (new kab) cSA<{bb2, kab, {kab, aa, new r2}:bb2, new r1}:kas>.0
          |
          cAB(tk2). case tk2 of {kab2, aa2}:b in
          cMSG(mm). case mm of {p}:kab2 in 0
        )",
        &["kas", "kbs", "kab", "m"],
        &["cAS", "cSA", "cAB", "cMSG"],
        "m",
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_semantics::{explore_tau, Barb, ExecConfig};
    use nuspi_syntax::Symbol;

    #[test]
    fn parses_and_closes() {
        assert!(denning_sacco().process.is_closed());
        assert!(denning_sacco_public_ticket().process.is_closed());
    }

    #[test]
    fn honest_session_delivers_the_payload() {
        let spec = denning_sacco();
        let mut delivered = false;
        explore_tau(&spec.process, &ExecConfig::default(), |_, cs| {
            if cs
                .iter()
                .any(|c| Barb::Out(Symbol::intern("cMSG")).matches(c.action))
            {
                delivered = true;
                return false;
            }
            true
        });
        assert!(delivered);
    }

    #[test]
    fn honest_variant_is_confined_and_flawed_is_not() {
        let honest = denning_sacco();
        let report = nuspi_security::confinement(&honest.process, &honest.policy);
        assert!(report.is_confined(), "{:?}", report.violations);
        let flawed = denning_sacco_public_ticket();
        let report = nuspi_security::confinement(&flawed.process, &flawed.policy);
        assert!(!report.is_confined());
    }
}
