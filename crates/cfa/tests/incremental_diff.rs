//! Differential wall around the incremental solver.
//!
//! [`IncrementalSolver`] memoises per-component least solutions keyed by
//! α-invariant digests and re-stitches them on every call. These
//! properties pin the only contract that matters: after *any* edit — a
//! random single-subtree mutation, a component insertion or removal, or
//! no edit at all — the re-solved estimate is semantically identical to
//! a from-scratch [`solve`] of the edited process, and the digest-equal
//! fast path is taken exactly when the labelled tree is unchanged.

use nuspi_bench::genproc::{random_process, GenConfig};
use nuspi_bench::testkit::{check, ensure};
use nuspi_cfa::{solve, Constraints, IncrementalSolver};
use nuspi_semantics::rng::{Rng, SplitMix64};
use nuspi_syntax::{builder as b, Process};

/// One generated edit scenario: a parallel composition of seeded random
/// components, plus a single-subtree mutation replacing component
/// `edit` with a re-generated subtree.
#[derive(Debug, Clone)]
struct Case {
    seeds: Vec<u64>,
    edit: usize,
    to: u64,
}

fn gen_case(rng: &mut SplitMix64) -> Case {
    let len = rng.gen_range_inclusive(2, 5);
    let seeds: Vec<u64> = (0..len).map(|_| rng.next_u64() % 10_000).collect();
    Case {
        edit: rng.gen_range(0..len),
        to: 10_000 + rng.next_u64() % 10_000,
        seeds,
    }
}

/// Shrink by dropping unedited components — smaller counterexamples
/// with the mutation preserved.
fn shrink_case(c: &Case) -> Vec<Case> {
    let mut out = Vec::new();
    if c.seeds.len() > 1 {
        for i in 0..c.seeds.len() {
            if i == c.edit {
                continue;
            }
            let mut seeds = c.seeds.clone();
            seeds.remove(i);
            out.push(Case {
                seeds,
                edit: c.edit - usize::from(i < c.edit),
                to: c.to,
            });
        }
    }
    out
}

fn assemble(seeds: &[u64]) -> Process {
    let cfg = GenConfig::default();
    b::par_all(seeds.iter().map(|&s| random_process(s, &cfg)))
}

/// The incremental solver mints its own auxiliary variables, so raw
/// `estimate_eq` (which compares productions structurally, auxiliaries
/// included) cannot be used across solvers here; the α-class rendering
/// of `(ρ, κ, ζ)` against the same process is the portable comparator.
fn agree(incremental: &nuspi_cfa::Solution, p: &Process, ctx: &str) -> Result<(), String> {
    let scratch = solve(Constraints::generate(p));
    let got = incremental.render_estimate_for(p, 6);
    let want = scratch.render_estimate_for(p, 6);
    ensure(got == want, || {
        format!("{ctx}: incremental vs from-scratch:\n--- incremental\n{got}\n--- scratch\n{want}")
    })
}

#[test]
fn property_edit_resolve_equals_from_scratch() {
    check(
        "incremental-equals-scratch",
        80,
        gen_case,
        shrink_case,
        |c| {
            let base = assemble(&c.seeds);
            let mut edited_seeds = c.seeds.clone();
            edited_seeds[c.edit] = c.to;
            let edited = assemble(&edited_seeds);

            let mut inc = IncrementalSolver::new(2);
            let (cold, st) = inc.solve(&base);
            ensure(!st.noop, || "cold solve flagged as no-op".to_owned())?;
            agree(&cold, &base, "cold")?;

            let (warm, st) = inc.solve(&edited);
            ensure(!st.noop, || "edited solve flagged as no-op".to_owned())?;
            ensure(st.reuse_hits + st.reuse_misses == st.components, || {
                format!("meter accounting broken: {st:?}")
            })?;
            agree(&warm, &edited, "after edit")?;

            // Digest-identical resubmission: the fast path must engage
            // and still return the same estimate.
            let (noop, st) = inc.solve(&edited);
            ensure(st.noop, || {
                "identical resubmission missed the fast path".to_owned()
            })?;
            ensure(
                noop.render_estimate_for(&edited, 6) == warm.render_estimate_for(&edited, 6),
                || "no-op fast path changed the estimate".to_owned(),
            )?;

            // And going back to the original text re-uses the original
            // components rather than re-deriving them.
            let (back, st) = inc.solve(&base);
            ensure(st.reuse_misses == 0, || {
                format!("returning to a fully-cached corpus re-solved components: {st:?}")
            })?;
            agree(&back, &base, "after revert")
        },
    );
}

#[test]
fn property_component_insertion_and_removal_resolve_correctly() {
    check(
        "incremental-grows-and-shrinks",
        40,
        gen_case,
        shrink_case,
        |c| {
            let base = assemble(&c.seeds);
            let mut grown_seeds = c.seeds.clone();
            grown_seeds.push(c.to);
            let grown = assemble(&grown_seeds);
            let shrunk = assemble(&c.seeds[..c.seeds.len() - 1]);

            let mut inc = IncrementalSolver::new(1);
            let (s, _) = inc.solve(&base);
            agree(&s, &base, "base")?;
            let (s, _) = inc.solve(&grown);
            agree(&s, &grown, "after insertion")?;
            let (s, _) = inc.solve(&shrunk);
            agree(&s, &shrunk, "after removal")
        },
    );
}

#[test]
fn noop_fast_path_requires_identical_labels_not_just_identical_text() {
    // Re-parsing the same source re-labels the tree; the solver must
    // notice (labels feed ζ) and re-stitch — all components reused, but
    // no no-op claim.
    let src = "a<m>.0 | a(x). b<x>.0 | (new s) c<{s, new r}:k>.0";
    let p = nuspi_syntax::parse_process(src).unwrap();
    let q = nuspi_syntax::parse_process(src).unwrap();
    let mut inc = IncrementalSolver::new(2);
    let (sp, st) = inc.solve(&p);
    assert!(!st.noop);
    let (sq, st) = inc.solve(&q);
    assert!(!st.noop, "fresh labels must defeat the no-op check");
    assert_eq!(
        st.reuse_misses, 0,
        "α-digests must still reuse every component"
    );
    assert_eq!(
        sp.render_estimate_for(&p, 6),
        sq.render_estimate_for(&q, 6),
        "same source, same estimate"
    );
    let (_, st) = inc.solve(&q);
    assert!(st.noop, "verbatim resubmission of the same tree is a no-op");
}
