//! Composition properties of the most powerful attacker (Lemma 1,
//! Lemma 2, Proposition 1).
//!
//! * **Monotonicity**: composing a process in parallel with more public
//!   context can only grow the attacker's knowledge — every value the
//!   ether derives for `P` it also derives for `P | Q`.
//! * **Idempotence**: the hardest-attacker closure is a closure — adding
//!   the attacker constraints twice yields the same least estimate as
//!   adding them once (the ether nonterminal is canonical, so the second
//!   batch of constraints is absorbed).
//! * **Proposition 1**: a confined process stays confined under
//!   composition with any attacker `Q` whose names are public — the
//!   single Lemma 1 estimate already covers `Q`, so the secret stays
//!   out of the ether.

use nuspi_cfa::attacker::add_attacker;
use nuspi_cfa::{analyze_with_attacker, solve, AttackedSolution, Constraints};
use nuspi_syntax::{builder, parse_process, Process, Symbol, Value};
use std::collections::HashSet;

fn secrets(names: &[&str]) -> HashSet<Symbol> {
    names.iter().map(|s| Symbol::intern(s)).collect()
}

fn ether_values(att: &AttackedSolution, max_height: usize, limit: usize) -> Vec<Value> {
    let fv = att.solution.describe(att.ether);
    att.solution.enumerate(fv, max_height, limit)
}

fn ether_contains(att: &AttackedSolution, w: &Value) -> bool {
    let fv = att.solution.describe(att.ether);
    att.solution.contains(fv, w)
}

/// Public contexts to compose with: forwarders, replayers, decrypting
/// relays — all with public free names only.
fn public_contexts() -> Vec<Process> {
    [
        "c(x). d<x>.0",
        "!spy(x). spy<x>.0",
        "c(x). case x of {y}:pub in d<y>.0",
        "d<(0, suc(0))>.0 | c(x). c<x>.0",
    ]
    .iter()
    .map(|src| parse_process(src).unwrap())
    .collect()
}

#[test]
fn attacker_knowledge_is_monotone_under_parallel_composition() {
    let base = parse_process("(new m) (new k) (c<{m, new r}:k>.0 | c(z). d<z>.0)").unwrap();
    let s = secrets(&["m", "k"]);
    let alone = analyze_with_attacker(&base, &s);
    for q in public_contexts() {
        let composed = analyze_with_attacker(&builder::par(base.clone(), q.clone()), &s);
        for w in ether_values(&alone, 3, 64) {
            assert!(
                ether_contains(&composed, &w),
                "ether lost {w} after composing with {q}"
            );
        }
    }
}

#[test]
fn hardest_attacker_closure_is_idempotent() {
    for src in [
        "(new m) c<m>.0",
        "(new m) (new k) (c<{m, new r}:k>.0 | c(z). case z of {y}:k in d<y>.0)",
        "c(x). x<0>.0",
    ] {
        let p = parse_process(src).unwrap();
        let s = secrets(&["m", "k"]);

        let mut once = Constraints::generate(&p);
        let ether_once = add_attacker(&mut once, &p, &s);
        let sol_once = solve(once);

        let mut twice = Constraints::generate(&p);
        let ether_twice = add_attacker(&mut twice, &p, &s);
        assert_eq!(
            ether_twice,
            add_attacker(&mut twice, &p, &s),
            "the ether nonterminal must be canonical across additions"
        );
        let sol_twice = solve(twice);

        assert_eq!(ether_once, ether_twice);
        sol_once
            .estimate_eq(&sol_twice)
            .unwrap_or_else(|diff| panic!("{src}: closing twice changed the estimate: {diff}"));
    }
}

#[test]
fn confinement_is_preserved_under_attacker_composition() {
    // Proposition 1: the secret stays out of the ether no matter which
    // public attacker runs alongside.
    let wmf = parse_process(
        "
        (new m) (new kAS) (new kBS) (
          ((new kAB) cAS<{kAB, new r1}:kAS>. cAB<{m, new r2}:kAB>.0
           | cBS(t). case t of {y}:kBS in cAB(z). case z of {q}:y in 0)
          | cAS(x). case x of {s}:kAS in cBS<{s, new r3}:kBS>.0
        )",
    )
    .unwrap();
    let s = secrets(&["m", "kAS", "kBS", "kAB"]);
    let alone = analyze_with_attacker(&wmf, &s);
    assert!(!ether_contains(&alone, &Value::name("m")));
    for q in public_contexts() {
        let composed = analyze_with_attacker(&builder::par(wmf.clone(), q.clone()), &s);
        assert!(
            !ether_contains(&composed, &Value::name("m")),
            "secret m became derivable after composing with {q}"
        );
        assert!(
            !ether_contains(&composed, &Value::name("kAB")),
            "session key kAB became derivable after composing with {q}"
        );
    }
}

#[test]
fn a_leaky_context_does_widen_the_ether() {
    // Sanity for monotonicity: the inclusion can be strict. A context
    // that re-publishes the restricted channel's traffic hands the
    // attacker a value it could not previously derive.
    let base = parse_process("(new d) (new m) (d<m>.0 | d(x).0)").unwrap();
    let s = secrets(&["m"]);
    let alone = analyze_with_attacker(&base, &s);
    assert!(!ether_contains(&alone, &Value::name("m")));
    // The context extrudes d on the public channel c.
    let leak = parse_process("c(y).0").unwrap();
    let widened = builder::par(
        parse_process("(new d) (new m) (c<d>.0 | d<m>.0 | d(x).0)").unwrap(),
        leak,
    );
    let composed = analyze_with_attacker(&widened, &s);
    assert!(ether_contains(&composed, &Value::name("m")));
}
