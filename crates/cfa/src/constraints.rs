//! Constraint generation: Table 2 as conditional set constraints.
//!
//! One pass over the labelled process turns every clause of the flow logic
//! into either an unconditional fact (a production or a subset edge) or a
//! *conditional* constraint that fires as the solution grows:
//!
//! | Table 2 clause | Constraint |
//! |---|---|
//! | `{⌊n⌋} ⊆ ζ(l)` | `Prod(Name n, ζl)` |
//! | `ρ(x) ⊆ ζ(l)` | `Sub(ρx, ζl)` |
//! | `PAIR(ζl₁, ζl₂) ⊆ ζ(l)` | `Prod(Pair(ζl₁, ζl₂), ζl)` |
//! | `SUC(ζlM) ⊆ ζ(l)` | `Prod(Suc(ζlM), ζl)` |
//! | `ENC{ζl₁,…,ζlₖ, ⌊r⌋}_{ζl₀} ⊆ ζ(l)` | `Prod(Enc…, ζl)` |
//! | `∀n ∈ ζ(l): ζ(l′) ⊆ κ(n)` | `Output{chan: ζl, msg: ζl′}` |
//! | `∀n ∈ ζ(l): κ(n) ⊆ ρ(x)` | `Input{chan: ζl, var: ρx}` |
//! | `∀pair(v,w) ∈ ζ(l): …` | `Split{scrutinee: ζl, fst, snd}` |
//! | `∀suc(w) ∈ ζ(l): …` | `CaseSuc{scrutinee: ζl, pred}` |
//! | `∀enc{w̃,r}_w ∈ ζ(l): if m=k ∧ w ∈ ζ(l′) …` | `Decrypt{…}` |
//!
//! The decryption premise `w ∈ ζ(l′)` is interpreted over the grammar as
//! non-emptiness of `L(key child) ∩ L(ζ(l′))`, resolved by the solver.

use crate::domain::{FlowVar, Prod, VarId, VarTable};
use nuspi_syntax::{Expr, Process, Term, Value};

/// A generated constraint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Constraint {
    /// `prod ∈ into` — an unconditional production.
    Prod {
        /// The production.
        prod: Prod,
        /// Target nonterminal.
        into: VarId,
    },
    /// `from ⊆ into` — an unconditional subset edge.
    Sub {
        /// Source nonterminal.
        from: VarId,
        /// Target nonterminal.
        into: VarId,
    },
    /// `∀ n ∈ chan : msg ⊆ κ(n)` (output clause).
    Output {
        /// `ζ` of the channel expression.
        chan: VarId,
        /// `ζ` of the message expression.
        msg: VarId,
    },
    /// `∀ n ∈ chan : κ(n) ⊆ var` (input clause).
    Input {
        /// `ζ` of the channel expression.
        chan: VarId,
        /// `ρ` of the bound variable.
        var: VarId,
    },
    /// `∀ pair(v,w) ∈ scrutinee : v ∈ fst ∧ w ∈ snd` (let clause).
    Split {
        /// `ζ` of the pair expression.
        scrutinee: VarId,
        /// `ρ` of the first bound variable.
        fst: VarId,
        /// `ρ` of the second bound variable.
        snd: VarId,
    },
    /// `∀ suc(w) ∈ scrutinee : w ∈ pred` (integer-case clause).
    CaseSuc {
        /// `ζ` of the scrutinee.
        scrutinee: VarId,
        /// `ρ` of the predecessor variable.
        pred: VarId,
    },
    /// `∀ enc{w₁,…,w_m,r}_w ∈ scrutinee : if m = k ∧ w ∈ key-ζ then
    /// ∀i: wᵢ ∈ varsᵢ` (decryption clause).
    Decrypt {
        /// `ζ` of the ciphertext expression.
        scrutinee: VarId,
        /// `ζ` of the key expression `l′`.
        key: VarId,
        /// `ρ` of the payload variables, in order; the arity `k` is
        /// `vars.len()`.
        vars: Vec<VarId>,
    },
}

/// The output of constraint generation.
#[derive(Clone, Debug, Default)]
pub struct Constraints {
    /// The flow-variable table (shared with the solver and solution).
    pub vars: VarTable,
    /// The generated constraints.
    pub list: Vec<Constraint>,
}

impl Constraints {
    /// Generates the constraint system for a process per Table 2.
    pub fn generate(p: &Process) -> Constraints {
        let _sp = nuspi_obs::span!("cfa.generate");
        let mut c = Constraints::default();
        c.gen_process(p);
        if nuspi_obs::enabled() {
            nuspi_obs::counter("cfa.constraints", c.list.len() as u64);
        }
        c
    }

    fn zeta(&mut self, e: &Expr) -> VarId {
        self.vars.intern(FlowVar::Zeta(e.label))
    }

    fn rho(&mut self, x: nuspi_syntax::Var) -> VarId {
        self.vars.intern(FlowVar::Rho(x))
    }

    /// `(ρ, κ, ζ) ⊨ M^l` — returns the nonterminal for `ζ(l)`.
    fn gen_expr(&mut self, e: &Expr) -> VarId {
        let here = self.zeta(e);
        match &e.term {
            Term::Name(n) => self.list.push(Constraint::Prod {
                prod: Prod::Name(n.canonical()),
                into: here,
            }),
            Term::Var(x) => {
                let rx = self.rho(*x);
                self.list.push(Constraint::Sub {
                    from: rx,
                    into: here,
                });
            }
            Term::Zero => self.list.push(Constraint::Prod {
                prod: Prod::Zero,
                into: here,
            }),
            Term::Suc(inner) => {
                let a = self.gen_expr(inner);
                self.list.push(Constraint::Prod {
                    prod: Prod::Suc(a),
                    into: here,
                });
            }
            Term::Pair(a, b) => {
                let va = self.gen_expr(a);
                let vb = self.gen_expr(b);
                self.list.push(Constraint::Prod {
                    prod: Prod::Pair(va, vb),
                    into: here,
                });
            }
            Term::Enc {
                payload,
                confounder,
                key,
            } => {
                let args: Vec<VarId> = payload.iter().map(|p| self.gen_expr(p)).collect();
                let k = self.gen_expr(key);
                self.list.push(Constraint::Prod {
                    prod: Prod::Enc {
                        args,
                        confounder: confounder.canonical(),
                        key: k,
                    },
                    into: here,
                });
            }
            Term::Val(w) => {
                // `(ρ,κ,ζ) ⊨ w^l iff {⌊w⌋} ⊆ ζ(l)`: embed the canonical
                // value via auxiliary nonterminals.
                let v = self.gen_value(w);
                self.list.push(Constraint::Sub {
                    from: v,
                    into: here,
                });
            }
        }
        here
    }

    /// Embeds a concrete (canonical) value as grammar productions rooted at
    /// a fresh auxiliary nonterminal.
    fn gen_value(&mut self, w: &Value) -> VarId {
        let here = self.vars.fresh_aux();
        let prod = match w {
            Value::Name(n) => Prod::Name(n.canonical()),
            Value::Zero => Prod::Zero,
            Value::Suc(inner) => Prod::Suc(self.gen_value(inner)),
            Value::Pair(a, b) => {
                let va = self.gen_value(a);
                let vb = self.gen_value(b);
                Prod::Pair(va, vb)
            }
            Value::Enc {
                payload,
                confounder,
                key,
            } => {
                let args: Vec<VarId> = payload.iter().map(|p| self.gen_value(p)).collect();
                let k = self.gen_value(key);
                Prod::Enc {
                    args,
                    confounder: confounder.canonical(),
                    key: k,
                }
            }
        };
        self.list.push(Constraint::Prod { prod, into: here });
        here
    }

    /// `(ρ, κ, ζ) ⊨ P`.
    fn gen_process(&mut self, p: &Process) {
        match p {
            Process::Nil => {}
            Process::Output { chan, msg, then } => {
                let c = self.gen_expr(chan);
                let m = self.gen_expr(msg);
                self.gen_process(then);
                self.list.push(Constraint::Output { chan: c, msg: m });
            }
            Process::Input { chan, var, then } => {
                let c = self.gen_expr(chan);
                let x = self.rho(*var);
                self.gen_process(then);
                self.list.push(Constraint::Input { chan: c, var: x });
            }
            Process::Par(a, b) => {
                self.gen_process(a);
                self.gen_process(b);
            }
            Process::Restrict { body, .. } | Process::Hide { body, .. } => self.gen_process(body),
            Process::Replicate(q) => self.gen_process(q),
            Process::Match { lhs, rhs, then } => {
                self.gen_expr(lhs);
                self.gen_expr(rhs);
                self.gen_process(then);
            }
            Process::Let {
                fst,
                snd,
                expr,
                then,
            } => {
                let e = self.gen_expr(expr);
                let f = self.rho(*fst);
                let s = self.rho(*snd);
                self.gen_process(then);
                self.list.push(Constraint::Split {
                    scrutinee: e,
                    fst: f,
                    snd: s,
                });
            }
            Process::CaseNat {
                expr,
                zero,
                pred,
                succ,
            } => {
                let e = self.gen_expr(expr);
                let x = self.rho(*pred);
                self.gen_process(zero);
                self.gen_process(succ);
                self.list.push(Constraint::CaseSuc {
                    scrutinee: e,
                    pred: x,
                });
            }
            Process::CaseDec {
                expr,
                vars,
                key,
                then,
            } => {
                let e = self.gen_expr(expr);
                let k = self.gen_expr(key);
                let xs: Vec<VarId> = vars.iter().map(|v| self.rho(*v)).collect();
                self.gen_process(then);
                self.list.push(Constraint::Decrypt {
                    scrutinee: e,
                    key: k,
                    vars: xs,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_syntax::parse_process;

    fn count<F: Fn(&Constraint) -> bool>(cs: &Constraints, f: F) -> usize {
        cs.list.iter().filter(|c| f(c)).count()
    }

    #[test]
    fn output_generates_output_constraint() {
        let p = parse_process("c<m>.0").unwrap();
        let cs = Constraints::generate(&p);
        assert_eq!(count(&cs, |c| matches!(c, Constraint::Output { .. })), 1);
        assert_eq!(count(&cs, |c| matches!(c, Constraint::Prod { .. })), 2); // c, m
    }

    #[test]
    fn input_generates_input_constraint() {
        let p = parse_process("c(x).d<x>.0").unwrap();
        let cs = Constraints::generate(&p);
        assert_eq!(count(&cs, |c| matches!(c, Constraint::Input { .. })), 1);
        // the x occurrence inside the output produces a Sub from ρ(x)
        assert_eq!(count(&cs, |c| matches!(c, Constraint::Sub { .. })), 1);
    }

    #[test]
    fn encryption_generates_enc_production() {
        let p = parse_process("c<{m, new r}:k>.0").unwrap();
        let cs = Constraints::generate(&p);
        let enc = cs.list.iter().find_map(|c| match c {
            Constraint::Prod {
                prod: Prod::Enc { args, .. },
                ..
            } => Some(args.len()),
            _ => None,
        });
        assert_eq!(enc, Some(1));
    }

    #[test]
    fn decryption_generates_decrypt_constraint() {
        let p = parse_process("case e of {x, y}:k in 0").unwrap();
        let cs = Constraints::generate(&p);
        let found = cs.list.iter().find_map(|c| match c {
            Constraint::Decrypt { vars, .. } => Some(vars.len()),
            _ => None,
        });
        assert_eq!(found, Some(2));
    }

    #[test]
    fn match_generates_no_conditionals() {
        let p = parse_process("[a is b] 0").unwrap();
        let cs = Constraints::generate(&p);
        assert!(cs.list.iter().all(|c| matches!(c, Constraint::Prod { .. })));
    }

    #[test]
    fn generation_is_linear_in_process_size() {
        // Chain of n relays: constraint count grows linearly.
        let mk = |n: usize| {
            let mut src = String::new();
            for i in 0..n {
                src.push_str(&format!("c{i}(x{i}).c{}<x{i}>.0 | ", i + 1));
            }
            src.push('0');
            parse_process(&src).unwrap()
        };
        let c10 = Constraints::generate(&mk(10)).list.len();
        let c20 = Constraints::generate(&mk(20)).list.len();
        let c40 = Constraints::generate(&mk(40)).list.len();
        // constraints(n) = a·n + b, so consecutive doublings add 10a / 20a.
        assert_eq!(c40 - c20, 2 * (c20 - c10), "linear growth");
    }

    #[test]
    fn embedded_values_become_aux_productions() {
        use nuspi_syntax::{builder as b, Value};
        let w = Value::pair(Value::name("a"), Value::zero());
        let p = b::output(b::name("c"), b::val(w), b::nil());
        let cs = Constraints::generate(&p);
        // pair + name + zero productions through aux vars, plus c's name.
        assert!(count(&cs, |c| matches!(c, Constraint::Prod { .. })) >= 4);
        assert_eq!(count(&cs, |c| matches!(c, Constraint::Sub { .. })), 1);
    }

    #[test]
    fn nested_case_nat_generates_case_constraint() {
        let p = parse_process("case 2 of 0: 0, suc(x): c<x>.0").unwrap();
        let cs = Constraints::generate(&p);
        assert_eq!(count(&cs, |c| matches!(c, Constraint::CaseSuc { .. })), 1);
    }

    #[test]
    fn let_generates_split_constraint() {
        let p = parse_process("let (x, y) = (a, b) in 0").unwrap();
        let cs = Constraints::generate(&p);
        assert_eq!(count(&cs, |c| matches!(c, Constraint::Split { .. })), 1);
    }
}
