//! Acceptability of a solved estimate: Table 2, checked symbolically.
//!
//! [`verify`] re-walks a process and checks, clause by clause, that a
//! [`Solution`] satisfies the flow logic. Subset conditions are checked at
//! the level of production sets (which implies the language-level
//! conditions of the paper, since the language of a nonterminal is
//! monotone in its production set); the decryption premise is checked with
//! the same language-intersection oracle the solver uses.
//!
//! This is an *independent validator*: it shares no state with the solver,
//! so a bug that made the solver skip a clause shows up here as a reported
//! violation. The test suites of the security crates and the
//! subject-reduction experiment lean on it.

use crate::domain::{FlowVar, Prod, VarId};
use crate::solver::Solution;
use nuspi_syntax::{Expr, Process, Term};

/// A violated clause of Table 2, in human-readable form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation(pub String);

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Checks `(ρ, κ, ζ) ⊨ P` for a solved estimate. Returns every violated
/// clause (empty means the estimate is acceptable for `P`).
pub fn verify(sol: &Solution, p: &Process) -> Vec<Violation> {
    let mut v = Checker {
        sol,
        violations: Vec::new(),
    };
    v.process(p);
    v.violations
}

/// Convenience: whether the solution is acceptable for `p`.
pub fn accepts(sol: &Solution, p: &Process) -> bool {
    verify(sol, p).is_empty()
}

struct Checker<'a> {
    sol: &'a Solution,
    violations: Vec<Violation>,
}

impl Checker<'_> {
    fn fail(&mut self, msg: String) {
        self.violations.push(Violation(msg));
    }

    fn zeta_id(&mut self, e: &Expr) -> Option<VarId> {
        let id = self.sol.var_id(FlowVar::Zeta(e.label));
        if id.is_none() {
            self.fail(format!("ζ({}) missing for expression `{}`", e.label, e));
        }
        id
    }

    fn subset(&mut self, from: VarId, into: VarId, ctx: &str) {
        let a = self.sol.prods_of_id(from);
        let b = self.sol.prods_of_id(into);
        for p in a {
            if !b.contains(p) {
                self.fail(format!(
                    "{ctx}: production {p:?} of {} not in {}",
                    self.sol.describe(from),
                    self.sol.describe(into)
                ));
            }
        }
    }

    fn require(&mut self, prod: Prod, into: VarId, ctx: &str) {
        if !self.sol.prods_of_id(into).contains(&prod) {
            self.fail(format!(
                "{ctx}: required production {prod:?} missing from {}",
                self.sol.describe(into)
            ));
        }
    }

    /// `(ρ,κ,ζ) ⊨ M^l` — returns ζ(l)'s id.
    fn expr(&mut self, e: &Expr) -> Option<VarId> {
        let here = self.zeta_id(e)?;
        match &e.term {
            Term::Name(n) => self.require(Prod::Name(n.canonical()), here, "name clause"),
            Term::Zero => self.require(Prod::Zero, here, "zero clause"),
            Term::Var(x) => {
                if let Some(rx) = self.sol.var_id(FlowVar::Rho(*x)) {
                    self.subset(rx, here, "variable clause");
                } else if !self.sol.prods_of_id(here).is_empty() {
                    // ρ(x) absent means it is empty, which is always ⊆ ζ(l).
                }
            }
            Term::Suc(inner) => {
                if let Some(a) = self.expr(inner) {
                    self.require(Prod::Suc(a), here, "suc clause");
                }
            }
            Term::Pair(a, b) => {
                if let (Some(va), Some(vb)) = (self.expr(a), self.expr(b)) {
                    self.require(Prod::Pair(va, vb), here, "pair clause");
                }
            }
            Term::Enc {
                payload,
                confounder,
                key,
            } => {
                let args: Option<Vec<VarId>> = payload.iter().map(|p| self.expr(p)).collect();
                let k = self.expr(key);
                if let (Some(args), Some(k)) = (args, k) {
                    self.require(
                        Prod::Enc {
                            args,
                            confounder: confounder.canonical(),
                            key: k,
                        },
                        here,
                        "encryption clause",
                    );
                }
            }
            Term::Val(w) => {
                if !self.sol.contains(FlowVar::Zeta(e.label), w) {
                    self.fail(format!(
                        "value clause: ⌊{w}⌋ ∉ ζ({}) for embedded value",
                        e.label
                    ));
                }
            }
        }
        Some(here)
    }

    fn process(&mut self, p: &Process) {
        match p {
            Process::Nil => {}
            Process::Output { chan, msg, then } => {
                let c = self.expr(chan);
                let m = self.expr(msg);
                self.process(then);
                if let (Some(c), Some(m)) = (c, m) {
                    let names: Vec<_> = self
                        .sol
                        .prods_of_id(c)
                        .iter()
                        .filter_map(|p| match p {
                            Prod::Name(n) => Some(*n),
                            _ => None,
                        })
                        .collect();
                    for n in names {
                        match self.sol.var_id(FlowVar::Kappa(n)) {
                            Some(k) => self.subset(m, k, "output clause"),
                            None => {
                                if !self.sol.prods_of_id(m).is_empty() {
                                    self.fail(format!(
                                        "output clause: κ({n}) missing but message set nonempty"
                                    ));
                                }
                            }
                        }
                    }
                }
            }
            Process::Input { chan, var, then } => {
                let c = self.expr(chan);
                self.process(then);
                if let Some(c) = c {
                    let names: Vec<_> = self
                        .sol
                        .prods_of_id(c)
                        .iter()
                        .filter_map(|p| match p {
                            Prod::Name(n) => Some(*n),
                            _ => None,
                        })
                        .collect();
                    for n in names {
                        if let (Some(k), Some(x)) = (
                            self.sol.var_id(FlowVar::Kappa(n)),
                            self.sol.var_id(FlowVar::Rho(*var)),
                        ) {
                            self.subset(k, x, "input clause");
                        } else if let Some(k) = self.sol.var_id(FlowVar::Kappa(n)) {
                            if !self.sol.prods_of_id(k).is_empty() {
                                self.fail(format!(
                                    "input clause: ρ({var}) missing but κ({n}) nonempty"
                                ));
                            }
                        }
                    }
                }
            }
            Process::Par(a, b) => {
                self.process(a);
                self.process(b);
            }
            Process::Restrict { body, .. } | Process::Hide { body, .. } => self.process(body),
            Process::Replicate(q) => self.process(q),
            Process::Match { lhs, rhs, then } => {
                self.expr(lhs);
                self.expr(rhs);
                self.process(then);
            }
            Process::Let {
                fst,
                snd,
                expr,
                then,
            } => {
                let e = self.expr(expr);
                self.process(then);
                if let Some(e) = e {
                    let pairs: Vec<(VarId, VarId)> = self
                        .sol
                        .prods_of_id(e)
                        .iter()
                        .filter_map(|p| match p {
                            Prod::Pair(a, b) => Some((*a, *b)),
                            _ => None,
                        })
                        .collect();
                    for (a, b) in pairs {
                        self.bind_subset(a, *fst, "let clause (fst)");
                        self.bind_subset(b, *snd, "let clause (snd)");
                    }
                }
            }
            Process::CaseNat {
                expr,
                zero,
                pred,
                succ,
            } => {
                let e = self.expr(expr);
                self.process(zero);
                self.process(succ);
                if let Some(e) = e {
                    let sucs: Vec<VarId> = self
                        .sol
                        .prods_of_id(e)
                        .iter()
                        .filter_map(|p| match p {
                            Prod::Suc(a) => Some(*a),
                            _ => None,
                        })
                        .collect();
                    for a in sucs {
                        self.bind_subset(a, *pred, "case-suc clause");
                    }
                }
            }
            Process::CaseDec {
                expr,
                vars,
                key,
                then,
            } => {
                let e = self.expr(expr);
                let k = self.expr(key);
                self.process(then);
                if let (Some(e), Some(k)) = (e, k) {
                    let encs: Vec<(Vec<VarId>, VarId)> = self
                        .sol
                        .prods_of_id(e)
                        .iter()
                        .filter_map(|p| match p {
                            Prod::Enc { args, key, .. } if args.len() == vars.len() => {
                                Some((args.clone(), *key))
                            }
                            _ => None,
                        })
                        .collect();
                    for (args, enc_key) in encs {
                        if self.sol.intersect_nonempty(enc_key, k) {
                            for (a, x) in args.into_iter().zip(vars.iter()) {
                                self.bind_subset(a, *x, "decryption clause");
                            }
                        }
                    }
                }
            }
        }
    }

    fn bind_subset(&mut self, from: VarId, var: nuspi_syntax::Var, ctx: &str) {
        match self.sol.var_id(FlowVar::Rho(var)) {
            Some(x) => self.subset(from, x, ctx),
            None => {
                if !self.sol.prods_of_id(from).is_empty() {
                    self.fail(format!("{ctx}: ρ({var}) missing but source set nonempty"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Constraints;
    use crate::solver::solve;
    use nuspi_syntax::parse_process;

    fn solved(src: &str) -> (Process, Solution) {
        let p = parse_process(src).unwrap();
        let sol = solve(Constraints::generate(&p));
        (p, sol)
    }

    #[test]
    fn least_solutions_are_acceptable() {
        for src in [
            "0",
            "c<m>.0",
            "c<m>.0 | c(x).d<x>.0",
            "c<{m, new r}:k>.0 | c(z). case z of {x}:k in d<x>.0",
            "c<(a, b)>.0 | c(z). let (x, y) = z in d<x>.e<y>.0",
            "c<2>.0 | c(z). case z of 0: 0, suc(x): d<x>.0",
            "(new k) (c<{m, new r}:k>.0 | c(z). case z of {x}:k in 0)",
            "!c(x).c<suc(x)>.0 | c<0>.0",
            "[a is b] c<0>.0",
        ] {
            let (p, sol) = solved(src);
            let violations = verify(&sol, &p);
            assert!(violations.is_empty(), "{src}: {violations:?}");
        }
    }

    #[test]
    fn wmf_least_solution_is_acceptable() {
        let src = "
            (new kAS) (new kBS) (
              ((new kAB) cAS<{kAB, new r1}:kAS>. cAB<{m, new r2}:kAB>.0
               | cBS(t). case t of {y}:kBS in cAB(z). case z of {q}:y in 0)
              | cAS(x). case x of {s}:kAS in cBS<{s, new r3}:kBS>.0
            )";
        let (p, sol) = solved(src);
        assert!(accepts(&sol, &p));
    }

    #[test]
    fn solution_for_one_process_can_reject_another() {
        let (_, sol) = solved("c<m>.0");
        let other = parse_process("d<n>.0").unwrap();
        assert!(!accepts(&sol, &other), "ζ-labels of `other` are unknown");
    }

    #[test]
    fn acceptability_survives_reduction_substitution() {
        // Analyze P, take a τ-step (which substitutes a value), and check
        // the residual still verifies — a single instance of Theorem 1(2).
        use nuspi_semantics::{commitments, Action, Agent, CommitConfig};
        let (p, sol) = solved("c<m>.0 | c(x).d<x>.0");
        let cs = commitments(&p, &CommitConfig::default());
        let tau = cs.iter().find(|c| c.action == Action::Tau).unwrap();
        let Agent::Proc(q) = &tau.agent else {
            panic!("τ residual must be a process")
        };
        let violations = verify(&sol, q);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
