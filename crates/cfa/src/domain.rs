//! The abstract value domain of the CFA, represented as a regular tree
//! grammar.
//!
//! The analysis result `(ρ, κ, ζ)` maps variables, canonical channel names
//! and labels to sets of canonical values. Those sets are infinite in
//! general (`Val = ℘(Val)` closes over pairs, successors and encryptions),
//! so — following the paper's own implementation note ("the specification
//! in Table 2 needs to be interpreted as defining a regular tree grammar
//! whose least solution can be computed in polynomial time") — each flow
//! variable is a grammar *nonterminal* and each abstract value a
//! *production* whose children are again nonterminals:
//!
//! ```text
//! ζ(l)  →  enc{ ζ(l₁), …, ζ(lₖ), r }_{ ζ(l₀) }
//! ρ(x)  →  pair( ζ(l₁), ζ(l₂) )
//! κ(n)  →  n′ | 0 | suc(κ(n)) | …
//! ```
//!
//! The language `L(v)` of a nonterminal is the set of canonical values it
//! derives; `L` is the concretisation function of the analysis.

use nuspi_syntax::{Label, Symbol, Value, Var};
use std::fmt;

/// A nonterminal of the grammar: one of the three components of the
/// analysis estimate, or an auxiliary node describing a concrete value
/// embedded in a (run-time) process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FlowVar {
    /// `ρ(x)` — values the variable `x` may be bound to.
    Rho(Var),
    /// `κ(n)` — values that may flow on channels with canonical name `n`.
    Kappa(Symbol),
    /// `ζ(l)` — values the term occurrence labelled `l` may evaluate to.
    Zeta(Label),
    /// Auxiliary nonterminal for a sub-value of an embedded concrete value
    /// (`Term::Val`); identified by an arbitrary unique id.
    Aux(u32),
}

impl fmt::Display for FlowVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowVar::Rho(x) => write!(f, "ρ({x})"),
            FlowVar::Kappa(n) => write!(f, "κ({n})"),
            FlowVar::Zeta(l) => write!(f, "ζ({l})"),
            FlowVar::Aux(u32::MAX) => write!(f, "the attacker's knowledge"),
            FlowVar::Aux(i) => write!(f, "aux{i}"),
        }
    }
}

/// A dense handle for a [`FlowVar`]; indexes every solver-side table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A production of the grammar: one abstract value whose immediate
/// children are nonterminals.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Prod {
    /// The canonical name `n`.
    Name(Symbol),
    /// The numeral `0`.
    Zero,
    /// `suc(A)`.
    Suc(VarId),
    /// `pair(A, B)`.
    Pair(VarId, VarId),
    /// `enc{A₁,…,Aₖ, r}_{A₀}` — payload nonterminals, the canonical
    /// confounder of the creating encryption site, and the key
    /// nonterminal.
    Enc {
        /// Payload children `A₁…Aₖ`.
        args: Vec<VarId>,
        /// Canonical confounder `⌊r⌋` of the creating site.
        confounder: Symbol,
        /// Key child `A₀`.
        key: VarId,
    },
}

impl Prod {
    /// Whether this production, matched against `other`, can derive a
    /// common value *at the root* — the children still need checking.
    /// Returns the child pairs to check, or `None` if the roots clash.
    pub fn root_compatible<'p>(&'p self, other: &'p Prod) -> Option<Vec<(VarId, VarId)>> {
        match (self, other) {
            (Prod::Name(a), Prod::Name(b)) if a == b => Some(Vec::new()),
            (Prod::Zero, Prod::Zero) => Some(Vec::new()),
            (Prod::Suc(a), Prod::Suc(b)) => Some(vec![(*a, *b)]),
            (Prod::Pair(a1, a2), Prod::Pair(b1, b2)) => Some(vec![(*a1, *b1), (*a2, *b2)]),
            (
                Prod::Enc {
                    args: a,
                    confounder: ra,
                    key: ka,
                },
                Prod::Enc {
                    args: b,
                    confounder: rb,
                    key: kb,
                },
            ) if a.len() == b.len() && ra == rb => {
                let mut pairs: Vec<(VarId, VarId)> =
                    a.iter().copied().zip(b.iter().copied()).collect();
                pairs.push((*ka, *kb));
                Some(pairs)
            }
            _ => None,
        }
    }

    /// Whether this production can derive the given canonical value at the
    /// root. Returns the (child nonterminal, child value) obligations, or
    /// `None` on a root clash.
    pub fn matches_value<'v>(&self, value: &'v Value) -> Option<Vec<(VarId, &'v Value)>> {
        match (self, value) {
            (Prod::Name(s), Value::Name(n)) if *s == n.canonical() => Some(Vec::new()),
            (Prod::Zero, Value::Zero) => Some(Vec::new()),
            (Prod::Suc(a), Value::Suc(w)) => Some(vec![(*a, &**w)]),
            (Prod::Pair(a, b), Value::Pair(u, v)) => Some(vec![(*a, &**u), (*b, &**v)]),
            (
                Prod::Enc {
                    args,
                    confounder,
                    key,
                },
                Value::Enc {
                    payload,
                    confounder: r,
                    key: k,
                },
            ) if args.len() == payload.len() && *confounder == r.canonical() => {
                let mut obligations: Vec<(VarId, &Value)> = args
                    .iter()
                    .copied()
                    .zip(payload.iter().map(|w| &**w))
                    .collect();
                obligations.push((*key, &**k));
                Some(obligations)
            }
            _ => None,
        }
    }
}

/// Interning table mapping [`FlowVar`]s to dense [`VarId`]s.
#[derive(Clone, Debug, Default)]
pub struct VarTable {
    map: std::collections::HashMap<FlowVar, VarId>,
    list: Vec<FlowVar>,
    next_aux: u32,
}

impl VarTable {
    /// An empty table.
    pub fn new() -> VarTable {
        VarTable::default()
    }

    /// Interns `fv`, allocating a fresh id on first sight.
    pub fn intern(&mut self, fv: FlowVar) -> VarId {
        if let Some(&id) = self.map.get(&fv) {
            return id;
        }
        let id = VarId(u32::try_from(self.list.len()).expect("too many flow variables"));
        self.map.insert(fv, id);
        self.list.push(fv);
        id
    }

    /// A fresh auxiliary nonterminal.
    pub fn fresh_aux(&mut self) -> VarId {
        let fv = FlowVar::Aux(self.next_aux);
        self.next_aux += 1;
        self.intern(fv)
    }

    /// Looks up an already interned flow variable.
    pub fn get(&self, fv: FlowVar) -> Option<VarId> {
        self.map.get(&fv).copied()
    }

    /// The flow variable behind an id.
    pub fn describe(&self, id: VarId) -> FlowVar {
        self.list[id.index()]
    }

    /// Number of interned flow variables.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Iterates over all interned (id, flow-var) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, FlowVar)> + '_ {
        self.list
            .iter()
            .enumerate()
            .map(|(i, fv)| (VarId(i as u32), *fv))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut t = VarTable::new();
        let a = t.intern(FlowVar::Kappa(Symbol::intern("c")));
        let b = t.intern(FlowVar::Kappa(Symbol::intern("c")));
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_flowvars_get_distinct_ids() {
        let mut t = VarTable::new();
        let a = t.intern(FlowVar::Kappa(Symbol::intern("c")));
        let b = t.intern(FlowVar::Kappa(Symbol::intern("d")));
        assert_ne!(a, b);
        assert_eq!(t.describe(a), FlowVar::Kappa(Symbol::intern("c")));
    }

    #[test]
    fn aux_vars_are_unique() {
        let mut t = VarTable::new();
        assert_ne!(t.fresh_aux(), t.fresh_aux());
    }

    #[test]
    fn root_compatibility_names() {
        let a = Prod::Name(Symbol::intern("k"));
        let b = Prod::Name(Symbol::intern("k"));
        let c = Prod::Name(Symbol::intern("j"));
        assert_eq!(a.root_compatible(&b), Some(vec![]));
        assert_eq!(a.root_compatible(&c), None);
        assert_eq!(a.root_compatible(&Prod::Zero), None);
    }

    #[test]
    fn root_compatibility_structured() {
        let v0 = VarId(0);
        let v1 = VarId(1);
        let p = Prod::Pair(v0, v1);
        let q = Prod::Pair(v1, v0);
        assert_eq!(p.root_compatible(&q), Some(vec![(v0, v1), (v1, v0)]));
        assert_eq!(
            Prod::Suc(v0).root_compatible(&Prod::Suc(v1)),
            Some(vec![(v0, v1)])
        );
    }

    #[test]
    fn enc_compatibility_requires_arity_and_confounder() {
        let v0 = VarId(0);
        let r = Symbol::intern("r");
        let s = Symbol::intern("s");
        let e1 = Prod::Enc {
            args: vec![v0],
            confounder: r,
            key: v0,
        };
        let e2 = Prod::Enc {
            args: vec![v0],
            confounder: s,
            key: v0,
        };
        let e3 = Prod::Enc {
            args: vec![v0, v0],
            confounder: r,
            key: v0,
        };
        assert!(e1.root_compatible(&e1.clone()).is_some());
        assert!(e1.root_compatible(&e2).is_none(), "different sites");
        assert!(e1.root_compatible(&e3).is_none(), "different arity");
    }

    #[test]
    fn matches_value_name_and_zero() {
        let p = Prod::Name(Symbol::intern("a"));
        let w = Value::Name(nuspi_syntax::Name::global("a"));
        assert_eq!(p.matches_value(&w), Some(vec![]));
        assert_eq!(Prod::Zero.matches_value(&Value::Zero), Some(vec![]));
        assert_eq!(p.matches_value(&Value::Zero), None);
    }

    #[test]
    fn matches_value_recurses_on_children() {
        let v0 = VarId(0);
        let w = Value::numeral(1);
        let obligations = Prod::Suc(v0).matches_value(&w).unwrap();
        assert_eq!(obligations.len(), 1);
        assert_eq!(obligations[0].0, v0);
    }
}
