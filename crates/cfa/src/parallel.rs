//! A parallel, work-stealing least-solution solver.
//!
//! [`solve_parallel`] runs `threads` workers over striped deques of
//! `(variable, production)` tasks. The grammar lives in one mutex per
//! flow variable (productions, outgoing subset edges); a worker locks
//! exactly one variable at a time, so the lock graph is trivially
//! acyclic. Each worker drains its own deque LIFO for locality and
//! steals FIFO from the others when empty:
//!
//! * **Task processing**: pop `(v, p)`, snapshot `v`'s outgoing edges,
//!   push `p` into every target (a *new* insertion spawns a task for the
//!   target), then evaluate the Table 2 conditionals watching `v`.
//! * **Edge insertion** replays inline: the worker that inserts
//!   `from ⊆ into` snapshots `from`'s productions under the lock and
//!   pushes each into `into`, so no production ever misses an edge — a
//!   concurrent insertion into `from` either lands before the snapshot
//!   (and is replayed) or after it (and its own task sees the new edge).
//! * **Quiescence** is an atomic in-flight counter, incremented before a
//!   task is pushed and decremented after it is fully processed;
//!   observing zero means no task is queued *or* mid-flight, so no new
//!   work can appear and the workers meet at a barrier.
//! * **Rounds**: after each quiescent drain every worker retries its
//!   parked decryptions against the now-stable grammar; a leader then
//!   decides termination (nothing enqueued and nothing fired — the
//!   firing-without-growth case gets one confirming round, mirroring the
//!   sequential solver's `progressed` flag).
//!
//! Correctness rests on monotonicity: every rule of Table 2 only *adds*
//! productions and edges, so any interleaving reaches the same least
//! fixpoint as the sequential worklist (the differential suite checks
//! this on hundreds of random processes against both the sequential and
//! the naive reference solver). The one wrinkle is that `κ(n)` variables
//! must exist before solving starts — `Name` productions only originate
//! from seed constraints (or prefilled facts), so all possible `κ`
//! variables are interned up front and the variable universe is fixed
//! for the whole run.
//!
//! Intersection-nonemptiness queries (`L(key) ∩ L(ζ(l′)) ≠ ∅`) are
//! memoised per worker and the caches **persist across rounds**:
//! positive answers are valid forever (languages only grow), negative
//! answers are tagged with the global production generation — a single
//! atomic bumped on every insertion — and expire only when the grammar
//! has actually grown. A stale negative merely re-parks a decryption,
//! which the round structure retries, so soundness is unaffected.
//!
//! [`solve_parallel_with`] additionally accepts a [`Prefill`] — facts
//! and edges installed silently plus facts enqueued live — which is how
//! the incremental solver re-stitches cached per-component solutions.

use crate::constraints::{Constraint, Constraints};
use crate::domain::{FlowVar, Prod, VarId, VarTable};
use crate::solver::{
    intersect_fixpoint, norm, solve, Cond, ProdView, ShardStats, Solution, SolverStats,
};
use std::borrow::Cow;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

/// The per-variable slice of the grammar: production set plus outgoing
/// subset edges. One mutex each; never locked while holding another.
#[derive(Default)]
struct VarState {
    prods: HashSet<Prod>,
    edges: Vec<VarId>,
    edge_set: HashSet<VarId>,
}

/// Facts and edges installed before solving starts. `silent` entries are
/// assumed already closed under their own consequences (they come from a
/// cached component solution), so they spawn no tasks and replay no
/// edges; `enqueue` entries are inserted *and* pushed as live tasks so
/// their watchers and out-edges run. Decryptions watching a silent `Enc`
/// production are re-parked so the round structure re-decides their key
/// intersection against the stitched global grammar.
#[derive(Default)]
pub(crate) struct Prefill {
    pub silent: Vec<(VarId, Prod)>,
    pub edges: Vec<(VarId, VarId)>,
    pub enqueue: Vec<(VarId, Prod)>,
}

/// State shared by all workers for one solve.
struct Shared<'a> {
    states: Vec<Mutex<VarState>>,
    conds: &'a [Cond],
    watchers: &'a [Vec<usize>],
    kappa: &'a HashMap<nuspi_syntax::Symbol, VarId>,
    deques: Vec<Mutex<VecDeque<(VarId, Prod)>>>,
    /// Tasks pushed but not yet fully processed; zero ⇔ quiescent.
    in_flight: AtomicUsize,
    /// Peak of `in_flight` — the widest frontier seen.
    frontier_peak: AtomicUsize,
    /// Bumped on every production insertion; tags negative intersection
    /// answers (edges alone cannot make an empty intersection non-empty).
    generation: AtomicU64,
    /// Parked decryptions fired this round.
    fired: AtomicUsize,
    done: AtomicBool,
    barrier: Barrier,
    /// `(hits, misses)` accumulated by the workers this round.
    round_acc: Mutex<(usize, usize)>,
    round_memo: Mutex<Vec<(usize, usize)>>,
    round_millis: Mutex<Vec<f64>>,
    rounds: AtomicUsize,
    round_start: Mutex<Instant>,
}

/// One worker's private state: its memo caches (persistent across
/// rounds), its parked decryptions, and its effort counters.
struct Worker {
    id: usize,
    pos_cache: HashSet<(VarId, VarId)>,
    neg_cache: HashMap<(VarId, VarId), u64>,
    parked: Vec<(usize, Prod)>,
    parked_set: HashSet<(usize, Prod)>,
    stats: ShardStats,
    /// `(hits, misses)` already published to earlier rounds.
    memo_mark: (usize, usize),
}

impl Worker {
    fn new(id: usize) -> Worker {
        Worker {
            id,
            pos_cache: HashSet::new(),
            neg_cache: HashMap::new(),
            parked: Vec::new(),
            parked_set: HashSet::new(),
            stats: ShardStats::default(),
            memo_mark: (0, 0),
        }
    }
}

/// Read-only view for the intersection saturation: locks one variable at
/// a time and snapshots its productions, so the pair-graph walk never
/// holds a lock.
struct LockedView<'a> {
    states: &'a [Mutex<VarState>],
}

impl ProdView for LockedView<'_> {
    fn prods_at(&self, v: VarId) -> Option<Cow<'_, HashSet<Prod>>> {
        let st = self.states.get(v.index())?.lock().expect("var lock");
        if st.prods.is_empty() {
            None
        } else {
            Some(Cow::Owned(st.prods.clone()))
        }
    }
}

/// Computes the least solution on `threads` work-stealing workers.
/// `threads = 1` degenerates to a single worker (and is itself a useful
/// oracle: same code path, no concurrency). The result is identical —
/// as an estimate `(ρ, κ, ζ)` — to [`solve`] and to
/// [`solve_reference`](crate::solve_reference) on every input; the
/// differential suite enforces this.
pub fn solve_parallel(constraints: Constraints, threads: usize) -> Solution {
    solve_parallel_with(constraints, threads, Prefill::default())
}

/// [`solve_parallel`] with pre-installed facts and edges (the
/// incremental solver's re-stitching hook).
pub(crate) fn solve_parallel_with(
    constraints: Constraints,
    threads: usize,
    prefill: Prefill,
) -> Solution {
    let _sp = nuspi_obs::span!("cfa.solve_parallel", threads);
    let nworkers = threads.max(1);
    let Constraints { mut vars, list } = constraints;

    // Fix the variable universe: κ(n) can only arise for names with a
    // seed (or prefilled) production, so intern them all up front.
    for c in &list {
        if let Constraint::Prod {
            prod: Prod::Name(n),
            ..
        } = c
        {
            vars.intern(FlowVar::Kappa(*n));
        }
    }
    for (_, prod) in prefill.silent.iter().chain(&prefill.enqueue) {
        if let Prod::Name(n) = prod {
            vars.intern(FlowVar::Kappa(*n));
        }
    }
    let kappa: HashMap<nuspi_syntax::Symbol, VarId> = vars
        .iter()
        .filter_map(|(id, fv)| match fv {
            FlowVar::Kappa(n) => Some((n, id)),
            _ => None,
        })
        .collect();

    // Register conditionals; collect seed facts and unconditional edges.
    let mut conds: Vec<Cond> = Vec::new();
    let mut watchers: Vec<Vec<usize>> = vec![Vec::new(); vars.len()];
    let mut seed_edges: Vec<(VarId, VarId)> = Vec::new();
    let mut seeds: Vec<(VarId, Prod)> = Vec::new();
    let watch = |watchers: &mut Vec<Vec<usize>>, conds: &mut Vec<Cond>, var: VarId, c: Cond| {
        let idx = conds.len();
        conds.push(c);
        watchers[var.index()].push(idx);
    };
    for c in list {
        match c {
            Constraint::Prod { prod, into } => seeds.push((into, prod)),
            Constraint::Sub { from, into } => seed_edges.push((from, into)),
            Constraint::Output { chan, msg } => {
                watch(&mut watchers, &mut conds, chan, Cond::Output { msg });
            }
            Constraint::Input { chan, var } => {
                watch(&mut watchers, &mut conds, chan, Cond::Input { var });
            }
            Constraint::Split {
                scrutinee,
                fst,
                snd,
            } => watch(
                &mut watchers,
                &mut conds,
                scrutinee,
                Cond::Split { fst, snd },
            ),
            Constraint::CaseSuc { scrutinee, pred } => {
                watch(&mut watchers, &mut conds, scrutinee, Cond::CaseSuc { pred });
            }
            Constraint::Decrypt {
                scrutinee,
                key,
                vars,
            } => watch(
                &mut watchers,
                &mut conds,
                scrutinee,
                Cond::Decrypt { key, vars },
            ),
        }
    }

    // Install edges (no replay: every initially present fact is either
    // enqueued as a task, which walks its out-edges itself, or silent,
    // whose consequences the prefill already contains), then silent
    // facts, then the live tasks.
    let mut states: Vec<Mutex<VarState>> = (0..vars.len()).map(|_| Mutex::default()).collect();
    for (from, into) in seed_edges.into_iter().chain(prefill.edges) {
        if from == into {
            continue;
        }
        let st = states[from.index()].get_mut().expect("var lock");
        if st.edge_set.insert(into) {
            st.edges.push(into);
        }
    }
    let mut generation: u64 = 0;
    let mut prescan_parked: Vec<(usize, Prod)> = Vec::new();
    let mut prescan_set: HashSet<(usize, Prod)> = HashSet::new();
    for (v, prod) in &prefill.silent {
        if states[v.index()]
            .get_mut()
            .expect("var lock")
            .prods
            .insert(prod.clone())
        {
            generation += 1;
        }
        // Re-park every decryption watching a silent Enc: its key
        // intersection may flip non-empty on the stitched grammar even
        // though it stayed empty on the isolated component.
        if let Prod::Enc { args, .. } = prod {
            for &idx in &watchers[v.index()] {
                if let Cond::Decrypt { vars: xs, .. } = &conds[idx] {
                    if args.len() == xs.len() && prescan_set.insert((idx, prod.clone())) {
                        prescan_parked.push((idx, prod.clone()));
                    }
                }
            }
        }
    }
    let mut deques: Vec<VecDeque<(VarId, Prod)>> = vec![VecDeque::new(); nworkers];
    let mut initial_tasks = 0usize;
    for (i, (var, prod)) in seeds.into_iter().enumerate() {
        if states[var.index()]
            .get_mut()
            .expect("var lock")
            .prods
            .insert(prod.clone())
        {
            generation += 1;
            deques[i % nworkers].push_back((var, prod));
            initial_tasks += 1;
        }
    }
    for (i, (var, prod)) in prefill.enqueue.into_iter().enumerate() {
        if states[var.index()]
            .get_mut()
            .expect("var lock")
            .prods
            .insert(prod.clone())
        {
            generation += 1;
        }
        // Enqueue unconditionally: the fact may already be installed,
        // but its watchers and out-edges have not run globally yet.
        deques[i % nworkers].push_back((var, prod));
        initial_tasks += 1;
    }

    let shared = Shared {
        states,
        conds: &conds,
        watchers: &watchers,
        kappa: &kappa,
        deques: deques.into_iter().map(Mutex::new).collect(),
        in_flight: AtomicUsize::new(initial_tasks),
        frontier_peak: AtomicUsize::new(initial_tasks),
        generation: AtomicU64::new(generation),
        fired: AtomicUsize::new(0),
        done: AtomicBool::new(false),
        barrier: Barrier::new(nworkers),
        round_acc: Mutex::new((0, 0)),
        round_memo: Mutex::new(Vec::new()),
        round_millis: Mutex::new(Vec::new()),
        rounds: AtomicUsize::new(0),
        round_start: Mutex::new(Instant::now()),
    };

    let mut workers: Vec<Worker> = (0..nworkers).map(Worker::new).collect();
    workers[0].parked = prescan_parked;
    workers[0].parked_set = prescan_set;
    std::thread::scope(|s| {
        for w in &mut workers {
            let shared = &shared;
            s.spawn(move || worker_loop(shared, w));
        }
    });

    // Assemble the dense solution and merge the per-worker counters.
    let Shared {
        states,
        frontier_peak,
        rounds,
        round_millis,
        round_memo,
        ..
    } = shared;
    let mut prods: Vec<HashSet<Prod>> = Vec::with_capacity(vars.len());
    let mut out_edges: Vec<usize> = Vec::with_capacity(vars.len());
    let mut used: Vec<bool> = vec![false; vars.len()];
    for (i, m) in states.into_iter().enumerate() {
        let st = m.into_inner().expect("var lock");
        if !st.edges.is_empty() {
            used[i] = true;
        }
        for t in &st.edges {
            used[t.index()] = true;
        }
        prods.push(st.prods);
        out_edges.push(st.edge_set.len());
    }
    // Prune the spurious κ variables: the κ universe was pre-interned
    // from every `Name` seed (workers must never intern), but the
    // sequential solver only interns κ(n) when an output/input clause
    // actually fires for n — and such a variable always has an incident
    // edge. Dropping pre-interned κ variables that stayed empty,
    // edgeless and unreferenced makes the assembled table (and hence
    // the rendered estimate) identical to the sequential solver's.
    for set in &prods {
        for p in set {
            match p {
                Prod::Name(_) | Prod::Zero => {}
                Prod::Suc(a) => used[a.index()] = true,
                Prod::Pair(a, b) => {
                    used[a.index()] = true;
                    used[b.index()] = true;
                }
                Prod::Enc { args, key, .. } => {
                    for a in args {
                        used[a.index()] = true;
                    }
                    used[key.index()] = true;
                }
            }
        }
    }
    let keep: Vec<bool> = vars
        .iter()
        .map(|(id, fv)| {
            !matches!(fv, FlowVar::Kappa(_)) || used[id.index()] || !prods[id.index()].is_empty()
        })
        .collect();
    if keep.iter().any(|&k| !k) {
        let mut new_vars = VarTable::new();
        let mut map: Vec<Option<VarId>> = Vec::with_capacity(keep.len());
        for (id, fv) in vars.iter() {
            map.push(keep[id.index()].then(|| new_vars.intern(fv)));
        }
        let m = |v: VarId| map[v.index()].expect("pruned variable still referenced");
        let mut new_prods: Vec<HashSet<Prod>> = Vec::with_capacity(new_vars.len());
        let mut new_out = Vec::with_capacity(new_vars.len());
        for (i, set) in prods.into_iter().enumerate() {
            if !keep[i] {
                continue;
            }
            new_prods.push(
                set.into_iter()
                    .map(|p| match p {
                        Prod::Name(_) | Prod::Zero => p,
                        Prod::Suc(a) => Prod::Suc(m(a)),
                        Prod::Pair(a, b) => Prod::Pair(m(a), m(b)),
                        Prod::Enc {
                            args,
                            confounder,
                            key,
                        } => Prod::Enc {
                            args: args.into_iter().map(m).collect(),
                            confounder,
                            key: m(key),
                        },
                    })
                    .collect(),
            );
            new_out.push(out_edges[i]);
        }
        vars = new_vars;
        prods = new_prods;
        out_edges = new_out;
    }
    let mut stats = SolverStats {
        flow_vars: vars.len(),
        rounds: rounds.load(Ordering::Acquire),
        round_millis: round_millis.into_inner().expect("round millis"),
        round_memo: round_memo.into_inner().expect("round memo"),
        ..SolverStats::default()
    };
    for (shard, w) in workers.into_iter().enumerate() {
        let mut shard_stats = w.stats;
        shard_stats.owned_vars = (0..vars.len()).filter(|i| i % nworkers == shard).count();
        shard_stats.productions = prods
            .iter()
            .enumerate()
            .filter(|(i, _)| i % nworkers == shard)
            .map(|(_, s)| s.len())
            .sum();
        shard_stats.edges = out_edges
            .iter()
            .enumerate()
            .filter(|(i, _)| i % nworkers == shard)
            .map(|(_, n)| n)
            .sum();
        stats.conditional_firings += shard_stats.conditional_firings;
        stats.intersection_queries += shard_stats.intersection_queries;
        stats.cache_hits += shard_stats.cache_hits;
        stats.cache_misses += shard_stats.cache_misses;
        stats.per_shard.push(shard_stats);
    }
    stats.edges = out_edges.iter().sum();
    stats.productions = prods.iter().map(HashSet::len).sum();
    if nuspi_obs::enabled() {
        nuspi_obs::counter("cfa.solve_parallel.calls", 1);
        nuspi_obs::counter("cfa.memo.hits", stats.cache_hits as u64);
        nuspi_obs::counter("cfa.memo.misses", stats.cache_misses as u64);
        nuspi_obs::counter("cfa.firings", stats.conditional_firings as u64);
        let sent: usize = stats.per_shard.iter().map(|s| s.deltas_sent).sum();
        let applied: usize = stats.per_shard.iter().map(|s| s.deltas_applied).sum();
        let steals: usize = stats.per_shard.iter().map(|s| s.steals).sum();
        nuspi_obs::counter("cfa.deltas.sent", sent as u64);
        nuspi_obs::counter("cfa.deltas.applied", applied as u64);
        nuspi_obs::counter("cfa.steal.count", steals as u64);
        nuspi_obs::counter(
            "cfa.frontier.peak",
            frontier_peak.load(Ordering::Acquire) as u64,
        );
        for ms in &stats.round_millis {
            nuspi_obs::record_us("cfa.round_us", (ms * 1e3) as u64);
        }
    }
    Solution::from_parts(vars, prods, stats)
}

/// One worker: drain-and-steal until global quiescence, retry parked
/// decryptions, let the round leader decide termination, repeat.
fn worker_loop(shared: &Shared<'_>, w: &mut Worker) {
    loop {
        // Drain: own deque LIFO, then steal FIFO; spin until the
        // in-flight counter proves global quiescence.
        loop {
            let task = pop_own(shared, w).or_else(|| steal(shared, w));
            match task {
                Some((var, prod)) => {
                    process_task(shared, w, var, &prod);
                    shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                }
                None => {
                    if shared.in_flight.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
        shared.barrier.wait();
        // Parked-decrypt retry against the stable grammar.
        for (idx, prod) in std::mem::take(&mut w.parked) {
            let Cond::Decrypt { key, vars } = &shared.conds[idx] else {
                unreachable!("only decryptions are parked");
            };
            let Prod::Enc { key: ek, .. } = &prod else {
                unreachable!("only Enc productions are parked");
            };
            if query(shared, w, *ek, *key) {
                w.parked_set.remove(&(idx, prod.clone()));
                fire_decrypt(shared, w, &prod, vars);
                shared.fired.fetch_add(1, Ordering::AcqRel);
            } else {
                w.parked.push((idx, prod));
            }
        }
        // Publish this round's memo-cache delta.
        {
            let (h, m) = (w.stats.cache_hits, w.stats.cache_misses);
            let mut acc = shared.round_acc.lock().expect("memo acc lock");
            acc.0 += h - w.memo_mark.0;
            acc.1 += m - w.memo_mark.1;
            w.memo_mark = (h, m);
        }
        if shared.barrier.wait().is_leader() {
            let memo = std::mem::take(&mut *shared.round_acc.lock().expect("memo acc lock"));
            shared
                .round_memo
                .lock()
                .expect("round memo lock")
                .push(memo);
            let mut start = shared.round_start.lock().expect("round clock lock");
            shared
                .round_millis
                .lock()
                .expect("round millis lock")
                .push(start.elapsed().as_secs_f64() * 1e3);
            *start = Instant::now();
            shared.rounds.fetch_add(1, Ordering::AcqRel);
            // Done iff the retries enqueued nothing and fired nothing; a
            // firing that added nothing new still buys one confirming
            // round, mirroring the sequential `progressed` flag.
            let quiescent = shared.in_flight.load(Ordering::Acquire) == 0;
            let fired = shared.fired.swap(0, Ordering::AcqRel);
            shared
                .done
                .store(quiescent && fired == 0, Ordering::Release);
        }
        shared.barrier.wait();
        if shared.done.load(Ordering::Acquire) {
            break;
        }
    }
}

fn pop_own(shared: &Shared<'_>, w: &Worker) -> Option<(VarId, Prod)> {
    shared.deques[w.id].lock().expect("deque lock").pop_back()
}

fn steal(shared: &Shared<'_>, w: &mut Worker) -> Option<(VarId, Prod)> {
    let n = shared.deques.len();
    for off in 1..n {
        let victim = (w.id + off) % n;
        let task = shared.deques[victim]
            .lock()
            .expect("deque lock")
            .pop_front();
        if let Some(task) = task {
            w.stats.steals += 1;
            return Some(task);
        }
    }
    None
}

/// Inserts `prod ∈ var`; a new insertion becomes a task on the calling
/// worker's deque (stealable by the others).
fn push_prod(shared: &Shared<'_>, w: &mut Worker, var: VarId, prod: Prod) {
    let inserted = {
        let mut st = shared.states[var.index()].lock().expect("var lock");
        st.prods.insert(prod.clone())
    };
    if inserted {
        shared.generation.fetch_add(1, Ordering::Release);
        let now = shared.in_flight.fetch_add(1, Ordering::AcqRel) + 1;
        shared.frontier_peak.fetch_max(now, Ordering::Relaxed);
        shared.deques[w.id]
            .lock()
            .expect("deque lock")
            .push_back((var, prod));
        w.stats.deltas_sent += 1;
    }
}

/// Inserts `from ⊆ into` and replays `from`'s current productions. The
/// snapshot is taken under `from`'s lock: a racing insertion into `from`
/// either lands before it (and is replayed here) or after it (and its
/// own task walks the edge list, which now contains `into`).
fn push_edge(shared: &Shared<'_>, w: &mut Worker, from: VarId, into: VarId) {
    if from == into {
        return;
    }
    let replay: Option<Vec<Prod>> = {
        let mut st = shared.states[from.index()].lock().expect("var lock");
        if st.edge_set.insert(into) {
            st.edges.push(into);
            Some(st.prods.iter().cloned().collect())
        } else {
            None
        }
    };
    if let Some(prods) = replay {
        for p in prods {
            push_prod(shared, w, into, p);
        }
    }
}

fn process_task(shared: &Shared<'_>, w: &mut Worker, var: VarId, prod: &Prod) {
    let targets: Vec<VarId> = shared.states[var.index()]
        .lock()
        .expect("var lock")
        .edges
        .clone();
    for t in targets {
        push_prod(shared, w, t, prod.clone());
    }
    for &idx in &shared.watchers[var.index()] {
        eval_cond(shared, w, idx, prod);
    }
    w.stats.deltas_applied += 1;
}

/// Evaluates one conditional constraint against a newly arrived
/// production, inserting the subset edges of the clauses that fire.
fn eval_cond(shared: &Shared<'_>, w: &mut Worker, idx: usize, prod: &Prod) {
    match &shared.conds[idx] {
        Cond::Output { msg } => {
            if let Prod::Name(n) = prod {
                let k = shared.kappa[n];
                w.stats.conditional_firings += 1;
                push_edge(shared, w, *msg, k);
            }
        }
        Cond::Input { var } => {
            if let Prod::Name(n) = prod {
                let k = shared.kappa[n];
                w.stats.conditional_firings += 1;
                push_edge(shared, w, k, *var);
            }
        }
        Cond::Split { fst, snd } => {
            if let Prod::Pair(a, b) = prod {
                w.stats.conditional_firings += 1;
                push_edge(shared, w, *a, *fst);
                push_edge(shared, w, *b, *snd);
            }
        }
        Cond::CaseSuc { pred } => {
            if let Prod::Suc(a) = prod {
                w.stats.conditional_firings += 1;
                push_edge(shared, w, *a, *pred);
            }
        }
        Cond::Decrypt { key, vars } => {
            if let Prod::Enc { args, key: ek, .. } = prod {
                if args.len() != vars.len() {
                    return;
                }
                if query(shared, w, *ek, *key) {
                    fire_decrypt(shared, w, prod, vars);
                } else if w.parked_set.insert((idx, prod.clone())) {
                    w.parked.push((idx, prod.clone()));
                }
            }
        }
    }
}

fn fire_decrypt(shared: &Shared<'_>, w: &mut Worker, prod: &Prod, vars: &[VarId]) {
    let Prod::Enc { args, .. } = prod else {
        unreachable!("fire_decrypt on non-Enc production");
    };
    w.stats.conditional_firings += 1;
    for (&a, &x) in args.iter().zip(vars) {
        push_edge(shared, w, a, x);
    }
}

/// Memoised `L(a) ∩ L(b) ≠ ∅`. The positive cache is valid forever;
/// a negative answer is tagged with the generation read *before* the
/// saturation ran, so any concurrent insertion invalidates it.
fn query(shared: &Shared<'_>, w: &mut Worker, a: VarId, b: VarId) -> bool {
    w.stats.intersection_queries += 1;
    let pair = norm(a, b);
    if w.pos_cache.contains(&pair) {
        w.stats.cache_hits += 1;
        return true;
    }
    let gen = shared.generation.load(Ordering::Acquire);
    if w.neg_cache.get(&pair) == Some(&gen) {
        w.stats.cache_hits += 1;
        return false;
    }
    w.stats.cache_misses += 1;
    let view = LockedView {
        states: &shared.states,
    };
    if intersect_fixpoint(&view, &mut w.pos_cache, a, b) {
        true
    } else {
        w.neg_cache.insert(pair, gen);
        false
    }
}

/// Analyses a batch of constraint systems concurrently: `threads` scoped
/// workers pull systems off a shared queue and solve each with the
/// sequential worklist solver. Results keep the input order.
pub fn solve_suite(systems: Vec<Constraints>, threads: usize) -> Vec<Solution> {
    let n = systems.len();
    let queue: std::sync::Mutex<Vec<(usize, Constraints)>> =
        std::sync::Mutex::new(systems.into_iter().enumerate().rev().collect());
    let results: std::sync::Mutex<Vec<Option<Solution>>> = std::sync::Mutex::new(vec![None; n]);
    std::thread::scope(|s| {
        for _ in 0..threads.max(1) {
            s.spawn(|| loop {
                let item = queue.lock().expect("queue lock").pop();
                let Some((i, cs)) = item else { break };
                let sol = solve(cs);
                results.lock().expect("results lock")[i] = Some(sol);
            });
        }
    });
    results
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|o| o.expect("every system solved"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve_reference;
    use nuspi_syntax::{parse_process, Symbol};

    fn all_solvers(src: &str, threads: usize) -> (Solution, Solution, Solution) {
        let p = parse_process(src).unwrap();
        (
            solve(Constraints::generate(&p)),
            solve_parallel(Constraints::generate(&p), threads),
            solve_reference(Constraints::generate(&p)),
        )
    }

    fn assert_all_agree(src: &str) {
        for threads in [1, 2, 4] {
            let (seq, par, refr) = all_solvers(src, threads);
            seq.estimate_eq(&par)
                .unwrap_or_else(|e| panic!("{threads} threads vs sequential: {e}"));
            par.estimate_eq(&refr)
                .unwrap_or_else(|e| panic!("{threads} threads vs reference: {e}"));
        }
    }

    #[test]
    fn parallel_matches_on_relay() {
        assert_all_agree("a<m>.0 | a(x).b<x>.0 | b(y).0");
    }

    #[test]
    fn parallel_matches_on_decryption() {
        assert_all_agree("c<{m, new r}:k>.0 | c(z). case z of {x}:k in d<x>.0");
    }

    #[test]
    fn parallel_matches_on_late_key() {
        assert_all_agree(
            "c<{m, new r}:k2>.0 | kchan<k2>.0 | kchan(kk). c(z). case z of {x}:kk in d<x>.0",
        );
    }

    #[test]
    fn parallel_matches_on_recursion() {
        assert_all_agree("c<0>.0 | !c(x).c<suc(x)>.0");
    }

    #[test]
    fn parallel_matches_on_structured_keys() {
        assert_all_agree("c<{m, new r}:(a, b)>.0 | c(z). case z of {x}:(a, b) in d<x>.0");
        assert_all_agree("c<{m, new r}:(a, b)>.0 | c(z). case z of {x}:(a, wrong) in d<x>.0");
    }

    #[test]
    fn parallel_matches_on_wmf() {
        assert_all_agree(
            "
            (new kAS) (new kBS) (
              ((new kAB) cAS<{kAB, new r1}:kAS>. cAB<{m, new r2}:kAB>.0
               | cBS(t). case t of {y}:kBS in cAB(z). case z of {q}:y in 0)
              | cAS(x). case x of {s}:kAS in cBS<{s, new r3}:kBS>.0
            )",
        );
    }

    #[test]
    fn shard_stats_are_consistent() {
        let p = parse_process("c<{m, new r}:k>.0 | c(z). case z of {x}:k in d<x>.0").unwrap();
        let sol = solve_parallel(Constraints::generate(&p), 4);
        let st = sol.stats();
        assert_eq!(st.per_shard.len(), 4);
        assert_eq!(
            st.cache_hits + st.cache_misses,
            st.intersection_queries,
            "every query is either a hit or a miss"
        );
        assert_eq!(
            st.per_shard.iter().map(|s| s.owned_vars).sum::<usize>(),
            st.flow_vars
        );
        assert_eq!(
            st.per_shard.iter().map(|s| s.productions).sum::<usize>(),
            st.productions
        );
        assert_eq!(st.round_millis.len(), st.rounds);
        assert_eq!(st.round_memo.len(), st.rounds);
        assert!(st.per_shard.iter().any(|s| s.deltas_sent > 0));
    }

    /// The memo caches survive rounds (the BSP solver's were
    /// round-scoped): a decryption that stays locked forever is
    /// re-queried every round, and once the grammar stops growing those
    /// re-queries must be answered by the persistent negative cache —
    /// the final round is all-hit.
    #[test]
    fn memo_cache_survives_rounds() {
        // A staged unlock chain: k1 crawls through a relay while the
        // {k2}:k1 lockbox parks, so k2 only reaches the main receiver a
        // round later; the {m}:k2 ciphertext then fires one round after
        // the {m}:kez one did, and its bindings are all duplicates — the
        // final drain adds nothing, so the forever-locked `kdead`
        // decryption's last retries must be pure negative-cache hits.
        let src = "k1a<k1>.0 \
                   | k1a(t1). k1b<t1>.0 \
                   | k1b(t2). k1c<t2>.0 \
                   | k1c(t3). kc2(z1). case z1 of {x1}:t3 in kezchan<x1>.0 \
                   | kezchan<kez>.0 \
                   | kezchan(kk2). c(w). case w of {y}:kk2 in e<y>.0 \
                   | deadchan(kdead). c(u). case u of {v}:kdead in f<v>.0 \
                   | kc2<{k2, new r1}:k1>.0 \
                   | c<{m, new rc}:kez>.0 \
                   | c<{m, new rh}:k2>.0";
        let p = parse_process(src).unwrap();
        for st in [
            solve(Constraints::generate(&p)).stats().clone(),
            solve_parallel(Constraints::generate(&p), 1).stats().clone(),
        ] {
            assert_eq!(st.round_memo.len(), st.rounds);
            let hits: usize = st.round_memo.iter().map(|(h, _)| h).sum();
            let misses: usize = st.round_memo.iter().map(|(_, m)| m).sum();
            assert_eq!(hits, st.cache_hits);
            assert_eq!(misses, st.cache_misses);
            assert!(st.rounds >= 3, "late key needs multiple rounds: {st:?}");
            let (last_hits, last_misses) = st.round_memo[st.rounds - 1];
            assert_eq!(
                last_misses, 0,
                "a settled grammar must answer retries from cache: {:?}",
                st.round_memo
            );
            assert!(
                last_hits >= 1,
                "the locked decryption still re-asks each round: {:?}",
                st.round_memo
            );
        }
    }

    #[test]
    fn workers_report_steals_on_wide_workloads() {
        // Not asserted (stealing is timing-dependent), but the counters
        // must at least be wired: the field exists per shard and the sum
        // is consistent with a successful solve.
        let p = parse_process("c<0>.0 | !c(x).c<suc(x)>.0 | c<m>.0 | c(y).d<y>.0").unwrap();
        let sol = solve_parallel(Constraints::generate(&p), 4);
        let total: usize = sol.stats().per_shard.iter().map(|s| s.steals).sum();
        assert!(total < usize::MAX);
    }

    #[test]
    fn suite_batch_matches_individual_solves() {
        let sources = [
            "a<m>.0 | a(x).b<x>.0",
            "c<{m, new r}:k>.0 | c(z). case z of {x}:k in d<x>.0",
            "c<0>.0 | !c(x).c<suc(x)>.0",
        ];
        // Parse once: labels are freshly minted per parse, so solo and
        // batch must analyse the *same* labelled processes.
        let procs: Vec<_> = sources.iter().map(|s| parse_process(s).unwrap()).collect();
        let batch: Vec<Constraints> = procs.iter().map(Constraints::generate).collect();
        let sols = solve_suite(batch, 3);
        assert_eq!(sols.len(), sources.len());
        for (p, sol) in procs.iter().zip(&sols) {
            let solo = solve(Constraints::generate(p));
            solo.estimate_eq(sol).unwrap();
        }
        assert!(sols[1]
            .kappa(Symbol::intern("d"))
            .contains(&Prod::Name(Symbol::intern("m"))));
    }

    #[test]
    fn single_thread_shard_owns_everything() {
        let p = parse_process("a<m>.0 | a(x).b<x>.0").unwrap();
        let sol = solve_parallel(Constraints::generate(&p), 1);
        let st = sol.stats();
        assert_eq!(st.per_shard.len(), 1);
        assert_eq!(st.per_shard[0].owned_vars, st.flow_vars);
    }
}
