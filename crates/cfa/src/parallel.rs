//! A parallel, sharded least-solution solver.
//!
//! [`solve_parallel`] partitions the flow variables across `threads`
//! shards (`owner(v) = v mod nshards`) and runs bulk-synchronous rounds:
//!
//! * **Phase A** (parallel, read-only): each shard walks its freshly
//!   dirtied `(variable, production)` pairs against the frozen grammar —
//!   propagating along its outgoing subset edges and evaluating the
//!   conditional constraints of Table 2 — and emits the resulting
//!   cross-shard deltas (`prod ∈ v` facts and new subset edges) into
//!   per-round mpsc channels. Parked decryptions are retried here each
//!   round against the current snapshot.
//! * **Routing** (barrier): the main thread drains the channel and sorts
//!   each delta to the shard owning its target variable.
//! * **Phase B** (parallel, write): each shard applies the deltas routed
//!   to it — only to variables it owns, so no locks are needed — and
//!   queues replay deltas for edges whose source already has productions.
//!
//! Correctness rests on monotonicity: every rule of Table 2 only *adds*
//! productions and edges, so any firing order reaches the same least
//! fixpoint as the sequential worklist (the differential suite checks
//! this on hundreds of random processes against both the sequential and
//! the naive reference solver). The one wrinkle is that `κ(n)` variables
//! must exist before sharding — `Name` productions only originate from
//! seed constraints, so all possible `κ` variables are interned up front
//! and the variable universe is fixed for the whole run.
//!
//! Intersection-nonemptiness queries (`L(key) ∩ L(ζ(l′)) ≠ ∅`) are
//! memoised per shard: positive answers are valid forever (languages only
//! grow), negative answers are tagged with the round that computed them
//! and expire as soon as the grammar can have changed.

use crate::constraints::{Constraint, Constraints};
use crate::domain::{FlowVar, Prod, VarId};
use crate::solver::{
    intersect_fixpoint, norm, solve, Cond, ProdView, ShardStats, Solution, SolverStats,
};
use std::collections::{HashMap, HashSet};
use std::sync::mpsc;

/// A unit of cross-shard work, routed to the shard owning its target.
#[derive(Clone, Debug)]
enum Delta {
    /// `prod ∈ var` — routed to `owner(var)`.
    Prod(VarId, Prod),
    /// A subset edge `from ⊆ into` — routed to `owner(from)`, which
    /// stores the edge and replays the existing productions of `from`.
    Edge(VarId, VarId),
}

fn owner(v: VarId, nshards: usize) -> usize {
    v.index() % nshards
}

/// The grammar fragment a shard owns: production sets and outgoing edges
/// of its variables. Frozen during phase A, exclusively written by its
/// own worker during phase B.
#[derive(Default)]
struct ShardCore {
    prods: HashMap<VarId, HashSet<Prod>>,
    edges: HashMap<VarId, Vec<VarId>>,
    edge_set: HashSet<(VarId, VarId)>,
}

/// Per-shard mutable working state, alive across rounds.
#[derive(Default)]
struct ShardScratch {
    /// Pairs inserted by the last phase B, to process next phase A.
    dirty: Vec<(VarId, Prod)>,
    /// Parked decryptions `(cond index, Enc production)` awaiting a key.
    parked: Vec<(usize, Prod)>,
    parked_set: HashSet<(usize, Prod)>,
    /// Positive intersection answers — monotone, never expire.
    cache: HashSet<(VarId, VarId)>,
    /// Negative answers, tagged with the round that computed them.
    neg_cache: HashMap<(VarId, VarId), usize>,
    stats: ShardStats,
}

/// Read-only view over all shards, for the intersection saturation.
struct ShardedView<'a> {
    shards: &'a [ShardCore],
}

impl ProdView for ShardedView<'_> {
    fn prods_at(&self, v: VarId) -> Option<&HashSet<Prod>> {
        self.shards[owner(v, self.shards.len())].prods.get(&v)
    }
}

/// Immutable per-run context shared by all workers.
struct Globals {
    conds: Vec<Cond>,
    watchers: Vec<Vec<usize>>,
    /// Pre-interned `κ(n)` ids — the variable universe is fixed before
    /// sharding, so this map is complete and read-only.
    kappa: HashMap<nuspi_syntax::Symbol, VarId>,
    nshards: usize,
}

/// Computes the least solution on `threads` shards run by scoped worker
/// threads. `threads = 1` degenerates to a single shard (and is itself a
/// useful oracle: same code path, no concurrency). The result is
/// identical — as an estimate `(ρ, κ, ζ)` — to [`solve`] and to
/// [`solve_reference`](crate::solve_reference) on every input; the
/// differential suite enforces this.
pub fn solve_parallel(constraints: Constraints, threads: usize) -> Solution {
    let _sp = nuspi_obs::span!("cfa.solve_parallel", threads);
    let nshards = threads.max(1);
    let Constraints { mut vars, list } = constraints;

    // Fix the variable universe: κ(n) can only arise for names with a
    // seed production, so intern them all before sharding.
    for c in &list {
        if let Constraint::Prod {
            prod: Prod::Name(n),
            ..
        } = c
        {
            vars.intern(FlowVar::Kappa(*n));
        }
    }
    let kappa: HashMap<nuspi_syntax::Symbol, VarId> = vars
        .iter()
        .filter_map(|(id, fv)| match fv {
            FlowVar::Kappa(n) => Some((n, id)),
            _ => None,
        })
        .collect();

    // Register conditionals and distribute seed facts and edges.
    let mut globals = Globals {
        conds: Vec::new(),
        watchers: vec![Vec::new(); vars.len()],
        kappa,
        nshards,
    };
    let mut cores: Vec<ShardCore> = (0..nshards).map(|_| ShardCore::default()).collect();
    let mut scratch: Vec<ShardScratch> = (0..nshards).map(|_| ShardScratch::default()).collect();
    let watch = |globals: &mut Globals, var: VarId, cond: Cond| {
        let idx = globals.conds.len();
        globals.conds.push(cond);
        globals.watchers[var.index()].push(idx);
    };
    let mut seeds: Vec<(VarId, Prod)> = Vec::new();
    for c in list {
        match c {
            Constraint::Prod { prod, into } => seeds.push((into, prod)),
            Constraint::Sub { from, into } => {
                if from != into {
                    let core = &mut cores[owner(from, nshards)];
                    if core.edge_set.insert((from, into)) {
                        core.edges.entry(from).or_default().push(into);
                    }
                }
            }
            Constraint::Output { chan, msg } => {
                watch(&mut globals, chan, Cond::Output { msg });
            }
            Constraint::Input { chan, var } => {
                watch(&mut globals, chan, Cond::Input { var });
            }
            Constraint::Split {
                scrutinee,
                fst,
                snd,
            } => watch(&mut globals, scrutinee, Cond::Split { fst, snd }),
            Constraint::CaseSuc { scrutinee, pred } => {
                watch(&mut globals, scrutinee, Cond::CaseSuc { pred });
            }
            Constraint::Decrypt {
                scrutinee,
                key,
                vars,
            } => watch(&mut globals, scrutinee, Cond::Decrypt { key, vars }),
        }
    }
    for (into, prod) in seeds {
        let shard = owner(into, nshards);
        if cores[shard]
            .prods
            .entry(into)
            .or_default()
            .insert(prod.clone())
        {
            scratch[shard].dirty.push((into, prod));
        }
    }

    // Bulk-synchronous rounds until a full round is barren.
    let mut stats = SolverStats {
        flow_vars: vars.len(),
        ..SolverStats::default()
    };
    let mut pending: Vec<Vec<Delta>> = vec![Vec::new(); nshards];
    loop {
        let _round_sp = nuspi_obs::span!("cfa.solve.round", round = stats.rounds);
        let round_start = std::time::Instant::now();
        stats.rounds += 1;
        let round = stats.rounds;

        // Phase A: read-only delta generation against the frozen grammar.
        let phase_a_sp = nuspi_obs::span!("cfa.phase_a");
        let (tx, rx) = mpsc::channel::<(usize, Vec<Delta>)>();
        std::thread::scope(|s| {
            for (shard, sc) in scratch.iter_mut().enumerate() {
                let tx = tx.clone();
                let cores = &cores;
                let globals = &globals;
                s.spawn(move || phase_a(shard, sc, cores, globals, round, &tx));
            }
        });
        drop(tx);
        for (dest, batch) in rx {
            pending[dest].extend(batch);
        }
        drop(phase_a_sp);

        // Phase B: each shard applies the deltas routed to it.
        let phase_b_sp = nuspi_obs::span!("cfa.phase_b");
        let inboxes: Vec<Vec<Delta>> = pending.iter_mut().map(std::mem::take).collect();
        let (tx, rx) = mpsc::channel::<(usize, Vec<Delta>)>();
        std::thread::scope(|s| {
            for ((core, sc), inbox) in cores.iter_mut().zip(scratch.iter_mut()).zip(inboxes) {
                let tx = tx.clone();
                let nshards = globals.nshards;
                s.spawn(move || phase_b(core, sc, inbox, nshards, &tx));
            }
        });
        drop(tx);
        for (dest, batch) in rx {
            pending[dest].extend(batch);
        }
        drop(phase_b_sp);

        stats
            .round_millis
            .push(round_start.elapsed().as_secs_f64() * 1e3);
        let quiescent =
            pending.iter().all(Vec::is_empty) && scratch.iter().all(|sc| sc.dirty.is_empty());
        if quiescent {
            break;
        }
    }

    // Assemble the dense solution and merge the per-shard counters.
    let mut prods: Vec<HashSet<Prod>> = vec![HashSet::new(); vars.len()];
    for core in &mut cores {
        for (v, set) in core.prods.drain() {
            prods[v.index()] = set;
        }
    }
    for (shard, (core, sc)) in cores.iter().zip(&scratch).enumerate() {
        let mut shard_stats = sc.stats;
        shard_stats.owned_vars = (0..vars.len()).filter(|i| i % nshards == shard).count();
        shard_stats.productions = prods
            .iter()
            .enumerate()
            .filter(|(i, _)| i % nshards == shard)
            .map(|(_, s)| s.len())
            .sum();
        shard_stats.edges = core.edge_set.len();
        stats.conditional_firings += shard_stats.conditional_firings;
        stats.intersection_queries += shard_stats.intersection_queries;
        stats.cache_hits += shard_stats.cache_hits;
        stats.cache_misses += shard_stats.cache_misses;
        stats.edges += shard_stats.edges;
        stats.per_shard.push(shard_stats);
    }
    stats.productions = prods.iter().map(HashSet::len).sum();
    if nuspi_obs::enabled() {
        nuspi_obs::counter("cfa.solve_parallel.calls", 1);
        nuspi_obs::counter("cfa.memo.hits", stats.cache_hits as u64);
        nuspi_obs::counter("cfa.memo.misses", stats.cache_misses as u64);
        nuspi_obs::counter("cfa.firings", stats.conditional_firings as u64);
        let sent: usize = stats.per_shard.iter().map(|s| s.deltas_sent).sum();
        let applied: usize = stats.per_shard.iter().map(|s| s.deltas_applied).sum();
        nuspi_obs::counter("cfa.deltas.sent", sent as u64);
        nuspi_obs::counter("cfa.deltas.applied", applied as u64);
        for ms in &stats.round_millis {
            nuspi_obs::record_us("cfa.round_us", (ms * 1e3) as u64);
        }
    }
    Solution::from_parts(vars, prods, stats)
}

/// Phase A of one shard: propagate dirtied pairs along this shard's
/// edges, evaluate watched conditionals, retry parked decryptions.
fn phase_a(
    shard: usize,
    sc: &mut ShardScratch,
    cores: &[ShardCore],
    globals: &Globals,
    round: usize,
    tx: &mpsc::Sender<(usize, Vec<Delta>)>,
) {
    let mut outbox: Vec<Vec<Delta>> = vec![Vec::new(); globals.nshards];
    let view = ShardedView { shards: cores };
    for (var, prod) in std::mem::take(&mut sc.dirty) {
        if let Some(targets) = cores[shard].edges.get(&var) {
            for &t in targets {
                outbox[owner(t, globals.nshards)].push(Delta::Prod(t, prod.clone()));
            }
        }
        for &idx in &globals.watchers[var.index()] {
            eval_cond(idx, &prod, sc, &view, globals, round, &mut outbox);
        }
    }
    // Retry parked decryptions against this round's snapshot.
    for (idx, prod) in std::mem::take(&mut sc.parked) {
        let Cond::Decrypt { key, vars } = &globals.conds[idx] else {
            unreachable!("only decryptions are parked");
        };
        let Prod::Enc { args, key: ek, .. } = &prod else {
            unreachable!("only Enc productions are parked");
        };
        if sc.query(*ek, *key, round, &view) {
            sc.parked_set.remove(&(idx, prod.clone()));
            sc.stats.conditional_firings += 1;
            for (&a, &x) in args.iter().zip(vars) {
                outbox[owner(a, globals.nshards)].push(Delta::Edge(a, x));
            }
        } else {
            sc.parked.push((idx, prod));
        }
    }
    for (dest, batch) in outbox.into_iter().enumerate() {
        if !batch.is_empty() {
            sc.stats.deltas_sent += batch.len();
            tx.send((dest, batch)).expect("router outlives workers");
        }
    }
}

/// Evaluates one conditional constraint against a newly arrived
/// production, emitting subset-edge deltas for the clauses that fire.
fn eval_cond(
    idx: usize,
    prod: &Prod,
    sc: &mut ShardScratch,
    view: &ShardedView<'_>,
    globals: &Globals,
    round: usize,
    outbox: &mut [Vec<Delta>],
) {
    match &globals.conds[idx] {
        Cond::Output { msg } => {
            if let Prod::Name(n) = prod {
                let k = globals.kappa[n];
                sc.stats.conditional_firings += 1;
                outbox[owner(*msg, globals.nshards)].push(Delta::Edge(*msg, k));
            }
        }
        Cond::Input { var } => {
            if let Prod::Name(n) = prod {
                let k = globals.kappa[n];
                sc.stats.conditional_firings += 1;
                outbox[owner(k, globals.nshards)].push(Delta::Edge(k, *var));
            }
        }
        Cond::Split { fst, snd } => {
            if let Prod::Pair(a, b) = prod {
                sc.stats.conditional_firings += 1;
                outbox[owner(*a, globals.nshards)].push(Delta::Edge(*a, *fst));
                outbox[owner(*b, globals.nshards)].push(Delta::Edge(*b, *snd));
            }
        }
        Cond::CaseSuc { pred } => {
            if let Prod::Suc(a) = prod {
                sc.stats.conditional_firings += 1;
                outbox[owner(*a, globals.nshards)].push(Delta::Edge(*a, *pred));
            }
        }
        Cond::Decrypt { key, vars } => {
            if let Prod::Enc { args, key: ek, .. } = prod {
                if args.len() != vars.len() {
                    return;
                }
                if sc.query(*ek, *key, round, view) {
                    sc.stats.conditional_firings += 1;
                    for (&a, &x) in args.iter().zip(vars) {
                        outbox[owner(a, globals.nshards)].push(Delta::Edge(a, x));
                    }
                } else if sc.parked_set.insert((idx, prod.clone())) {
                    sc.parked.push((idx, prod.clone()));
                }
            }
        }
    }
}

impl ShardScratch {
    /// Memoised `L(a) ∩ L(b) ≠ ∅` against the frozen round snapshot.
    fn query(&mut self, a: VarId, b: VarId, round: usize, view: &ShardedView<'_>) -> bool {
        self.stats.intersection_queries += 1;
        let pair = norm(a, b);
        if self.cache.contains(&pair) {
            self.stats.cache_hits += 1;
            return true;
        }
        if self.neg_cache.get(&pair) == Some(&round) {
            self.stats.cache_hits += 1;
            return false;
        }
        self.stats.cache_misses += 1;
        if intersect_fixpoint(view, &mut self.cache, a, b) {
            true
        } else {
            self.neg_cache.insert(pair, round);
            false
        }
    }
}

/// Phase B of one shard: apply the routed deltas to owned variables,
/// record new edges and replay their source productions.
fn phase_b(
    core: &mut ShardCore,
    sc: &mut ShardScratch,
    inbox: Vec<Delta>,
    nshards: usize,
    tx: &mpsc::Sender<(usize, Vec<Delta>)>,
) {
    let mut outbox: Vec<Vec<Delta>> = vec![Vec::new(); nshards];
    for delta in inbox {
        sc.stats.deltas_applied += 1;
        match delta {
            Delta::Prod(v, p) => {
                if core.prods.entry(v).or_default().insert(p.clone()) {
                    sc.dirty.push((v, p));
                }
            }
            Delta::Edge(from, into) => {
                if from == into || !core.edge_set.insert((from, into)) {
                    continue;
                }
                core.edges.entry(from).or_default().push(into);
                if let Some(existing) = core.prods.get(&from) {
                    let dest = owner(into, nshards);
                    for p in existing {
                        outbox[dest].push(Delta::Prod(into, p.clone()));
                    }
                }
            }
        }
    }
    for (dest, batch) in outbox.into_iter().enumerate() {
        if !batch.is_empty() {
            sc.stats.deltas_sent += batch.len();
            tx.send((dest, batch)).expect("router outlives workers");
        }
    }
}

/// Analyses a batch of constraint systems concurrently: `threads` scoped
/// workers pull systems off a shared queue and solve each with the
/// sequential worklist solver. Results keep the input order.
pub fn solve_suite(systems: Vec<Constraints>, threads: usize) -> Vec<Solution> {
    let n = systems.len();
    let queue: std::sync::Mutex<Vec<(usize, Constraints)>> =
        std::sync::Mutex::new(systems.into_iter().enumerate().rev().collect());
    let results: std::sync::Mutex<Vec<Option<Solution>>> = std::sync::Mutex::new(vec![None; n]);
    std::thread::scope(|s| {
        for _ in 0..threads.max(1) {
            s.spawn(|| loop {
                let item = queue.lock().expect("queue lock").pop();
                let Some((i, cs)) = item else { break };
                let sol = solve(cs);
                results.lock().expect("results lock")[i] = Some(sol);
            });
        }
    });
    results
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|o| o.expect("every system solved"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve_reference;
    use nuspi_syntax::{parse_process, Symbol};

    fn all_solvers(src: &str, threads: usize) -> (Solution, Solution, Solution) {
        let p = parse_process(src).unwrap();
        (
            solve(Constraints::generate(&p)),
            solve_parallel(Constraints::generate(&p), threads),
            solve_reference(Constraints::generate(&p)),
        )
    }

    fn assert_all_agree(src: &str) {
        for threads in [1, 2, 4] {
            let (seq, par, refr) = all_solvers(src, threads);
            seq.estimate_eq(&par)
                .unwrap_or_else(|e| panic!("{threads} threads vs sequential: {e}"));
            par.estimate_eq(&refr)
                .unwrap_or_else(|e| panic!("{threads} threads vs reference: {e}"));
        }
    }

    #[test]
    fn parallel_matches_on_relay() {
        assert_all_agree("a<m>.0 | a(x).b<x>.0 | b(y).0");
    }

    #[test]
    fn parallel_matches_on_decryption() {
        assert_all_agree("c<{m, new r}:k>.0 | c(z). case z of {x}:k in d<x>.0");
    }

    #[test]
    fn parallel_matches_on_late_key() {
        assert_all_agree(
            "c<{m, new r}:k2>.0 | kchan<k2>.0 | kchan(kk). c(z). case z of {x}:kk in d<x>.0",
        );
    }

    #[test]
    fn parallel_matches_on_recursion() {
        assert_all_agree("c<0>.0 | !c(x).c<suc(x)>.0");
    }

    #[test]
    fn parallel_matches_on_structured_keys() {
        assert_all_agree("c<{m, new r}:(a, b)>.0 | c(z). case z of {x}:(a, b) in d<x>.0");
        assert_all_agree("c<{m, new r}:(a, b)>.0 | c(z). case z of {x}:(a, wrong) in d<x>.0");
    }

    #[test]
    fn parallel_matches_on_wmf() {
        assert_all_agree(
            "
            (new kAS) (new kBS) (
              ((new kAB) cAS<{kAB, new r1}:kAS>. cAB<{m, new r2}:kAB>.0
               | cBS(t). case t of {y}:kBS in cAB(z). case z of {q}:y in 0)
              | cAS(x). case x of {s}:kAS in cBS<{s, new r3}:kBS>.0
            )",
        );
    }

    #[test]
    fn shard_stats_are_consistent() {
        let p = parse_process("c<{m, new r}:k>.0 | c(z). case z of {x}:k in d<x>.0").unwrap();
        let sol = solve_parallel(Constraints::generate(&p), 4);
        let st = sol.stats();
        assert_eq!(st.per_shard.len(), 4);
        assert_eq!(
            st.cache_hits + st.cache_misses,
            st.intersection_queries,
            "every query is either a hit or a miss"
        );
        assert_eq!(
            st.per_shard.iter().map(|s| s.owned_vars).sum::<usize>(),
            st.flow_vars
        );
        assert_eq!(
            st.per_shard.iter().map(|s| s.productions).sum::<usize>(),
            st.productions
        );
        assert_eq!(st.round_millis.len(), st.rounds);
        assert!(st.per_shard.iter().any(|s| s.deltas_sent > 0));
    }

    #[test]
    fn suite_batch_matches_individual_solves() {
        let sources = [
            "a<m>.0 | a(x).b<x>.0",
            "c<{m, new r}:k>.0 | c(z). case z of {x}:k in d<x>.0",
            "c<0>.0 | !c(x).c<suc(x)>.0",
        ];
        // Parse once: labels are freshly minted per parse, so solo and
        // batch must analyse the *same* labelled processes.
        let procs: Vec<_> = sources.iter().map(|s| parse_process(s).unwrap()).collect();
        let batch: Vec<Constraints> = procs.iter().map(Constraints::generate).collect();
        let sols = solve_suite(batch, 3);
        assert_eq!(sols.len(), sources.len());
        for (p, sol) in procs.iter().zip(&sols) {
            let solo = solve(Constraints::generate(p));
            solo.estimate_eq(sol).unwrap();
        }
        assert!(sols[1]
            .kappa(Symbol::intern("d"))
            .contains(&Prod::Name(Symbol::intern("m"))));
    }

    #[test]
    fn single_thread_shard_owns_everything() {
        let p = parse_process("a<m>.0 | a(x).b<x>.0").unwrap();
        let sol = solve_parallel(Constraints::generate(&p), 1);
        let st = sol.stats();
        assert_eq!(st.per_shard.len(), 1);
        assert_eq!(st.per_shard[0].owned_vars, st.flow_vars);
    }
}
