//! # nuspi-cfa — Control Flow Analysis for the νSPI-calculus
//!
//! The flow logic of §3 of the paper: an estimate `(ρ, κ, ζ)` is
//! acceptable for a process `P` when it satisfies the clauses of Table 2;
//! acceptable estimates form a Moore family, and the least one is
//! computable in polynomial time by reading the clauses as a regular tree
//! grammar (after Nielson–Seidl).
//!
//! * [`analyze`] — one call: generate constraints and solve to the least
//!   [`Solution`].
//! * [`Constraints::generate`] / [`solve`] — the two phases separately.
//! * [`solve_parallel`] / [`solve_suite`] — the sharded
//!   bulk-synchronous solver and the concurrent batch API.
//! * [`solve_reference`] — a deliberately naive round-robin solver, the
//!   oracle the optimised solvers are differentially tested against.
//! * [`accept::verify`] — independent acceptability validation of a
//!   solution (Table 2 re-checked symbolically).
//! * [`FiniteEstimate`] — the reference, set-theoretic reading of Table 2
//!   for finite estimates, with the lattice operations of Theorem 2.
//!
//! # Examples
//!
//! ```
//! use nuspi_cfa::{analyze, FlowVar};
//! use nuspi_syntax::{parse_process, Symbol, Value};
//!
//! let p = parse_process("c<{m, new r}:k>.0 | c(z). case z of {x}:k in d<x>.0")?;
//! let sol = analyze(&p);
//! // The analysis predicts m flows to channel d.
//! assert!(sol.contains(FlowVar::Kappa(Symbol::intern("d")), &Value::name("m")));
//! # Ok::<(), nuspi_syntax::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accept;
pub mod attacker;
mod constraints;
mod display;
mod domain;
mod finite;
mod incremental;
mod lang;
mod parallel;
mod reference;
mod solver;

pub use attacker::{
    analyze_with_attacker, analyze_with_attacker_parallel, analyze_with_attacker_traced,
    AttackedSolution,
};
pub use constraints::{Constraint, Constraints};
pub use domain::{FlowVar, Prod, VarId, VarTable};
pub use finite::{FiniteEstimate, FiniteViolation, ValSet};
pub use incremental::{IncrementalSolver, IncrementalStats};
pub use parallel::{solve_parallel, solve_suite};
pub use reference::solve_reference;
pub use solver::{
    solve, solve_traced, EdgeKind, FlowStep, FlowStepKind, Provenance, ShardStats, Solution,
    SolverStats,
};

use nuspi_syntax::Process;

/// Computes the least acceptable estimate for a process: constraint
/// generation (Table 2) followed by the worklist solver.
pub fn analyze(p: &Process) -> Solution {
    solve(Constraints::generate(p))
}

/// Like [`analyze`], but solving on `threads` shards with
/// [`solve_parallel`]. The resulting estimate is identical.
pub fn analyze_parallel(p: &Process, threads: usize) -> Solution {
    solve_parallel(Constraints::generate(p), threads)
}
