//! Human-readable rendering of solutions.
//!
//! A [`Solution`] is a grammar; reading raw productions requires chasing
//! nonterminal ids. [`Solution::render_production`] prints one production
//! with its children *inlined* up to a depth budget (cycles and deep
//! nests render as `…`), and [`Solution::render_estimate`] dumps the
//! whole `(ρ, κ, ζ)` triple the way the paper's Example 1 presents it.

use crate::domain::{FlowVar, Prod, VarId};
use crate::solver::Solution;
use nuspi_syntax::{Process, Var};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// Collects binding occurrences of variables in pre-order — the same
/// traversal order as [`Process::labels`], so ordinals derived from it
/// are a function of the process's shape, not of when it was parsed.
fn bound_vars_into(p: &Process, out: &mut Vec<Var>) {
    match p {
        Process::Nil => {}
        Process::Output { then, .. }
        | Process::Match { then, .. }
        | Process::Restrict { body: then, .. }
        | Process::Hide { body: then, .. } => bound_vars_into(then, out),
        Process::Input { var, then, .. } => {
            out.push(*var);
            bound_vars_into(then, out);
        }
        Process::Par(a, b) => {
            bound_vars_into(a, out);
            bound_vars_into(b, out);
        }
        Process::Replicate(q) => bound_vars_into(q, out),
        Process::Let { fst, snd, then, .. } => {
            out.push(*fst);
            out.push(*snd);
            bound_vars_into(then, out);
        }
        Process::CaseNat {
            zero, pred, succ, ..
        } => {
            bound_vars_into(zero, out);
            out.push(*pred);
            bound_vars_into(succ, out);
        }
        Process::CaseDec { vars, then, .. } => {
            out.extend(vars.iter().copied());
            bound_vars_into(then, out);
        }
    }
}

impl Solution {
    /// Renders one production, inlining child nonterminals up to `depth`.
    pub fn render_production(&self, prod: &Prod, depth: usize) -> String {
        let mut out = String::new();
        self.render_prod_into(prod, depth, &mut HashSet::new(), &mut out);
        out
    }

    fn render_var_into(
        &self,
        id: VarId,
        depth: usize,
        seen: &mut HashSet<VarId>,
        out: &mut String,
    ) {
        let prods = self.prods_of_id(id);
        if depth == 0 || !seen.insert(id) {
            out.push('…');
            return;
        }
        let mut rendered: Vec<String> = prods
            .iter()
            .map(|p| {
                let mut s = String::new();
                self.render_prod_into(p, depth - 1, seen, &mut s);
                s
            })
            .collect();
        rendered.sort();
        match rendered.len() {
            0 => out.push('∅'),
            1 => out.push_str(&rendered[0]),
            _ => {
                out.push('{');
                out.push_str(&rendered.join(" | "));
                out.push('}');
            }
        }
        seen.remove(&id);
    }

    fn render_prod_into(
        &self,
        prod: &Prod,
        depth: usize,
        seen: &mut HashSet<VarId>,
        out: &mut String,
    ) {
        match prod {
            Prod::Name(n) => out.push_str(n.as_str()),
            Prod::Zero => out.push('0'),
            Prod::Suc(a) => {
                out.push_str("suc(");
                self.render_var_into(*a, depth, seen, out);
                out.push(')');
            }
            Prod::Pair(a, b) => {
                out.push('(');
                self.render_var_into(*a, depth, seen, out);
                out.push_str(", ");
                self.render_var_into(*b, depth, seen, out);
                out.push(')');
            }
            Prod::Enc {
                args,
                confounder,
                key,
            } => {
                out.push('{');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    self.render_var_into(*a, depth, seen, out);
                }
                if !args.is_empty() {
                    out.push_str(", ");
                }
                let _ = write!(out, "{confounder}}}:");
                self.render_var_into(*key, depth, seen, out);
            }
        }
    }

    /// Renders the set of productions of a flow variable.
    pub fn render_set(&self, fv: FlowVar, depth: usize) -> String {
        let mut items: Vec<String> = self
            .prods_of(fv)
            .iter()
            .map(|p| self.render_production(p, depth))
            .collect();
        items.sort();
        if items.is_empty() {
            "∅".to_owned()
        } else {
            format!("{{ {} }}", items.join(", "))
        }
    }

    /// Dumps the whole estimate `(ρ, κ, ζ)` in the presentation order of
    /// the paper's Example 1: `κ` (channels) first, then `ρ` (variables),
    /// then `ζ` (labels). Auxiliary nonterminals are skipped.
    pub fn render_estimate(&self, depth: usize) -> String {
        let mut kappas = Vec::new();
        let mut rhos = Vec::new();
        let mut zetas = Vec::new();
        for (_, fv) in self.flow_vars() {
            match fv {
                FlowVar::Kappa(n) => {
                    kappas.push((n.as_str().to_owned(), self.render_set(fv, depth)))
                }
                FlowVar::Rho(x) => {
                    rhos.push((format!("{x}#{}", x.id()), self.render_set(fv, depth)))
                }
                FlowVar::Zeta(l) => zetas.push((l.index(), self.render_set(fv, depth))),
                FlowVar::Aux(_) => {}
            }
        }
        kappas.sort();
        rhos.sort();
        zetas.sort_by_key(|(l, _)| *l);
        let mut out = String::new();
        for (n, set) in kappas {
            let _ = writeln!(out, "κ({n}) = {set}");
        }
        for (x, set) in rhos {
            let _ = writeln!(out, "ρ({x}) = {set}");
        }
        for (l, set) in zetas {
            let _ = writeln!(out, "ζ(ℓ{l}) = {set}");
        }
        out
    }

    /// Like [`render_estimate`](Solution::render_estimate), but prints
    /// label and variable identities as their *pre-order ordinals* in
    /// `p` (`ℓ#i`, `x#i`) instead of the raw run-minted indices. The
    /// output is then a pure function of the process's α-equivalence
    /// class — two parses of the same source render identically — which
    /// is what lets the `nuspi-engine` cache serve it content-addressed.
    ///
    /// `p` must be the process this solution was computed from (labels
    /// or variables not bound in `p` would render as `?`).
    pub fn render_estimate_for(&self, p: &Process, depth: usize) -> String {
        let label_ordinals: HashMap<_, _> = p
            .labels()
            .into_iter()
            .enumerate()
            .map(|(i, l)| (l, i))
            .collect();
        let mut vars = Vec::new();
        bound_vars_into(p, &mut vars);
        let var_ordinals: HashMap<_, _> =
            vars.into_iter().enumerate().map(|(i, v)| (v, i)).collect();
        let mut kappas = Vec::new();
        let mut rhos = Vec::new();
        let mut zetas = Vec::new();
        for (_, fv) in self.flow_vars() {
            match fv {
                FlowVar::Kappa(n) => {
                    kappas.push((n.as_str().to_owned(), self.render_set(fv, depth)))
                }
                FlowVar::Rho(x) => {
                    let ordinal = var_ordinals.get(&x).copied();
                    rhos.push((
                        ordinal,
                        x.symbol().as_str().to_owned(),
                        self.render_set(fv, depth),
                    ))
                }
                FlowVar::Zeta(l) => {
                    zetas.push((label_ordinals.get(&l).copied(), self.render_set(fv, depth)))
                }
                FlowVar::Aux(_) => {}
            }
        }
        kappas.sort();
        rhos.sort();
        zetas.sort();
        let mut out = String::new();
        for (n, set) in kappas {
            let _ = writeln!(out, "κ({n}) = {set}");
        }
        for (ordinal, x, set) in rhos {
            match ordinal {
                Some(i) => {
                    let _ = writeln!(out, "ρ({x}#{i}) = {set}");
                }
                None => {
                    let _ = writeln!(out, "ρ({x}#?) = {set}");
                }
            }
        }
        for (ordinal, set) in zetas {
            match ordinal {
                Some(i) => {
                    let _ = writeln!(out, "ζ(ℓ#{i}) = {set}");
                }
                None => {
                    let _ = writeln!(out, "ζ(ℓ#?) = {set}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::analyze;
    use crate::domain::FlowVar;
    use nuspi_syntax::{parse_process, Symbol};

    #[test]
    fn renders_atomic_sets() {
        let p = parse_process("c<m>.c<0>.0").unwrap();
        let sol = analyze(&p);
        let shown = sol.render_set(FlowVar::Kappa(Symbol::intern("c")), 3);
        assert_eq!(shown, "{ 0, m }");
    }

    #[test]
    fn renders_structured_productions() {
        let p = parse_process("c<{m, new r}:k>.0").unwrap();
        let sol = analyze(&p);
        let shown = sol.render_set(FlowVar::Kappa(Symbol::intern("c")), 3);
        assert_eq!(shown, "{ {m, r}:k }");
    }

    #[test]
    fn renders_pairs_and_sucs() {
        let p = parse_process("c<(a, suc(0))>.0").unwrap();
        let sol = analyze(&p);
        let shown = sol.render_set(FlowVar::Kappa(Symbol::intern("c")), 4);
        assert_eq!(shown, "{ (a, suc(0)) }");
    }

    #[test]
    fn cycles_render_as_ellipsis_not_loops() {
        let p = parse_process("c<0>.0 | !c(x).c<suc(x)>.0").unwrap();
        let sol = analyze(&p);
        let shown = sol.render_set(FlowVar::Kappa(Symbol::intern("c")), 6);
        assert!(shown.contains("suc("), "{shown}");
        assert!(shown.contains('…'), "recursive grammar must cut: {shown}");
    }

    #[test]
    fn cycle_guard_terminates_without_the_depth_cap() {
        // The grammar of κ(c) is cyclic: κ(c) → pair → ζ(x) → ρ(x) →
        // κ(c). A depth budget far larger than the grammar's variable
        // count means only the visited-set keeps rendering finite.
        let p = parse_process("c<m>.0 | !c(x).c<(x, 0)>.0").unwrap();
        let sol = analyze(&p);
        let shown = sol.render_set(FlowVar::Kappa(Symbol::intern("c")), 10_000);
        assert!(shown.contains('…'), "cycle must truncate: {shown}");
        assert!(shown.contains("(") && shown.contains("m"), "{shown}");
    }

    #[test]
    fn mutual_recursion_between_channels_truncates() {
        // Two channels feed each other through suc/pair wrappers —
        // the cycle spans several nonterminals, not a self-loop.
        let p = parse_process("a<0>.0 | !a(x).b<suc(x)>.0 | !b(y).a<(y, y)>.0").unwrap();
        let sol = analyze(&p);
        for chan in ["a", "b"] {
            let shown = sol.render_set(FlowVar::Kappa(Symbol::intern(chan)), 500);
            assert!(shown.contains('…'), "κ({chan}) must truncate: {shown}");
        }
    }

    #[test]
    fn sibling_occurrences_are_not_mistaken_for_cycles() {
        // The same nonterminal appears twice as a *sibling* (both pair
        // components); backtracking must clear the visited mark so the
        // second occurrence still renders.
        let p = parse_process("c<m>.0 | c(x).d<(x, x)>.0").unwrap();
        let sol = analyze(&p);
        let shown = sol.render_set(FlowVar::Kappa(Symbol::intern("d")), 10);
        assert_eq!(shown, "{ (m, m) }");
    }

    #[test]
    fn empty_sets_render_as_empty_symbol() {
        let p = parse_process("c(x). x<0>.0").unwrap();
        let sol = analyze(&p);
        // x never receives anything: ρ(x) = ∅.
        let rho = sol
            .flow_vars()
            .find_map(|(_, fv)| match fv {
                FlowVar::Rho(_) => Some(fv),
                _ => None,
            })
            .unwrap();
        assert_eq!(sol.render_set(rho, 3), "∅");
    }

    #[test]
    fn estimate_dump_has_all_components() {
        let p = parse_process("c<m>.0 | c(x).0").unwrap();
        let sol = analyze(&p);
        let dump = sol.render_estimate(3);
        assert!(dump.contains("κ(c)"));
        assert!(dump.contains("ρ(x"));
        assert!(dump.contains("ζ(ℓ"));
    }
}
