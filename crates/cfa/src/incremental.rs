//! Incremental re-solving keyed by α-invariant subtree digests.
//!
//! A νSPI program is a parallel composition of protocol components; an
//! edit typically touches one of them. [`IncrementalSolver`] splits the
//! top-level `Par` spine, digests each component with
//! [`canonical_digest`](nuspi_syntax::canonical_digest), and keeps the
//! component's *isolated* least solution — production sets plus the
//! subset-edge relation — in a content-addressed cache. On the next
//! solve only the components whose digest changed are re-solved; the
//! clean ones are re-stitched silently and the work-stealing solver
//! saturates just the coupling frontier.
//!
//! **Why this is sound and least.** Components couple through shared
//! channels: every cross-component flow passes through some `κ(n)`, and
//! the only premise that can *newly* fire on a cached fact is a
//! decryption whose key language grew globally. A component's isolated
//! solution is a pointwise lower bound of the global least solution
//! (its constraint set is a subset), so installing it cannot overshoot.
//! Re-saturation then recovers exactly the global fixpoint because every
//! place new information can enter is re-examined:
//!
//! * every `κ` fact is enqueued as a live task, so the input/output
//!   clauses and the cached cross-`κ` edges replay against the *union*
//!   of the components' channel knowledge;
//! * every cached `Enc` production watched by a decryption is re-parked,
//!   so its key intersection is re-decided on the stitched grammar;
//! * everything else arrives as an ordinary task and triggers its
//!   watchers like any other production.
//!
//! Cached entries use a *portable* encoding: component-local variables
//! are stored positionally (`Local(i)` — generation is a deterministic
//! left-to-right traversal, so position is stable across parses),
//! channel variables symbolically (`Kappa(n)` — parse-global identity).
//! The cache key pairs the α-invariant digest with a salt over the
//! component's rendered source, because α-equivalent components can
//! spell their bound names differently and those spellings appear in
//! solutions as canonical name productions.
//!
//! The no-op edit (digest-identical re-solve of the *same* labelled
//! process) short-circuits entirely; a re-parsed identical source has
//! fresh labels, so it takes the component path instead (still all
//! cache hits) and yields a solution keyed by the new labels.

use crate::constraints::{Constraint, Constraints};
use crate::domain::{FlowVar, Prod, VarId, VarTable};
use crate::parallel::{solve_parallel_with, Prefill};
use crate::solver::{solve_with_edges, Solution};
use nuspi_syntax::{canonical_digest, Process, StableHasher, Symbol};
use std::collections::{HashMap, HashSet};
use std::hash::Hasher;

/// Cache key of one component: α-invariant digest plus a stable hash of
/// the rendered source (bound-name spellings matter to the solution).
type ComponentKey = (u128, u64);

/// A flow variable of a cached component, in portable form.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum PortId {
    /// The i-th entry of the component's generation-time variable table
    /// (positional: generation is a deterministic traversal).
    Local(u32),
    /// A channel variable `κ(n)` — identified by its canonical name.
    Kappa(Symbol),
}

/// A production with [`PortId`] children.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum PProd {
    Name(Symbol),
    Zero,
    Suc(PortId),
    Pair(PortId, PortId),
    Enc {
        args: Vec<PortId>,
        confounder: Symbol,
        key: PortId,
    },
}

/// The isolated least solution of one component, portable across
/// variable tables: all productions plus the subset-edge relation (the
/// edges are needed so silently reinstalled facts keep flowing when new
/// global facts arrive behind them).
#[derive(Clone, Debug)]
struct CachedComponent {
    prods: Vec<(PortId, PProd)>,
    edges: Vec<(PortId, PortId)>,
}

/// Effort counters of one [`IncrementalSolver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct IncrementalStats {
    /// Top-level parallel components of the solved process.
    pub components: usize,
    /// Components whose isolated solution came from the cache.
    pub reuse_hits: usize,
    /// Components solved in isolation this call (then cached).
    pub reuse_misses: usize,
    /// Whether the call short-circuited on the digest-identical no-op
    /// fast path (same labelled process as the previous call).
    pub noop: bool,
}

/// A solver that caches per-component solutions across calls and
/// re-solves only the dirty frontier of an edited process.
pub struct IncrementalSolver {
    threads: usize,
    cache: HashMap<ComponentKey, CachedComponent>,
    last: Option<LastSolve>,
}

struct LastSolve {
    keys: Vec<ComponentKey>,
    fingerprint: u64,
    solution: Solution,
}

/// Beyond this many cached components the cache is dropped wholesale —
/// a crude bound that keeps a long-lived server from growing without
/// limit while staying trivially correct.
const CACHE_CAP: usize = 8192;

impl IncrementalSolver {
    /// An empty solver whose global re-saturations run on `threads`
    /// work-stealing workers.
    pub fn new(threads: usize) -> IncrementalSolver {
        IncrementalSolver {
            threads: threads.max(1),
            cache: HashMap::new(),
            last: None,
        }
    }

    /// Number of component solutions currently cached.
    pub fn cached_components(&self) -> usize {
        self.cache.len()
    }

    /// Computes the least solution of `p`, reusing cached component
    /// solutions where the component digest is unchanged. The estimate
    /// is identical to [`solve`](crate::solve) /
    /// [`solve_parallel`](crate::solve_parallel) on the same process;
    /// the differential suite enforces this.
    pub fn solve(&mut self, p: &Process) -> (Solution, IncrementalStats) {
        let _sp = nuspi_obs::span!("cfa.incremental.solve");
        let comps = split_par(p);
        let keys: Vec<ComponentKey> = comps.iter().map(|c| component_key(c)).collect();
        let fingerprint = parse_fingerprint(p);
        let mut stats = IncrementalStats {
            components: comps.len(),
            ..IncrementalStats::default()
        };

        if let Some(last) = &self.last {
            if last.keys == keys && last.fingerprint == fingerprint {
                stats.noop = true;
                stats.reuse_hits = comps.len();
                self.record(&stats);
                return (last.solution.clone(), stats);
            }
        }

        // Ensure every component has a cached isolated solution.
        for (c, key) in comps.iter().zip(&keys) {
            if self.cache.contains_key(key) {
                stats.reuse_hits += 1;
                continue;
            }
            stats.reuse_misses += 1;
            let ci = Constraints::generate(c);
            let gen_len = ci.vars.len();
            let (sol, edges) = solve_with_edges(ci);
            self.cache.insert(*key, encode(&sol, &edges, gen_len));
        }
        if self.cache.len() > CACHE_CAP {
            self.cache.clear();
            for (c, key) in comps.iter().zip(&keys) {
                let ci = Constraints::generate(c);
                let gen_len = ci.vars.len();
                let (sol, edges) = solve_with_edges(ci);
                self.cache.insert(*key, encode(&sol, &edges, gen_len));
            }
        }

        // Stitch: translate every component's conditional constraints
        // into one global system (positional variables are re-interned in
        // traversal order, so the result aligns with a from-scratch
        // generation of the whole process) and prefill the cached facts.
        let mut gvars = VarTable::new();
        let mut glist: Vec<Constraint> = Vec::new();
        type ResolvedEntry = (Vec<(VarId, Prod)>, Vec<(VarId, VarId)>);
        let mut resolved: Vec<ResolvedEntry> = Vec::new();
        let mut claims: HashMap<VarId, usize> = HashMap::new();
        for (c, key) in comps.iter().zip(&keys) {
            let ci = Constraints::generate(c);
            let map: Vec<VarId> = ci
                .vars
                .iter()
                .map(|(_, fv)| match fv {
                    FlowVar::Aux(_) => gvars.fresh_aux(),
                    other => gvars.intern(other),
                })
                .collect();
            let m = |v: VarId| map[v.index()];
            for con in &ci.list {
                match con {
                    // Facts and unconditional edges are covered by the
                    // cached entry; only the watchers must be live.
                    Constraint::Prod { .. } | Constraint::Sub { .. } => {}
                    Constraint::Output { chan, msg } => glist.push(Constraint::Output {
                        chan: m(*chan),
                        msg: m(*msg),
                    }),
                    Constraint::Input { chan, var } => glist.push(Constraint::Input {
                        chan: m(*chan),
                        var: m(*var),
                    }),
                    Constraint::Split {
                        scrutinee,
                        fst,
                        snd,
                    } => glist.push(Constraint::Split {
                        scrutinee: m(*scrutinee),
                        fst: m(*fst),
                        snd: m(*snd),
                    }),
                    Constraint::CaseSuc { scrutinee, pred } => glist.push(Constraint::CaseSuc {
                        scrutinee: m(*scrutinee),
                        pred: m(*pred),
                    }),
                    Constraint::Decrypt {
                        scrutinee,
                        key,
                        vars,
                    } => glist.push(Constraint::Decrypt {
                        scrutinee: m(*scrutinee),
                        key: m(*key),
                        vars: vars.iter().copied().map(m).collect(),
                    }),
                }
            }
            let cached = &self.cache[key];
            let resolve = |port: &PortId, gvars: &mut VarTable| match port {
                PortId::Local(i) => map[*i as usize],
                PortId::Kappa(n) => gvars.intern(FlowVar::Kappa(*n)),
            };
            let mut claimed: HashSet<VarId> = map.iter().copied().collect();
            let mut facts = Vec::with_capacity(cached.prods.len());
            for (port, pprod) in &cached.prods {
                let var = resolve(port, &mut gvars);
                claimed.insert(var);
                let prod = match pprod {
                    PProd::Name(n) => Prod::Name(*n),
                    PProd::Zero => Prod::Zero,
                    PProd::Suc(a) => Prod::Suc(resolve(a, &mut gvars)),
                    PProd::Pair(a, b) => Prod::Pair(resolve(a, &mut gvars), resolve(b, &mut gvars)),
                    PProd::Enc {
                        args,
                        confounder,
                        key,
                    } => Prod::Enc {
                        args: args.iter().map(|a| resolve(a, &mut gvars)).collect(),
                        confounder: *confounder,
                        key: resolve(key, &mut gvars),
                    },
                };
                facts.push((var, prod));
            }
            let mut edges = Vec::with_capacity(cached.edges.len());
            for (a, b) in &cached.edges {
                let (ga, gb) = (resolve(a, &mut gvars), resolve(b, &mut gvars));
                claimed.insert(ga);
                claimed.insert(gb);
                edges.push((ga, gb));
            }
            for v in claimed {
                *claims.entry(v).or_insert(0) += 1;
            }
            resolved.push((facts, edges));
        }

        // A fact is enqueued live when its target couples components —
        // any κ variable, or any variable claimed by more than one
        // component; everything else is installed silently (its local
        // consequences are already part of the cached facts and edges).
        let mut prefill = Prefill::default();
        let mut enqueue: HashSet<(VarId, Prod)> = HashSet::new();
        for (facts, edges) in resolved {
            for (var, prod) in facts {
                let coupling = matches!(gvars.describe(var), FlowVar::Kappa(_))
                    || claims.get(&var).copied().unwrap_or(0) > 1;
                if coupling {
                    enqueue.insert((var, prod));
                } else {
                    prefill.silent.push((var, prod));
                }
            }
            prefill.edges.extend(edges);
        }
        prefill.enqueue = enqueue.into_iter().collect();

        let constraints = Constraints {
            vars: gvars,
            list: glist,
        };
        let solution = solve_parallel_with(constraints, self.threads, prefill);
        self.record(&stats);
        self.last = Some(LastSolve {
            keys,
            fingerprint,
            solution: solution.clone(),
        });
        (solution, stats)
    }

    fn record(&self, stats: &IncrementalStats) {
        if nuspi_obs::enabled() {
            nuspi_obs::counter("cfa.incremental.calls", 1);
            nuspi_obs::counter("cfa.incremental.components", stats.components as u64);
            nuspi_obs::counter("cfa.incremental.reuse.hits", stats.reuse_hits as u64);
            nuspi_obs::counter("cfa.incremental.reuse.misses", stats.reuse_misses as u64);
            if stats.noop {
                nuspi_obs::counter("cfa.incremental.noop", 1);
            }
        }
    }
}

/// The top-level parallel components of `p`, left to right. A top-level
/// restriction scopes over everything, so such a process is a single
/// component (correct, just without reuse granularity).
fn split_par(p: &Process) -> Vec<&Process> {
    fn walk<'a>(p: &'a Process, out: &mut Vec<&'a Process>) {
        if let Process::Par(a, b) = p {
            walk(a, out);
            walk(b, out);
        } else {
            out.push(p);
        }
    }
    let mut out = Vec::new();
    walk(p, &mut out);
    out
}

fn component_key(c: &Process) -> ComponentKey {
    let digest = canonical_digest(c).0;
    let mut h = StableHasher::new();
    h.write(c.to_string().as_bytes());
    (digest, h.finish())
}

/// A fingerprint of the process's label sequence: labels are minted per
/// parse, so this distinguishes "the same labelled AST again" (true
/// no-op) from "a re-parse of identical source" (which needs a solution
/// keyed by the fresh labels).
fn parse_fingerprint(p: &Process) -> u64 {
    let mut h = StableHasher::new();
    for l in p.labels() {
        h.write_u64(u64::from(l.index()));
    }
    h.finish()
}

/// Encodes an isolated component solution portably. Variables interned
/// during generation (the first `gen_len` ids) are positional; the
/// solver only ever interns `κ` variables beyond that, which are stored
/// symbolically.
fn encode(sol: &Solution, edges: &[(VarId, VarId)], gen_len: usize) -> CachedComponent {
    let port = |id: VarId| -> PortId {
        if let FlowVar::Kappa(n) = sol.describe(id) {
            PortId::Kappa(n)
        } else {
            debug_assert!(
                id.index() < gen_len,
                "non-κ variable interned post-generation"
            );
            PortId::Local(id.index() as u32)
        }
    };
    let mut prods = Vec::new();
    for (id, _) in sol.flow_vars() {
        for p in sol.prods_of_id(id) {
            let pp = match p {
                Prod::Name(n) => PProd::Name(*n),
                Prod::Zero => PProd::Zero,
                Prod::Suc(a) => PProd::Suc(port(*a)),
                Prod::Pair(a, b) => PProd::Pair(port(*a), port(*b)),
                Prod::Enc {
                    args,
                    confounder,
                    key,
                } => PProd::Enc {
                    args: args.iter().copied().map(port).collect(),
                    confounder: *confounder,
                    key: port(*key),
                },
            };
            prods.push((port(id), pp));
        }
    }
    let edges = edges.iter().map(|&(a, b)| (port(a), port(b))).collect();
    CachedComponent { prods, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve, solve_parallel};
    use nuspi_syntax::parse_process;

    fn assert_incremental_matches(solver: &mut IncrementalSolver, src: &str, ctx: &str) {
        let p = parse_process(src).unwrap();
        let (inc, _) = solver.solve(&p);
        let scratch = solve(Constraints::generate(&p));
        scratch
            .estimate_eq(&inc)
            .unwrap_or_else(|e| panic!("{ctx}: incremental vs from-scratch: {e}"));
    }

    #[test]
    fn incremental_matches_from_scratch_cold_and_warm() {
        let mut solver = IncrementalSolver::new(2);
        let src = "c<{m, new r}:k>.0 | c(z). case z of {x}:k in d<x>.0 | a<m2>.0";
        assert_incremental_matches(&mut solver, src, "cold");
        assert_incremental_matches(&mut solver, src, "warm (re-parse)");
    }

    #[test]
    fn edit_reuses_clean_components() {
        let mut solver = IncrementalSolver::new(2);
        let p1 = parse_process("a<m>.0 | a(x).b<x>.0 | b(y).0").unwrap();
        let (_, s1) = solver.solve(&p1);
        assert_eq!(s1.components, 3);
        assert_eq!(s1.reuse_misses, 3);
        // Edit the middle component only.
        let p2 = parse_process("a<m>.0 | a(x).c<x>.0 | b(y).0").unwrap();
        let (sol, s2) = solver.solve(&p2);
        assert_eq!(s2.reuse_hits, 2, "two components unchanged");
        assert_eq!(s2.reuse_misses, 1, "one component edited");
        let scratch = solve(Constraints::generate(&p2));
        scratch.estimate_eq(&sol).unwrap();
    }

    #[test]
    fn noop_fast_path_returns_identical_estimate() {
        let mut solver = IncrementalSolver::new(1);
        let p = parse_process("c<{m, new r}:k>.0 | c(z). case z of {x}:k in d<x>.0").unwrap();
        let (first, s1) = solver.solve(&p);
        assert!(!s1.noop);
        let (second, s2) = solver.solve(&p);
        assert!(s2.noop, "same labelled AST must hit the no-op path");
        assert_eq!(s2.reuse_hits, s2.components);
        first.estimate_eq(&second).unwrap();
    }

    #[test]
    fn reparsed_identical_source_is_not_a_noop_but_reuses_everything() {
        let mut solver = IncrementalSolver::new(1);
        let src = "a<m>.0 | a(x).b<x>.0";
        let p1 = parse_process(src).unwrap();
        solver.solve(&p1);
        let p2 = parse_process(src).unwrap();
        let (sol, st) = solver.solve(&p2);
        assert!(!st.noop, "fresh labels: the solution must be re-keyed");
        assert_eq!(st.reuse_hits, st.components, "but every component reuses");
        let scratch = solve(Constraints::generate(&p2));
        scratch.estimate_eq(&sol).unwrap();
    }

    #[test]
    fn cross_component_decryption_unlocks_on_stitch() {
        // The key flows from one component, the ciphertext from another:
        // in isolation neither decrypts, stitched they must.
        let mut solver = IncrementalSolver::new(2);
        let src = "c<{m, new r}:k2>.0 | kchan<k2>.0 \
                   | kchan(kk). c(z). case z of {x}:kk in d<x>.0";
        let p = parse_process(src).unwrap();
        let (sol, _) = solver.solve(&p);
        assert!(sol
            .kappa(Symbol::intern("d"))
            .contains(&Prod::Name(Symbol::intern("m"))));
        let scratch = solve_parallel(Constraints::generate(&p), 2);
        scratch.estimate_eq(&sol).unwrap();
    }

    #[test]
    fn duplicate_components_share_one_cache_entry() {
        let mut solver = IncrementalSolver::new(1);
        let p = parse_process("c<m>.0 | c<m>.0 | c<m>.0").unwrap();
        let (sol, st) = solver.solve(&p);
        assert_eq!(st.components, 3);
        assert_eq!(st.reuse_misses, 1, "identical components dedupe");
        assert_eq!(st.reuse_hits, 2);
        let scratch = solve(Constraints::generate(&p));
        scratch.estimate_eq(&sol).unwrap();
    }

    #[test]
    fn alpha_equivalent_components_with_different_names_do_not_collide() {
        // (new a) c<a>.0 and (new b) c<b>.0 are α-equivalent but leak
        // differently-spelled canonical names into κ(c): the salt must
        // keep their cache entries apart.
        let mut solver = IncrementalSolver::new(1);
        let p = parse_process("(new na) c<na>.0 | (new nb) c<nb>.0").unwrap();
        let (sol, _) = solver.solve(&p);
        let scratch = solve(Constraints::generate(&p));
        scratch.estimate_eq(&sol).unwrap();
        assert_eq!(sol.kappa(Symbol::intern("c")).len(), 2);
    }
}
