//! The least-solution solver.
//!
//! A worklist algorithm over the constraint system of
//! [`Constraints`](crate::Constraints): productions propagate along subset
//! edges, conditional constraints watch their scrutinee nonterminal and
//! fire as matching productions arrive, and the decryption premise
//! `w ∈ ζ(l′)` is resolved as *non-emptiness of the intersection* of two
//! regular tree languages (`L(key child) ∩ L(ζ(l′)) ≠ ∅`) — the product
//! construction the paper attributes to Nielson–Seidl's cubic-time
//! cryptographic analysis.
//!
//! The computed solution is least: every production and edge is introduced
//! only when demanded by a clause of Table 2, and positive intersection
//! facts are monotone (languages only grow), so firing order cannot
//! overshoot.

use crate::constraints::{Constraint, Constraints};
use crate::domain::{FlowVar, Prod, VarId, VarTable};
use nuspi_syntax::{Label, Symbol, Value, Var};
use std::borrow::Cow;
use std::collections::{HashMap, HashSet, VecDeque};

/// Size and effort counters of a solver run.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SolverStats {
    /// Flow variables (nonterminals) in the final grammar.
    pub flow_vars: usize,
    /// Productions in the final grammar.
    pub productions: usize,
    /// Subset edges in the final grammar.
    pub edges: usize,
    /// Conditional-constraint firings.
    pub conditional_firings: usize,
    /// Intersection-nonemptiness queries issued.
    pub intersection_queries: usize,
    /// Intersection queries answered from the memo cache (positive
    /// entries are valid forever — languages only grow; negative entries
    /// are valid until the next production insertion).
    pub cache_hits: usize,
    /// Intersection queries that ran the product-pair saturation.
    pub cache_misses: usize,
    /// Outer fixpoint rounds (worklist drain + parked-decrypt scan).
    pub rounds: usize,
    /// Wall-clock milliseconds per outer fixpoint round.
    pub round_millis: Vec<f64>,
    /// Per-round intersection memo activity as `(hits, misses)` deltas.
    /// Memo caches persist across rounds, so on a workload whose final
    /// rounds re-ask settled queries the tail entries are all-hit.
    pub round_memo: Vec<(usize, usize)>,
    /// Per-shard counters ([`solve_parallel`](crate::solve_parallel)
    /// only; empty for the sequential and reference solvers).
    pub per_shard: Vec<ShardStats>,
}

/// Effort counters of one shard of the parallel solver.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ShardStats {
    /// Flow variables owned by the shard.
    pub owned_vars: usize,
    /// Productions stored in the shard's variables at the end.
    pub productions: usize,
    /// Subset edges whose source the shard owns.
    pub edges: usize,
    /// Conditional-constraint firings evaluated on this shard.
    pub conditional_firings: usize,
    /// Intersection queries issued by this shard.
    pub intersection_queries: usize,
    /// Queries answered from the shard's memo cache.
    pub cache_hits: usize,
    /// Queries that ran the saturation.
    pub cache_misses: usize,
    /// Cross-shard deltas this shard emitted.
    pub deltas_sent: usize,
    /// Deltas this shard applied to its own variables.
    pub deltas_applied: usize,
    /// Tasks this worker stole from another worker's deque.
    pub steals: usize,
}

#[derive(Clone, Debug)]
pub(crate) enum Cond {
    Output { msg: VarId },
    Input { var: VarId },
    Split { fst: VarId, snd: VarId },
    CaseSuc { pred: VarId },
    Decrypt { key: VarId, vars: Vec<VarId> },
}

/// Read-only access to the production sets of a grammar, however they are
/// stored — a dense slice (sequential solver, [`Solution`]) or a sharded
/// layout (the parallel solver). [`intersect_fixpoint`] is generic in
/// this so all solvers share one intersection-nonemptiness decision
/// procedure.
pub(crate) trait ProdView {
    /// The productions of `v`, or `None` if the variable has none. A
    /// dense layout borrows; a locked layout snapshots under its lock and
    /// returns an owned copy, so no lock is held across pair-graph steps.
    fn prods_at(&self, v: VarId) -> Option<Cow<'_, HashSet<Prod>>>;
}

impl ProdView for [HashSet<Prod>] {
    fn prods_at(&self, v: VarId) -> Option<Cow<'_, HashSet<Prod>>> {
        self.get(v.index()).map(Cow::Borrowed)
    }
}

/// Why a production first entered a flow variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ProdSource {
    /// Introduced by a constraint of the program (a constructor
    /// occurrence, an embedded value, or the attacker model).
    Seed,
    /// Propagated along a subset edge from another variable.
    Edge(VarId),
}

/// What justified a subset edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeKind {
    /// An unconditional `⊆` (variable occurrence, embedded value).
    Sub,
    /// The output clause fired: `msg ⊆ κ(n)`.
    Output(Symbol),
    /// The input clause fired: `κ(n) ⊆ ρ(x)`.
    Input(Symbol),
    /// Pair splitting released a component.
    Split,
    /// The integer case released a predecessor.
    CaseSuc,
    /// A decryption's key matched and released a payload slot.
    Decrypt,
}

impl std::fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeKind::Sub => write!(f, "subset (variable occurrence / embedded value)"),
            EdgeKind::Output(n) => write!(f, "output on channel {n}"),
            EdgeKind::Input(n) => write!(f, "input on channel {n}"),
            EdgeKind::Split => write!(f, "pair splitting"),
            EdgeKind::CaseSuc => write!(f, "integer case (suc branch)"),
            EdgeKind::Decrypt => write!(f, "decryption (key matched)"),
        }
    }
}

/// One hop of a reconstructed flow trace: a production's presence in a
/// flow variable, together with the constraint that put it there.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FlowStep {
    /// The flow variable the production resides in at this hop.
    pub at: FlowVar,
    /// How the production entered `at`.
    pub kind: FlowStepKind,
}

/// How a production entered the flow variable of a [`FlowStep`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FlowStepKind {
    /// Introduced by a generation-time constraint: a constructor
    /// occurrence of the process, an embedded value, or the attacker
    /// model of Lemma 1.
    Introduced,
    /// Propagated along a subset edge created by the named Table 2
    /// clause.
    Propagated {
        /// The edge's source variable.
        from: FlowVar,
        /// The clause that created the edge.
        via: EdgeKind,
    },
    /// The (variable, production) pair is not part of the solution.
    Absent,
    /// The provenance chase revisited a variable (defensive; least
    /// solutions have acyclic first-cause chains).
    Cycle,
}

/// Flow provenance: for every (variable, production) pair, how it got
/// there; for every subset edge, the clause that created it. Built by
/// [`solve_traced`]; [`Provenance::explain_steps`] reconstructs the
/// chain structurally and [`Provenance::explain`] narrates it.
#[derive(Clone, Debug, Default)]
pub struct Provenance {
    prod_source: HashMap<(VarId, Prod), ProdSource>,
    edge_kind: HashMap<(VarId, VarId), EdgeKind>,
}

impl Provenance {
    /// Reconstructs how `prod` reached `fv` as a structured trace, from
    /// the introduction site to the destination. Empty if `fv` never
    /// arose; a single [`FlowStepKind::Absent`] step if the variable
    /// exists but the production is not in it.
    pub fn explain_steps(&self, sol: &Solution, fv: FlowVar, prod: &Prod) -> Vec<FlowStep> {
        let Some(mut at) = sol.var_id(fv) else {
            return Vec::new();
        };
        let mut hops = Vec::new();
        let mut seen = HashSet::new();
        loop {
            if !seen.insert(at) {
                hops.push(FlowStep {
                    at: sol.describe(at),
                    kind: FlowStepKind::Cycle,
                });
                break;
            }
            match self.prod_source.get(&(at, prod.clone())) {
                Some(ProdSource::Seed) => {
                    hops.push(FlowStep {
                        at: sol.describe(at),
                        kind: FlowStepKind::Introduced,
                    });
                    break;
                }
                Some(ProdSource::Edge(from)) => {
                    let via = self
                        .edge_kind
                        .get(&(*from, at))
                        .copied()
                        .unwrap_or(EdgeKind::Sub);
                    hops.push(FlowStep {
                        at: sol.describe(at),
                        kind: FlowStepKind::Propagated {
                            from: sol.describe(*from),
                            via,
                        },
                    });
                    at = *from;
                }
                None => {
                    hops.push(FlowStep {
                        at: sol.describe(at),
                        kind: FlowStepKind::Absent,
                    });
                    break;
                }
            }
        }
        hops.reverse();
        hops
    }

    /// Narrates how `prod` reached `fv`: one line per hop, from the
    /// introduction site to the destination. Empty if the pair is not in
    /// the solution.
    pub fn explain(&self, sol: &Solution, fv: FlowVar, prod: &Prod) -> Vec<String> {
        self.explain_steps(sol, fv, prod)
            .into_iter()
            .map(|step| match step.kind {
                FlowStepKind::Introduced => format!("introduced at {}", step.at),
                FlowStepKind::Propagated { from, via } => {
                    format!("reached {} from {from} via {via}", step.at)
                }
                FlowStepKind::Absent => format!("not present in {}", step.at),
                FlowStepKind::Cycle => "… (cycle)".to_owned(),
            })
            .collect()
    }
}

/// The least acceptable estimate `(ρ, κ, ζ)`, represented as a regular
/// tree grammar: [`Solution::prods_of`] returns the productions of a flow
/// variable, and [`Solution::contains`] decides membership of a concrete
/// value in its language (the concretisation).
#[derive(Clone, Debug)]
pub struct Solution {
    vars: VarTable,
    prods: Vec<HashSet<Prod>>,
    stats: SolverStats,
    empty: HashSet<Prod>,
}

struct Solver {
    vars: VarTable,
    prods: Vec<HashSet<Prod>>,
    edges: Vec<Vec<VarId>>,
    edge_set: HashSet<(VarId, VarId)>,
    watchers: Vec<Vec<usize>>,
    conds: Vec<Cond>,
    queue: VecDeque<(VarId, Prod)>,
    parked: Vec<(usize, Prod)>,
    parked_set: HashSet<(usize, Prod)>,
    nonempty: HashSet<(VarId, VarId)>,
    /// Bumped on every production insertion; negative intersection
    /// answers tagged with an older generation have expired (edges alone
    /// cannot turn an empty intersection non-empty).
    generation: u64,
    neg_cache: HashMap<(VarId, VarId), u64>,
    stats: SolverStats,
    trace: Option<Provenance>,
}

/// Computes the least solution of the constraint system.
pub fn solve(constraints: Constraints) -> Solution {
    solve_impl(constraints, false).0
}

/// Like [`solve`], additionally returning the subset-edge relation of the
/// final grammar (the incremental solver caches it alongside the
/// production sets so a reused component can be re-stitched silently).
pub(crate) fn solve_with_edges(constraints: Constraints) -> (Solution, Vec<(VarId, VarId)>) {
    let (sol, _, edges) = solve_impl(constraints, false);
    (sol, edges)
}

/// Like [`solve`], additionally recording flow [`Provenance`] so each
/// production's path into each variable can be narrated.
pub fn solve_traced(constraints: Constraints) -> (Solution, Provenance) {
    let (sol, prov, _) = solve_impl(constraints, true);
    (sol, prov.expect("tracing was enabled"))
}

fn solve_impl(
    constraints: Constraints,
    traced: bool,
) -> (Solution, Option<Provenance>, Vec<(VarId, VarId)>) {
    let _sp = nuspi_obs::span!("cfa.solve");
    let Constraints { vars, list } = constraints;
    let n = vars.len();
    let mut s = Solver {
        vars,
        prods: vec![HashSet::new(); n],
        edges: vec![Vec::new(); n],
        edge_set: HashSet::new(),
        watchers: vec![Vec::new(); n],
        conds: Vec::new(),
        queue: VecDeque::new(),
        parked: Vec::new(),
        parked_set: HashSet::new(),
        nonempty: HashSet::new(),
        generation: 0,
        neg_cache: HashMap::new(),
        stats: SolverStats::default(),
        trace: traced.then(Provenance::default),
    };

    // Register conditionals before seeding facts so no production is
    // missed by a watcher.
    let mut facts = Vec::new();
    for c in list {
        match c {
            Constraint::Prod { prod, into } => facts.push((into, prod)),
            Constraint::Sub { from, into } => {
                s.add_edge(from, into, EdgeKind::Sub);
            }
            Constraint::Output { chan, msg } => s.watch(chan, Cond::Output { msg }),
            Constraint::Input { chan, var } => s.watch(chan, Cond::Input { var }),
            Constraint::Split {
                scrutinee,
                fst,
                snd,
            } => s.watch(scrutinee, Cond::Split { fst, snd }),
            Constraint::CaseSuc { scrutinee, pred } => s.watch(scrutinee, Cond::CaseSuc { pred }),
            Constraint::Decrypt {
                scrutinee,
                key,
                vars,
            } => s.watch(scrutinee, Cond::Decrypt { key, vars }),
        }
    }
    for (into, prod) in facts {
        s.add_prod(into, prod, ProdSource::Seed);
    }

    // Outer fixpoint: drain the worklist, then retry parked decryptions
    // whose key intersection may have become non-empty.
    loop {
        let _round = nuspi_obs::span!("cfa.solve.round", round = s.stats.rounds);
        let round_start = std::time::Instant::now();
        let (hits0, misses0) = (s.stats.cache_hits, s.stats.cache_misses);
        s.stats.rounds += 1;
        s.drain();
        let parked = std::mem::take(&mut s.parked);
        let mut progressed = false;
        for (idx, prod) in parked {
            let (key, vars) = match &s.conds[idx] {
                Cond::Decrypt { key, vars } => (*key, vars.clone()),
                _ => unreachable!("only decryptions are parked"),
            };
            let enc_key = match &prod {
                Prod::Enc { key, .. } => *key,
                _ => unreachable!("only Enc productions are parked"),
            };
            if s.intersect_nonempty(enc_key, key) {
                s.parked_set.remove(&(idx, prod.clone()));
                s.fire_decrypt(&prod, &vars);
                progressed = true;
            } else {
                s.parked.push((idx, prod));
            }
        }
        s.stats
            .round_millis
            .push(round_start.elapsed().as_secs_f64() * 1e3);
        s.stats
            .round_memo
            .push((s.stats.cache_hits - hits0, s.stats.cache_misses - misses0));
        if !progressed && s.queue.is_empty() {
            break;
        }
    }

    s.stats.flow_vars = s.vars.len();
    s.stats.productions = s.prods.iter().map(HashSet::len).sum();
    s.stats.edges = s.edge_set.len();
    if nuspi_obs::enabled() {
        nuspi_obs::counter("cfa.solve.calls", 1);
        nuspi_obs::counter("cfa.memo.hits", s.stats.cache_hits as u64);
        nuspi_obs::counter("cfa.memo.misses", s.stats.cache_misses as u64);
        nuspi_obs::counter("cfa.firings", s.stats.conditional_firings as u64);
        for ms in &s.stats.round_millis {
            nuspi_obs::record_us("cfa.round_us", (ms * 1e3) as u64);
        }
    }
    let edges: Vec<(VarId, VarId)> = s.edge_set.iter().copied().collect();
    (
        Solution {
            vars: s.vars,
            prods: s.prods,
            stats: s.stats,
            empty: HashSet::new(),
        },
        s.trace,
        edges,
    )
}

impl Solver {
    fn ensure(&mut self, v: VarId) {
        let need = v.index() + 1;
        if self.prods.len() < need {
            self.prods.resize_with(need, HashSet::new);
            self.edges.resize_with(need, Vec::new);
            self.watchers.resize_with(need, Vec::new);
        }
    }

    fn watch(&mut self, var: VarId, cond: Cond) {
        self.ensure(var);
        let idx = self.conds.len();
        self.conds.push(cond);
        self.watchers[var.index()].push(idx);
    }

    fn kappa(&mut self, chan: Symbol) -> VarId {
        let v = self.vars.intern(FlowVar::Kappa(chan));
        self.ensure(v);
        v
    }

    fn add_prod(&mut self, var: VarId, prod: Prod, source: ProdSource) {
        self.ensure(var);
        if self.prods[var.index()].insert(prod.clone()) {
            self.generation += 1;
            if let Some(trace) = &mut self.trace {
                trace.prod_source.insert((var, prod.clone()), source);
            }
            self.queue.push_back((var, prod));
        }
    }

    fn add_edge(&mut self, from: VarId, into: VarId, kind: EdgeKind) {
        self.ensure(from);
        self.ensure(into);
        if from == into || !self.edge_set.insert((from, into)) {
            return;
        }
        if let Some(trace) = &mut self.trace {
            trace.edge_kind.insert((from, into), kind);
        }
        self.edges[from.index()].push(into);
        let existing: Vec<Prod> = self.prods[from.index()].iter().cloned().collect();
        for p in existing {
            self.add_prod(into, p, ProdSource::Edge(from));
        }
    }

    fn drain(&mut self) {
        while let Some((var, prod)) = self.queue.pop_front() {
            // Propagate along subset edges.
            let targets = self.edges[var.index()].clone();
            for t in targets {
                self.add_prod(t, prod.clone(), ProdSource::Edge(var));
            }
            // Trigger conditional constraints watching this variable.
            let watchers = self.watchers[var.index()].clone();
            for idx in watchers {
                self.trigger(idx, &prod);
            }
        }
    }

    fn trigger(&mut self, idx: usize, prod: &Prod) {
        match self.conds[idx].clone() {
            Cond::Output { msg } => {
                if let Prod::Name(n) = prod {
                    let k = self.kappa(*n);
                    self.stats.conditional_firings += 1;
                    self.add_edge(msg, k, EdgeKind::Output(*n));
                }
            }
            Cond::Input { var } => {
                if let Prod::Name(n) = prod {
                    let k = self.kappa(*n);
                    self.stats.conditional_firings += 1;
                    self.add_edge(k, var, EdgeKind::Input(*n));
                }
            }
            Cond::Split { fst, snd } => {
                if let Prod::Pair(a, b) = prod {
                    self.stats.conditional_firings += 1;
                    self.add_edge(*a, fst, EdgeKind::Split);
                    self.add_edge(*b, snd, EdgeKind::Split);
                }
            }
            Cond::CaseSuc { pred } => {
                if let Prod::Suc(a) = prod {
                    self.stats.conditional_firings += 1;
                    self.add_edge(*a, pred, EdgeKind::CaseSuc);
                }
            }
            Cond::Decrypt { key, vars } => {
                if let Prod::Enc {
                    args, key: enc_key, ..
                } = prod
                {
                    if args.len() != vars.len() {
                        return;
                    }
                    if self.intersect_nonempty(*enc_key, key) {
                        self.fire_decrypt(prod, &vars);
                    } else if self.parked_set.insert((idx, prod.clone())) {
                        self.parked.push((idx, prod.clone()));
                    }
                }
            }
        }
    }

    fn fire_decrypt(&mut self, prod: &Prod, vars: &[VarId]) {
        let Prod::Enc { args, .. } = prod else {
            unreachable!("fire_decrypt on non-Enc production");
        };
        self.stats.conditional_firings += 1;
        for (a, x) in args.clone().into_iter().zip(vars.iter().copied()) {
            self.add_edge(a, x, EdgeKind::Decrypt);
        }
    }

    /// `L(a) ∩ L(b) ≠ ∅` — bottom-up product saturation over the pair
    /// graph reachable from `(a, b)`. Positive results are cached forever
    /// (languages only grow during solving, so non-emptiness is
    /// monotone); negative results are tagged with the production
    /// generation that computed them and stay valid until a production
    /// is inserted anywhere.
    fn intersect_nonempty(&mut self, a: VarId, b: VarId) -> bool {
        self.stats.intersection_queries += 1;
        let pair = norm(a, b);
        if self.nonempty.contains(&pair) {
            self.stats.cache_hits += 1;
            return true;
        }
        if self.neg_cache.get(&pair) == Some(&self.generation) {
            self.stats.cache_hits += 1;
            return false;
        }
        self.stats.cache_misses += 1;
        if intersect_fixpoint(self.prods.as_slice(), &mut self.nonempty, a, b) {
            true
        } else {
            self.neg_cache.insert(pair, self.generation);
            false
        }
    }
}

pub(crate) fn norm(a: VarId, b: VarId) -> (VarId, VarId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Decides `L(a) ∩ L(b) ≠ ∅` over production sets `prods`, updating the
/// monotone positive cache `known`.
pub(crate) fn intersect_fixpoint<V: ProdView + ?Sized>(
    prods: &V,
    known: &mut HashSet<(VarId, VarId)>,
    a: VarId,
    b: VarId,
) -> bool {
    let root = norm(a, b);
    if known.contains(&root) {
        return true;
    }
    // Discover the reachable pair graph and, per pair, the alternatives
    // (one per root-compatible production pair), each a list of child
    // pairs that must all be non-empty.
    type PairAlts = Vec<Vec<(VarId, VarId)>>;
    let mut alts: HashMap<(VarId, VarId), PairAlts> = HashMap::new();
    let mut stack = vec![root];
    while let Some(pair) = stack.pop() {
        if alts.contains_key(&pair) || known.contains(&pair) {
            continue;
        }
        let (u, v) = pair;
        let mut here = Vec::new();
        if let (Some(pu), Some(pv)) = (prods.prods_at(u), prods.prods_at(v)) {
            for p in pu.iter() {
                for q in pv.iter() {
                    if let Some(children) = p.root_compatible(q) {
                        let children: Vec<(VarId, VarId)> =
                            children.into_iter().map(|(x, y)| norm(x, y)).collect();
                        for c in &children {
                            if !alts.contains_key(c) && !known.contains(c) {
                                stack.push(*c);
                            }
                        }
                        here.push(children);
                    }
                }
            }
        }
        alts.insert(pair, here);
    }
    // Saturate: a pair is non-empty if some alternative has all children
    // known non-empty.
    loop {
        let mut progressed = false;
        for (pair, alternatives) in &alts {
            if known.contains(pair) {
                continue;
            }
            if alternatives
                .iter()
                .any(|ch| ch.iter().all(|c| known.contains(c)))
            {
                known.insert(*pair);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    known.contains(&root)
}

impl Solution {
    /// Assembles a solution from raw parts (used by the parallel and
    /// reference solvers, which maintain their own storage layouts).
    pub(crate) fn from_parts(
        vars: VarTable,
        prods: Vec<HashSet<Prod>>,
        stats: SolverStats,
    ) -> Solution {
        Solution {
            vars,
            prods,
            stats,
            empty: HashSet::new(),
        }
    }

    /// Compares two solutions of the *same* constraint system as
    /// estimates: for every flow variable of either, the production sets
    /// must coincide (a variable absent from one side counts as empty).
    ///
    /// This is semantic equality of `(ρ, κ, ζ)`: `κ` variables are
    /// interned on demand, so their raw [`VarId`]s may differ between
    /// solvers, but production *children* are always generation-time ids
    /// and therefore comparable directly.
    pub fn estimate_eq(&self, other: &Solution) -> Result<(), String> {
        let mut names: Vec<FlowVar> = self.vars.iter().map(|(_, fv)| fv).collect();
        names.extend(other.vars.iter().map(|(_, fv)| fv));
        names.sort_by_key(|fv| format!("{fv:?}"));
        names.dedup();
        for fv in names {
            let a = self.prods_of(fv);
            let b = other.prods_of(fv);
            if a != b {
                let only_a: Vec<&Prod> = a.difference(b).collect();
                let only_b: Vec<&Prod> = b.difference(a).collect();
                return Err(format!(
                    "{fv}: left has {} prods, right {};\n  only left:  {only_a:?}\n  only right: {only_b:?}",
                    a.len(),
                    b.len()
                ));
            }
        }
        Ok(())
    }

    /// The productions of a flow variable (empty if the variable never
    /// arose).
    pub fn prods_of(&self, fv: FlowVar) -> &HashSet<Prod> {
        match self.vars.get(fv) {
            Some(id) => &self.prods[id.index()],
            None => &self.empty,
        }
    }

    /// The productions of `ζ(l)`.
    pub fn zeta(&self, l: Label) -> &HashSet<Prod> {
        self.prods_of(FlowVar::Zeta(l))
    }

    /// The productions of `ρ(x)`.
    pub fn rho(&self, x: Var) -> &HashSet<Prod> {
        self.prods_of(FlowVar::Rho(x))
    }

    /// The productions of `κ(n)` for a canonical channel name.
    pub fn kappa(&self, n: Symbol) -> &HashSet<Prod> {
        self.prods_of(FlowVar::Kappa(n))
    }

    /// The productions behind a raw [`VarId`] (for grammar traversals).
    pub fn prods_of_id(&self, id: VarId) -> &HashSet<Prod> {
        self.prods.get(id.index()).unwrap_or(&self.empty)
    }

    /// Every canonical channel name with a `κ` entry, sorted by name so
    /// callers (and golden files) see the same order regardless of
    /// interning order or solver layout.
    pub fn channels(&self) -> Vec<Symbol> {
        let mut out: Vec<Symbol> = self
            .vars
            .iter()
            .filter_map(|(_, fv)| match fv {
                FlowVar::Kappa(n) => Some(n),
                _ => None,
            })
            .collect();
        out.sort_by_key(|n| n.as_str());
        out
    }

    /// Every flow variable of the solution.
    pub fn flow_vars(&self) -> impl Iterator<Item = (VarId, FlowVar)> + '_ {
        self.vars.iter()
    }

    /// Resolves a flow variable to its id, if it arose during analysis.
    pub fn var_id(&self, fv: FlowVar) -> Option<VarId> {
        self.vars.get(fv)
    }

    /// Describes a raw id.
    pub fn describe(&self, id: VarId) -> FlowVar {
        self.vars.describe(id)
    }

    /// Membership of a concrete value in the language of a flow variable:
    /// `⌊w⌋ ∈ L(fv)`. This is the concretisation the subject-reduction
    /// theorem (Theorem 1) quantifies over; the value is canonicalised
    /// internally.
    pub fn contains(&self, fv: FlowVar, w: &Value) -> bool {
        match self.vars.get(fv) {
            Some(id) => {
                let canonical = w.canonicalize();
                self.member(id, &canonical)
            }
            None => false,
        }
    }

    fn member(&self, id: VarId, w: &Value) -> bool {
        let Some(set) = self.prods.get(id.index()) else {
            return false;
        };
        set.iter().any(|p| match p.matches_value(w) {
            Some(obligations) => obligations.iter().all(|(v, child)| self.member(*v, child)),
            None => false,
        })
    }

    /// Decides `L(a) ∩ L(b) ≠ ∅` on the solved grammar.
    pub fn intersect_nonempty(&self, a: VarId, b: VarId) -> bool {
        let mut known = HashSet::new();
        intersect_fixpoint(self.prods.as_slice(), &mut known, a, b)
    }

    /// Enumerates up to `limit` values of `L(fv)` with height at most
    /// `max_height` (diagnostics; the language may be infinite). The
    /// order is deterministic — productions are visited in rendered
    /// order, which depends only on the grammar's languages, never on
    /// hashing or on the solver's [`VarId`] layout — so output is
    /// byte-stable across runs and shard counts.
    pub fn enumerate(&self, fv: FlowVar, max_height: usize, limit: usize) -> Vec<Value> {
        let Some(id) = self.vars.get(fv) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        self.enum_var(id, max_height, limit, &mut out);
        out
    }

    fn enum_var(&self, id: VarId, height: usize, limit: usize, out: &mut Vec<Value>) {
        if height == 0 || out.len() >= limit {
            return;
        }
        let Some(set) = self.prods.get(id.index()) else {
            return;
        };
        let mut sorted: Vec<&Prod> = set.iter().collect();
        sorted.sort_by_cached_key(|p| self.render_production(p, 8));
        for p in sorted {
            if out.len() >= limit {
                return;
            }
            match p {
                Prod::Name(n) => out.push(Value::Name(nuspi_syntax::Name::global(*n))),
                Prod::Zero => out.push(Value::Zero),
                Prod::Suc(a) => {
                    let mut inner = Vec::new();
                    self.enum_var(*a, height - 1, limit, &mut inner);
                    for w in inner {
                        if out.len() >= limit {
                            return;
                        }
                        out.push(Value::Suc(w.into()));
                    }
                }
                Prod::Pair(a, b) => {
                    let mut left = Vec::new();
                    let mut right = Vec::new();
                    self.enum_var(*a, height - 1, limit, &mut left);
                    self.enum_var(*b, height - 1, limit, &mut right);
                    for u in &left {
                        for v in &right {
                            if out.len() >= limit {
                                return;
                            }
                            out.push(Value::Pair(u.clone().into(), v.clone().into()));
                        }
                    }
                }
                Prod::Enc {
                    args,
                    confounder,
                    key,
                } => {
                    let mut kvs = Vec::new();
                    self.enum_var(*key, height - 1, limit, &mut kvs);
                    let mut arg_sets: Vec<Vec<Value>> = Vec::new();
                    for a in args {
                        let mut s = Vec::new();
                        self.enum_var(*a, height - 1, limit, &mut s);
                        arg_sets.push(s);
                    }
                    // Take the first choice per slot to bound the output.
                    if kvs.is_empty() || arg_sets.iter().any(Vec::is_empty) {
                        continue;
                    }
                    if out.len() >= limit {
                        return;
                    }
                    out.push(Value::Enc {
                        payload: arg_sets.iter().map(|s| s[0].clone().into()).collect(),
                        confounder: nuspi_syntax::Name::global(*confounder),
                        key: kvs[0].clone().into(),
                    });
                }
            }
        }
    }

    /// The solver's effort counters.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Constraints;
    use nuspi_syntax::parse_process;

    #[test]
    fn provenance_narrates_a_relay_flow() {
        let p = parse_process("a<m>.0 | a(x).b<x>.0 | b(y).0").unwrap();
        let (sol, prov) = solve_traced(Constraints::generate(&p));
        let prod = Prod::Name(Symbol::intern("m"));
        let story = prov.explain(&sol, FlowVar::Kappa(Symbol::intern("b")), &prod);
        assert!(story.len() >= 3, "{story:?}");
        assert!(story[0].contains("introduced"), "{story:?}");
        assert!(
            story.iter().any(|l| l.contains("input on channel a")),
            "{story:?}"
        );
        assert!(
            story.iter().any(|l| l.contains("output on channel b")),
            "{story:?}"
        );
    }

    #[test]
    fn provenance_narrates_a_decryption_release() {
        let p = parse_process("c<{m, new r}:k>.0 | c(z). case z of {x}:k in d<x>.0").unwrap();
        let (sol, prov) = solve_traced(Constraints::generate(&p));
        let prod = Prod::Name(Symbol::intern("m"));
        let story = prov.explain(&sol, FlowVar::Kappa(Symbol::intern("d")), &prod);
        assert!(story.iter().any(|l| l.contains("decryption")), "{story:?}");
    }

    #[test]
    fn provenance_reports_absent_flows() {
        let p = parse_process("a<m>.0").unwrap();
        let (sol, prov) = solve_traced(Constraints::generate(&p));
        let prod = Prod::Zero;
        let story = prov.explain(&sol, FlowVar::Kappa(Symbol::intern("a")), &prod);
        assert_eq!(story.len(), 1);
        assert!(story[0].contains("not present"), "{story:?}");
    }

    #[test]
    fn traced_and_untraced_solutions_agree() {
        let p =
            parse_process("(new k) (c<{m, new r}:k>.0 | c(z). case z of {x}:k in d<x>.0)").unwrap();
        let plain = solve(Constraints::generate(&p));
        let (traced, _) = solve_traced(Constraints::generate(&p));
        assert_eq!(plain.stats().productions, traced.stats().productions);
        assert_eq!(plain.stats().edges, traced.stats().edges);
    }

    fn analyze(src: &str) -> (nuspi_syntax::Process, Solution) {
        let p = parse_process(src).unwrap();
        let sol = solve(Constraints::generate(&p));
        (p, sol)
    }

    fn chan(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn output_populates_kappa() {
        let (_, sol) = analyze("c<m>.0");
        let k = sol.kappa(chan("c"));
        assert_eq!(k.len(), 1);
        assert!(k.contains(&Prod::Name(chan("m"))));
    }

    #[test]
    fn communication_flows_into_rho() {
        let (p, sol) = analyze("c<m>.0 | c(x).0");
        let x = var_named(&p, "x");
        assert!(sol.rho(x).contains(&Prod::Name(chan("m"))));
    }

    fn var_named(p: &nuspi_syntax::Process, name: &str) -> Var {
        fn walk(p: &nuspi_syntax::Process, name: &str, out: &mut Option<Var>) {
            use nuspi_syntax::Process as P;
            match p {
                P::Input { var, then, .. } => {
                    if var.symbol().as_str() == name {
                        *out = Some(*var);
                    }
                    walk(then, name, out);
                }
                P::Par(a, b) => {
                    walk(a, name, out);
                    walk(b, name, out);
                }
                P::Restrict { body, .. } | P::Hide { body, .. } => walk(body, name, out),
                P::Replicate(q) => walk(q, name, out),
                P::Output { then, .. } => walk(then, name, out),
                P::Match { then, .. } => walk(then, name, out),
                P::Let { fst, snd, then, .. } => {
                    if fst.symbol().as_str() == name {
                        *out = Some(*fst);
                    }
                    if snd.symbol().as_str() == name {
                        *out = Some(*snd);
                    }
                    walk(then, name, out);
                }
                P::CaseNat {
                    pred, zero, succ, ..
                } => {
                    if pred.symbol().as_str() == name {
                        *out = Some(*pred);
                    }
                    walk(zero, name, out);
                    walk(succ, name, out);
                }
                P::CaseDec { vars, then, .. } => {
                    for v in vars {
                        if v.symbol().as_str() == name {
                            *out = Some(*v);
                        }
                    }
                    walk(then, name, out);
                }
                P::Nil => {}
            }
        }
        let mut out = None;
        walk(p, name, &mut out);
        out.unwrap_or_else(|| panic!("no variable {name}"))
    }

    #[test]
    fn relay_chains_flow_transitively() {
        let (p, sol) = analyze("a<m>.0 | a(x).b<x>.0 | b(y).0");
        let y = var_named(&p, "y");
        assert!(sol.rho(y).contains(&Prod::Name(chan("m"))));
        assert!(sol.kappa(chan("b")).contains(&Prod::Name(chan("m"))));
    }

    #[test]
    fn split_distributes_components() {
        let (p, sol) = analyze("c<(a, b)>.0 | c(z). let (x, y) = z in d<x>.e<y>.0");
        let x = var_named(&p, "x");
        let y = var_named(&p, "y");
        assert!(sol.rho(x).contains(&Prod::Name(chan("a"))));
        assert!(sol.rho(y).contains(&Prod::Name(chan("b"))));
        assert!(!sol.rho(x).contains(&Prod::Name(chan("b"))));
    }

    #[test]
    fn case_suc_extracts_predecessor() {
        let (p, sol) = analyze("c<2>.0 | c(z). case z of 0: 0, suc(x): d<x>.0");
        let x = var_named(&p, "x");
        // x may be suc(0) — i.e. ρ(x) contains a Suc production.
        assert!(sol.rho(x).iter().any(|pr| matches!(pr, Prod::Suc(_))));
    }

    #[test]
    fn decryption_with_matching_key_fires() {
        let (p, sol) = analyze("c<{m, new r}:k>.0 | c(z). case z of {x}:k in d<x>.0");
        let x = var_named(&p, "x");
        assert!(sol.rho(x).contains(&Prod::Name(chan("m"))));
        assert!(sol.kappa(chan("d")).contains(&Prod::Name(chan("m"))));
    }

    #[test]
    fn decryption_with_wrong_key_does_not_fire() {
        let (p, sol) = analyze("c<{m, new r}:k>.0 | c(z). case z of {x}:k2 in d<x>.0");
        let x = var_named(&p, "x");
        assert!(sol.rho(x).is_empty());
        assert!(sol.kappa(chan("d")).is_empty());
    }

    #[test]
    fn decryption_with_wrong_arity_does_not_fire() {
        let (p, sol) = analyze("c<{m, new r}:k>.0 | c(z). case z of {x, y}:k in d<x>.0");
        let x = var_named(&p, "x");
        assert!(sol.rho(x).is_empty());
    }

    #[test]
    fn restricted_key_decryption_fires_on_canonical_name() {
        let (p, sol) = analyze("(new k) (c<{m, new r}:k>.0 | c(z). case z of {x}:k in d<x>.0)");
        let x = var_named(&p, "x");
        assert!(sol.rho(x).contains(&Prod::Name(chan("m"))));
    }

    #[test]
    fn structured_keys_need_language_intersection() {
        // Key is the pair (a,b) built at two different sites — membership
        // must be decided by language intersection, not production id.
        let (p, sol) = analyze("c<{m, new r}:(a, b)>.0 | c(z). case z of {x}:(a, b) in d<x>.0");
        let x = var_named(&p, "x");
        assert!(
            sol.rho(x).contains(&Prod::Name(chan("m"))),
            "two distinct pair sites with equal language must unlock"
        );
    }

    #[test]
    fn structured_keys_with_different_languages_stay_locked() {
        let (p, sol) = analyze("c<{m, new r}:(a, b)>.0 | c(z). case z of {x}:(a, wrong) in d<x>.0");
        let x = var_named(&p, "x");
        assert!(sol.rho(x).is_empty());
    }

    #[test]
    fn key_learned_later_unlocks_parked_decryption() {
        // The key k2 only reaches the decryptor through a communication
        // that the solver discovers *after* the Enc production arrives.
        let (p, sol) = analyze(
            "c<{m, new r}:k2>.0 | kchan<k2>.0 | kchan(kk). c(z). case z of {x}:kk in d<x>.0",
        );
        let x = var_named(&p, "x");
        assert!(
            sol.rho(x).contains(&Prod::Name(chan("m"))),
            "parked decryption must re-fire once κ(kchan) feeds ρ(kk)"
        );
    }

    #[test]
    fn contains_decides_membership() {
        let (p, sol) = analyze("c<(m, 0)>.0 | c(x).0");
        let x = var_named(&p, "x");
        let w = Value::pair(Value::name("m"), Value::zero());
        assert!(sol.contains(FlowVar::Rho(x), &w));
        assert!(!sol.contains(FlowVar::Rho(x), &Value::zero()));
    }

    #[test]
    fn contains_canonicalizes_fresh_names() {
        let (p, sol) = analyze("(new s) c<s>.0 | c(x).0");
        let x = var_named(&p, "x");
        let fresh = nuspi_syntax::Name::global("s").freshen();
        assert!(sol.contains(FlowVar::Rho(x), &Value::name(fresh)));
    }

    #[test]
    fn enumerate_lists_small_values() {
        let (_, sol) = analyze("c<0>.c<suc(0)>.0");
        let vals = sol.enumerate(FlowVar::Kappa(chan("c")), 3, 10);
        assert!(vals.contains(&Value::Zero));
        assert!(vals.iter().any(|v| v.as_numeral() == Some(1)));
    }

    #[test]
    fn self_loop_through_channel_terminates() {
        // x is re-sent on its own input channel: κ(c) ⊆ ρ(x) ⊆ κ(c).
        let (_, sol) = analyze("c<m>.0 | !c(x).c<x>.0");
        assert!(sol.kappa(chan("c")).contains(&Prod::Name(chan("m"))));
    }

    #[test]
    fn growing_recursion_through_suc_terminates() {
        // Each round wraps another suc — the grammar stays finite where
        // the value set would be infinite.
        let (_, sol) = analyze("c<0>.0 | !c(x).c<suc(x)>.0");
        let k = sol.kappa(chan("c"));
        assert!(k.contains(&Prod::Zero));
        assert!(k.iter().any(|p| matches!(p, Prod::Suc(_))));
        // The language is infinite: every numeral is a member.
        for n in 0..10 {
            assert!(sol.contains(FlowVar::Kappa(chan("c")), &Value::numeral(n)));
        }
        assert!(!sol.contains(FlowVar::Kappa(chan("c")), &Value::name("m")));
    }

    #[test]
    fn stats_are_populated() {
        let (_, sol) = analyze("c<{m, new r}:k>.0 | c(z). case z of {x}:k in 0");
        let st = sol.stats();
        assert!(st.flow_vars > 0);
        assert!(st.productions > 0);
        assert!(st.conditional_firings > 0);
        assert!(st.intersection_queries > 0);
        assert!(st.rounds >= 1);
    }

    #[test]
    fn wmf_example_analysis() {
        // Example 1 of the paper: the payload m flows to B's variable q,
        // and the session key kAB reaches the server's s and B's y.
        let src = "
            (new kAS) (new kBS) (
              ((new kAB) cAS<{kAB, new r1}:kAS>. cAB<{m, new r2}:kAB>.0
               | cBS(t). case t of {y}:kBS in cAB(z). case z of {q}:y in 0)
              | cAS(x). case x of {s}:kAS in cBS<{s, new r3}:kBS>.0
            )";
        let (p, sol) = analyze(src);
        let q = var_named(&p, "q");
        let s = var_named(&p, "s");
        let y = var_named(&p, "y");
        assert!(sol.rho(q).contains(&Prod::Name(chan("m"))));
        assert!(sol.rho(s).contains(&Prod::Name(chan("kAB"))));
        assert!(sol.rho(y).contains(&Prod::Name(chan("kAB"))));
        // No cleartext secret on the public channels: κ(cAS) holds only
        // ciphertexts.
        assert!(sol
            .kappa(chan("cAS"))
            .iter()
            .all(|pr| matches!(pr, Prod::Enc { .. })));
    }
}
