//! A deliberately naive reference solver: Table 2 as straight round-robin
//! iteration to fixpoint.
//!
//! No worklist, no subset-edge graph, no intersection cache, no parked
//! retry queue — every pass re-applies *every* constraint against the
//! current production sets, and solving stops when a full pass changes
//! nothing. That is the textbook Kleene iteration of the clauses, slow
//! (each pass is linear in the constraint count times the current
//! solution size, and there can be many passes) but so simple that its
//! correctness is evident by inspection of Table 2. The optimised solvers
//! ([`solve`](crate::solve), [`solve_parallel`](crate::solve_parallel))
//! are differentially tested against it: on every input, all three must
//! produce the same estimate `(ρ, κ, ζ)`.

use crate::constraints::{Constraint, Constraints};
use crate::domain::{FlowVar, Prod, VarId, VarTable};
use crate::solver::{intersect_fixpoint, Solution, SolverStats};
use std::collections::HashSet;

/// Computes the least solution by round-robin iteration to fixpoint.
pub fn solve_reference(constraints: Constraints) -> Solution {
    let Constraints { mut vars, list } = constraints;
    // Pre-intern κ(n) for every name production of the program: Name
    // productions only originate from seed constraints, so no further κ
    // variable can arise during solving.
    for c in &list {
        if let Constraint::Prod {
            prod: Prod::Name(n),
            ..
        } = c
        {
            vars.intern(FlowVar::Kappa(*n));
        }
    }
    let kappa = |vars: &VarTable, n| {
        vars.get(FlowVar::Kappa(n))
            .expect("kappa pre-interned for every name production")
    };

    let mut prods: Vec<HashSet<Prod>> = vec![HashSet::new(); vars.len()];
    let mut stats = SolverStats {
        flow_vars: vars.len(),
        ..SolverStats::default()
    };

    loop {
        let round_start = std::time::Instant::now();
        stats.rounds += 1;
        let mut changed = false;
        for c in &list {
            match c {
                Constraint::Prod { prod, into } => {
                    changed |= prods[into.index()].insert(prod.clone());
                }
                Constraint::Sub { from, into } => {
                    changed |= copy_all(&mut prods, *from, *into);
                }
                Constraint::Output { chan, msg } => {
                    for n in names_in(&prods[chan.index()]) {
                        let k = kappa(&vars, n);
                        stats.conditional_firings += 1;
                        changed |= copy_all(&mut prods, *msg, k);
                    }
                }
                Constraint::Input { chan, var } => {
                    for n in names_in(&prods[chan.index()]) {
                        let k = kappa(&vars, n);
                        stats.conditional_firings += 1;
                        changed |= copy_all(&mut prods, k, *var);
                    }
                }
                Constraint::Split {
                    scrutinee,
                    fst,
                    snd,
                } => {
                    let pairs: Vec<(VarId, VarId)> = prods[scrutinee.index()]
                        .iter()
                        .filter_map(|p| match p {
                            Prod::Pair(a, b) => Some((*a, *b)),
                            _ => None,
                        })
                        .collect();
                    for (a, b) in pairs {
                        stats.conditional_firings += 1;
                        changed |= copy_all(&mut prods, a, *fst);
                        changed |= copy_all(&mut prods, b, *snd);
                    }
                }
                Constraint::CaseSuc { scrutinee, pred } => {
                    let sucs: Vec<VarId> = prods[scrutinee.index()]
                        .iter()
                        .filter_map(|p| match p {
                            Prod::Suc(a) => Some(*a),
                            _ => None,
                        })
                        .collect();
                    for a in sucs {
                        stats.conditional_firings += 1;
                        changed |= copy_all(&mut prods, a, *pred);
                    }
                }
                Constraint::Decrypt {
                    scrutinee,
                    key,
                    vars: xs,
                } => {
                    let encs: Vec<(Vec<VarId>, VarId)> = prods[scrutinee.index()]
                        .iter()
                        .filter_map(|p| match p {
                            Prod::Enc {
                                args, key: enc_key, ..
                            } if args.len() == xs.len() => Some((args.clone(), *enc_key)),
                            _ => None,
                        })
                        .collect();
                    for (args, enc_key) in encs {
                        // Deliberately uncached: a fresh saturation per
                        // query, discarded immediately.
                        stats.intersection_queries += 1;
                        stats.cache_misses += 1;
                        let mut known = HashSet::new();
                        if intersect_fixpoint(prods.as_slice(), &mut known, enc_key, *key) {
                            stats.conditional_firings += 1;
                            for (a, x) in args.into_iter().zip(xs.iter()) {
                                changed |= copy_all(&mut prods, a, *x);
                            }
                        }
                    }
                }
            }
        }
        stats
            .round_millis
            .push(round_start.elapsed().as_secs_f64() * 1e3);
        if !changed {
            break;
        }
    }

    stats.productions = prods.iter().map(HashSet::len).sum();
    Solution::from_parts(vars, prods, stats)
}

/// `prods[into] ∪= prods[from]`; reports whether anything was new.
fn copy_all(prods: &mut [HashSet<Prod>], from: VarId, into: VarId) -> bool {
    if from == into {
        return false;
    }
    let source: Vec<Prod> = prods[from.index()].iter().cloned().collect();
    let target = &mut prods[into.index()];
    let mut changed = false;
    for p in source {
        changed |= target.insert(p);
    }
    changed
}

fn names_in(set: &HashSet<Prod>) -> Vec<nuspi_syntax::Symbol> {
    set.iter()
        .filter_map(|p| match p {
            Prod::Name(n) => Some(*n),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve;
    use nuspi_syntax::{parse_process, Symbol};

    fn both(src: &str) -> (Solution, Solution) {
        let p = parse_process(src).unwrap();
        (
            solve(Constraints::generate(&p)),
            solve_reference(Constraints::generate(&p)),
        )
    }

    #[test]
    fn reference_matches_worklist_on_relay() {
        let (a, b) = both("a<m>.0 | a(x).b<x>.0 | b(y).0");
        a.estimate_eq(&b).unwrap();
    }

    #[test]
    fn reference_matches_worklist_on_decryption() {
        let (a, b) = both("c<{m, new r}:k>.0 | c(z). case z of {x}:k in d<x>.0");
        a.estimate_eq(&b).unwrap();
    }

    #[test]
    fn reference_matches_worklist_on_late_key() {
        let (a, b) =
            both("c<{m, new r}:k2>.0 | kchan<k2>.0 | kchan(kk). c(z). case z of {x}:kk in d<x>.0");
        a.estimate_eq(&b).unwrap();
    }

    #[test]
    fn reference_matches_worklist_on_recursion() {
        let (a, b) = both("c<0>.0 | !c(x).c<suc(x)>.0");
        a.estimate_eq(&b).unwrap();
    }

    #[test]
    fn reference_keeps_wrong_keys_locked() {
        let (_, b) = both("c<{m, new r}:k>.0 | c(z). case z of {x}:k2 in d<x>.0");
        assert!(b.kappa(Symbol::intern("d")).is_empty());
    }

    #[test]
    fn reference_stats_reflect_naivety() {
        let p = parse_process("c<{m, new r}:k>.0 | c(z). case z of {x}:k in d<x>.0").unwrap();
        let sol = solve_reference(Constraints::generate(&p));
        let st = sol.stats();
        assert!(st.rounds >= 2, "at least one productive + one barren pass");
        assert_eq!(st.cache_hits, 0, "the reference never caches");
        assert_eq!(st.cache_misses, st.intersection_queries);
        assert_eq!(st.round_millis.len(), st.rounds);
    }
}
