//! The most powerful attacker, as constraints — Lemma 1's estimate.
//!
//! Definition 4 (confinement) demands `κ(n) = Val_P` on every public
//! channel: not only does nothing secret flow there (`⊆`), but the
//! channel carries *everything the environment can produce* (`⊇`). The
//! `⊇` direction matters: attacker-synthesizable values flow back into
//! the process' destructors, so reflection and type-flaw attacks surface
//! in the analysis. Lemma 1 shows a single estimate covers every attacker
//! `Q` with public names; this module encodes that estimate as ordinary
//! constraints over one distinguished nonterminal — the *ether* — holding
//! the attacker's knowledge:
//!
//! * initially: the process' public free names, a fresh attacker name,
//!   and `0`;
//! * synthesis: closed under `suc`, pairing, and encryption (with an
//!   attacker confounder, at every arity the process decrypts);
//! * analysis: pairs are projected, successors peeled, and ciphertexts
//!   opened when their key language meets the ether;
//! * channels: for every name in the ether, the attacker both taps and
//!   feeds the corresponding channel (`κ(n) ⊆ ether ⊆ κ(n)`) — extruded
//!   channels are covered automatically because their names reach the
//!   ether first.
//!
//! All of this reuses the solver's existing conditional-constraint forms:
//! the attacker is literally the generic process `!e(x).ē⟨x⟩ | …` over
//! every channel it knows.

use crate::constraints::{Constraint, Constraints};
use crate::domain::{FlowVar, Prod, VarId};
use crate::solver::{solve, solve_traced, Provenance, Solution};
use nuspi_syntax::{Expr, Process, Symbol, Term};
use std::collections::HashSet;

/// The canonical name the attacker mints for itself (always public).
pub fn attacker_name() -> Symbol {
    Symbol::intern("adv!")
}

/// The canonical confounder of attacker-built ciphertexts.
pub fn attacker_confounder() -> Symbol {
    Symbol::intern("radv!")
}

/// Extends a constraint system with the most powerful public attacker.
/// `secret` is the set of secret canonical names (the `S` partition); the
/// attacker starts from the process' public free names.
///
/// Returns the ether nonterminal (the attacker's knowledge).
pub fn add_attacker(cs: &mut Constraints, p: &Process, secret: &HashSet<Symbol>) -> VarId {
    let ether = cs.vars.intern(FlowVar::Aux(u32::MAX));
    // Initial knowledge: public free names, the attacker's own name, 0.
    // Sorted so the constraint order — and with it the first-cause
    // provenance chains of traced solves — is independent of hashing.
    let mut free: Vec<_> = p.free_names().into_iter().collect();
    free.sort_by_key(|n| n.to_string());
    for n in free {
        if !secret.contains(&n.canonical()) {
            cs.list.push(Constraint::Prod {
                prod: Prod::Name(n.canonical()),
                into: ether,
            });
        }
    }
    cs.list.push(Constraint::Prod {
        prod: Prod::Name(attacker_name()),
        into: ether,
    });
    cs.list.push(Constraint::Prod {
        prod: Prod::Zero,
        into: ether,
    });
    // Synthesis closure.
    cs.list.push(Constraint::Prod {
        prod: Prod::Suc(ether),
        into: ether,
    });
    cs.list.push(Constraint::Prod {
        prod: Prod::Pair(ether, ether),
        into: ether,
    });
    let mut arities = HashSet::new();
    collect_arities(p, &mut arities);
    for &k in &arities {
        cs.list.push(Constraint::Prod {
            prod: Prod::Enc {
                args: vec![ether; k],
                confounder: attacker_confounder(),
                key: ether,
            },
            into: ether,
        });
        // Analysis: open any ciphertext of this arity whose key the
        // attacker can derive.
        cs.list.push(Constraint::Decrypt {
            scrutinee: ether,
            key: ether,
            vars: vec![ether; k],
        });
    }
    // Analysis: projection and peeling.
    cs.list.push(Constraint::Split {
        scrutinee: ether,
        fst: ether,
        snd: ether,
    });
    cs.list.push(Constraint::CaseSuc {
        scrutinee: ether,
        pred: ether,
    });
    // Channels: tap and feed every channel named in the ether.
    cs.list.push(Constraint::Input {
        chan: ether,
        var: ether,
    });
    cs.list.push(Constraint::Output {
        chan: ether,
        msg: ether,
    });
    ether
}

/// Every encryption/decryption arity occurring in the process: the
/// attacker needs to build and break ciphertexts of exactly these widths.
fn collect_arities(p: &Process, out: &mut HashSet<usize>) {
    fn expr(e: &Expr, out: &mut HashSet<usize>) {
        match &e.term {
            Term::Name(_) | Term::Var(_) | Term::Zero | Term::Val(_) => {}
            Term::Suc(i) => expr(i, out),
            Term::Pair(a, b) => {
                expr(a, out);
                expr(b, out);
            }
            Term::Enc { payload, key, .. } => {
                out.insert(payload.len());
                for p in payload {
                    expr(p, out);
                }
                expr(key, out);
            }
        }
    }
    match p {
        Process::Nil => {}
        Process::Output { chan, msg, then } => {
            expr(chan, out);
            expr(msg, out);
            collect_arities(then, out);
        }
        Process::Input { chan, then, .. } => {
            expr(chan, out);
            collect_arities(then, out);
        }
        Process::Par(a, b) => {
            collect_arities(a, out);
            collect_arities(b, out);
        }
        Process::Restrict { body, .. } | Process::Hide { body, .. } => collect_arities(body, out),
        Process::Replicate(q) => collect_arities(q, out),
        Process::Match { lhs, rhs, then } => {
            expr(lhs, out);
            expr(rhs, out);
            collect_arities(then, out);
        }
        Process::Let { expr: e, then, .. } => {
            expr(e, out);
            collect_arities(then, out);
        }
        Process::CaseNat {
            expr: e,
            zero,
            succ,
            ..
        } => {
            expr(e, out);
            collect_arities(zero, out);
            collect_arities(succ, out);
        }
        Process::CaseDec {
            expr: e,
            vars,
            key,
            then,
        } => {
            out.insert(vars.len());
            expr(e, out);
            expr(key, out);
            collect_arities(then, out);
        }
    }
}

/// A solution for `P` *in the presence of the most powerful attacker*,
/// together with the attacker's knowledge nonterminal.
#[derive(Debug)]
pub struct AttackedSolution {
    /// The least solution of the extended constraint system.
    pub solution: Solution,
    /// The ether (attacker knowledge) nonterminal.
    pub ether: VarId,
}

/// Analyses `P | S` for the most powerful attacker `S` over the public
/// names (the estimate of Lemma 1 / Proposition 1).
pub fn analyze_with_attacker(p: &Process, secret: &HashSet<Symbol>) -> AttackedSolution {
    let mut cs = Constraints::generate(p);
    let ether = add_attacker(&mut cs, p, secret);
    let solution = solve(cs);
    AttackedSolution { solution, ether }
}

/// Like [`analyze_with_attacker`], solving on `threads` shards with
/// [`solve_parallel`](crate::solve_parallel). The estimate is identical
/// to the sequential one (differential testing covers this), so callers
/// can trade solver layout for wall-clock without changing verdicts.
pub fn analyze_with_attacker_parallel(
    p: &Process,
    secret: &HashSet<Symbol>,
    threads: usize,
) -> AttackedSolution {
    let mut cs = Constraints::generate(p);
    let ether = add_attacker(&mut cs, p, secret);
    let solution = crate::solve_parallel(cs, threads);
    AttackedSolution { solution, ether }
}

/// Like [`analyze_with_attacker`], with flow [`Provenance`] recorded.
pub fn analyze_with_attacker_traced(
    p: &Process,
    secret: &HashSet<Symbol>,
) -> (AttackedSolution, Provenance) {
    let mut cs = Constraints::generate(p);
    let ether = add_attacker(&mut cs, p, secret);
    let (solution, provenance) = solve_traced(cs);
    (AttackedSolution { solution, ether }, provenance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_syntax::{parse_process, Value};

    fn secrets(names: &[&str]) -> HashSet<Symbol> {
        names.iter().map(|s| Symbol::intern(s)).collect()
    }

    fn ether_contains(att: &AttackedSolution, w: &Value) -> bool {
        let fv = att.solution.describe(att.ether);
        att.solution.contains(fv, w)
    }

    #[test]
    fn attacker_knows_public_free_names() {
        let p = parse_process("c<m>.0").unwrap();
        let att = analyze_with_attacker(&p, &secrets(&[]));
        assert!(ether_contains(&att, &Value::name("c")));
        assert!(ether_contains(&att, &Value::name("m")));
        assert!(ether_contains(&att, &Value::numeral(3)));
    }

    #[test]
    fn attacker_taps_public_channels() {
        let p = parse_process("(new s) c<s>.0").unwrap();
        let att = analyze_with_attacker(&p, &secrets(&[]));
        // The restricted (but public-kind) name is extruded to the ether.
        assert!(ether_contains(&att, &Value::name("s")));
    }

    #[test]
    fn attacker_cannot_open_secret_key_ciphertexts() {
        let p = parse_process("(new k) (new m) c<{m, new r}:k>.0").unwrap();
        let att = analyze_with_attacker(&p, &secrets(&["k", "m"]));
        assert!(!ether_contains(&att, &Value::name("m")));
        assert!(!ether_contains(&att, &Value::name("k")));
    }

    #[test]
    fn attacker_opens_public_key_ciphertexts() {
        let p = parse_process("(new m) c<{m, new r}:pub>.0").unwrap();
        let att = analyze_with_attacker(&p, &secrets(&["m"]));
        assert!(ether_contains(&att, &Value::name("m")));
    }

    #[test]
    fn attacker_projects_pairs() {
        let p = parse_process("(new m) c<(m, 0)>.0").unwrap();
        let att = analyze_with_attacker(&p, &secrets(&["m"]));
        assert!(ether_contains(&att, &Value::name("m")));
    }

    #[test]
    fn attacker_chains_extruded_channels() {
        let p = parse_process("(new d) (new m) c<d>.d<m>.0").unwrap();
        let att = analyze_with_attacker(&p, &secrets(&["m"]));
        assert!(ether_contains(&att, &Value::name("m")));
    }

    #[test]
    fn attacker_feeds_process_inputs() {
        // The process encrypts its secret under whatever key it receives:
        // the attacker supplies its own name and reads the result.
        let p = parse_process("(new m) c(k). c<{m, new r}:k>.0").unwrap();
        let att = analyze_with_attacker(&p, &secrets(&["m"]));
        assert!(ether_contains(&att, &Value::name("m")));
    }

    #[test]
    fn attacker_reflects_ciphertexts_between_decryptions() {
        // Type flaw: the same key protects two different message formats
        // of equal arity; reflecting message 1 into the position of
        // message 2 binds a public value as the payload key.
        let p = parse_process(
            "(new kas) (new m) (
               c1<{token, new r1}:kas>.0
             | c2(x). case x of {key}:kas in c3<{m, new r2}:key>.0
            )",
        )
        .unwrap();
        let att = analyze_with_attacker(&p, &secrets(&["kas", "m"]));
        assert!(
            ether_contains(&att, &Value::name("m")),
            "reflection must bind the public token as the key"
        );
    }

    #[test]
    fn wmf_resists_the_attacker() {
        let src = "
            (new m) (new kAS) (new kBS) (
              ((new kAB) cAS<{kAB, new r1}:kAS>. cAB<{m, new r2}:kAB>.0
               | cBS(t). case t of {y}:kBS in cAB(z). case z of {q}:y in 0)
              | cAS(x). case x of {s}:kAS in cBS<{s, new r3}:kBS>.0
            )";
        let p = parse_process(src).unwrap();
        let att = analyze_with_attacker(&p, &secrets(&["kAS", "kBS", "kAB", "m"]));
        assert!(!ether_contains(&att, &Value::name("m")));
        assert!(!ether_contains(&att, &Value::name("kAB")));
    }

    #[test]
    fn extended_solution_still_accepts_the_process() {
        let p = parse_process("c<{m, new r}:k>.0 | c(z). case z of {x}:k in d<x>.0").unwrap();
        let att = analyze_with_attacker(&p, &secrets(&[]));
        let violations = crate::accept::verify(&att.solution, &p);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
