//! Finite reference estimates: Table 2 interpreted literally over explicit
//! sets of canonical values.
//!
//! The solver works on a grammar representation; this module is the
//! *reference semantics* of the flow logic for estimates whose components
//! are finite, explicitly enumerated sets. It exists to machine-check the
//! meta-theory of §3:
//!
//! * [`FiniteEstimate::accepts`] is the clause-by-clause acceptability
//!   judgement `(ρ, κ, ζ) ⊨ P`;
//! * [`FiniteEstimate::meet`] is the `⊓` of the Moore-family theorem
//!   (Theorem 2) — the experiment suite verifies that meets of acceptable
//!   estimates stay acceptable and that the solver's least solution is
//!   below every acceptable finite estimate.

use nuspi_syntax::{Expr, Label, Name, Process, Symbol, Term, Value, Var};
use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;

/// A finite set of canonical values.
pub type ValSet = BTreeSet<Rc<Value>>;

/// A finite, explicit estimate `(ρ, κ, ζ)`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FiniteEstimate {
    rho: HashMap<Var, ValSet>,
    kappa: HashMap<Symbol, ValSet>,
    zeta: HashMap<Label, ValSet>,
    empty: ValSet,
}

/// A violated clause, with a human-readable description.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FiniteViolation(pub String);

impl std::fmt::Display for FiniteViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl FiniteEstimate {
    /// The everywhere-empty estimate.
    pub fn new() -> FiniteEstimate {
        FiniteEstimate::default()
    }

    /// Adds a value to `ρ(x)` (canonicalised).
    pub fn add_rho(&mut self, x: Var, w: Rc<Value>) -> &mut Self {
        self.rho.entry(x).or_default().insert(w.canonicalize());
        self
    }

    /// Adds a value to `κ(n)` (canonicalised).
    pub fn add_kappa(&mut self, n: Symbol, w: Rc<Value>) -> &mut Self {
        self.kappa.entry(n).or_default().insert(w.canonicalize());
        self
    }

    /// Adds a value to `ζ(l)` (canonicalised).
    pub fn add_zeta(&mut self, l: Label, w: Rc<Value>) -> &mut Self {
        self.zeta.entry(l).or_default().insert(w.canonicalize());
        self
    }

    /// `ρ(x)`.
    pub fn rho(&self, x: Var) -> &ValSet {
        self.rho.get(&x).unwrap_or(&self.empty)
    }

    /// `κ(n)`.
    pub fn kappa(&self, n: Symbol) -> &ValSet {
        self.kappa.get(&n).unwrap_or(&self.empty)
    }

    /// `ζ(l)`.
    pub fn zeta(&self, l: Label) -> &ValSet {
        self.zeta.get(&l).unwrap_or(&self.empty)
    }

    /// The pointwise meet `⊓` (set intersection on every component).
    pub fn meet(&self, other: &FiniteEstimate) -> FiniteEstimate {
        fn meet_maps<K: std::hash::Hash + Eq + Copy>(
            a: &HashMap<K, ValSet>,
            b: &HashMap<K, ValSet>,
        ) -> HashMap<K, ValSet> {
            let mut out = HashMap::new();
            for (k, va) in a {
                if let Some(vb) = b.get(k) {
                    let meet: ValSet = va.intersection(vb).cloned().collect();
                    if !meet.is_empty() {
                        out.insert(*k, meet);
                    }
                }
            }
            out
        }
        FiniteEstimate {
            rho: meet_maps(&self.rho, &other.rho),
            kappa: meet_maps(&self.kappa, &other.kappa),
            zeta: meet_maps(&self.zeta, &other.zeta),
            empty: ValSet::new(),
        }
    }

    /// The pointwise join (set union on every component).
    pub fn join(&self, other: &FiniteEstimate) -> FiniteEstimate {
        fn join_maps<K: std::hash::Hash + Eq + Copy>(
            a: &HashMap<K, ValSet>,
            b: &HashMap<K, ValSet>,
        ) -> HashMap<K, ValSet> {
            let mut out = a.clone();
            for (k, vb) in b {
                out.entry(*k).or_default().extend(vb.iter().cloned());
            }
            out
        }
        FiniteEstimate {
            rho: join_maps(&self.rho, &other.rho),
            kappa: join_maps(&self.kappa, &other.kappa),
            zeta: join_maps(&self.zeta, &other.zeta),
            empty: ValSet::new(),
        }
    }

    /// The partial order `⊑` of the estimate lattice: pointwise `⊆`.
    pub fn leq(&self, other: &FiniteEstimate) -> bool {
        fn leq_maps<K: std::hash::Hash + Eq>(
            a: &HashMap<K, ValSet>,
            b: &HashMap<K, ValSet>,
        ) -> bool {
            a.iter().all(|(k, va)| {
                va.is_empty() || b.get(k).map(|vb| va.is_subset(vb)).unwrap_or(false)
            })
        }
        leq_maps(&self.rho, &other.rho)
            && leq_maps(&self.kappa, &other.kappa)
            && leq_maps(&self.zeta, &other.zeta)
    }

    /// Lemma 2's restriction: keeps only the `ρ` entries for variables
    /// occurring in `p` and the `ζ` entries for labels occurring in `p`
    /// (`κ` is untouched — it is indexed by canonical names, which are
    /// global). Lemma 2 states `(ρ, κ, ζ) ⊨ P iff (ρ|B, κ, ζ|L) ⊨ P`.
    pub fn restrict_to(&self, p: &Process) -> FiniteEstimate {
        let labels: std::collections::HashSet<Label> = p.labels().into_iter().collect();
        let vars = collect_vars(p);
        FiniteEstimate {
            rho: self
                .rho
                .iter()
                .filter(|(x, _)| vars.contains(x))
                .map(|(x, s)| (*x, s.clone()))
                .collect(),
            kappa: self.kappa.clone(),
            zeta: self
                .zeta
                .iter()
                .filter(|(l, _)| labels.contains(l))
                .map(|(l, s)| (*l, s.clone()))
                .collect(),
            empty: ValSet::new(),
        }
    }

    /// The acceptability judgement `(ρ, κ, ζ) ⊨ P`, Table 2 read literally
    /// over the finite sets. Returns every violated clause.
    pub fn verify(&self, p: &Process) -> Vec<FiniteViolation> {
        let mut c = FiniteChecker {
            est: self,
            violations: Vec::new(),
        };
        c.process(p);
        c.violations
    }

    /// Whether the estimate is acceptable for `p`.
    pub fn accepts(&self, p: &Process) -> bool {
        self.verify(p).is_empty()
    }
}

struct FiniteChecker<'a> {
    est: &'a FiniteEstimate,
    violations: Vec<FiniteViolation>,
}

impl FiniteChecker<'_> {
    fn fail(&mut self, msg: String) {
        self.violations.push(FiniteViolation(msg));
    }

    fn need(&mut self, w: Rc<Value>, l: Label, ctx: &str) {
        if !self.est.zeta(l).contains(&w) {
            self.fail(format!("{ctx}: {w} ∉ ζ({l})"));
        }
    }

    fn expr(&mut self, e: &Expr) {
        let l = e.label;
        match &e.term {
            Term::Name(n) => self.need(Value::name(Name::global(n.canonical())), l, "name clause"),
            Term::Zero => self.need(Value::zero(), l, "zero clause"),
            Term::Var(x) => {
                for w in self.est.rho(*x).clone() {
                    if !self.est.zeta(l).contains(&w) {
                        self.fail(format!("variable clause: {w} ∈ ρ({x}) but ∉ ζ({l})"));
                    }
                }
            }
            Term::Suc(inner) => {
                self.expr(inner);
                for w in self.est.zeta(inner.label).clone() {
                    self.need(Value::suc(w), l, "suc clause");
                }
            }
            Term::Pair(a, b) => {
                self.expr(a);
                self.expr(b);
                for u in self.est.zeta(a.label).clone() {
                    for v in self.est.zeta(b.label).clone() {
                        self.need(Value::pair(u.clone(), v), l, "pair clause");
                    }
                }
            }
            Term::Enc {
                payload,
                confounder,
                key,
            } => {
                for p in payload {
                    self.expr(p);
                }
                self.expr(key);
                // ENC{ζ(l₁),…,ζ(lₖ),{⌊r⌋}}_{ζ(l₀)} ⊆ ζ(l): all payload
                // combinations under all keys.
                let slots: Vec<Vec<Rc<Value>>> = payload
                    .iter()
                    .map(|p| self.est.zeta(p.label).iter().cloned().collect())
                    .collect();
                let keys: Vec<Rc<Value>> = self.est.zeta(key.label).iter().cloned().collect();
                let conf = Name::global(confounder.canonical());
                for combo in combinations(&slots) {
                    for k in &keys {
                        self.need(
                            Value::enc(combo.clone(), conf, k.clone()),
                            l,
                            "encryption clause",
                        );
                    }
                }
            }
            Term::Val(w) => self.need(w.canonicalize(), l, "value clause"),
        }
    }

    fn process(&mut self, p: &Process) {
        match p {
            Process::Nil => {}
            Process::Output { chan, msg, then } => {
                self.expr(chan);
                self.expr(msg);
                self.process(then);
                for w in self.est.zeta(chan.label).clone() {
                    if let Value::Name(n) = &*w {
                        for m in self.est.zeta(msg.label).clone() {
                            if !self.est.kappa(n.canonical()).contains(&m) {
                                self.fail(format!("output clause: {m} ∉ κ({n})"));
                            }
                        }
                    }
                }
            }
            Process::Input { chan, var, then } => {
                self.expr(chan);
                self.process(then);
                for w in self.est.zeta(chan.label).clone() {
                    if let Value::Name(n) = &*w {
                        for m in self.est.kappa(n.canonical()).clone() {
                            if !self.est.rho(*var).contains(&m) {
                                self.fail(format!("input clause: {m} ∉ ρ({var})"));
                            }
                        }
                    }
                }
            }
            Process::Par(a, b) => {
                self.process(a);
                self.process(b);
            }
            Process::Restrict { body, .. } | Process::Hide { body, .. } => self.process(body),
            Process::Replicate(q) => self.process(q),
            Process::Match { lhs, rhs, then } => {
                self.expr(lhs);
                self.expr(rhs);
                self.process(then);
            }
            Process::Let {
                fst,
                snd,
                expr,
                then,
            } => {
                self.expr(expr);
                self.process(then);
                for w in self.est.zeta(expr.label).clone() {
                    if let Value::Pair(a, b) = &*w {
                        if !self.est.rho(*fst).contains(a) {
                            self.fail(format!("let clause: {a} ∉ ρ({fst})"));
                        }
                        if !self.est.rho(*snd).contains(b) {
                            self.fail(format!("let clause: {b} ∉ ρ({snd})"));
                        }
                    }
                }
            }
            Process::CaseNat {
                expr,
                zero,
                pred,
                succ,
            } => {
                self.expr(expr);
                self.process(zero);
                self.process(succ);
                for w in self.est.zeta(expr.label).clone() {
                    if let Value::Suc(inner) = &*w {
                        if !self.est.rho(*pred).contains(inner) {
                            self.fail(format!("case-suc clause: {inner} ∉ ρ({pred})"));
                        }
                    }
                }
            }
            Process::CaseDec {
                expr,
                vars,
                key,
                then,
            } => {
                self.expr(expr);
                self.expr(key);
                self.process(then);
                for w in self.est.zeta(expr.label).clone() {
                    if let Value::Enc {
                        payload, key: used, ..
                    } = &*w
                    {
                        if payload.len() == vars.len() && self.est.zeta(key.label).contains(used) {
                            for (x, wi) in vars.iter().zip(payload) {
                                if !self.est.rho(*x).contains(wi) {
                                    self.fail(format!("decryption clause: {wi} ∉ ρ({x})"));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Every variable (bound or occurring) of a process.
fn collect_vars(p: &Process) -> std::collections::HashSet<Var> {
    fn expr(e: &Expr, out: &mut std::collections::HashSet<Var>) {
        match &e.term {
            Term::Var(x) => {
                out.insert(*x);
            }
            Term::Name(_) | Term::Zero | Term::Val(_) => {}
            Term::Suc(i) => expr(i, out),
            Term::Pair(a, b) => {
                expr(a, out);
                expr(b, out);
            }
            Term::Enc { payload, key, .. } => {
                for p in payload {
                    expr(p, out);
                }
                expr(key, out);
            }
        }
    }
    fn walk(p: &Process, out: &mut std::collections::HashSet<Var>) {
        match p {
            Process::Nil => {}
            Process::Output { chan, msg, then } => {
                expr(chan, out);
                expr(msg, out);
                walk(then, out);
            }
            Process::Input { chan, var, then } => {
                expr(chan, out);
                out.insert(*var);
                walk(then, out);
            }
            Process::Par(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Process::Restrict { body, .. } | Process::Hide { body, .. } => walk(body, out),
            Process::Replicate(q) => walk(q, out),
            Process::Match { lhs, rhs, then } => {
                expr(lhs, out);
                expr(rhs, out);
                walk(then, out);
            }
            Process::Let {
                fst,
                snd,
                expr: e,
                then,
            } => {
                out.insert(*fst);
                out.insert(*snd);
                expr(e, out);
                walk(then, out);
            }
            Process::CaseNat {
                expr: e,
                zero,
                pred,
                succ,
            } => {
                expr(e, out);
                out.insert(*pred);
                walk(zero, out);
                walk(succ, out);
            }
            Process::CaseDec {
                expr: e,
                vars,
                key,
                then,
            } => {
                expr(e, out);
                expr(key, out);
                out.extend(vars.iter().copied());
                walk(then, out);
            }
        }
    }
    let mut out = std::collections::HashSet::new();
    walk(p, &mut out);
    out
}

/// Cartesian product of the slots.
fn combinations(slots: &[Vec<Rc<Value>>]) -> Vec<Vec<Rc<Value>>> {
    let mut out = vec![Vec::new()];
    for slot in slots {
        let mut next = Vec::new();
        for prefix in &out {
            for v in slot {
                let mut row = prefix.clone();
                row.push(v.clone());
                next.push(row);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_syntax::parse_process;

    /// Builds a finite estimate for a flat process (names only) by
    /// saturating Table 2 naively.
    fn saturate(p: &Process, extra: &FiniteEstimate) -> FiniteEstimate {
        let mut est = extra.clone();
        // A crude fixpoint: apply clause closures until stable. Only valid
        // for processes whose expressions are names/vars (no constructors).
        for _ in 0..64 {
            let before = est.clone();
            let mut c = Saturator { est: &mut est };
            c.process(p);
            if before == est {
                break;
            }
        }
        est
    }

    struct Saturator<'a> {
        est: &'a mut FiniteEstimate,
    }

    impl Saturator<'_> {
        fn expr(&mut self, e: &Expr) {
            match &e.term {
                Term::Name(n) => {
                    self.est
                        .add_zeta(e.label, Value::name(Name::global(n.canonical())));
                }
                Term::Var(x) => {
                    for w in self.est.rho(*x).clone() {
                        self.est.add_zeta(e.label, w);
                    }
                }
                _ => panic!("saturator only supports flat expressions"),
            }
        }

        fn process(&mut self, p: &Process) {
            match p {
                Process::Nil => {}
                Process::Output { chan, msg, then } => {
                    self.expr(chan);
                    self.expr(msg);
                    self.process(then);
                    for w in self.est.zeta(chan.label).clone() {
                        if let Value::Name(n) = &*w {
                            for m in self.est.zeta(msg.label).clone() {
                                self.est.add_kappa(n.canonical(), m);
                            }
                        }
                    }
                }
                Process::Input { chan, var, then } => {
                    self.expr(chan);
                    for w in self.est.zeta(chan.label).clone() {
                        if let Value::Name(n) = &*w {
                            for m in self.est.kappa(n.canonical()).clone() {
                                self.est.add_rho(*var, m);
                            }
                        }
                    }
                    self.process(then);
                }
                Process::Par(a, b) => {
                    self.process(a);
                    self.process(b);
                }
                Process::Restrict { body, .. } => self.process(body),
                Process::Replicate(q) => self.process(q),
                _ => panic!("saturator only supports flat processes"),
            }
        }
    }

    #[test]
    fn saturated_estimate_is_acceptable() {
        let p = parse_process("c<m>.0 | c(x).d<x>.0").unwrap();
        let est = saturate(&p, &FiniteEstimate::new());
        assert!(est.accepts(&p), "{:?}", est.verify(&p));
    }

    #[test]
    fn empty_estimate_rejects_nonempty_process() {
        let p = parse_process("c<m>.0").unwrap();
        let est = FiniteEstimate::new();
        assert!(!est.accepts(&p));
    }

    #[test]
    fn empty_estimate_accepts_nil() {
        assert!(FiniteEstimate::new().accepts(&Process::Nil));
    }

    #[test]
    fn moore_meet_of_acceptable_is_acceptable() {
        // Two different over-approximations of the same flat process.
        let p = parse_process("c<m>.0 | c(x).d<x>.0").unwrap();
        let mut extra1 = FiniteEstimate::new();
        extra1.add_kappa(Symbol::intern("c"), Value::name("junk1"));
        let mut extra2 = FiniteEstimate::new();
        extra2.add_kappa(Symbol::intern("c"), Value::name("junk2"));
        let e1 = saturate(&p, &extra1);
        let e2 = saturate(&p, &extra2);
        assert!(e1.accepts(&p));
        assert!(e2.accepts(&p));
        let met = e1.meet(&e2);
        assert!(met.accepts(&p), "{:?}", met.verify(&p));
        assert!(met.leq(&e1) && met.leq(&e2));
    }

    #[test]
    fn least_saturation_is_below_padded_saturations() {
        let p = parse_process("c<m>.0 | c(x).d<x>.0").unwrap();
        let least = saturate(&p, &FiniteEstimate::new());
        let mut extra = FiniteEstimate::new();
        extra.add_kappa(Symbol::intern("d"), Value::name("noise"));
        let padded = saturate(&p, &extra);
        assert!(least.leq(&padded));
        assert!(!padded.leq(&least));
    }

    #[test]
    fn join_is_upper_bound() {
        let mut a = FiniteEstimate::new();
        a.add_kappa(Symbol::intern("c"), Value::zero());
        let mut b = FiniteEstimate::new();
        b.add_kappa(Symbol::intern("c"), Value::name("m"));
        let j = a.join(&b);
        assert!(a.leq(&j) && b.leq(&j));
        assert_eq!(j.kappa(Symbol::intern("c")).len(), 2);
    }

    #[test]
    fn leq_is_reflexive_and_antisymmetric_here() {
        let mut a = FiniteEstimate::new();
        a.add_kappa(Symbol::intern("c"), Value::zero());
        assert!(a.leq(&a));
        let b = a.clone();
        assert!(a.leq(&b) && b.leq(&a));
    }

    #[test]
    fn structured_clause_checking_pairs() {
        let p = parse_process("c<(a, b)>.0").unwrap();
        // Hand-build an acceptable estimate.
        let (chan_l, pair_l, a_l, b_l) = match &p {
            Process::Output { chan, msg, .. } => match &msg.term {
                Term::Pair(a, b) => (chan.label, msg.label, a.label, b.label),
                _ => unreachable!(),
            },
            _ => unreachable!(),
        };
        let mut est = FiniteEstimate::new();
        est.add_zeta(chan_l, Value::name("c"));
        est.add_zeta(a_l, Value::name("a"));
        est.add_zeta(b_l, Value::name("b"));
        let pair = Value::pair(Value::name("a"), Value::name("b"));
        est.add_zeta(pair_l, pair.clone());
        est.add_kappa(Symbol::intern("c"), pair);
        assert!(est.accepts(&p), "{:?}", est.verify(&p));
        // Dropping the κ entry breaks the output clause.
        let mut broken = FiniteEstimate::new();
        broken.add_zeta(chan_l, Value::name("c"));
        broken.add_zeta(a_l, Value::name("a"));
        broken.add_zeta(b_l, Value::name("b"));
        broken.add_zeta(pair_l, Value::pair(Value::name("a"), Value::name("b")));
        assert!(!broken.accepts(&p));
    }

    #[test]
    fn lemma2_restriction_preserves_acceptability() {
        // (ρ, κ, ζ) ⊨ P iff (ρ|B, κ, ζ|L) ⊨ P — padding on *foreign*
        // variables and labels is irrelevant.
        let p = parse_process("c<m>.0 | c(x).d<x>.0").unwrap();
        let mut est = saturate(&p, &FiniteEstimate::new());
        assert!(est.accepts(&p));
        // Pad with entries for a different process entirely.
        let other = parse_process("e(y).f<y>.0").unwrap();
        if let Process::Input { var, .. } = &other {
            est.add_rho(*var, Value::name("noise"));
        }
        est.add_zeta(nuspi_syntax::Label::fresh(), Value::name("noise"));
        let restricted = est.restrict_to(&p);
        assert!(restricted.accepts(&p), "{:?}", restricted.verify(&p));
        assert!(restricted.leq(&est));
        // The padding is gone but the P-relevant part is intact.
        assert!(est.accepts(&p), "padding never broke acceptability");
        assert_eq!(restricted.restrict_to(&p), restricted, "idempotent");
    }

    #[test]
    fn decryption_clause_checks_key_membership() {
        let p = parse_process("case e of {x}:k in 0").unwrap();
        let (ct_l, key_l, x) = match &p {
            Process::CaseDec {
                expr, key, vars, ..
            } => (expr.label, key.label, vars[0]),
            _ => unreachable!(),
        };
        let ct = Value::enc(vec![Value::name("m")], Name::global("r"), Value::name("k"));
        // Key matches, payload missing from ρ(x): violation.
        let mut est = FiniteEstimate::new();
        est.add_zeta(ct_l, ct.clone());
        est.add_zeta(key_l, Value::name("k"));
        // the free name `e` also needs its clause
        est.add_zeta(ct_l, Value::name("e"));
        assert!(!est.accepts(&p));
        // Add the payload: acceptable.
        est.add_rho(x, Value::name("m"));
        assert!(est.accepts(&p), "{:?}", est.verify(&p));
        // Wrong key in ζ(l′): clause vacuous, estimate acceptable without ρ(x).
        let mut est2 = FiniteEstimate::new();
        est2.add_zeta(ct_l, ct);
        est2.add_zeta(ct_l, Value::name("e"));
        est2.add_zeta(key_l, Value::name("k"));
        let mut est3 = est2.clone();
        est3.rho.clear();
        // est2 == est3 without rho; key matches so it must be rejected.
        assert!(!est3.accepts(&p));
    }
}
