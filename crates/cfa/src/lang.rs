//! Language-level queries on solved grammars.
//!
//! The language `L(v)` of a nonterminal is a regular tree language; this
//! module answers the decidable questions a user of the analysis asks
//! about it:
//!
//! * [`Solution::is_empty_lang`] — does the flow variable denote any
//!   value at all? (an empty `ρ(x)` means the variable can never be
//!   bound at run time);
//! * [`Solution::is_finite_lang`] — finitely many values, or unboundedly
//!   many (a growing protocol state, e.g. `!c(x).c⟨suc(x)⟩`)?
//! * [`Solution::min_height`] — the height of the smallest derivable
//!   value;
//! * [`Solution::count_upto`] — the number of distinct values up to a
//!   height bound (saturating).

use crate::domain::{FlowVar, Prod, VarId};
use crate::solver::Solution;
use std::collections::{HashMap, HashSet};

impl Solution {
    /// The set of *productive* nonterminals: those deriving at least one
    /// finite value.
    fn productive(&self) -> HashSet<VarId> {
        let mut productive: HashSet<VarId> = HashSet::new();
        loop {
            let mut changed = false;
            for (id, _) in self.flow_vars() {
                if productive.contains(&id) {
                    continue;
                }
                let ok = self
                    .prods_of_id(id)
                    .iter()
                    .any(|p| prod_children(p).iter().all(|c| productive.contains(c)));
                if ok {
                    productive.insert(id);
                    changed = true;
                }
            }
            if !changed {
                return productive;
            }
        }
    }

    /// Whether `L(fv) = ∅` — no value can ever arise there.
    pub fn is_empty_lang(&self, fv: FlowVar) -> bool {
        match self.var_id(fv) {
            Some(id) => !self.productive().contains(&id),
            None => true,
        }
    }

    /// Whether `L(fv)` is finite. Infinite languages arise from cycles
    /// through productive nonterminals (e.g. `κ(c) → suc(κ(c))`).
    pub fn is_finite_lang(&self, fv: FlowVar) -> bool {
        let Some(start) = self.var_id(fv) else {
            return true;
        };
        let productive = self.productive();
        if !productive.contains(&start) {
            return true; // empty is finite
        }
        // The language is infinite iff a productive cycle is reachable
        // from `start` through productive children.
        // DFS with colouring over the productive sub-grammar.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            Visiting,
            Done,
        }
        let mut colour: HashMap<VarId, Colour> = HashMap::new();
        fn dfs(
            sol: &Solution,
            productive: &HashSet<VarId>,
            colour: &mut HashMap<VarId, Colour>,
            at: VarId,
        ) -> bool {
            match colour.get(&at) {
                Some(Colour::Visiting) => return true, // cycle
                Some(Colour::Done) => return false,
                None => {}
            }
            colour.insert(at, Colour::Visiting);
            for p in sol.prods_of_id(at) {
                for c in prod_children(p) {
                    if productive.contains(&c) && dfs(sol, productive, colour, c) {
                        return true;
                    }
                }
            }
            colour.insert(at, Colour::Done);
            false
        }
        !dfs(self, &productive, &mut colour, start)
    }

    /// The height of the smallest value in `L(fv)` (`None` if empty).
    /// A bare name or `0` has height 1.
    pub fn min_height(&self, fv: FlowVar) -> Option<usize> {
        let start = self.var_id(fv)?;
        // Bellman-Ford-style relaxation: min height per nonterminal.
        let mut height: HashMap<VarId, usize> = HashMap::new();
        loop {
            let mut changed = false;
            for (id, _) in self.flow_vars() {
                let mut best: Option<usize> = height.get(&id).copied();
                for p in self.prods_of_id(id) {
                    let children = prod_children(p);
                    let mut h = 1usize;
                    let mut ok = true;
                    for c in children {
                        match height.get(&c) {
                            Some(ch) => h = h.max(1 + ch),
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok && best.map(|b| h < b).unwrap_or(true) {
                        best = Some(h);
                    }
                }
                if best != height.get(&id).copied() {
                    if let Some(b) = best {
                        height.insert(id, b);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        height.get(&start).copied()
    }

    /// The number of distinct values of `L(fv)` with height ≤ `max_height`,
    /// saturating at `cap`.
    pub fn count_upto(&self, fv: FlowVar, max_height: usize, cap: usize) -> usize {
        let Some(start) = self.var_id(fv) else {
            return 0;
        };
        // counts[h][v] = number of values of height ≤ h derivable from v.
        let n = self.flow_vars().count();
        let mut prev = vec![0usize; n];
        for _ in 0..max_height {
            let mut next = vec![0usize; n];
            for (id, _) in self.flow_vars() {
                let mut total = 0usize;
                for p in self.prods_of_id(id) {
                    let children = prod_children(p);
                    let mut combo = 1usize;
                    for c in &children {
                        combo = combo.saturating_mul(prev[c.index()]);
                    }
                    total = total.saturating_add(combo);
                }
                next[id.index()] = total.min(cap);
            }
            prev = next;
        }
        prev[start.index()].min(cap)
    }
}

fn prod_children(p: &Prod) -> Vec<VarId> {
    match p {
        Prod::Name(_) | Prod::Zero => Vec::new(),
        Prod::Suc(a) => vec![*a],
        Prod::Pair(a, b) => vec![*a, *b],
        Prod::Enc { args, key, .. } => {
            let mut v = args.clone();
            v.push(*key);
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::analyze;
    use crate::domain::FlowVar;
    use nuspi_syntax::{parse_process, Symbol, Value};

    fn kappa(c: &str) -> FlowVar {
        FlowVar::Kappa(Symbol::intern(c))
    }

    #[test]
    fn unused_variable_has_empty_language() {
        let p = parse_process("c(x). x<0>.0").unwrap();
        let sol = analyze(&p);
        let rho = sol
            .flow_vars()
            .find_map(|(_, fv)| matches!(fv, FlowVar::Rho(_)).then_some(fv))
            .unwrap();
        assert!(sol.is_empty_lang(rho));
        assert!(sol.is_finite_lang(rho), "empty is finite");
        assert_eq!(sol.min_height(rho), None);
        assert_eq!(sol.count_upto(rho, 5, 100), 0);
    }

    #[test]
    fn simple_channel_language_is_finite() {
        let p = parse_process("c<m>.c<0>.0").unwrap();
        let sol = analyze(&p);
        assert!(!sol.is_empty_lang(kappa("c")));
        assert!(sol.is_finite_lang(kappa("c")));
        assert_eq!(sol.min_height(kappa("c")), Some(1));
        assert_eq!(sol.count_upto(kappa("c"), 3, 100), 2);
    }

    #[test]
    fn growing_counter_language_is_infinite() {
        let p = parse_process("c<0>.0 | !c(x).c<suc(x)>.0").unwrap();
        let sol = analyze(&p);
        assert!(!sol.is_finite_lang(kappa("c")));
        assert_eq!(sol.min_height(kappa("c")), Some(1)); // the 0
                                                         // heights ≤ 3 ⇒ values 0, suc 0, suc suc 0.
        assert_eq!(sol.count_upto(kappa("c"), 3, 100), 3);
    }

    #[test]
    fn unproductive_cycle_is_empty_not_infinite() {
        // x is only ever re-sent, never seeded: κ(c) ⊆ ρ(x) ⊆ κ(c) with no
        // base production.
        let p = parse_process("!c(x).c<x>.0").unwrap();
        let sol = analyze(&p);
        assert!(sol.is_empty_lang(kappa("c")));
        assert!(sol.is_finite_lang(kappa("c")));
    }

    #[test]
    fn structured_language_counts_combinations() {
        let p = parse_process("c<(a, b)>.c<(a, a)>.0").unwrap();
        let sol = analyze(&p);
        // Pair components mix: ζ(l1) = {a}, ζ(l2) = {b} per occurrence —
        // labels are distinct, so exactly the two written pairs.
        assert_eq!(sol.count_upto(kappa("c"), 3, 100), 2);
        assert_eq!(sol.min_height(kappa("c")), Some(2));
    }

    #[test]
    fn ciphertext_heights_include_keys() {
        let p = parse_process("c<{m, new r}:k>.0").unwrap();
        let sol = analyze(&p);
        assert_eq!(sol.min_height(kappa("c")), Some(2));
        assert!(sol.is_finite_lang(kappa("c")));
        // membership agrees
        assert!(sol.contains(
            kappa("c"),
            &Value::enc(
                vec![Value::name("m")],
                nuspi_syntax::Name::global("r"),
                Value::name("k")
            )
        ));
    }

    #[test]
    fn attacker_ether_is_infinite() {
        let p = parse_process("c<m>.0").unwrap();
        let secret = std::collections::HashSet::new();
        let att = crate::attacker::analyze_with_attacker(&p, &secret);
        let ether_fv = att.solution.describe(att.ether);
        assert!(!att.solution.is_finite_lang(ether_fv));
        assert!(!att.solution.is_empty_lang(ether_fv));
        assert_eq!(att.solution.min_height(ether_fv), Some(1));
    }
}
