//! Message-sequence-chart rendering of execution traces.
//!
//! A [`Trace`](crate::Trace) records, per step, the output premises of the
//! derivation. [`render_msc`] lays them out as an ASCII chart with one
//! column per canonical channel, in order of first use — a quick visual of
//! who said what when, used by the examples and the `nuspi run` CLI.

use crate::exec::Trace;
use std::fmt::Write as _;

/// Renders a trace as an ASCII message sequence chart.
///
/// Fresh-name indices may drift between steps (each commitment
/// enumeration re-freshens the restriction binders it opens, renaming a
/// residual consistently), so the *same* logical nonce can print as
/// `kAB#4` in one step and `kAB#9` in the next; the canonical base is the
/// stable part.
///
/// ```text
/// step  cAS                  cBS                  cAB
/// ----  -------------------  -------------------  ----
/// 1     {kAB#3, r1#4}:kAS#1
/// 2                          {kAB#3, r3#6}:kBS#2
/// 3                                               {m#7, r2#5}:kAB#3
/// ```
pub fn render_msc(trace: &Trace) -> String {
    // Collect channels in order of first use.
    let mut channels: Vec<String> = Vec::new();
    let mut rows: Vec<(usize, String, String)> = Vec::new();
    for (i, step) in trace.steps.iter().enumerate() {
        if step.outputs.is_empty() {
            rows.push((i + 1, String::new(), "τ (silent)".to_owned()));
        }
        for out in &step.outputs {
            let chan = out.channel.canonical().as_str().to_owned();
            if !channels.contains(&chan) {
                channels.push(chan.clone());
            }
            rows.push((i + 1, chan, out.value.to_string()));
        }
    }
    if channels.is_empty() {
        return "  (no messages)\n".to_owned();
    }
    // Column widths: max message width per channel.
    let mut widths: Vec<usize> = channels.iter().map(String::len).collect();
    for (_, chan, msg) in &rows {
        if let Some(ci) = channels.iter().position(|c| c == chan) {
            widths[ci] = widths[ci].max(msg.len());
        }
    }
    let mut out = String::new();
    let _ = write!(out, "{:<5} ", "step");
    for (c, w) in channels.iter().zip(&widths) {
        let _ = write!(out, "{c:<w$}  ");
    }
    out.push('\n');
    let _ = write!(out, "{:-<5} ", "");
    for w in &widths {
        let _ = write!(out, "{:-<w$}  ", "");
    }
    out.push('\n');
    for (step, chan, msg) in rows {
        let _ = write!(out, "{step:<5} ");
        match channels.iter().position(|c| *c == chan) {
            Some(ci) => {
                for (i, w) in widths.iter().enumerate() {
                    if i == ci {
                        let _ = write!(out, "{msg:<w$}  ");
                    } else {
                        let _ = write!(out, "{:<w$}  ", "");
                    }
                }
            }
            None => {
                let _ = write!(out, "{msg}");
            }
        }
        // Trim trailing spaces for tidy output.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_random, ExecConfig};
    use crate::rng::SplitMix64;
    use nuspi_syntax::parse_process;

    fn trace_of(src: &str, steps: usize) -> Trace {
        let p = parse_process(src).unwrap();
        let mut rng = SplitMix64::seed_from_u64(11);
        run_random(&p, steps, &ExecConfig::default(), &mut rng)
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let t = trace_of("c<0>.0", 4); // no τ possible: empty trace
        assert_eq!(render_msc(&t), "  (no messages)\n");
    }

    #[test]
    fn single_message_chart() {
        let t = trace_of("c<m>.0 | c(x).0", 4);
        let chart = render_msc(&t);
        assert!(chart.contains("step"), "{chart}");
        assert!(chart.contains('c'), "{chart}");
        assert!(chart.contains('m'), "{chart}");
    }

    #[test]
    fn channels_appear_in_first_use_order() {
        let t = trace_of("a<0>.b<1>.0 | a(x).b(y).0", 8);
        let chart = render_msc(&t);
        let header = chart.lines().next().unwrap();
        let pa = header.find(" a").unwrap();
        let pb = header.find(" b").unwrap();
        assert!(pa < pb, "{header}");
    }

    #[test]
    fn wmf_chart_shows_all_three_channels() {
        let src = "
            (new m) (new kAS) (new kBS) (
              ((new kAB) cAS<{kAB, new r1}:kAS>. cAB<{m, new r2}:kAB>.0
               | cBS(t). case t of {y}:kBS in cAB(z). case z of {q}:y in 0)
              | cAS(x). case x of {s}:kAS in cBS<{s, new r3}:kBS>.0
            )";
        let t = trace_of(src, 8);
        let chart = render_msc(&t);
        for c in ["cAS", "cBS", "cAB"] {
            assert!(chart.contains(c), "{chart}");
        }
        assert!(chart.lines().count() >= 5, "{chart}");
    }
}
