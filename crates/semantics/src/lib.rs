//! # nuspi-semantics — operational semantics of the νSPI-calculus
//!
//! Implements the three relations of Table 1 of the paper:
//!
//! * the call-by-value **evaluation** relation `E ⇓ (νr̃) w` ([`eval`]),
//!   where each encryption mints a fresh confounder — "history dependent
//!   cryptography";
//! * the **reduction** relation `P > Q` ([`reduce`]) for guards
//!   (match, let, integer case, decryption, replication);
//! * the **commitment** relation `P —α→ A` ([`commitments`]) producing
//!   abstractions, concretions and `τ` residuals, with interaction `F@C`.
//!
//! On top of the relations, [`explore_tau`] / [`run_random`] provide
//! bounded exhaustive and randomized execution, and [`passes_test`]
//! implements the public tests of Definition 8.
//!
//! # Examples
//!
//! ```
//! use nuspi_semantics::{commitments, CommitConfig, Action};
//! use nuspi_syntax::parse_process;
//!
//! let p = parse_process("c<m>.0 | c(x).d<x>.0")?;
//! let cs = commitments(&p, &CommitConfig::default());
//! assert!(cs.iter().any(|c| c.action == Action::Tau));
//! # Ok::<(), nuspi_syntax::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod commit;
mod eval;
mod exec;
mod msc;
pub mod rng;

pub use agent::{Abstraction, Action, Agent, Commitment, Concretion, OutputEvent};
pub use commit::{commitments, reduce, CommitConfig};
pub use eval::{eval, EvalError, EvalMode, Evaluated};
pub use exec::{
    all_traces, explore_tau, passes_test, run_random, tau_closure, tau_successors, Barb,
    ExecConfig, ExploreStats, Trace, TraceStep,
};
pub use msc::render_msc;
pub use rng::{Rng, SplitMix64};
