//! The evaluation relation `E ⇓ (νr̃) w` (Table 1, rules 1–5).
//!
//! νSPI is call-by-value: a term must be fully evaluated before it is
//! matched, decrypted, or sent. The crucial rule is encryption: evaluating
//! `{E₁,…,Eₖ,(νr)r}_{E₀}` mints a *fresh* confounder `rᵢ` and pushes its
//! restriction outermost, so every pass over an encryption site yields a
//! ciphertext different from every other value in the system — this is the
//! paper's "history dependent cryptography".
//!
//! [`EvalMode::ClassicSpi`] disables confounder freshening, recovering the
//! observable behaviour of ordinary spi-calculus perfect encryption (two
//! encryptions of the same plaintext under the same key are *equal*). The
//! §1 motivation experiment uses this mode to demonstrate the
//! ciphertext-comparison attack νSPI defeats.

use nuspi_syntax::{Expr, Label, Name, Term, Value, Var};
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// How encryption confounders are generated.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum EvalMode {
    /// νSPI semantics: every encryption mints a fresh confounder.
    #[default]
    NuSpi,
    /// Classic spi-calculus semantics: the confounder is the site's
    /// canonical name, so repeated encryptions of equal plaintext under an
    /// equal key produce *equal* ciphertexts (enabling the
    /// ciphertext-comparison attack of the paper's §1).
    ClassicSpi,
}

/// The result of evaluating an expression: `(νr̃) w` together with the
/// label of the evaluated occurrence.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Evaluated {
    /// The fresh restricted names `r̃` (confounders) minted during
    /// evaluation, outermost first, without duplicates.
    pub restricted: Vec<Name>,
    /// The value `w`.
    pub value: Rc<Value>,
    /// The label of the evaluated expression occurrence.
    pub label: Label,
}

/// Evaluation failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// The expression contains a free variable — it is open, and the
    /// semantics only operates on closed entities.
    UnboundVariable(Var),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(v) => write!(f, "unbound variable `{v}`"),
        }
    }
}

impl Error for EvalError {}

/// Evaluates `E ⇓ (νr̃) w`.
///
/// # Errors
///
/// Returns [`EvalError::UnboundVariable`] if the expression is open.
pub fn eval(expr: &Expr, mode: EvalMode) -> Result<Evaluated, EvalError> {
    let mut restricted = Vec::new();
    let value = eval_term(&expr.term, mode, &mut restricted)?;
    Ok(Evaluated {
        restricted,
        value,
        label: expr.label,
    })
}

fn eval_term(
    term: &Term,
    mode: EvalMode,
    restricted: &mut Vec<Name>,
) -> Result<Rc<Value>, EvalError> {
    match term {
        Term::Name(n) => Ok(Value::name(*n)),
        Term::Var(x) => Err(EvalError::UnboundVariable(*x)),
        Term::Zero => Ok(Value::zero()),
        Term::Val(w) => Ok(Rc::clone(w)),
        Term::Suc(e) => {
            let w = eval_term(&e.term, mode, restricted)?;
            Ok(Value::suc(w))
        }
        Term::Pair(a, b) => {
            let wa = eval_term(&a.term, mode, restricted)?;
            let wb = eval_term(&b.term, mode, restricted)?;
            Ok(Value::pair(wa, wb))
        }
        Term::Enc {
            payload,
            confounder,
            key,
        } => {
            let ws = payload
                .iter()
                .map(|e| eval_term(&e.term, mode, restricted))
                .collect::<Result<Vec<_>, _>>()?;
            let wk = eval_term(&key.term, mode, restricted)?;
            let r = match mode {
                EvalMode::NuSpi => {
                    let fresh = confounder.freshen();
                    restricted.push(fresh);
                    fresh
                }
                EvalMode::ClassicSpi => *confounder,
            };
            Ok(Value::enc(ws, r, wk))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_syntax::builder as b;

    #[test]
    fn names_evaluate_to_themselves() {
        let e = b::name("a");
        let r = eval(&e, EvalMode::NuSpi).unwrap();
        assert!(r.restricted.is_empty());
        assert_eq!(r.value, Value::name("a"));
        assert_eq!(r.label, e.label);
    }

    #[test]
    fn numerals_evaluate() {
        let e = b::numeral(3);
        let r = eval(&e, EvalMode::NuSpi).unwrap();
        assert_eq!(r.value.as_numeral(), Some(3));
        assert!(r.restricted.is_empty());
    }

    #[test]
    fn pairs_evaluate_componentwise() {
        let e = b::pair(b::name("a"), b::numeral(1));
        let r = eval(&e, EvalMode::NuSpi).unwrap();
        assert_eq!(r.value, Value::pair(Value::name("a"), Value::numeral(1)));
    }

    #[test]
    fn encryption_mints_a_fresh_confounder() {
        let e = b::enc(vec![b::zero()], Name::global("r"), b::name("k"));
        let r = eval(&e, EvalMode::NuSpi).unwrap();
        assert_eq!(r.restricted.len(), 1);
        let conf = r.restricted[0];
        assert_eq!(conf.canonical().as_str(), "r");
        assert!(!conf.is_source());
        assert!(r.value.contains_name(conf));
    }

    #[test]
    fn two_evaluations_of_one_site_differ_in_nuspi() {
        let e = b::enc(vec![b::zero()], Name::global("r"), b::name("k"));
        let r1 = eval(&e, EvalMode::NuSpi).unwrap();
        let r2 = eval(&e, EvalMode::NuSpi).unwrap();
        assert_ne!(r1.value, r2.value, "history dependence");
        assert_eq!(
            r1.value.canonicalize(),
            r2.value.canonicalize(),
            "canonical values coincide"
        );
    }

    #[test]
    fn two_evaluations_of_one_site_coincide_in_classic_mode() {
        let e = b::enc(vec![b::zero()], Name::global("r"), b::name("k"));
        let r1 = eval(&e, EvalMode::ClassicSpi).unwrap();
        let r2 = eval(&e, EvalMode::ClassicSpi).unwrap();
        assert_eq!(r1.value, r2.value, "classic spi compares ciphertexts");
        assert!(r1.restricted.is_empty());
    }

    #[test]
    fn nested_encryptions_restrict_all_confounders() {
        let inner = b::enc(vec![b::zero()], Name::global("r1"), b::name("k1"));
        let outer = b::enc(vec![inner], Name::global("r2"), b::name("k2"));
        let r = eval(&outer, EvalMode::NuSpi).unwrap();
        assert_eq!(r.restricted.len(), 2);
        let mut uniq = r.restricted.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), 2, "r̃ without duplicates");
    }

    #[test]
    fn open_expression_errors() {
        let x = Var::fresh("x");
        let e = b::var(x);
        assert_eq!(
            eval(&e, EvalMode::NuSpi),
            Err(EvalError::UnboundVariable(x))
        );
    }

    #[test]
    fn value_terms_pass_through() {
        let w = Value::pair(Value::name("a"), Value::zero());
        let e = b::val(Rc::clone(&w));
        let r = eval(&e, EvalMode::NuSpi).unwrap();
        assert_eq!(r.value, w);
        assert!(r.restricted.is_empty());
    }

    #[test]
    fn key_position_confounders_are_restricted_too() {
        let keyenc = b::enc(vec![b::zero()], Name::global("rk"), b::name("k"));
        let e = b::enc(vec![b::name("m")], Name::global("r"), keyenc);
        let r = eval(&e, EvalMode::NuSpi).unwrap();
        assert_eq!(r.restricted.len(), 2);
    }
}
