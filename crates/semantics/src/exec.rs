//! Bounded execution of closed processes.
//!
//! The state space of a νSPI process is infinite in general (replication,
//! fresh names), so the explorer is *bounded*: breadth-first over
//! `τ`-successors up to a depth and state budget. Within the bound the
//! enumeration is exhaustive, which is what the dynamic security notions
//! need — carefulness (Definition 3) quantifies over every reachable
//! state's commitments, and public testing (Definition 8) asks whether a
//! barb is `τ`-reachable.

use crate::agent::{Action, Agent, Commitment, OutputEvent};
use crate::commit::{commitments, CommitConfig};
use crate::eval::EvalMode;
use crate::rng::Rng;
use nuspi_syntax::{alpha_hash, builder, Process, Symbol};

/// Budgets and mode for bounded exploration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExecConfig {
    /// Evaluation mode (νSPI or classic spi).
    pub mode: EvalMode,
    /// Replication unfolding budget per commitment enumeration.
    pub rep_budget: u32,
    /// Maximum number of `τ` steps from the initial state.
    pub max_depth: usize,
    /// Maximum number of states visited before the search truncates.
    pub max_states: usize,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            mode: EvalMode::NuSpi,
            rep_budget: 2,
            max_depth: 24,
            max_states: 2048,
        }
    }
}

impl ExecConfig {
    fn commit_config(&self) -> CommitConfig {
        CommitConfig {
            mode: self.mode,
            rep_budget: self.rep_budget,
        }
    }
}

/// Statistics of a bounded exploration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExploreStats {
    /// States visited.
    pub states: usize,
    /// Commitments enumerated across all visited states.
    pub transitions: usize,
    /// Whether a budget was exhausted (the search is then a
    /// under-approximation of the reachable space).
    pub truncated: bool,
}

/// Visits every `τ`-reachable state of `p` within the budgets of `cfg`,
/// handing each state's full commitment list to `visit`. Returning `false`
/// from `visit` stops the search early.
///
/// States are deduplicated up to α-equivalence (via
/// [`alpha_hash`]); the depth and state budgets keep genuinely infinite
/// spaces (replication, growing data) finite.
pub fn explore_tau(
    p: &Process,
    cfg: &ExecConfig,
    mut visit: impl FnMut(&Process, &[Commitment]) -> bool,
) -> ExploreStats {
    let ccfg = cfg.commit_config();
    let mut stats = ExploreStats::default();
    // Deduplicate states up to α-equivalence: binder freshening otherwise
    // makes every revisit look new.
    let mut seen = std::collections::HashSet::new();
    let mut frontier = vec![p.clone()];
    seen.insert(alpha_hash(p));
    let mut depth = 0;
    while !frontier.is_empty() {
        if depth > cfg.max_depth {
            stats.truncated = true;
            break;
        }
        let mut next = Vec::new();
        for state in frontier {
            if stats.states >= cfg.max_states {
                stats.truncated = true;
                return stats;
            }
            stats.states += 1;
            let cs = commitments(&state, &ccfg);
            stats.transitions += cs.len();
            if !visit(&state, &cs) {
                return stats;
            }
            for c in cs {
                if c.action != Action::Tau {
                    continue;
                }
                let Agent::Proc(q) = c.agent else { continue };
                if seen.insert(alpha_hash(&q)) {
                    next.push(q);
                }
            }
        }
        frontier = next;
        depth += 1;
    }
    stats
}

/// The bounded `τ`-closure of `p`: every reachable state paired with its
/// full commitment list, appended to `out` in BFS order (the initial
/// state first). This is the weak-transition view the hedged-bisimulation
/// backend plays over: a visible move "from `p`" is a visible commitment
/// of any state in the closure.
pub fn tau_closure(
    p: &Process,
    cfg: &ExecConfig,
    out: &mut Vec<(Process, Vec<Commitment>)>,
) -> ExploreStats {
    explore_tau(p, cfg, |state, cs| {
        out.push((state.clone(), cs.to_vec()));
        true
    })
}

/// All `τ`-successors of a single state.
pub fn tau_successors(p: &Process, cfg: &ExecConfig) -> Vec<Process> {
    commitments(p, &cfg.commit_config())
        .into_iter()
        .filter_map(|c| match (c.action, c.agent) {
            (Action::Tau, Agent::Proc(q)) => Some(q),
            _ => None,
        })
        .collect()
}

/// A barb `β`: readiness to communicate on a canonical channel, in the
/// given direction (the paper's `m` and `m̄`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Barb {
    /// Ready to *receive* on the channel (`m`).
    In(Symbol),
    /// Ready to *send* on the channel (`m̄`).
    Out(Symbol),
}

impl Barb {
    /// Whether a commitment's action exhibits this barb.
    pub fn matches(self, action: Action) -> bool {
        match (self, action) {
            (Barb::In(s), Action::In(m)) => m.canonical() == s,
            (Barb::Out(s), Action::Out(m)) => m.canonical() == s,
            _ => false,
        }
    }
}

/// Definition 8: `P` passes the public test `(Q, β)` iff
/// `(P | Q) —τ→ … —τ→ Qₙ —β→ A` for some `n ≥ 0`.
///
/// The search is bounded by `cfg`; a `false` answer within generous budgets
/// is evidence, not proof, of failure — exactly the approximation the
/// reproduction's DESIGN.md documents for testing equivalence.
pub fn passes_test(p: &Process, test: &Process, barb: Barb, cfg: &ExecConfig) -> bool {
    let composed = builder::par(p.clone(), test.clone());
    let mut found = false;
    explore_tau(&composed, cfg, |_state, cs| {
        if cs.iter().any(|c| barb.matches(c.action)) {
            found = true;
            return false;
        }
        true
    });
    found
}

/// Enumerates every maximal `τ`-trace of `p` up to `max_depth` steps,
/// deduplicating states up to α-equivalence along each path. A trace is
/// *maximal* when its final state offers no `τ` (or the depth bound was
/// hit). The trace count is exponential in the interleaving; `max_traces`
/// caps the enumeration.
pub fn all_traces(p: &Process, cfg: &ExecConfig, max_traces: usize) -> Vec<Trace> {
    let ccfg = cfg.commit_config();
    let mut out = Vec::new();
    let mut stack = vec![(p.clone(), Vec::new(), Vec::<u64>::new())];
    while let Some((state, steps, path)) = stack.pop() {
        if out.len() >= max_traces {
            break;
        }
        let taus: Vec<(TraceStep, Process)> = commitments(&state, &ccfg)
            .into_iter()
            .filter_map(|c| match (c.action, c.agent) {
                (Action::Tau, Agent::Proc(q)) => Some((
                    TraceStep {
                        action: Action::Tau,
                        outputs: c.outputs,
                    },
                    q,
                )),
                _ => None,
            })
            .collect();
        if taus.is_empty() || steps.len() >= cfg.max_depth {
            out.push(Trace {
                steps,
                end: Some(state),
            });
            continue;
        }
        for (step, q) in taus {
            let h = nuspi_syntax::alpha_hash(&q);
            if path.contains(&h) {
                continue; // cycle along this path
            }
            let mut steps2 = steps.clone();
            steps2.push(step);
            let mut path2 = path.clone();
            path2.push(h);
            stack.push((q, steps2, path2));
        }
    }
    out
}

/// One step of a recorded random run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceStep {
    /// The action taken (always `τ` for closed-system runs).
    pub action: Action,
    /// Output premises used in the step's derivation.
    pub outputs: Vec<OutputEvent>,
}

/// A recorded execution.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Trace {
    /// The steps, in execution order.
    pub steps: Vec<TraceStep>,
    /// The final state.
    pub end: Option<Process>,
}

/// Runs `p` for up to `max_steps` random `τ` steps, recording every step's
/// output premises. Stops early when no `τ` is enabled.
pub fn run_random(p: &Process, max_steps: usize, cfg: &ExecConfig, rng: &mut impl Rng) -> Trace {
    let ccfg = cfg.commit_config();
    let mut state = p.clone();
    let mut trace = Trace::default();
    for _ in 0..max_steps {
        let taus: Vec<Commitment> = commitments(&state, &ccfg)
            .into_iter()
            .filter(|c| c.action == Action::Tau)
            .collect();
        if taus.is_empty() {
            break;
        }
        let pick = rng.gen_range(0..taus.len());
        let c = taus.into_iter().nth(pick).expect("index in range");
        trace.steps.push(TraceStep {
            action: c.action,
            outputs: c.outputs,
        });
        match c.agent {
            Agent::Proc(q) => state = q,
            other => panic!("τ commitment with non-process agent {other:?}"),
        }
    }
    trace.end = Some(state);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use nuspi_syntax::parse_process;

    fn cfg() -> ExecConfig {
        ExecConfig::default()
    }

    #[test]
    fn explore_visits_initial_state() {
        let p = parse_process("0").unwrap();
        let stats = explore_tau(&p, &cfg(), |_, _| true);
        assert_eq!(stats.states, 1);
        assert_eq!(stats.transitions, 0);
        assert!(!stats.truncated);
    }

    #[test]
    fn explore_follows_tau_chain() {
        let p = parse_process("a<0>.b<0>.0 | a(x).b(y).0").unwrap();
        let mut states = 0;
        explore_tau(&p, &cfg(), |_, _| {
            states += 1;
            true
        });
        assert!(states >= 3, "initial, after a, after b; got {states}");
    }

    #[test]
    fn explore_stops_when_visitor_says_so() {
        let p = parse_process("a<0>.0 | a(x).0").unwrap();
        let stats = explore_tau(&p, &cfg(), |_, _| false);
        assert_eq!(stats.states, 1);
    }

    #[test]
    fn state_budget_truncates() {
        let p = parse_process("!(a<0>.0 | a(x).0)").unwrap();
        let tight = ExecConfig {
            max_states: 3,
            ..cfg()
        };
        let stats = explore_tau(&p, &tight, |_, _| true);
        assert!(stats.truncated);
        assert!(stats.states <= 3);
    }

    #[test]
    fn tau_successors_of_prefix_is_empty() {
        let p = parse_process("c<0>.0").unwrap();
        assert!(tau_successors(&p, &cfg()).is_empty());
    }

    #[test]
    fn barb_matching() {
        let c = Symbol::intern("c");
        let m = nuspi_syntax::Name::global("c");
        assert!(Barb::Out(c).matches(Action::Out(m)));
        assert!(!Barb::Out(c).matches(Action::In(m)));
        assert!(Barb::In(c).matches(Action::In(m)));
        assert!(!Barb::In(c).matches(Action::Tau));
        // Canonical matching: a freshened channel still exhibits the barb.
        assert!(Barb::Out(c).matches(Action::Out(m.freshen())));
    }

    #[test]
    fn passes_direct_barb_test() {
        let p = parse_process("c<0>.0").unwrap();
        let idle = parse_process("0").unwrap();
        assert!(passes_test(
            &p,
            &idle,
            Barb::Out(Symbol::intern("c")),
            &cfg()
        ));
        assert!(!passes_test(
            &p,
            &idle,
            Barb::Out(Symbol::intern("d")),
            &cfg()
        ));
    }

    #[test]
    fn passes_test_after_interaction_with_tester() {
        // P answers on d only after receiving on c; the test supplies it.
        let p = parse_process("c(x).d<x>.0").unwrap();
        let q = parse_process("c<0>.0").unwrap();
        assert!(passes_test(&p, &q, Barb::Out(Symbol::intern("d")), &cfg()));
        let idle = parse_process("0").unwrap();
        assert!(!passes_test(
            &p,
            &idle,
            Barb::Out(Symbol::intern("d")),
            &cfg()
        ));
    }

    #[test]
    fn random_run_is_reproducible() {
        let p = parse_process("a<0>.0 | a(x).b<x>.0 | b(y).0").unwrap();
        let mut r1 = SplitMix64::seed_from_u64(7);
        let mut r2 = SplitMix64::seed_from_u64(7);
        let t1 = run_random(&p, 8, &cfg(), &mut r1);
        let t2 = run_random(&p, 8, &cfg(), &mut r2);
        assert_eq!(t1.steps.len(), t2.steps.len());
    }

    #[test]
    fn random_run_records_outputs() {
        let p = parse_process("a<m>.0 | a(x).0").unwrap();
        let mut rng = SplitMix64::seed_from_u64(1);
        let t = run_random(&p, 4, &cfg(), &mut rng);
        assert_eq!(t.steps.len(), 1);
        assert_eq!(t.steps[0].outputs.len(), 1);
        assert_eq!(
            t.steps[0].outputs[0].channel,
            nuspi_syntax::Name::global("a")
        );
    }

    #[test]
    fn random_run_stops_when_stuck() {
        let p = parse_process("c<0>.0").unwrap();
        let mut rng = SplitMix64::seed_from_u64(3);
        let t = run_random(&p, 10, &cfg(), &mut rng);
        assert!(t.steps.is_empty());
        assert_eq!(t.end, Some(p));
    }

    #[test]
    fn all_traces_of_inert_process_is_the_empty_trace() {
        let p = parse_process("c<0>.0").unwrap();
        let ts = all_traces(&p, &cfg(), 100);
        assert_eq!(ts.len(), 1);
        assert!(ts[0].steps.is_empty());
    }

    #[test]
    fn all_traces_enumerates_interleavings() {
        // Two independent exchanges: two interleavings.
        let p = parse_process("a<0>.0 | a(x).0 | b<0>.0 | b(y).0").unwrap();
        let ts = all_traces(&p, &cfg(), 100);
        assert_eq!(ts.len(), 2);
        assert!(ts.iter().all(|t| t.steps.len() == 2));
    }

    #[test]
    fn all_traces_respects_the_cap() {
        let p = parse_process("a<0>.0 | a(x).0 | b<0>.0 | b(y).0 | c<0>.0 | c(z).0").unwrap();
        let ts = all_traces(&p, &cfg(), 3);
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn all_traces_agree_with_explorer_on_outputs() {
        // Every output event seen by the explorer appears in some trace
        // and vice versa (same canonical channels).
        let src = "(new s) (a<s>.0 | a(x). b<x>.0 | b(y).0)";
        let p = parse_process(src).unwrap();
        let mut explorer_chans = std::collections::BTreeSet::new();
        explore_tau(&p, &cfg(), |_, cs| {
            for c in cs {
                for o in &c.outputs {
                    explorer_chans.insert(o.channel.canonical());
                }
            }
            true
        });
        let mut trace_chans = std::collections::BTreeSet::new();
        for t in all_traces(&p, &cfg(), 100) {
            for s in &t.steps {
                for o in &s.outputs {
                    trace_chans.insert(o.channel.canonical());
                }
            }
        }
        assert_eq!(explorer_chans, trace_chans);
    }

    #[test]
    fn wmf_explores_fully() {
        let src = "
            (new kAS) (new kBS) (
              ((new kAB) cAS<{kAB, new r1}:kAS>. cAB<{m, new r2}:kAB>.0
               | cBS(t). case t of {y}:kBS in cAB(z). case z of {q}:y in done<q>.0)
              | cAS(x). case x of {s}:kAS in cBS<{s, new r3}:kBS>.0
            )";
        let p = parse_process(src).unwrap();
        let mut saw_done = false;
        let stats = explore_tau(&p, &cfg(), |_, cs| {
            if cs
                .iter()
                .any(|c| Barb::Out(Symbol::intern("done")).matches(c.action))
            {
                saw_done = true;
            }
            true
        });
        assert!(saw_done, "protocol must complete");
        assert!(!stats.truncated);
    }
}
