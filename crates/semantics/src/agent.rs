//! Agents: abstractions, concretions, and commitments.
//!
//! A commitment `P —α→ A` relates a process to an *agent* `A`: a plain
//! process for `τ`, an abstraction `(νñ)(x)P` for input, a concretion
//! `(νñ)⟨w^l⟩P` for output. The interaction `F@C` (and symmetrically
//! `C@F`) composes an abstraction with a concretion into the process
//! `(νñ)(P[w^l/x] | Q)`, extruding the concretion's restricted names.

use crate::eval::EvalMode;
use nuspi_syntax::{builder, Label, Name, Process, Value, Var};
use std::fmt;
use std::rc::Rc;

/// The action `α` of a commitment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Action {
    /// An internal step `τ`.
    Tau,
    /// An input on channel `m` (the paper's `m`).
    In(Name),
    /// An output on channel `m` (the paper's `m̄`).
    Out(Name),
}

impl Action {
    /// The channel of a visible action, if any.
    pub fn channel(self) -> Option<Name> {
        match self {
            Action::Tau => None,
            Action::In(m) | Action::Out(m) => Some(m),
        }
    }

    /// Whether this is the co-action of `other` on the same channel
    /// (input vs output).
    pub fn complements(self, other: Action) -> bool {
        matches!(
            (self, other),
            (Action::In(a), Action::Out(b)) | (Action::Out(a), Action::In(b)) if a == b
        )
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Tau => write!(f, "τ"),
            Action::In(m) => write!(f, "{m}"),
            Action::Out(m) => write!(f, "{m}̄"),
        }
    }
}

/// An abstraction `(νñ)(x)P`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Abstraction {
    /// Restricted names pushed outside the abstraction by the `Res` rule.
    pub restricted: Vec<Name>,
    /// The bound variable `x`.
    pub var: Var,
    /// The body `P`.
    pub body: Process,
}

/// A concretion `(νñ)⟨w^l⟩P`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Concretion {
    /// Restricted names whose scope is being extruded with the message.
    pub restricted: Vec<Name>,
    /// The message value `w`.
    pub value: Rc<Value>,
    /// The label `l` of the (evaluated) message occurrence — the CFA's
    /// subject-reduction clause (3) checks `⌊w⌋ ∈ ζ(l)`.
    pub label: Label,
    /// The continuation `P`.
    pub body: Process,
}

/// The agent `A` a process commits to.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Agent {
    /// The residual process of a `τ` step.
    Proc(Process),
    /// The abstraction of an input commitment.
    Abs(Abstraction),
    /// The concretion of an output commitment.
    Conc(Concretion),
}

/// An output premise `R —m̄→ (νr̃)⟨w^l⟩R′` used in the derivation of a
/// commitment. Carefulness (Definition 3) constrains every such premise,
/// including those consumed inside a `τ` interaction, so commitments carry
/// them explicitly.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OutputEvent {
    /// The channel the value is sent on.
    pub channel: Name,
    /// The value sent.
    pub value: Rc<Value>,
    /// The label of the message occurrence.
    pub label: Label,
}

/// A commitment `P —α→ A`, together with the output premises of its
/// derivation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Commitment {
    /// The action `α`.
    pub action: Action,
    /// The resulting agent.
    pub agent: Agent,
    /// Output premises used to derive this commitment (one for an output
    /// action; one per internal communication for `τ`).
    pub outputs: Vec<OutputEvent>,
    /// The evaluation mode the deriving semantics ran under (threaded so
    /// interactions re-derive commitments consistently).
    pub mode: EvalMode,
}

impl Abstraction {
    /// `F@C = (νñ)(P[w^l/x] | Q)`: receives the concretion's message,
    /// extruding its restricted names around the composition.
    ///
    /// The side condition `{ñ} ∩ fn(P) = ∅` holds by construction: the
    /// commitment machinery freshens every restriction binder it opens, so
    /// extruded names are globally unique.
    pub fn interact(&self, conc: &Concretion) -> Process {
        let received = self.body.subst(self.var, &conc.value);
        let inner = builder::par(received, conc.body.clone());
        let wrapped = builder::restrict_all(conc.restricted.iter().copied(), inner);
        builder::restrict_all(self.restricted.iter().copied(), wrapped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_syntax::builder as b;

    #[test]
    fn action_channels() {
        let m = Name::global("m");
        assert_eq!(Action::Tau.channel(), None);
        assert_eq!(Action::In(m).channel(), Some(m));
        assert_eq!(Action::Out(m).channel(), Some(m));
    }

    #[test]
    fn complements_requires_same_channel_and_opposite_polarity() {
        let m = Name::global("m");
        let n = Name::global("n");
        assert!(Action::In(m).complements(Action::Out(m)));
        assert!(Action::Out(m).complements(Action::In(m)));
        assert!(!Action::In(m).complements(Action::In(m)));
        assert!(!Action::In(m).complements(Action::Out(n)));
        assert!(!Action::Tau.complements(Action::Tau));
    }

    #[test]
    fn interact_substitutes_message() {
        let x = Var::fresh("x");
        let abs = Abstraction {
            restricted: vec![],
            var: x,
            body: b::output(b::name("d"), b::var(x), b::nil()),
        };
        let conc = Concretion {
            restricted: vec![],
            value: Value::name("payload"),
            label: b::zero().label,
            body: Process::Nil,
        };
        let p = abs.interact(&conc);
        assert!(p.is_closed());
        assert!(p.free_names().contains(&Name::global("payload")));
    }

    #[test]
    fn interact_extrudes_restrictions() {
        let x = Var::fresh("x");
        let fresh = Name::global("r").freshen();
        let abs = Abstraction {
            restricted: vec![],
            var: x,
            body: b::output(b::name("d"), b::var(x), b::nil()),
        };
        let conc = Concretion {
            restricted: vec![fresh],
            value: Value::name(fresh),
            label: b::zero().label,
            body: Process::Nil,
        };
        let p = abs.interact(&conc);
        // The extruded name is bound at the top, not free.
        assert!(!p.free_names().contains(&fresh));
        match p {
            Process::Restrict { name, .. } => assert_eq!(name, fresh),
            other => panic!("expected extruded restriction, got {other:?}"),
        }
    }

    use nuspi_syntax::Process;
}
