//! A tiny, dependency-free pseudo-random number generator.
//!
//! The reproduction only needs *seeded, reproducible* randomness — for the
//! random simulator ([`run_random`](crate::run_random)), the process
//! generators of `nuspi-bench`, and the property-testing harness. A
//! SplitMix64 stream is more than enough for that and keeps the build
//! free of external crates (the environment is offline).

/// The interface the executor and the generators program against: a
/// source of `u64`s plus the few derived draws the codebase uses.
pub trait Rng {
    /// The next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[lo, hi)`. Uses Lemire's multiply-shift
    /// reduction; the slight modulo bias of the plain approach is
    /// irrelevant here but this is just as cheap.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        let (lo, hi) = (range.start, range.end);
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        let draw = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        lo + draw as usize
    }

    /// A uniform draw from `lo..=hi`.
    fn gen_range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range(lo..hi + 1)
    }

    /// A Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Sebastiano Vigna's SplitMix64: one multiply-xorshift round per draw,
/// full 2⁶⁴ period, passes BigCrush. The default generator everywhere.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator reproducibly seeded from `seed`.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_everything() {
        let mut rng = SplitMix64::seed_from_u64(42);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.gen_range(2..7);
            assert!((2..7).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets reachable: {seen:?}");
    }

    #[test]
    fn gen_range_inclusive_includes_endpoints() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..300 {
            match rng.gen_range_inclusive(1, 3) {
                1 => lo_seen = true,
                3 => hi_seen = true,
                2 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let heads = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((350..=650).contains(&heads), "heads = {heads}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SplitMix64::seed_from_u64(0);
        rng.gen_range(3..3);
    }
}
