//! The reduction relation `P > Q` and the commitment relation `P —α→ A`
//! (Table 1, middle and lower parts).
//!
//! Reductions evaluate guards: matching, pair splitting, integer case,
//! decryption, and replication unfolding. Freshly minted confounders are
//! re-wrapped as restrictions around the continuation, preserving scopes.
//!
//! Commitments are computed compositionally. Every restriction binder is
//! *freshened* (same canonical base, globally unique index) at the moment
//! its scope is opened, which discharges all the side conditions of
//! Table 1 (`r̃ fn(P)` without duplicates, `{ñ} ∩ fn(P) = ∅`) by
//! construction.
//!
//! Replication is unfolded lazily up to [`CommitConfig::rep_budget`]
//! copies per enumeration — two copies suffice to expose both the actions
//! of a replicated process and its self-communications.

use crate::agent::{Abstraction, Action, Agent, Commitment, Concretion, OutputEvent};
use crate::eval::{eval, EvalMode};
use nuspi_syntax::{builder, Name, Process, Value};

/// Parameters of the commitment enumeration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CommitConfig {
    /// Evaluation mode (νSPI or classic spi).
    pub mode: EvalMode,
    /// How many copies of each replication may be unfolded while
    /// enumerating the commitments of one state.
    pub rep_budget: u32,
}

impl Default for CommitConfig {
    fn default() -> CommitConfig {
        CommitConfig {
            mode: EvalMode::NuSpi,
            rep_budget: 2,
        }
    }
}

/// Performs one reduction step `P > Q` at the top of the process, if a
/// reduction rule applies. The returned process already carries the
/// restrictions `(νr̃)` introduced by guard evaluation.
///
/// Returns `None` when no reduction rule applies at the root (the process
/// is a prefix, a composition, inert, or a stuck guard).
pub fn reduce(p: &Process, mode: EvalMode) -> Option<Process> {
    match p {
        Process::Match { lhs, rhs, then } => {
            let l = eval(lhs, mode).ok()?;
            let r = eval(rhs, mode).ok()?;
            if l.value == r.value {
                let mut restricted = l.restricted;
                restricted.extend(r.restricted);
                Some(builder::restrict_all(restricted, (**then).clone()))
            } else {
                None
            }
        }
        Process::Let {
            fst,
            snd,
            expr,
            then,
        } => {
            let e = eval(expr, mode).ok()?;
            match &*e.value {
                Value::Pair(a, b) => {
                    let body = then.subst(*fst, a).subst(*snd, b);
                    Some(builder::restrict_all(e.restricted, body))
                }
                _ => None,
            }
        }
        Process::CaseNat {
            expr,
            zero,
            pred,
            succ,
        } => {
            let e = eval(expr, mode).ok()?;
            match &*e.value {
                Value::Zero => Some((**zero).clone()),
                Value::Suc(w) => {
                    let body = succ.subst(*pred, w);
                    Some(builder::restrict_all(e.restricted, body))
                }
                _ => None,
            }
        }
        Process::CaseDec {
            expr,
            vars,
            key,
            then,
        } => {
            let e = eval(expr, mode).ok()?;
            let k = eval(key, mode).ok()?;
            match &*e.value {
                Value::Enc {
                    payload,
                    key: used_key,
                    ..
                } if payload.len() == vars.len() && **used_key == *k.value => {
                    let mut body = (**then).clone();
                    for (x, w) in vars.iter().zip(payload) {
                        body = body.subst(*x, w);
                    }
                    Some(builder::restrict_all(e.restricted, body))
                }
                _ => None,
            }
        }
        Process::Replicate(q) => Some(builder::par((**q).clone(), p.clone())),
        _ => None,
    }
}

/// Enumerates every commitment `P —α→ A` of a closed process.
///
/// The enumeration is complete for the given replication budget: all
/// inputs, outputs and internal communications derivable with at most
/// `cfg.rep_budget` unfoldings per replication are returned.
pub fn commitments(p: &Process, cfg: &CommitConfig) -> Vec<Commitment> {
    match p {
        Process::Nil => Vec::new(),
        Process::Output { chan, msg, then } => {
            let Ok(c) = eval(chan, cfg.mode) else {
                return Vec::new();
            };
            let Some(m) = c.value.as_name() else {
                return Vec::new(); // channels must be names
            };
            let Ok(e) = eval(msg, cfg.mode) else {
                return Vec::new();
            };
            vec![Commitment {
                action: Action::Out(m),
                outputs: vec![OutputEvent {
                    channel: m,
                    value: e.value.clone(),
                    label: e.label,
                }],
                agent: Agent::Conc(Concretion {
                    restricted: e.restricted,
                    value: e.value,
                    label: e.label,
                    body: (**then).clone(),
                }),
                mode: cfg.mode,
            }]
        }
        Process::Input { chan, var, then } => {
            let Ok(c) = eval(chan, cfg.mode) else {
                return Vec::new();
            };
            let Some(m) = c.value.as_name() else {
                return Vec::new();
            };
            vec![Commitment {
                action: Action::In(m),
                outputs: Vec::new(),
                agent: Agent::Abs(Abstraction {
                    restricted: Vec::new(),
                    var: *var,
                    body: (**then).clone(),
                }),
                mode: cfg.mode,
            }]
        }
        Process::Par(left, right) => {
            let base_l = commitments(left, cfg);
            let base_r = commitments(right, cfg);
            let mut out = Vec::new();
            for c in &base_l {
                out.push(Commitment {
                    action: c.action,
                    agent: agent_par_right(c.agent.clone(), right),
                    outputs: c.outputs.clone(),
                    mode: cfg.mode,
                });
            }
            for c in &base_r {
                out.push(Commitment {
                    action: c.action,
                    agent: agent_par_left(left, c.agent.clone()),
                    outputs: c.outputs.clone(),
                    mode: cfg.mode,
                });
            }
            // Inter: complementary visible actions communicate.
            for cl in &base_l {
                for cr in &base_r {
                    if !cl.action.complements(cr.action) {
                        continue;
                    }
                    let interaction = match (&cl.agent, &cr.agent) {
                        (Agent::Abs(f), Agent::Conc(c)) => f.interact(c),
                        (Agent::Conc(c), Agent::Abs(f)) => f.interact_flipped(c),
                        _ => continue,
                    };
                    let mut outputs = cl.outputs.clone();
                    outputs.extend(cr.outputs.iter().cloned());
                    out.push(Commitment {
                        action: Action::Tau,
                        agent: Agent::Proc(interaction),
                        outputs,
                        mode: cfg.mode,
                    });
                }
            }
            out
        }
        Process::Restrict { name, body } => {
            // Freshen the binder before opening its scope: the side
            // conditions of `Res` then hold by global uniqueness.
            let fresh = name.freshen();
            let opened = body.rename_name(*name, fresh);
            commitments(&opened, cfg)
                .into_iter()
                .filter(|c| c.action.channel() != Some(fresh))
                .map(|c| Commitment {
                    action: c.action,
                    agent: agent_restrict(fresh, c.agent),
                    outputs: c.outputs,
                    mode: cfg.mode,
                })
                .collect()
        }
        Process::Hide { name, body } => {
            // `hide` (no-extrusion rule): like `Res`, the binder is
            // freshened and actions on the hidden channel are blocked, but
            // the scope never extrudes — a concretion whose message
            // mentions the hidden name is dropped entirely instead of
            // carrying the binder out.
            let fresh = name.freshen();
            let opened = body.rename_name(*name, fresh);
            commitments(&opened, cfg)
                .into_iter()
                .filter(|c| c.action.channel() != Some(fresh))
                .filter_map(|c| {
                    agent_hide(fresh, c.agent).map(|agent| Commitment {
                        action: c.action,
                        agent,
                        outputs: c.outputs,
                        mode: cfg.mode,
                    })
                })
                .collect()
        }
        Process::Replicate(q) => {
            if cfg.rep_budget == 0 {
                return Vec::new();
            }
            let inner = CommitConfig {
                mode: cfg.mode,
                rep_budget: cfg.rep_budget - 1,
            };
            let unfolded = builder::par((**q).clone(), p.clone());
            commitments(&unfolded, &inner)
        }
        // Guard forms: rule `Red` — reduce, then commit.
        Process::Match { .. }
        | Process::Let { .. }
        | Process::CaseNat { .. }
        | Process::CaseDec { .. } => match reduce(p, cfg.mode) {
            Some(q) => commitments(&q, cfg),
            None => Vec::new(),
        },
    }
}

impl Abstraction {
    /// `C@F`, the symmetric interaction: identical result to `F@C` up to
    /// the commutativity of parallel composition; we keep the concretion's
    /// continuation on the left to mirror the derivation order.
    pub fn interact_flipped(&self, conc: &Concretion) -> Process {
        let received = self.body.subst(self.var, &conc.value);
        let inner = builder::par(conc.body.clone(), received);
        let wrapped = builder::restrict_all(conc.restricted.iter().copied(), inner);
        builder::restrict_all(self.restricted.iter().copied(), wrapped)
    }
}

/// `A | Q` (rule `Par`).
fn agent_par_right(agent: Agent, q: &Process) -> Agent {
    match agent {
        Agent::Proc(p) => Agent::Proc(builder::par(p, q.clone())),
        Agent::Abs(a) => Agent::Abs(Abstraction {
            restricted: a.restricted,
            var: a.var,
            body: builder::par(a.body, q.clone()),
        }),
        Agent::Conc(c) => Agent::Conc(Concretion {
            restricted: c.restricted,
            value: c.value,
            label: c.label,
            body: builder::par(c.body, q.clone()),
        }),
    }
}

/// `P | A` (symmetric `Par`).
fn agent_par_left(p: &Process, agent: Agent) -> Agent {
    match agent {
        Agent::Proc(q) => Agent::Proc(builder::par(p.clone(), q)),
        Agent::Abs(a) => Agent::Abs(Abstraction {
            restricted: a.restricted,
            var: a.var,
            body: builder::par(p.clone(), a.body),
        }),
        Agent::Conc(c) => Agent::Conc(Concretion {
            restricted: c.restricted,
            value: c.value,
            label: c.label,
            body: builder::par(p.clone(), c.body),
        }),
    }
}

/// `(νm)A` (rule `Res`): scope extrusion for concretions whose message
/// mentions `m`, otherwise the restriction stays on the continuation.
fn agent_restrict(m: Name, agent: Agent) -> Agent {
    match agent {
        Agent::Proc(p) => Agent::Proc(builder::restrict(m, p)),
        Agent::Abs(a) => Agent::Abs(Abstraction {
            restricted: a.restricted,
            var: a.var,
            body: builder::restrict(m, a.body),
        }),
        Agent::Conc(c) => {
            if c.value.contains_name(m) {
                let mut restricted = vec![m];
                restricted.extend(c.restricted);
                Agent::Conc(Concretion {
                    restricted,
                    value: c.value,
                    label: c.label,
                    body: c.body,
                })
            } else {
                Agent::Conc(Concretion {
                    restricted: c.restricted,
                    value: c.value,
                    label: c.label,
                    body: builder::restrict(m, c.body),
                })
            }
        }
    }
}

/// `(hide m)A`: no scope extrusion. A concretion whose message mentions
/// `m` is blocked (`None`); every other agent keeps the hiding on its
/// continuation.
fn agent_hide(m: Name, agent: Agent) -> Option<Agent> {
    match agent {
        Agent::Proc(p) => Some(Agent::Proc(builder::hide(m, p))),
        Agent::Abs(a) => Some(Agent::Abs(Abstraction {
            restricted: a.restricted,
            var: a.var,
            body: builder::hide(m, a.body),
        })),
        Agent::Conc(c) => {
            if c.value.contains_name(m) {
                None
            } else {
                Some(Agent::Conc(Concretion {
                    restricted: c.restricted,
                    value: c.value,
                    label: c.label,
                    body: builder::hide(m, c.body),
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_syntax::{builder as b, parse_process, Var};
    use std::rc::Rc;

    fn cfg() -> CommitConfig {
        CommitConfig::default()
    }

    fn taus(p: &Process) -> Vec<Process> {
        commitments(p, &cfg())
            .into_iter()
            .filter(|c| c.action == Action::Tau)
            .map(|c| match c.agent {
                Agent::Proc(q) => q,
                other => panic!("τ with non-process agent {other:?}"),
            })
            .collect()
    }

    #[test]
    fn nil_has_no_commitments() {
        assert!(commitments(&Process::Nil, &cfg()).is_empty());
    }

    #[test]
    fn output_commits_on_its_channel() {
        let p = parse_process("c<0>.0").unwrap();
        let cs = commitments(&p, &cfg());
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].action, Action::Out(Name::global("c")));
        assert_eq!(cs[0].outputs.len(), 1);
        match &cs[0].agent {
            Agent::Conc(c) => assert_eq!(c.value, Value::zero()),
            other => panic!("expected concretion, got {other:?}"),
        }
    }

    #[test]
    fn input_commits_with_abstraction() {
        let p = parse_process("c(x).0").unwrap();
        let cs = commitments(&p, &cfg());
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].action, Action::In(Name::global("c")));
        assert!(matches!(cs[0].agent, Agent::Abs(_)));
    }

    #[test]
    fn non_name_channel_is_stuck() {
        let p = b::output(b::pair(b::zero(), b::zero()), b::zero(), b::nil());
        assert!(commitments(&p, &cfg()).is_empty());
    }

    #[test]
    fn communication_yields_tau() {
        let p = parse_process("c<m>.0 | c(x).d<x>.0").unwrap();
        let succs = taus(&p);
        assert_eq!(succs.len(), 1);
        // After the communication, the receiver forwards m on d.
        let next = commitments(&succs[0], &cfg());
        assert!(next
            .iter()
            .any(|c| c.action == Action::Out(Name::global("d"))));
    }

    #[test]
    fn tau_records_the_output_premise() {
        let p = parse_process("c<m>.0 | c(x).0").unwrap();
        let cs = commitments(&p, &cfg());
        let tau = cs.iter().find(|c| c.action == Action::Tau).unwrap();
        assert_eq!(tau.outputs.len(), 1);
        assert_eq!(tau.outputs[0].channel, Name::global("c"));
        assert_eq!(tau.outputs[0].value, Value::name("m"));
    }

    #[test]
    fn restriction_hides_the_channel() {
        let p = parse_process("(new c) c<0>.0").unwrap();
        assert!(commitments(&p, &cfg()).is_empty());
        // But internal communication on the restricted channel is a τ.
        let q = parse_process("(new c) (c<0>.0 | c(x).0)").unwrap();
        assert_eq!(taus(&q).len(), 1);
    }

    #[test]
    fn scope_extrusion_restricts_the_message() {
        let p = parse_process("(new s) c<s>.0").unwrap();
        let cs = commitments(&p, &cfg());
        assert_eq!(cs.len(), 1);
        match &cs[0].agent {
            Agent::Conc(c) => {
                assert_eq!(c.restricted.len(), 1);
                assert!(c.value.contains_name(c.restricted[0]));
                assert_eq!(c.restricted[0].canonical().as_str(), "s");
            }
            other => panic!("expected concretion, got {other:?}"),
        }
    }

    #[test]
    fn match_of_equal_names_reduces() {
        let p = parse_process("[a is a] c<0>.0").unwrap();
        assert_eq!(commitments(&p, &cfg()).len(), 1);
        let q = parse_process("[a is b] c<0>.0").unwrap();
        assert!(commitments(&q, &cfg()).is_empty());
    }

    #[test]
    fn match_of_two_encryptions_never_succeeds_in_nuspi() {
        // Even syntactically identical encryption sites differ dynamically.
        let p = parse_process("[{0, new r}:k is {0, new r}:k] c<0>.0").unwrap();
        assert!(
            commitments(&p, &cfg()).is_empty(),
            "history dependence must block the match"
        );
    }

    #[test]
    fn match_of_two_encryptions_succeeds_in_classic_mode() {
        let p = parse_process("[{0, new r}:k is {0, new r}:k] c<0>.0").unwrap();
        let classic = CommitConfig {
            mode: EvalMode::ClassicSpi,
            rep_budget: 2,
        };
        assert_eq!(commitments(&p, &classic).len(), 1);
    }

    #[test]
    fn let_splits_pairs() {
        let p = parse_process("let (x, y) = (a, b) in c<x>.c<y>.0").unwrap();
        let cs = commitments(&p, &cfg());
        assert_eq!(cs.len(), 1);
        match &cs[0].agent {
            Agent::Conc(c) => assert_eq!(c.value, Value::name("a")),
            other => panic!("expected concretion, got {other:?}"),
        }
    }

    #[test]
    fn let_on_non_pair_is_stuck() {
        let p = parse_process("let (x, y) = 0 in c<x>.0").unwrap();
        assert!(commitments(&p, &cfg()).is_empty());
    }

    #[test]
    fn case_nat_selects_branches() {
        let z = parse_process("case 0 of 0: a<0>.0, suc(x): b<x>.0").unwrap();
        let cs = commitments(&z, &cfg());
        assert_eq!(cs[0].action, Action::Out(Name::global("a")));

        let s = parse_process("case 2 of 0: a<0>.0, suc(x): b<x>.0").unwrap();
        let cs = commitments(&s, &cfg());
        assert_eq!(cs[0].action, Action::Out(Name::global("b")));
        match &cs[0].agent {
            Agent::Conc(c) => assert_eq!(c.value.as_numeral(), Some(1)),
            other => panic!("expected concretion, got {other:?}"),
        }
    }

    #[test]
    fn decryption_with_right_key_succeeds() {
        let p = parse_process("case {m, new r}:k of {x}:k in c<x>.0").unwrap();
        let cs = commitments(&p, &cfg());
        assert_eq!(cs.len(), 1);
        match &cs[0].agent {
            Agent::Conc(c) => assert_eq!(c.value, Value::name("m")),
            other => panic!("expected concretion, got {other:?}"),
        }
    }

    #[test]
    fn decryption_with_wrong_key_is_stuck() {
        let p = parse_process("case {m, new r}:k of {x}:k2 in c<x>.0").unwrap();
        assert!(commitments(&p, &cfg()).is_empty());
    }

    #[test]
    fn decryption_with_wrong_arity_is_stuck() {
        let p = parse_process("case {m, new r}:k of {x, y}:k in c<x>.0").unwrap();
        assert!(commitments(&p, &cfg()).is_empty());
    }

    #[test]
    fn decryption_hides_the_confounder() {
        let p = parse_process("case {m, new r}:k of {x}:k in c<x>.0").unwrap();
        let cs = commitments(&p, &cfg());
        match &cs[0].agent {
            Agent::Conc(c) => {
                assert_eq!(c.value, Value::name("m"), "payload only, no confounder");
            }
            other => panic!("expected concretion, got {other:?}"),
        }
    }

    #[test]
    fn replication_provides_multiple_copies() {
        let p = parse_process("!c<0>.0").unwrap();
        let cs = commitments(&p, &cfg());
        assert!(!cs.is_empty());
        assert!(cs
            .iter()
            .all(|c| c.action == Action::Out(Name::global("c"))));
    }

    #[test]
    fn replication_self_communicates() {
        let p = parse_process("!(c<0>.0 | c(x).d<x>.0)").unwrap();
        let cs = commitments(&p, &cfg());
        assert!(cs.iter().any(|c| c.action == Action::Tau));
    }

    #[test]
    fn replication_budget_zero_is_inert() {
        let p = parse_process("!c<0>.0").unwrap();
        let tight = CommitConfig {
            mode: EvalMode::NuSpi,
            rep_budget: 0,
        };
        assert!(commitments(&p, &tight).is_empty());
    }

    #[test]
    fn reduce_unfolds_replication() {
        let p = parse_process("!c<0>.0").unwrap();
        let q = reduce(&p, EvalMode::NuSpi).unwrap();
        assert!(matches!(q, Process::Par(_, _)));
    }

    #[test]
    fn output_under_restriction_extrudes_fresh_confounder() {
        // The message is an encryption: its confounder must be carried as a
        // restricted name of the concretion.
        let p = parse_process("c<{m, new r}:k>.0").unwrap();
        let cs = commitments(&p, &cfg());
        match &cs[0].agent {
            Agent::Conc(c) => {
                assert_eq!(c.restricted.len(), 1);
                assert_eq!(c.restricted[0].canonical().as_str(), "r");
            }
            other => panic!("expected concretion, got {other:?}"),
        }
    }

    #[test]
    fn restricted_channel_blocks_even_under_par() {
        let p = parse_process("(new c) (c<0>.0 | d<0>.0)").unwrap();
        let cs = commitments(&p, &cfg());
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].action, Action::Out(Name::global("d")));
    }

    #[test]
    fn freshened_binders_avoid_capture_on_interaction() {
        // Sender extrudes a fresh s; receiver already knows a distinct s.
        let p = parse_process("((new s) c<s>.0) | c(x).[x is s] d<0>.0").unwrap();
        let succs = taus(&p);
        assert_eq!(succs.len(), 1);
        // The match [fresh-s is global-s] must fail: no d output reachable.
        let next = commitments(&succs[0], &cfg());
        assert!(next
            .iter()
            .all(|c| c.action != Action::Out(Name::global("d"))));
    }

    #[test]
    fn substituted_value_keeps_variable_label() {
        let x = Var::fresh("x");
        let body = b::output(b::name("d"), b::var(x), b::nil());
        let var_label = match &body {
            Process::Output { msg, .. } => msg.label,
            _ => unreachable!(),
        };
        let p = b::par(
            b::output(b::name("c"), b::name("m"), b::nil()),
            b::input(b::name("c"), x, body),
        );
        let succ = &taus(&p)[0];
        let cs = commitments(succ, &cfg());
        let out = cs
            .iter()
            .find(|c| c.action == Action::Out(Name::global("d")))
            .unwrap();
        match &out.agent {
            Agent::Conc(c) => assert_eq!(c.label, var_label),
            other => panic!("expected concretion, got {other:?}"),
        }
    }

    #[test]
    fn wmf_runs_to_completion() {
        // Example 1: the full Wide Mouthed Frog exchange takes three
        // internal steps and ends with B holding m.
        let src = "
            (new kAS) (new kBS) (
              ((new kAB) cAS<{kAB, new r1}:kAS>. cAB<{m, new r2}:kAB>.0
               | cBS(t). case t of {y}:kBS in cAB(z). case z of {q}:y in done<q>.0)
              | cAS(x). case x of {s}:kAS in cBS<{s, new r3}:kBS>.0
            )";
        let mut state = parse_process(src).unwrap();
        for _ in 0..3 {
            let succs = taus(&state);
            assert!(!succs.is_empty(), "stuck at {state}");
            state = succs[0].clone();
        }
        let cs = commitments(&state, &cfg());
        let done = cs
            .iter()
            .find(|c| c.action == Action::Out(Name::global("done")))
            .expect("B should emit the payload");
        match &done.agent {
            Agent::Conc(c) => assert_eq!(c.value, Value::name("m")),
            other => panic!("expected concretion, got {other:?}"),
        }
    }

    #[test]
    fn reduce_handles_match_restrictions() {
        // Matching values that carry confounders re-wraps the confounders.
        let p = parse_process("[(a, {0, new r}:k) is (a, {0, new r}:k)] c<0>.0").unwrap();
        assert!(reduce(&p, EvalMode::NuSpi).is_none());
        let q = parse_process("[(a, 0) is (a, 0)] c<0>.0").unwrap();
        assert!(reduce(&q, EvalMode::NuSpi).is_some());
    }

    #[test]
    fn value_eq_uses_rc_structural_equality() {
        let a = Rc::new(Value::Zero);
        let b = Rc::new(Value::Zero);
        assert_eq!(a, b);
    }
}
