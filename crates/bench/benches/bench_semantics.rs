//! Criterion bench B1a: the operational-semantics engine — evaluation,
//! commitment enumeration, and bounded exploration throughput.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nuspi_bench::workloads;
use nuspi_protocols::wmf;
use nuspi_semantics::{commitments, eval, explore_tau, CommitConfig, EvalMode, ExecConfig};
use nuspi_syntax::{builder as b, Name};

fn bench_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval/nested-encryption");
    for depth in [2usize, 8, 32] {
        let mut e = b::zero();
        for i in 0..depth {
            e = b::enc(
                vec![e],
                Name::global(format!("r{i}").as_str()),
                b::name("k"),
            );
        }
        group.bench_with_input(BenchmarkId::from_parameter(depth), &e, |bch, e| {
            bch.iter(|| eval(e, EvalMode::NuSpi).unwrap())
        });
    }
    group.finish();
}

fn bench_commitments(c: &mut Criterion) {
    let wmf = wmf::wmf().process;
    c.bench_function("commitments/wmf-initial", |bch| {
        bch.iter(|| commitments(&wmf, &CommitConfig::default()))
    });
    let broadcast = workloads::star_broadcast(16);
    c.bench_function("commitments/star-broadcast-16", |bch| {
        bch.iter(|| commitments(&broadcast, &CommitConfig::default()))
    });
}

fn bench_exploration(c: &mut Criterion) {
    let wmf = wmf::wmf().process;
    c.bench_function("explore/wmf-exhaustive", |bch| {
        bch.iter(|| explore_tau(&wmf, &ExecConfig::default(), |_, _| true))
    });
    let chain = workloads::relay_chain(8);
    c.bench_function("explore/relay-chain-8", |bch| {
        bch.iter(|| explore_tau(&chain, &ExecConfig::default(), |_, _| true))
    });
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = bench_eval, bench_commitments, bench_exploration
}
criterion_main!(benches);
