//! Criterion bench B1c — ablations for the design choices DESIGN.md calls
//! out:
//!
//! * attacker closure on/off: the cost of Definition 4's `⊇` direction
//!   (the most powerful attacker) over the plain least solution;
//! * replication budget: commitment-enumeration cost as `!P` unfolding
//!   deepens;
//! * νSPI vs classic-spi evaluation: the price of confounder freshening.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nuspi_bench::workloads;
use nuspi_cfa::{analyze, analyze_with_attacker};
use nuspi_semantics::{commitments, eval, CommitConfig, EvalMode};
use nuspi_syntax::{builder as b, parse_process, Name};
use std::collections::HashSet;

fn bench_attacker_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/attacker-closure");
    for n in [2usize, 4, 8] {
        let p = workloads::wmf_sessions(n);
        let secrets: HashSet<_> = (0..n)
            .flat_map(|i| {
                [
                    format!("m{i}"),
                    format!("kAS{i}"),
                    format!("kBS{i}"),
                    format!("kAB{i}"),
                ]
            })
            .map(|s| nuspi_syntax::Symbol::intern(&s))
            .collect();
        group.bench_with_input(BenchmarkId::new("plain", n), &p, |bch, p| {
            bch.iter(|| analyze(p))
        });
        group.bench_with_input(BenchmarkId::new("attacker-closed", n), &p, |bch, p| {
            bch.iter(|| analyze_with_attacker(p, &secrets))
        });
    }
    group.finish();
}

fn bench_rep_budget(c: &mut Criterion) {
    let p = parse_process("!(ping<0>.0 | ping(x).pong<x>.0)").unwrap();
    let mut group = c.benchmark_group("ablation/rep-budget");
    for budget in [1u32, 2, 3] {
        let cfg = CommitConfig {
            mode: EvalMode::NuSpi,
            rep_budget: budget,
        };
        group.bench_with_input(BenchmarkId::from_parameter(budget), &cfg, |bch, cfg| {
            bch.iter(|| commitments(&p, cfg))
        });
    }
    group.finish();
}

fn bench_eval_modes(c: &mut Criterion) {
    let mut e = b::zero();
    for i in 0..16 {
        e = b::enc(
            vec![e],
            Name::global(format!("r{i}").as_str()),
            b::name("k"),
        );
    }
    let mut group = c.benchmark_group("ablation/eval-mode");
    group.bench_function("nuspi-fresh-confounders", |bch| {
        bch.iter(|| eval(&e, EvalMode::NuSpi).unwrap())
    });
    group.bench_function("classic-spi", |bch| {
        bch.iter(|| eval(&e, EvalMode::ClassicSpi).unwrap())
    });
    group.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = bench_attacker_closure, bench_rep_budget, bench_eval_modes
}
criterion_main!(benches);
