//! Criterion bench F1: solver scaling over the parametric workload
//! families — the measured counterpart of the paper's cubic-time claim.
//! One group per family; within each group the parameter `n` sweeps so
//! Criterion's report shows the growth curve.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nuspi_bench::workloads;
use nuspi_cfa::{solve, Constraints};
use nuspi_syntax::Process;

fn family(c: &mut Criterion, name: &str, make: impl Fn(usize) -> Process, sizes: &[usize]) {
    let mut group = c.benchmark_group(format!("solver/{name}"));
    for &n in sizes {
        let p = make(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| solve(Constraints::generate(p)))
        });
    }
    group.finish();
}

fn bench_solver(c: &mut Criterion) {
    family(c, "relay-chain", workloads::relay_chain, &[8, 16, 32, 64]);
    family(c, "crypto-chain", workloads::crypto_chain, &[8, 16, 32, 64]);
    family(c, "star-broadcast", workloads::star_broadcast, &[8, 16, 32, 64]);
    family(c, "wmf-sessions", workloads::wmf_sessions, &[2, 4, 8, 16]);
    family(c, "mixer", workloads::mixer, &[4, 8, 16, 32]);
}

fn bench_phases(c: &mut Criterion) {
    // F2: constraint generation alone is linear; solving dominates.
    let p = workloads::crypto_chain(32);
    c.bench_function("phases/generate-32", |b| {
        b.iter(|| Constraints::generate(&p))
    });
    c.bench_function("phases/solve-32", |b| {
        b.iter(|| solve(Constraints::generate(&p)))
    });
    let wmf = workloads::wmf_sessions(4);
    c.bench_function("phases/wmf4-end-to-end", |b| {
        b.iter(|| solve(Constraints::generate(&wmf)))
    });
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = bench_solver, bench_phases
}
criterion_main!(benches);
