//! Criterion bench B1b: the security layer — confinement (attacker-closed
//! analysis + kind fixpoint), the carefulness monitor, the Dolev–Yao
//! closure, and the bounded intruder on a known-broken protocol.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nuspi_protocols::{suite, wmf};
use nuspi_security::{carefulness, confinement, reveals, IntruderConfig, Knowledge};
use nuspi_semantics::ExecConfig;
use nuspi_syntax::{Name, Symbol, Value};

fn bench_confinement(c: &mut Criterion) {
    let mut group = c.benchmark_group("confinement");
    for spec in suite() {
        group.bench_with_input(
            BenchmarkId::from_parameter(spec.name),
            &spec,
            |b, spec| b.iter(|| confinement(&spec.process, &spec.policy)),
        );
    }
    group.finish();
}

fn bench_carefulness(c: &mut Criterion) {
    let spec = wmf::wmf();
    let cfg = ExecConfig::default();
    c.bench_function("carefulness/wmf", |b| {
        b.iter(|| carefulness(&spec.process, &spec.policy, &cfg))
    });
}

fn bench_knowledge_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("dolev-yao/closure");
    for n in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut k = Knowledge::from_names(["c"]);
                // A chain of ciphertexts, each key released by the next.
                for i in (0..n).rev() {
                    let key = format!("k{i}");
                    let next = format!("k{}", i + 1);
                    k.learn(Value::enc(
                        vec![Value::name(next.as_str())],
                        Name::global("r"),
                        Value::name(key.as_str()),
                    ));
                }
                k.learn(Value::name("k0"));
                assert!(k.can_derive(&Value::name(format!("k{n}").as_str())));
            })
        });
    }
    group.finish();
}

fn bench_intruder(c: &mut Criterion) {
    let spec = wmf::wmf_key_in_clear();
    let k0 = Knowledge::from_names(spec.public_channels.iter().copied());
    let cfg = IntruderConfig::default();
    c.bench_function("dolev-yao/attack-wmf-key-in-clear", |b| {
        b.iter(|| {
            reveals(&spec.process, &k0, Symbol::intern("m"), &cfg)
                .expect("attack must be found")
        })
    });
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = bench_confinement, bench_carefulness, bench_knowledge_closure, bench_intruder
}
criterion_main!(benches);
