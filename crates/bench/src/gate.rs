//! The perf-regression gate: re-runs a bench suite and compares its
//! [`BenchReport`] against the committed baseline in
//! `artifacts/bench/BENCH_<suite>.json`.
//!
//! The *baseline's* gate tag governs each comparison:
//!
//! * [`Gate::Time`] — the current value may exceed the baseline by at
//!   most `baseline * (1 + tolerance)`; improvements always pass.
//! * [`Gate::Exact`] — the values must be equal. These are
//!   deterministic counts (productions, cache hits), so any drift is an
//!   analysis change that must be re-blessed deliberately.
//! * [`Gate::Info`] — reported, never gated.
//!
//! A metric present in the baseline but missing from the current run —
//! or vice versa — is a schema drift and fails the gate, so renames
//! can't silently drop coverage. `--bless` rewrites the baseline from
//! the current run instead of comparing.
//!
//! A suite whose only failures are time overruns is re-measured once
//! before failing (back-to-back gate runs on a loaded box get
//! de-scheduled mid-measurement); exact and schema failures are
//! deterministic and never retried.

use crate::report::{bench_dir, BenchReport, Gate};
use crate::suites;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Default headroom for [`Gate::Time`] metrics: a full run fails at 2x
/// the baseline; smoke runs use much shorter budgets on shared CI
/// hardware, so they get 5x.
pub fn default_tolerance(smoke: bool) -> f64 {
    if smoke {
        4.0
    } else {
        1.0
    }
}

/// What a gate invocation should do.
#[derive(Clone, Debug, Default)]
pub struct GateConfig {
    /// Run the suites with the reduced smoke budget.
    pub smoke: bool,
    /// Headroom for time metrics; `None` picks [`default_tolerance`].
    pub tolerance: Option<f64>,
    /// Rewrite the baselines from this run instead of comparing.
    pub bless: bool,
    /// Baseline directory; `None` picks [`bench_dir`].
    pub dir: Option<PathBuf>,
    /// Suites to gate; empty means all of [`suites::SUITES`].
    pub suites: Vec<String>,
}

/// One metric-level gate failure.
#[derive(Clone, Debug)]
pub struct GateFailure {
    /// The suite the metric belongs to.
    pub suite: String,
    /// The metric name.
    pub metric: String,
    /// What went wrong.
    pub reason: String,
    /// Whether a re-measurement could plausibly clear it (time overruns
    /// on a loaded box); exact drift and schema drift are deterministic
    /// and never transient.
    pub transient: bool,
}

/// The outcome of gating one suite.
#[derive(Clone, Debug)]
pub struct SuiteOutcome {
    /// The suite name.
    pub suite: String,
    /// Failures; empty means the suite passed.
    pub failures: Vec<GateFailure>,
    /// Time metrics compared.
    pub timed: usize,
    /// Exact metrics compared.
    pub exact: usize,
}

/// Compares a current report against its baseline.
pub fn compare(baseline: &BenchReport, current: &BenchReport, tolerance: f64) -> SuiteOutcome {
    let mut out = SuiteOutcome {
        suite: baseline.bench.clone(),
        failures: Vec::new(),
        timed: 0,
        exact: 0,
    };
    let mut fail = |metric: &str, reason: String, transient: bool| {
        out.failures.push(GateFailure {
            suite: baseline.bench.clone(),
            metric: metric.to_owned(),
            reason,
            transient,
        });
    };
    for base in &baseline.metrics {
        let Some(cur) = current.get(&base.name) else {
            fail(
                &base.name,
                "present in the baseline, missing from this run".to_owned(),
                false,
            );
            continue;
        };
        match base.gate {
            Gate::Time => {
                out.timed += 1;
                let limit = base.value * (1.0 + tolerance);
                if cur.value > limit {
                    fail(
                        &base.name,
                        format!(
                            "{:.3}{} exceeds the baseline {:.3}{} by more than {:.0}% (limit {:.3}{})",
                            cur.value,
                            cur.unit,
                            base.value,
                            base.unit,
                            tolerance * 100.0,
                            limit,
                            base.unit
                        ),
                        true,
                    );
                }
            }
            Gate::Exact => {
                out.exact += 1;
                if cur.value != base.value {
                    fail(
                        &base.name,
                        format!(
                            "deterministic count changed: baseline {}, current {} — \
                             re-bless if the analysis change is intentional",
                            base.value, cur.value
                        ),
                        false,
                    );
                }
            }
            Gate::Info => {}
        }
    }
    for cur in &current.metrics {
        if baseline.get(&cur.name).is_none() {
            fail(
                &cur.name,
                "new metric not in the baseline — re-bless to adopt it".to_owned(),
                false,
            );
        }
    }
    out
}

/// Runs the gate. Returns `Ok(report)` when every suite passes (or was
/// blessed) and `Err(report)` when any comparison fails; the report is
/// the human-readable transcript either way.
///
/// # Errors
///
/// The rendered transcript, when at least one suite fails the gate.
pub fn run(config: &GateConfig) -> Result<String, String> {
    let dir = config.dir.clone().unwrap_or_else(bench_dir);
    let tolerance = config
        .tolerance
        .unwrap_or_else(|| default_tolerance(config.smoke));
    let names: Vec<&str> = if config.suites.is_empty() {
        suites::SUITES.to_vec()
    } else {
        config.suites.iter().map(String::as_str).collect()
    };

    let mut transcript = String::new();
    let mut failed = false;
    for name in names {
        let Some(run) = suites::run(name, config.smoke) else {
            failed = true;
            let _ = writeln!(
                transcript,
                "FAIL {name}: unknown suite (known: {})",
                suites::SUITES.join(", ")
            );
            continue;
        };
        if config.bless {
            match run.report.write_to(&dir) {
                Ok(path) => {
                    let _ = writeln!(transcript, "BLESS {name}: wrote {}", path.display());
                }
                Err(e) => {
                    failed = true;
                    let _ = writeln!(transcript, "FAIL {name}: cannot write baseline: {e}");
                }
            }
            continue;
        }
        let path = dir.join(format!("BENCH_{name}.json"));
        let baseline = match std::fs::read_to_string(&path) {
            Ok(src) => match BenchReport::parse(&src) {
                Ok(b) => b,
                Err(e) => {
                    failed = true;
                    let _ = writeln!(
                        transcript,
                        "FAIL {name}: bad baseline {}: {e}",
                        path.display()
                    );
                    continue;
                }
            },
            Err(e) => {
                failed = true;
                let _ = writeln!(
                    transcript,
                    "FAIL {name}: no baseline at {} ({e}); run with --bless to create it",
                    path.display()
                );
                continue;
            }
        };
        let mut outcome = compare(&baseline, &run.report, tolerance);
        // Time overruns on a loaded box are the one failure mode a
        // re-measurement can legitimately clear: the suites run back to
        // back, and a long gate run can get de-scheduled mid-measurement.
        // One retry, and only when *every* failure is a time overrun —
        // exact drift and schema drift are deterministic and fail
        // immediately.
        if !outcome.failures.is_empty() && outcome.failures.iter().all(|f| f.transient) {
            let _ = writeln!(
                transcript,
                "RETRY {name}: {} time metric(s) over budget, re-measuring once",
                outcome.failures.len()
            );
            if let Some(rerun) = suites::run(name, config.smoke) {
                outcome = compare(&baseline, &rerun.report, tolerance);
            }
        }
        if outcome.failures.is_empty() {
            let _ = writeln!(
                transcript,
                "PASS {name}: {} time metric(s) within {:.0}% of baseline, {} exact metric(s) unchanged",
                outcome.timed,
                tolerance * 100.0,
                outcome.exact
            );
        } else {
            failed = true;
            let _ = writeln!(transcript, "FAIL {name}:");
            for f in &outcome.failures {
                let _ = writeln!(transcript, "  {}: {}", f.metric, f.reason);
            }
        }
    }
    if failed {
        Err(transcript)
    } else {
        Ok(transcript)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new("sample", false);
        r.time("fast", Duration::from_millis(10));
        r.exact("count", 42);
        r.info("ratio", 1.5, "x");
        r
    }

    #[test]
    fn identical_reports_pass() {
        let out = compare(&sample(), &sample(), 1.0);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert_eq!((out.timed, out.exact), (1, 1));
    }

    #[test]
    fn time_regression_beyond_tolerance_fails() {
        let mut cur = sample();
        cur.metrics[0].value = 25.0; // baseline 10ms, limit 20ms at 100%
        let out = compare(&sample(), &cur, 1.0);
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.failures[0].metric, "fast");
        assert!(out.failures[0].transient, "time overruns are retryable");
    }

    #[test]
    fn time_improvement_passes() {
        let mut cur = sample();
        cur.metrics[0].value = 1.0;
        assert!(compare(&sample(), &cur, 1.0).failures.is_empty());
    }

    #[test]
    fn exact_drift_fails_regardless_of_tolerance() {
        let mut cur = sample();
        cur.metrics[1].value = 43.0;
        let out = compare(&sample(), &cur, 100.0);
        assert_eq!(out.failures.len(), 1);
        assert!(out.failures[0].reason.contains("re-bless"));
        assert!(!out.failures[0].transient, "exact drift is deterministic");
    }

    #[test]
    fn info_drift_is_ignored() {
        let mut cur = sample();
        cur.metrics[2].value = 99.0;
        assert!(compare(&sample(), &cur, 1.0).failures.is_empty());
    }

    #[test]
    fn missing_and_new_metrics_fail() {
        let mut cur = sample();
        cur.metrics.remove(0);
        cur.exact("brand-new", 1);
        let out = compare(&sample(), &cur, 1.0);
        let reasons: Vec<&str> = out.failures.iter().map(|f| f.metric.as_str()).collect();
        assert_eq!(reasons, ["fast", "brand-new"]);
        assert!(
            out.failures.iter().all(|f| !f.transient),
            "schema drift must not be retried"
        );
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample();
        let parsed = BenchReport::parse(&r.to_json()).unwrap();
        assert_eq!(parsed.bench, "sample");
        assert!(!parsed.smoke);
        assert_eq!(parsed.metrics.len(), 3);
        assert_eq!(parsed.metrics[1].value, 42.0);
        assert_eq!(parsed.metrics[1].gate, Gate::Exact);
        assert_eq!(parsed.to_json(), r.to_json(), "stable re-serialisation");
    }
}
