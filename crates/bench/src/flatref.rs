//! A reference implementation of the analysis for *flat* processes
//! (name-valued messages only): naive Table 2 saturation over explicit
//! finite sets. Exponentially simpler than the grammar solver — and
//! therefore a trustworthy oracle: on flat processes the two must compute
//! *exactly* the same least solution.

use nuspi_cfa::{FiniteEstimate, FlowVar, Prod, Solution};
use nuspi_semantics::rng::{Rng, SplitMix64};
use nuspi_syntax::{builder as b, Expr, Name, Process, Term, Value, Var};

/// A random flat process: prefixes over a small channel pool, messages
/// are names, receivers may forward.
pub fn random_flat_process(seed: u64) -> Process {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut parts = Vec::new();
    for _ in 0..rng.gen_range(2..5) {
        let mut p = b::nil();
        for _ in 0..rng.gen_range(1..4) {
            let c = format!("ch{}", rng.gen_range(0..3));
            if rng.gen_bool(0.5) {
                let m = format!("d{}", rng.gen_range(0..4));
                p = b::output(b::name(&c), b::name(&m), p);
            } else {
                let x = Var::fresh("x");
                let fwd = format!("ch{}", rng.gen_range(0..3));
                p = b::input(b::name(&c), x, b::output(b::name(&fwd), b::var(x), p));
            }
        }
        parts.push(p);
    }
    b::par_all(parts)
}

/// Naive Table 2 saturation for flat processes, starting from `extra`.
///
/// # Panics
///
/// Panics if the process contains constructors or destructors (it is not
/// flat).
pub fn saturate_flat(p: &Process, extra: &FiniteEstimate) -> FiniteEstimate {
    let mut est = extra.clone();
    for _ in 0..256 {
        let before = est.clone();
        apply(p, &mut est);
        if before == est {
            break;
        }
    }
    est
}

fn expr(e: &Expr, est: &mut FiniteEstimate) {
    match &e.term {
        Term::Name(n) => {
            est.add_zeta(e.label, Value::name(Name::global(n.canonical())));
        }
        Term::Var(x) => {
            for w in est.rho(*x).clone() {
                est.add_zeta(e.label, w);
            }
        }
        _ => panic!("saturate_flat: process is not flat"),
    }
}

fn apply(p: &Process, est: &mut FiniteEstimate) {
    match p {
        Process::Nil => {}
        Process::Output { chan, msg, then } => {
            expr(chan, est);
            expr(msg, est);
            apply(then, est);
            for w in est.zeta(chan.label).clone() {
                if let Value::Name(n) = &*w {
                    for m in est.zeta(msg.label).clone() {
                        est.add_kappa(n.canonical(), m);
                    }
                }
            }
        }
        Process::Input { chan, var, then } => {
            expr(chan, est);
            for w in est.zeta(chan.label).clone() {
                if let Value::Name(n) = &*w {
                    for m in est.kappa(n.canonical()).clone() {
                        est.add_rho(*var, m);
                    }
                }
            }
            apply(then, est);
        }
        Process::Par(a, b) => {
            apply(a, est);
            apply(b, est);
        }
        Process::Restrict { body, .. } | Process::Hide { body, .. } => apply(body, est),
        Process::Replicate(q) => apply(q, est),
        _ => panic!("saturate_flat: process is not flat"),
    }
}

/// Concretises a solution of a *flat* process into a finite estimate
/// (every production must be a bare name).
///
/// # Panics
///
/// Panics on non-name productions.
pub fn concretize_flat(sol: &Solution) -> FiniteEstimate {
    let mut est = FiniteEstimate::new();
    for (id, fv) in sol.flow_vars() {
        for prod in sol.prods_of_id(id) {
            let Prod::Name(n) = prod else {
                panic!("concretize_flat: non-name production {prod:?}")
            };
            let w = Value::name(Name::global(*n));
            match fv {
                FlowVar::Rho(x) => {
                    est.add_rho(x, w);
                }
                FlowVar::Kappa(c) => {
                    est.add_kappa(c, w);
                }
                FlowVar::Zeta(l) => {
                    est.add_zeta(l, w);
                }
                FlowVar::Aux(_) => {}
            }
        }
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_cfa::analyze;

    #[test]
    fn flat_processes_are_closed_and_flat() {
        for seed in 0..100 {
            let p = random_flat_process(seed);
            assert!(p.is_closed(), "seed {seed}");
            // saturate must not panic (i.e. the process is flat)
            let _ = saturate_flat(&p, &FiniteEstimate::new());
        }
    }

    #[test]
    fn solver_and_naive_saturation_agree_exactly() {
        // The grammar solver and the exponential reference produce the
        // *same* least solution on flat processes — not just ⊑.
        for seed in 0..150 {
            let p = random_flat_process(seed);
            let reference = saturate_flat(&p, &FiniteEstimate::new());
            let solved = concretize_flat(&analyze(&p));
            assert!(
                solved.leq(&reference) && reference.leq(&solved),
                "seed {seed}: solver and reference disagree"
            );
        }
    }

    #[test]
    fn both_implementations_accept_their_result() {
        for seed in 0..50 {
            let p = random_flat_process(seed);
            let reference = saturate_flat(&p, &FiniteEstimate::new());
            assert!(reference.accepts(&p), "seed {seed}");
            let solved = concretize_flat(&analyze(&p));
            assert!(solved.accepts(&p), "seed {seed}");
        }
    }
}
