//! Experiment E7 — the §1 motivation: history-dependent encryption
//! defeats the ciphertext-comparison attack.
//!
//! The process emits `{0}_k`, `{1}_k` and `{b}_k` under one key. Under
//! *classic* (algebraic) spi semantics, equal plaintexts give equal
//! ciphertexts, so the observer that compares the third ciphertext with
//! the first learns the secret bit `b`. Under νSPI semantics every
//! encryption carries a fresh confounder and the attack collapses.

use nuspi_bench::report::Table;
use nuspi_protocols::{ciphertext_comparison, ciphertext_comparison_test};
use nuspi_semantics::{passes_test, EvalMode, ExecConfig};
use nuspi_syntax::Value;

fn main() {
    println!("E7: §1 motivation — ciphertext comparison vs history dependence\n");
    let ex = ciphertext_comparison();
    let test = ciphertext_comparison_test();
    println!("process P(x) = {}", ex.process);
    println!("observer Q   = {}", test.observer);
    println!("barb         = witness' output\n");

    let classic = ExecConfig {
        mode: EvalMode::ClassicSpi,
        ..ExecConfig::default()
    };
    let nuspi = ExecConfig::default();

    let mut table = Table::new([
        "semantics",
        "x = 0 passes",
        "x = 1 passes",
        "attacker learns b?",
    ]);
    let mut rows = Vec::new();
    for (name, cfg) in [
        ("classic spi (algebraic)", &classic),
        ("νSPI (confounders)", &nuspi),
    ] {
        let p0 = ex.process.subst(ex.var, &Value::numeral(0));
        let p1 = ex.process.subst(ex.var, &Value::numeral(1));
        let r0 = passes_test(&p0, &test.observer, test.barb, cfg);
        let r1 = passes_test(&p1, &test.observer, test.barb, cfg);
        let leaks = r0 != r1;
        rows.push((name, r0, r1, leaks));
        table.row([
            name.to_owned(),
            r0.to_string(),
            r1.to_string(),
            if leaks {
                "YES — broken".to_owned()
            } else {
                "no".to_owned()
            },
        ]);
    }
    println!("{}", table.render());
    let classic_leaks = rows[0].3;
    let nuspi_leaks = rows[1].3;
    assert!(classic_leaks, "classic semantics must exhibit the attack");
    assert!(!nuspi_leaks, "νSPI must defeat the attack");
    println!(
        "E7 PASS: the comparison attack distinguishes the secret bit under\n\
         algebraic perfect encryption and is defeated by νSPI's confounders."
    );
}
