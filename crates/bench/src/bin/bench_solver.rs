//! Bench F1 (plain-binary edition): solver throughput over the
//! parametric workload families — the measured counterpart of the
//! paper's cubic-time claim — plus a phase split (generation vs solving)
//! and a sequential-vs-sharded comparison at the largest sizes.
//!
//! Run with: `cargo run --release -p nuspi-bench --bin bench_solver`

use nuspi_bench::report::{timed_stable, Table};
use nuspi_bench::workloads;
use nuspi_cfa::{solve, solve_parallel, Constraints};
use nuspi_syntax::Process;
use std::time::Duration;

const BUDGET: Duration = Duration::from_millis(150);

fn family(name: &str, make: impl Fn(usize) -> Process, sizes: &[usize], table: &mut Table) {
    for &n in sizes {
        let p = make(n);
        let t = timed_stable(BUDGET, || {
            let _ = solve(Constraints::generate(&p));
        });
        table.row([
            format!("solver/{name}"),
            n.to_string(),
            format!("{:.3}ms", t.as_secs_f64() * 1e3),
        ]);
    }
}

fn main() {
    println!("bench_solver: sequential worklist solver\n");
    let mut table = Table::new(["benchmark", "n", "mean time"]);
    family(
        "relay-chain",
        workloads::relay_chain,
        &[8, 16, 32, 64],
        &mut table,
    );
    family(
        "crypto-chain",
        workloads::crypto_chain,
        &[8, 16, 32, 64],
        &mut table,
    );
    family(
        "star-broadcast",
        workloads::star_broadcast,
        &[8, 16, 32, 64],
        &mut table,
    );
    family(
        "wmf-sessions",
        workloads::wmf_sessions,
        &[2, 4, 8, 16],
        &mut table,
    );
    family("mixer", workloads::mixer, &[4, 8, 16, 32], &mut table);
    println!("{}", table.render());

    // Phase split: constraint generation is linear, solving dominates.
    let mut phases = Table::new(["benchmark", "mean time"]);
    let p = workloads::crypto_chain(32);
    let t = timed_stable(BUDGET, || {
        let _ = Constraints::generate(&p);
    });
    phases.row([
        "phases/generate-32".to_owned(),
        format!("{:.3}ms", t.as_secs_f64() * 1e3),
    ]);
    let t = timed_stable(BUDGET, || {
        let _ = solve(Constraints::generate(&p));
    });
    phases.row([
        "phases/solve-32".to_owned(),
        format!("{:.3}ms", t.as_secs_f64() * 1e3),
    ]);
    let wmf = workloads::wmf_sessions(4);
    let t = timed_stable(BUDGET, || {
        let _ = solve(Constraints::generate(&wmf));
    });
    phases.row([
        "phases/wmf4-end-to-end".to_owned(),
        format!("{:.3}ms", t.as_secs_f64() * 1e3),
    ]);
    println!("{}", phases.render());

    // Sequential vs sharded on the largest instances (see exp_f1_scaling
    // for the full sweep with cache and shard statistics).
    let mut par = Table::new(["benchmark", "threads", "mean time"]);
    for (name, p) in [
        ("wmf-sessions-16", workloads::wmf_sessions(16)),
        ("mixer-32", workloads::mixer(32)),
    ] {
        for threads in [1usize, 2, 4] {
            let t = timed_stable(BUDGET, || {
                let _ = solve_parallel(Constraints::generate(&p), threads);
            });
            par.row([
                format!("parallel/{name}"),
                threads.to_string(),
                format!("{:.3}ms", t.as_secs_f64() * 1e3),
            ]);
        }
    }
    println!("{}", par.render());
    println!("bench_solver done.");
}
