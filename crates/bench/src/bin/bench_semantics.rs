//! Bench B1a (plain-binary edition): the operational-semantics engine —
//! evaluation, commitment enumeration, and bounded exploration.
//!
//! Run with: `cargo run --release -p nuspi-bench --bin bench_semantics`

use nuspi_bench::report::{timed_stable, Table};
use nuspi_bench::workloads;
use nuspi_protocols::wmf;
use nuspi_semantics::{commitments, eval, explore_tau, CommitConfig, EvalMode, ExecConfig};
use nuspi_syntax::{builder as b, Name};
use std::time::Duration;

const BUDGET: Duration = Duration::from_millis(150);

fn main() {
    println!("bench_semantics: evaluation, commitments, exploration\n");
    let mut table = Table::new(["benchmark", "mean time"]);

    for depth in [2usize, 8, 32] {
        let mut e = b::zero();
        for i in 0..depth {
            e = b::enc(
                vec![e],
                Name::global(format!("r{i}").as_str()),
                b::name("k"),
            );
        }
        let t = timed_stable(BUDGET, || {
            eval(&e, EvalMode::NuSpi).unwrap();
        });
        table.row([
            format!("eval/nested-encryption-{depth}"),
            format!("{:.4}ms", t.as_secs_f64() * 1e3),
        ]);
    }

    let wmf = wmf::wmf().process;
    let t = timed_stable(BUDGET, || {
        let _ = commitments(&wmf, &CommitConfig::default());
    });
    table.row([
        "commitments/wmf-initial".to_owned(),
        format!("{:.4}ms", t.as_secs_f64() * 1e3),
    ]);
    let broadcast = workloads::star_broadcast(16);
    let t = timed_stable(BUDGET, || {
        let _ = commitments(&broadcast, &CommitConfig::default());
    });
    table.row([
        "commitments/star-broadcast-16".to_owned(),
        format!("{:.4}ms", t.as_secs_f64() * 1e3),
    ]);

    let t = timed_stable(BUDGET, || {
        let _ = explore_tau(&wmf, &ExecConfig::default(), |_, _| true);
    });
    table.row([
        "explore/wmf-exhaustive".to_owned(),
        format!("{:.4}ms", t.as_secs_f64() * 1e3),
    ]);
    let chain = workloads::relay_chain(8);
    let t = timed_stable(BUDGET, || {
        let _ = explore_tau(&chain, &ExecConfig::default(), |_, _| true);
    });
    table.row([
        "explore/relay-chain-8".to_owned(),
        format!("{:.4}ms", t.as_secs_f64() * 1e3),
    ]);

    println!("{}", table.render());
    println!("bench_semantics done.");
}
