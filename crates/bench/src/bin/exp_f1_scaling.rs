//! Experiment F1/F2 — the polynomial-time (cubic) complexity claim.
//!
//! Sweeps the parametric workload families over `n`, measuring (F2)
//! constraint-generation size and time and (F1) solver time, then fits a
//! log–log slope per family. The paper claims the least solution is
//! computable in polynomial time, O(n³) after Nielson–Seidl; the fitted
//! exponents must stay at or below ~3.

//! A second sweep compares the sequential worklist solver against the
//! sharded bulk-synchronous parallel solver (`solve_parallel`) at 1, 2
//! and 4 shards: identical estimates (checked), measured wall time,
//! memo-cache hit rates, rounds, and delta traffic. Speedup is reported,
//! not asserted — on a single-core host the sharded solver cannot beat
//! the sequential one; the point of the sweep is the instrumentation.

use nuspi_bench::report::{loglog_slope, timed, timed_stable, Table};
use nuspi_bench::workloads;
use nuspi_cfa::{solve, solve_parallel, Constraints};
use nuspi_syntax::Process;
use std::time::Duration;

fn sweep(name: &str, make: impl Fn(usize) -> Process, sizes: &[usize], table: &mut Table) -> f64 {
    let mut points = Vec::new();
    for &n in sizes {
        let p = make(n);
        let ast = p.size();
        let (constraints, gen_time) = timed(|| Constraints::generate(&p));
        let n_constraints = constraints.list.len();
        let solve_time = timed_stable(Duration::from_millis(60), || {
            let c = Constraints::generate(&p);
            let _ = solve(c);
        });
        let sol = solve(Constraints::generate(&p));
        let stats = sol.stats();
        table.row([
            name.to_owned(),
            n.to_string(),
            ast.to_string(),
            n_constraints.to_string(),
            format!("{:?}", gen_time),
            stats.productions.to_string(),
            stats.edges.to_string(),
            format!("{:.3}ms", solve_time.as_secs_f64() * 1e3),
        ]);
        points.push((ast as f64, solve_time.as_secs_f64()));
    }
    loglog_slope(&points)
}

fn main() {
    println!("F1/F2: solver scaling — the O(n³) claim\n");
    let mut table = Table::new([
        "family",
        "n",
        "ast nodes",
        "constraints",
        "gen time",
        "productions",
        "edges",
        "solve time",
    ]);
    let sizes = [8, 16, 32, 64, 128];
    let mixer_sizes = [4, 8, 16, 32, 64];
    let slopes = [
        (
            "relay-chain",
            sweep("relay-chain", workloads::relay_chain, &sizes, &mut table),
        ),
        (
            "crypto-chain",
            sweep("crypto-chain", workloads::crypto_chain, &sizes, &mut table),
        ),
        (
            "star-broadcast",
            sweep(
                "star-broadcast",
                workloads::star_broadcast,
                &sizes,
                &mut table,
            ),
        ),
        (
            "wmf-sessions",
            sweep(
                "wmf-sessions",
                workloads::wmf_sessions,
                &[2, 4, 8, 16, 32],
                &mut table,
            ),
        ),
        (
            "mixer",
            sweep("mixer", workloads::mixer, &mixer_sizes, &mut table),
        ),
    ];
    println!("{}", table.render());

    let mut slope_table = Table::new(["family", "fitted exponent (solve time vs ast size)"]);
    let mut worst: f64 = 0.0;
    for (name, s) in slopes {
        slope_table.row([name.to_owned(), format!("{s:.2}")]);
        worst = worst.max(s);
    }
    println!("{}", slope_table.render());
    println!("paper claim: least solution computable in polynomial time (cubic).");
    println!("worst fitted exponent: {worst:.2}");
    assert!(
        worst <= 3.4,
        "scaling exponent {worst:.2} exceeds the cubic claim (with 0.4 measurement slack)"
    );
    println!("F1 PASS: all families scale with exponent ≤ 3 (within measurement slack).");

    parallel_sweep();
}

/// Sequential vs sharded solver on the largest workload instances.
fn parallel_sweep() {
    println!("\nF1b: sequential vs sharded parallel solver\n");
    let instances = [
        ("crypto-chain-64", workloads::crypto_chain(64)),
        ("star-broadcast-64", workloads::star_broadcast(64)),
        ("wmf-sessions-16", workloads::wmf_sessions(16)),
        ("mixer-32", workloads::mixer(32)),
    ];
    let mut table = Table::new([
        "instance",
        "solver",
        "mean time",
        "speedup",
        "rounds",
        "queries",
        "cache hit%",
        "deltas",
    ]);
    for (name, p) in &instances {
        let seq_time = timed_stable(Duration::from_millis(60), || {
            let _ = solve(Constraints::generate(p));
        });
        let seq = solve(Constraints::generate(p));
        let st = seq.stats();
        let hitrate = |hits: usize, queries: usize| {
            if queries == 0 {
                "-".to_owned()
            } else {
                format!("{:.1}", 100.0 * hits as f64 / queries as f64)
            }
        };
        table.row([
            name.to_string(),
            "sequential".to_owned(),
            format!("{:.3}ms", seq_time.as_secs_f64() * 1e3),
            "1.00x".to_owned(),
            st.rounds.to_string(),
            st.intersection_queries.to_string(),
            hitrate(st.cache_hits, st.intersection_queries),
            "-".to_owned(),
        ]);
        for threads in [1usize, 2, 4] {
            let par_time = timed_stable(Duration::from_millis(60), || {
                let _ = solve_parallel(Constraints::generate(p), threads);
            });
            let par = solve_parallel(Constraints::generate(p), threads);
            seq.estimate_eq(&par)
                .unwrap_or_else(|e| panic!("{name}: parallel({threads}) diverged: {e}"));
            let st = par.stats();
            let deltas: usize = st.per_shard.iter().map(|s| s.deltas_sent).sum();
            table.row([
                name.to_string(),
                format!("sharded x{threads}"),
                format!("{:.3}ms", par_time.as_secs_f64() * 1e3),
                format!("{:.2}x", seq_time.as_secs_f64() / par_time.as_secs_f64()),
                st.rounds.to_string(),
                st.intersection_queries.to_string(),
                hitrate(st.cache_hits, st.intersection_queries),
                deltas.to_string(),
            ]);
        }
    }
    println!("{}", table.render());

    // Per-shard detail for one representative instance.
    let par = solve_parallel(Constraints::generate(&instances[2].1), 4);
    let st = par.stats();
    let mut shards = Table::new([
        "shard",
        "owned vars",
        "productions",
        "edges",
        "firings",
        "queries",
        "hits",
        "sent",
        "applied",
    ]);
    for (i, sh) in st.per_shard.iter().enumerate() {
        shards.row([
            i.to_string(),
            sh.owned_vars.to_string(),
            sh.productions.to_string(),
            sh.edges.to_string(),
            sh.conditional_firings.to_string(),
            sh.intersection_queries.to_string(),
            sh.cache_hits.to_string(),
            sh.deltas_sent.to_string(),
            sh.deltas_applied.to_string(),
        ]);
    }
    println!("per-shard statistics, {} at 4 shards:", instances[2].0);
    println!("{}", shards.render());
    println!(
        "round wall times (ms): {:?}",
        st.round_millis
            .iter()
            .map(|ms| (ms * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    println!("\nF1b done: all sharded runs computed the sequential estimate exactly.");
}
