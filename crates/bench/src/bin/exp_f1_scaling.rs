//! Experiment F1/F2 — the polynomial-time (cubic) complexity claim.
//!
//! Sweeps the parametric workload families over `n`, measuring (F2)
//! constraint-generation size and time and (F1) solver time, then fits a
//! log–log slope per family. The paper claims the least solution is
//! computable in polynomial time, O(n³) after Nielson–Seidl; the fitted
//! exponents must stay at or below ~3.

use nuspi_bench::report::{loglog_slope, timed, timed_stable, Table};
use nuspi_bench::workloads;
use nuspi_cfa::{solve, Constraints};
use nuspi_syntax::Process;
use std::time::Duration;

fn sweep(name: &str, make: impl Fn(usize) -> Process, sizes: &[usize], table: &mut Table) -> f64 {
    let mut points = Vec::new();
    for &n in sizes {
        let p = make(n);
        let ast = p.size();
        let (constraints, gen_time) = timed(|| Constraints::generate(&p));
        let n_constraints = constraints.list.len();
        let solve_time = timed_stable(Duration::from_millis(60), || {
            let c = Constraints::generate(&p);
            let _ = solve(c);
        });
        let sol = solve(Constraints::generate(&p));
        let stats = sol.stats();
        table.row([
            name.to_owned(),
            n.to_string(),
            ast.to_string(),
            n_constraints.to_string(),
            format!("{:?}", gen_time),
            stats.productions.to_string(),
            stats.edges.to_string(),
            format!("{:.3}ms", solve_time.as_secs_f64() * 1e3),
        ]);
        points.push((ast as f64, solve_time.as_secs_f64()));
    }
    loglog_slope(&points)
}

fn main() {
    println!("F1/F2: solver scaling — the O(n³) claim\n");
    let mut table = Table::new([
        "family",
        "n",
        "ast nodes",
        "constraints",
        "gen time",
        "productions",
        "edges",
        "solve time",
    ]);
    let sizes = [8, 16, 32, 64, 128];
    let mixer_sizes = [4, 8, 16, 32, 64];
    let slopes = [
        ("relay-chain", sweep("relay-chain", workloads::relay_chain, &sizes, &mut table)),
        (
            "crypto-chain",
            sweep("crypto-chain", workloads::crypto_chain, &sizes, &mut table),
        ),
        (
            "star-broadcast",
            sweep("star-broadcast", workloads::star_broadcast, &sizes, &mut table),
        ),
        (
            "wmf-sessions",
            sweep("wmf-sessions", workloads::wmf_sessions, &[2, 4, 8, 16, 32], &mut table),
        ),
        ("mixer", sweep("mixer", workloads::mixer, &mixer_sizes, &mut table)),
    ];
    println!("{}", table.render());

    let mut slope_table = Table::new(["family", "fitted exponent (solve time vs ast size)"]);
    let mut worst: f64 = 0.0;
    for (name, s) in slopes {
        slope_table.row([name.to_owned(), format!("{s:.2}")]);
        worst = worst.max(s);
    }
    println!("{}", slope_table.render());
    println!("paper claim: least solution computable in polynomial time (cubic).");
    println!("worst fitted exponent: {worst:.2}");
    assert!(
        worst <= 3.4,
        "scaling exponent {worst:.2} exceeds the cubic claim (with 0.4 measurement slack)"
    );
    println!("F1 PASS: all families scale with exponent ≤ 3 (within measurement slack).");
}
