//! Experiment E2 — Theorem 1 (subject reduction), machine-checked.
//!
//! For the whole protocol suite and a seeded fleet of random processes,
//! analyse the initial process once, then check along every bounded
//! execution that (1)/(2) the estimate stays acceptable for each
//! residual, (3) each sent value is predicted by `ζ(l)` with
//! `ζ(l) ⊆ κ(⌊m⌋)`, and (4) `κ(⌊m⌋) ⊆ ρ(x)` at each input.

use nuspi_bench::genproc::{random_process, GenConfig};
use nuspi_bench::report::Table;
use nuspi_bench::theorems::check_subject_reduction;
use nuspi_protocols::suite;
use nuspi_semantics::ExecConfig;

fn main() {
    println!("E2: Theorem 1 (subject reduction for ⇓, > and —α→)\n");
    let cfg = ExecConfig {
        max_depth: 12,
        max_states: 1500,
        ..ExecConfig::default()
    };

    let mut table = Table::new(["workload", "states", "outputs", "inputs", "verdict"]);
    let mut failures = 0;
    for spec in suite() {
        match check_subject_reduction(&spec.process, &cfg) {
            Ok(stats) => {
                table.row([
                    spec.name.to_owned(),
                    stats.states_checked.to_string(),
                    stats.outputs_checked.to_string(),
                    stats.inputs_checked.to_string(),
                    "ok".to_owned(),
                ]);
            }
            Err(e) => {
                failures += 1;
                table.row([
                    spec.name.to_owned(),
                    "-".to_owned(),
                    "-".to_owned(),
                    "-".to_owned(),
                    format!("VIOLATION: {e}"),
                ]);
            }
        }
    }

    let gcfg = GenConfig::default();
    let fuzz_cfg = ExecConfig {
        max_depth: 6,
        max_states: 300,
        ..ExecConfig::default()
    };
    let fuzz_total = 300;
    let mut fuzz_states = 0;
    let mut fuzz_outputs = 0;
    for seed in 0..fuzz_total {
        match check_subject_reduction(&random_process(seed, &gcfg), &fuzz_cfg) {
            Ok(stats) => {
                fuzz_states += stats.states_checked;
                fuzz_outputs += stats.outputs_checked;
            }
            Err(e) => {
                failures += 1;
                table.row([
                    format!("fuzz seed {seed}"),
                    "-".to_owned(),
                    "-".to_owned(),
                    "-".to_owned(),
                    format!("VIOLATION: {e}"),
                ]);
            }
        }
    }
    table.row([
        format!("random fuzz ×{fuzz_total}"),
        fuzz_states.to_string(),
        fuzz_outputs.to_string(),
        "-".to_owned(),
        "ok".to_owned(),
    ]);
    println!("{}", table.render());
    println!("counterexamples found: {failures}");
    assert_eq!(failures, 0, "Theorem 1 violated");
    println!("\nE2 PASS: zero subject-reduction counterexamples.");
}
