//! Bench B1b (plain-binary edition): the security layer — confinement,
//! the carefulness monitor, the Dolev–Yao closure, and the bounded
//! intruder on a known-broken protocol.
//!
//! Run with: `cargo run --release -p nuspi-bench --bin bench_security`

use nuspi_bench::report::{timed_stable, Table};
use nuspi_protocols::{suite, wmf};
use nuspi_security::{carefulness, confinement, reveals, IntruderConfig, Knowledge};
use nuspi_semantics::ExecConfig;
use nuspi_syntax::{Name, Symbol, Value};
use std::time::Duration;

const BUDGET: Duration = Duration::from_millis(150);

fn main() {
    println!("bench_security: confinement, carefulness, Dolev-Yao\n");
    let mut table = Table::new(["benchmark", "mean time"]);

    for spec in suite() {
        let t = timed_stable(BUDGET, || {
            let _ = confinement(&spec.process, &spec.policy);
        });
        table.row([
            format!("confinement/{}", spec.name),
            format!("{:.3}ms", t.as_secs_f64() * 1e3),
        ]);
    }

    let spec = wmf::wmf();
    let cfg = ExecConfig::default();
    let t = timed_stable(BUDGET, || {
        let _ = carefulness(&spec.process, &spec.policy, &cfg);
    });
    table.row([
        "carefulness/wmf".to_owned(),
        format!("{:.3}ms", t.as_secs_f64() * 1e3),
    ]);

    for n in [8usize, 32, 128] {
        let t = timed_stable(BUDGET, || {
            let mut k = Knowledge::from_names(["c"]);
            // A chain of ciphertexts, each key released by the next.
            for i in (0..n).rev() {
                let key = format!("k{i}");
                let next = format!("k{}", i + 1);
                k.learn(Value::enc(
                    vec![Value::name(next.as_str())],
                    Name::global("r"),
                    Value::name(key.as_str()),
                ));
            }
            k.learn(Value::name("k0"));
            assert!(k.can_derive(&Value::name(format!("k{n}").as_str())));
        });
        table.row([
            format!("dolev-yao/closure-{n}"),
            format!("{:.3}ms", t.as_secs_f64() * 1e3),
        ]);
    }

    let spec = wmf::wmf_key_in_clear();
    let k0 = Knowledge::from_names(spec.public_channels.iter().copied());
    let icfg = IntruderConfig::default();
    let t = timed_stable(BUDGET, || {
        reveals(&spec.process, &k0, Symbol::intern("m"), &icfg).expect("attack must be found");
    });
    table.row([
        "dolev-yao/attack-wmf-key-in-clear".to_owned(),
        format!("{:.3}ms", t.as_secs_f64() * 1e3),
    ]);

    println!("{}", table.render());
    println!("bench_security done.");
}
