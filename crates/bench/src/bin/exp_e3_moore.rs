//! Experiment E3 — Theorem 2 (Moore family / least solutions),
//! machine-checked on finite estimates.
//!
//! For a family of seeded flat processes (name-valued messages, so finite
//! estimates suffice):
//!
//! 1. build two differently-padded acceptable estimates, check their meet
//!    is acceptable and a lower bound (the Moore-family property);
//! 2. check the solver's least solution *equals* the naive reference
//!    saturation (leastness, exactly) and is ⊑ every padded acceptable
//!    estimate.

use nuspi_bench::flatref::{concretize_flat, random_flat_process, saturate_flat};
use nuspi_bench::report::Table;
use nuspi_bench::theorems::check_moore_meet;
use nuspi_cfa::{analyze, FiniteEstimate};
use nuspi_syntax::{Symbol, Value};

fn main() {
    println!("E3: Theorem 2 (Moore family; existence of least solutions)\n");
    let trials = 120;
    let mut table = Table::new(["check", "trials", "failures"]);
    let mut meet_failures = 0;
    let mut least_failures = 0;
    let mut exact_failures = 0;
    for seed in 0..trials {
        let p = random_flat_process(seed);
        let mut pad1 = FiniteEstimate::new();
        pad1.add_kappa(Symbol::intern("ch0"), Value::name("junkA"));
        let mut pad2 = FiniteEstimate::new();
        pad2.add_kappa(Symbol::intern("ch1"), Value::name("junkB"));
        let e1 = saturate_flat(&p, &pad1);
        let e2 = saturate_flat(&p, &pad2);
        if let Err(e) = check_moore_meet(&p, &e1, &e2) {
            eprintln!("seed {seed}: {e}");
            meet_failures += 1;
        }
        // Leastness: the solver's solution must sit below both estimates…
        let least = concretize_flat(&analyze(&p));
        if !least.accepts(&p) || !least.leq(&e1) || !least.leq(&e2) {
            eprintln!("seed {seed}: least solution not acceptable/minimal");
            least_failures += 1;
        }
        // …and coincide exactly with the naive reference saturation.
        let reference = saturate_flat(&p, &FiniteEstimate::new());
        if !(least.leq(&reference) && reference.leq(&least)) {
            eprintln!("seed {seed}: solver ≠ reference saturation");
            exact_failures += 1;
        }
    }
    table.row([
        "meet of acceptable estimates is acceptable ∧ lower bound".to_owned(),
        trials.to_string(),
        meet_failures.to_string(),
    ]);
    table.row([
        "solver solution acceptable ∧ ⊑ padded estimates".to_owned(),
        trials.to_string(),
        least_failures.to_string(),
    ]);
    table.row([
        "solver solution = naive reference saturation (exactly)".to_owned(),
        trials.to_string(),
        exact_failures.to_string(),
    ]);
    println!("{}", table.render());
    assert_eq!(
        meet_failures + least_failures + exact_failures,
        0,
        "Theorem 2 violated"
    );
    println!("E3 PASS: Moore-family property, leastness and exactness hold on {trials} seeds.");
}
