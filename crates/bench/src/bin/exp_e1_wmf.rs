//! Experiment E1 — the paper's Example 1 (Wide Mouthed Frog).
//!
//! Reproduces the estimate table of Example 1: the least solution maps
//! every bound variable and every public channel to ciphertext-only /
//! public-kind sets, so the process is confined and the secrecy of `m` is
//! guaranteed (Theorem 4).

use nuspi_bench::report::Table;
use nuspi_cfa::{FlowVar, Prod};
use nuspi_protocols::wmf;
use nuspi_security::{confinement, AbstractKind};

fn main() {
    let spec = wmf::wmf();
    println!("E1: {}\n", spec.description);
    println!("process:\n{}\n", spec.source.trim());

    let report = confinement(&spec.process, &spec.policy);
    let sol = &report.solution;
    let kinds = AbstractKind::compute(sol, &spec.policy);

    let mut table = Table::new(["component", "entry", "productions", "kind"]);
    let mut channels = sol.channels();
    channels.sort_by_key(|c| c.as_str());
    for c in channels {
        let prods = sol.kappa(c);
        let desc = describe_prods(prods.iter());
        let kind = sol
            .var_id(FlowVar::Kappa(c))
            .map(|id| {
                let f = kinds.facts(id);
                match (f.may_secret, f.may_public) {
                    (false, _) => "P only",
                    (true, _) => "may be S",
                }
            })
            .unwrap_or("-");
        table.row(["κ", c.as_str(), &desc, kind]);
    }
    let mut rhos: Vec<(String, String)> = sol
        .flow_vars()
        .filter_map(|(id, fv)| match fv {
            FlowVar::Rho(x) => Some((
                x.symbol().as_str().to_owned(),
                describe_prods(sol.prods_of_id(id).iter()),
            )),
            _ => None,
        })
        .collect();
    rhos.sort();
    for (x, desc) in rhos {
        table.row(["ρ", &x, &desc, ""]);
    }
    println!("{}", table.render());

    println!(
        "paper says: ρ(bv) ⊆ Val_P for bv ∈ {{x,s,t,y,z,q}}; κ(c) ⊆ Val_P for the\n\
         three public channels; hence P is confined and m is kept secret.\n"
    );
    println!(
        "confined: {} ({} violations)",
        report.is_confined(),
        report.violations.len()
    );
    let stats = sol.stats();
    println!(
        "solver: {} flow vars, {} productions, {} edges, {} conditional firings",
        stats.flow_vars, stats.productions, stats.edges, stats.conditional_firings
    );
    assert!(report.is_confined(), "E1 must certify Example 1");
    println!("\nE1 PASS: Example 1 estimate reproduced; WMF confined; m secret.");
}

fn describe_prods<'a>(prods: impl Iterator<Item = &'a Prod>) -> String {
    let mut parts: Vec<String> = prods
        .map(|p| match p {
            Prod::Name(n) => n.as_str().to_owned(),
            Prod::Zero => "0".to_owned(),
            Prod::Suc(_) => "suc(·)".to_owned(),
            Prod::Pair(_, _) => "pair(·,·)".to_owned(),
            Prod::Enc { confounder, .. } => format!("enc{{·,{confounder}}}"),
        })
        .collect();
    parts.sort();
    if parts.is_empty() {
        "∅".to_owned()
    } else {
        parts.join(", ")
    }
}
