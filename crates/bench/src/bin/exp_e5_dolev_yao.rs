//! Experiment E5 — Theorem 4 (confinement ⟹ Dolev–Yao secrecy).
//!
//! For every protocol, run the bounded active intruder of Definition 5
//! (initial knowledge: the protocol's public channels) against the
//! protocol's declared secret. The theorem predicts: confined protocols
//! reveal nothing; the flawed variants — exactly the ones the CFA rejects
//! — fall to a concrete attack, which is printed.

use nuspi_bench::report::Table;
use nuspi_protocols::suite;
use nuspi_security::{confinement, reveals, IntruderConfig, Knowledge};

fn main() {
    println!("E5: Theorem 4 (Dolev–Yao secrecy via the bounded active intruder)\n");
    // Two budgets: a cheap replay/injection pass for every row, and a
    // deeper pass with depth-1 pair *synthesis* (message forging) that is
    // only needed to exhibit attacks on statically-rejected variants.
    let cheap = IntruderConfig {
        max_depth: 16,
        max_states: 20_000,
        max_injections: 12,
        ..IntruderConfig::default()
    };
    let forging = IntruderConfig {
        max_depth: 8,
        max_states: 60_000,
        max_injections: 10,
        pair_components: 8,
        ..IntruderConfig::default()
    };
    let mut table = Table::new(["protocol", "secret", "confined", "attack", "steps"]);
    let mut theorem_violations = 0;
    let mut missed_attacks = 0;
    let mut attacks = Vec::new();
    for spec in suite() {
        let confined = confinement(&spec.process, &spec.policy).is_confined();
        // Definition 5 allows any K₀ ⊆ P: start from every public free
        // name of the protocol (channels and public constants alike).
        let public_names: Vec<_> = spec
            .process
            .free_names()
            .into_iter()
            .map(|n| n.canonical())
            .filter(|n| spec.policy.is_public(*n))
            .collect();
        let k0 = Knowledge::from_names(public_names);
        let mut attack = reveals(&spec.process, &k0, spec.secret, &cheap);
        if attack.is_none() && !confined {
            attack = reveals(&spec.process, &k0, spec.secret, &forging);
        }
        if confined && attack.is_some() {
            theorem_violations += 1;
        }
        if !confined && attack.is_none() {
            missed_attacks += 1;
        }
        table.row([
            spec.name.to_owned(),
            spec.secret.as_str().to_owned(),
            confined.to_string(),
            if attack.is_some() {
                "FOUND".to_owned()
            } else {
                "none".to_owned()
            },
            attack
                .as_ref()
                .map(|a| a.trace.len().to_string())
                .unwrap_or_else(|| "-".to_owned()),
        ]);
        if let Some(a) = attack {
            attacks.push((spec.name, a));
        }
    }
    println!("{}", table.render());
    for (name, a) in &attacks {
        println!("attack on {name}:");
        for step in &a.trace {
            println!("  - {step}");
        }
    }
    println!();
    assert_eq!(
        theorem_violations, 0,
        "a confined protocol revealed its secret — Theorem 4 violated"
    );
    println!(
        "Theorem 4 holds on every row; bounded intruder found {} / {} planted flaws.",
        attacks.len(),
        suite().iter().filter(|s| !s.expect_confined).count()
    );
    assert_eq!(missed_attacks, 0, "a planted flaw went unexploited");
    println!("E5 PASS.");
}
