//! The perf-regression gate: re-runs the bench suites and compares
//! their reports against the committed `artifacts/bench/BENCH_*.json`
//! baselines (see `nuspi_bench::gate` for the comparison rules).
//!
//! ```text
//! bench_gate [--smoke] [--tolerance F] [--bless] [--dir D] [--suite NAME]...
//! ```
//!
//! * `--smoke`      reduced time budgets (CI mode); exact counts still
//!   compare against the full baselines.
//! * `--tolerance F` headroom fraction for time metrics (default 1.0
//!   full / 4.0 smoke; 1.0 means "fail beyond 2x baseline").
//! * `--bless`      rewrite the baselines from this run.
//! * `--dir D`      baseline directory (default `$NUSPI_BENCH_DIR` or
//!   `artifacts/bench`).
//! * `--suite NAME` gate only the named suite(s); repeatable.
//!
//! Exits nonzero when any suite regresses.

use nuspi_bench::gate::{run, GateConfig};
use std::process::ExitCode;

fn parse_args() -> Result<GateConfig, String> {
    let mut config = GateConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => config.smoke = true,
            "--bless" => config.bless = true,
            "--tolerance" => {
                let v = it.next().ok_or("--tolerance needs a number")?;
                let f: f64 = v.parse().map_err(|_| format!("bad tolerance: {v}"))?;
                if !f.is_finite() || f < 0.0 {
                    return Err(format!(
                        "tolerance must be a finite non-negative number, got {v}"
                    ));
                }
                config.tolerance = Some(f);
            }
            "--dir" => {
                config.dir = Some(it.next().ok_or("--dir needs a path")?.into());
            }
            "--suite" => {
                config.suites.push(it.next().ok_or("--suite needs a name")?);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&config) {
        Ok(transcript) => {
            print!("{transcript}");
            println!("bench_gate: OK");
            ExitCode::SUCCESS
        }
        Err(transcript) => {
            print!("{transcript}");
            eprintln!("bench_gate: FAILED");
            ExitCode::FAILURE
        }
    }
}
