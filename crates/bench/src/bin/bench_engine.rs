//! Bench: engine throughput over the protocol suite, cold vs warm cache.
//!
//! Submits the 21-case suite (17 closed protocols + the 4 tracked open
//! examples) as one batch to a fresh [`AnalysisEngine`], then resubmits
//! the same batch repeatedly: the first round pays for every solve, the
//! repeats are answered from the content-addressed cache. The gap
//! between the two is the cache's whole value proposition, so the run
//! fails loudly if warm is not faster than cold.
//!
//! Writes a machine-readable summary to `BENCH_engine.json` alongside
//! the human table.
//!
//! Run with: `cargo run --release -p nuspi-bench --bin bench_engine`

use nuspi_bench::report::{timed, Table};
use nuspi_engine::{AnalysisEngine, ProcessInput, Request, Response};
use nuspi_protocols::{open_examples, suite};
use nuspi_security::{n_star, n_star_name};
use nuspi_syntax::{builder, Value};
use std::time::Duration;

const WARM_ROUNDS: u32 = 5;

/// The 21-case batch the round-trip suite also uses: one lint per case.
fn suite_requests() -> Vec<Request> {
    let mut out = Vec::new();
    for spec in suite() {
        let mut secrets: Vec<String> = spec
            .policy
            .secrets()
            .map(|s| s.as_str().to_owned())
            .collect();
        secrets.sort();
        out.push(Request::Lint {
            process: ProcessInput::Source(spec.source.clone()),
            secrets,
            shards: 1,
        });
    }
    for ex in open_examples() {
        let tracked = builder::restrict(
            n_star_name(),
            ex.process.subst(ex.var, &Value::name(n_star_name())),
        );
        let mut policy = ex.policy.clone();
        policy.add_secret(n_star());
        let mut secrets: Vec<String> = policy.secrets().map(|s| s.as_str().to_owned()).collect();
        secrets.sort();
        out.push(Request::Lint {
            process: ProcessInput::Parsed(tracked),
            secrets,
            shards: 1,
        });
    }
    out
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let requests = suite_requests();
    let cases = requests.len();
    let engine = AnalysisEngine::with_jobs(0); // one worker per core
    println!(
        "bench_engine: {cases}-case suite, {} worker(s), cold batch then {WARM_ROUNDS} warm rounds\n",
        engine.jobs()
    );

    let (cold_responses, cold) = timed(|| engine.submit_requests(requests.clone()));
    assert!(
        cold_responses.iter().all(Response::is_ok),
        "cold batch must succeed"
    );

    let mut warm_total = Duration::ZERO;
    for round in 0..WARM_ROUNDS {
        let (responses, took) = timed(|| engine.submit_requests(requests.clone()));
        assert!(
            responses.iter().all(|r| r.cached),
            "warm round {round} must be served from the cache"
        );
        warm_total += took;
    }
    let warm = warm_total / WARM_ROUNDS;
    let stats = engine.stats();
    let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);

    let mut table = Table::new(["phase", "batch time", "per case", "throughput"]);
    for (phase, took) in [("cold", cold), ("warm (mean)", warm)] {
        table.row([
            phase.to_owned(),
            format!("{:.3}ms", ms(took)),
            format!("{:.3}ms", ms(took) / cases as f64),
            format!("{:.0} case/s", cases as f64 / took.as_secs_f64()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "speedup: {speedup:.1}x   hit rate: {:.3}   cache: {} entries, {} bytes",
        stats.hit_rate(),
        stats.cache_entries,
        stats.cache_bytes
    );
    assert!(
        warm < cold,
        "warm-cache batch ({warm:?}) must beat the cold batch ({cold:?})"
    );

    let json = format!(
        "{{\n  \"bench\": \"engine\",\n  \"cases\": {cases},\n  \"jobs\": {},\n  \
         \"warm_rounds\": {WARM_ROUNDS},\n  \"cold_ms\": {:.3},\n  \"warm_ms\": {:.3},\n  \
         \"speedup\": {:.2},\n  \"hit_rate\": {:.3},\n  \"cache_hits\": {},\n  \
         \"cache_misses\": {},\n  \"cache_entries\": {},\n  \"cache_bytes\": {}\n}}\n",
        engine.jobs(),
        ms(cold),
        ms(warm),
        speedup,
        stats.hit_rate(),
        stats.cache.hits,
        stats.cache.misses,
        stats.cache_entries,
        stats.cache_bytes
    );
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("wrote BENCH_engine.json");
}
