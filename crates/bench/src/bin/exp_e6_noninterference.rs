//! Experiment E6 — Theorem 5 (confinement + invariance ⟹ message
//! independence).
//!
//! For each open example `P(x)`: run the static premises
//! (confinement with `n* ∈ S`, invariance per Definition 7) and the
//! dynamic battery of public tests (Definitions 8–9) on two message
//! instantiations. The theorem's implication — static pass ⟹ no
//! distinguishing test — must hold on every row; the §5 implicit-flow
//! example shows the static check rejecting a process that Dolev–Yao
//! secrecy alone would accept.

use nuspi_bench::report::Table;
use nuspi_protocols::{honest_suite, open_examples};
use nuspi_security::{message_independent, standard_battery, static_message_independence};
use nuspi_semantics::ExecConfig;
use nuspi_syntax::Value;

fn main() {
    println!("E6: Theorem 5 (message independence), open examples\n");
    let cfg = ExecConfig::default();
    let m1 = Value::numeral(0);
    let m2 = Value::numeral(4);
    let mut table = Table::new([
        "example",
        "confined",
        "invariant",
        "static⟹indep",
        "battery",
        "thm5",
    ]);
    let mut violations = 0;
    for ex in open_examples() {
        let report = static_message_independence(&ex.process, ex.var, &ex.policy);
        let battery = standard_battery(&ex.public_channels, &[m1.clone(), m2.clone()]);
        let dynamic = message_independent(&ex.process, ex.var, &m1, &m2, &battery, &cfg);
        let static_ok = report.implies_independence();
        let dyn_ok = dynamic.is_ok();
        // Theorem 5: static pass must imply dynamic pass.
        let ok = !static_ok || dyn_ok;
        if !ok {
            violations += 1;
        }
        table.row([
            ex.name.to_owned(),
            report.confinement.is_confined().to_string(),
            report.invariance.is_empty().to_string(),
            static_ok.to_string(),
            match &dynamic {
                Ok(()) => "no distinguisher".to_owned(),
                Err(d) => format!("distinguished: {}", d.test.description),
            },
            if ok {
                "ok".to_owned()
            } else {
                "VIOLATED".to_owned()
            },
        ]);
        assert_eq!(
            static_ok, ex.expect_independent,
            "{}: unexpected static verdict",
            ex.name
        );
    }
    println!("{}", table.render());
    println!(
        "expected shape: encrypted forwarders pass both routes; the implicit-flow\n\
         and channel-flow examples are rejected statically *and* concretely\n\
         distinguished — the indirect leaks Dolev–Yao secrecy cannot see.\n"
    );
    assert_eq!(violations, 0, "Theorem 5 violated");

    // Second sweep: every honest protocol, parameterised over its payload
    // P(x) = protocol[x/m]. Theorem 5 gives one direction only: a static
    // pass implies independence; a static reject may be conservatism. For
    // rejected rows we run the dynamic battery and demand that *no*
    // concrete distinguisher exists (which keeps the theorem's direction
    // unfalsified and documents the conservatism).
    println!("payload independence across the honest suite:\n");
    let mut sweep = Table::new([
        "protocol",
        "confined",
        "invariant",
        "static",
        "dynamic battery",
    ]);
    let mut theorem_violations = 0;
    let mut static_passes = 0;
    let sweep_cfg = ExecConfig {
        max_depth: 14,
        max_states: 1200,
        ..ExecConfig::default()
    };
    for spec in honest_suite() {
        // Honest payloads are restricted; open the binder to get P(x).
        let Some((open, x)) = spec.process.abstract_restriction(spec.secret) else {
            continue;
        };
        let report = static_message_independence(&open, x, &spec.policy);
        let static_ok = report.implies_independence();
        static_passes += usize::from(static_ok);
        let channels: Vec<_> = spec.public_channels.clone();
        let battery = standard_battery(&channels, &[m1.clone(), m2.clone()]);
        let dynamic = message_independent(&open, x, &m1, &m2, &battery, &sweep_cfg);
        if static_ok && dynamic.is_err() {
            theorem_violations += 1;
        }
        sweep.row([
            spec.name.to_owned(),
            report.confinement.is_confined().to_string(),
            report.invariance.is_empty().to_string(),
            if static_ok {
                "independent".to_owned()
            } else {
                "rejected (conservative)".to_owned()
            },
            match &dynamic {
                Ok(()) => "no distinguisher".to_owned(),
                Err(d) => format!("distinguished: {}", d.test.description),
            },
        ]);
    }
    println!("{}", sweep.render());
    println!(
        "the ns/yahalom payload rejections are conservatism: their payload\n\
         ciphertext shares arity and key with a handshake ciphertext, so the\n\
         analysis sees a potential redirection into the nonce comparison; no\n\
         concrete distinguisher exists (the redirected comparison could only\n\
         be won with a message mentioning the restricted nonce)."
    );
    assert_eq!(theorem_violations, 0, "Theorem 5 violated in the sweep");
    assert!(
        static_passes >= 5,
        "most honest payloads must pass the static route, got {static_passes}"
    );
    println!("\nE6 PASS.");
}
