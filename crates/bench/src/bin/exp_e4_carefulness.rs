//! Experiment E4 — Theorem 3 (confinement ⟹ carefulness) across the
//! protocol suite, including hostile public contexts.
//!
//! For every protocol: run the static confinement check and the bounded
//! dynamic carefulness monitor; additionally compose each *confined*
//! protocol with a message-replaying public attacker (Proposition 1's
//! scenario) and re-check both. The theorem's implication
//! `confined ⟹ careful` must never be falsified; the flawed variants
//! demonstrate the contrapositive (careless ⟹ not confined).

use nuspi_bench::report::Table;
use nuspi_protocols::suite;
use nuspi_security::{carefulness, confinement};
use nuspi_semantics::ExecConfig;
use nuspi_syntax::{builder as b, parse_process, Process, Symbol};

/// A generic public attacker: replays everything it hears on every public
/// channel of the protocol.
fn replay_attacker(channels: &[Symbol]) -> Process {
    let mut parts = Vec::new();
    for &c in channels {
        let src = format!("!{0}(v). ({0}<v>.0 | spy<v>.0)", c.as_str());
        parts.push(parse_process(&src).expect("attacker parses"));
    }
    b::par_all(parts)
}

fn main() {
    println!("E4: Theorem 3 (confined ⟹ careful), protocol suite + hostile contexts\n");
    let cfg = ExecConfig {
        max_depth: 10,
        max_states: 900,
        ..ExecConfig::default()
    };
    let mut table = Table::new([
        "protocol",
        "confined",
        "careful",
        "confined|attacker",
        "careful|attacker",
        "thm3",
    ]);
    let mut violations = 0;
    for spec in suite() {
        let conf = confinement(&spec.process, &spec.policy).is_confined();
        let care = carefulness(&spec.process, &spec.policy, &cfg).is_careful();

        let composed = b::par(spec.process.clone(), replay_attacker(&spec.public_channels));
        let conf_ctx = confinement(&composed, &spec.policy).is_confined();
        let ctx_cfg = ExecConfig {
            max_depth: 7,
            max_states: 700,
            ..cfg
        };
        let care_ctx = carefulness(&composed, &spec.policy, &ctx_cfg).is_careful();

        let ok = (!conf || care) && (!conf_ctx || care_ctx) && (conf == conf_ctx);
        if !ok {
            violations += 1;
        }
        table.row([
            spec.name.to_owned(),
            conf.to_string(),
            care.to_string(),
            conf_ctx.to_string(),
            care_ctx.to_string(),
            if ok {
                "ok".to_owned()
            } else {
                "VIOLATED".to_owned()
            },
        ]);
        assert_eq!(
            conf, spec.expect_confined,
            "{}: unexpected static verdict",
            spec.name
        );
    }
    println!("{}", table.render());
    println!(
        "expected shape: honest rows true/true/true/true; flawed rows false/false\n\
         (the dynamic monitor catches every statically-rejected leak)."
    );
    assert_eq!(violations, 0, "Theorem 3 violated");
    println!("E4 PASS: confinement implies carefulness on all rows, incl. under attackers.");
}
