//! Bench B1c (plain-binary edition) — ablations for the design choices
//! DESIGN.md calls out:
//!
//! * attacker closure on/off: the cost of Definition 4's `⊇` direction
//!   (the most powerful attacker) over the plain least solution;
//! * replication budget: commitment-enumeration cost as `!P` unfolding
//!   deepens;
//! * νSPI vs classic-spi evaluation: the price of confounder freshening.
//!
//! Run with: `cargo run --release -p nuspi-bench --bin bench_ablation`

use nuspi_bench::report::{timed_stable, Table};
use nuspi_bench::workloads;
use nuspi_cfa::{analyze, analyze_with_attacker};
use nuspi_semantics::{commitments, eval, CommitConfig, EvalMode};
use nuspi_syntax::{builder as b, parse_process, Name};
use std::collections::HashSet;
use std::time::Duration;

const BUDGET: Duration = Duration::from_millis(150);

fn main() {
    println!("bench_ablation: design-choice ablations\n");
    let mut table = Table::new(["benchmark", "mean time"]);

    for n in [2usize, 4, 8] {
        let p = workloads::wmf_sessions(n);
        let secrets: HashSet<_> = (0..n)
            .flat_map(|i| {
                [
                    format!("m{i}"),
                    format!("kAS{i}"),
                    format!("kBS{i}"),
                    format!("kAB{i}"),
                ]
            })
            .map(|s| nuspi_syntax::Symbol::intern(&s))
            .collect();
        let t = timed_stable(BUDGET, || {
            let _ = analyze(&p);
        });
        table.row([
            format!("attacker-closure/plain-{n}"),
            format!("{:.3}ms", t.as_secs_f64() * 1e3),
        ]);
        let t = timed_stable(BUDGET, || {
            let _ = analyze_with_attacker(&p, &secrets);
        });
        table.row([
            format!("attacker-closure/closed-{n}"),
            format!("{:.3}ms", t.as_secs_f64() * 1e3),
        ]);
    }

    let p = parse_process("!(ping<0>.0 | ping(x).pong<x>.0)").unwrap();
    for budget in [1u32, 2, 3] {
        let cfg = CommitConfig {
            mode: EvalMode::NuSpi,
            rep_budget: budget,
        };
        let t = timed_stable(BUDGET, || {
            let _ = commitments(&p, &cfg);
        });
        table.row([
            format!("rep-budget/{budget}"),
            format!("{:.3}ms", t.as_secs_f64() * 1e3),
        ]);
    }

    let mut e = b::zero();
    for i in 0..16 {
        e = b::enc(
            vec![e],
            Name::global(format!("r{i}").as_str()),
            b::name("k"),
        );
    }
    let t = timed_stable(BUDGET, || {
        eval(&e, EvalMode::NuSpi).unwrap();
    });
    table.row([
        "eval-mode/nuspi-fresh-confounders".to_owned(),
        format!("{:.4}ms", t.as_secs_f64() * 1e3),
    ]);
    let t = timed_stable(BUDGET, || {
        eval(&e, EvalMode::ClassicSpi).unwrap();
    });
    table.row([
        "eval-mode/classic-spi".to_owned(),
        format!("{:.4}ms", t.as_secs_f64() * 1e3),
    ]);

    println!("{}", table.render());
    println!("bench_ablation done.");
}
