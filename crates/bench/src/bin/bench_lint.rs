//! Bench: lint overhead over a bare attacked solve.
//!
//! The lint driver re-uses one semantic context for all passes, so its
//! cost should be the solve itself plus a modest margin (provenance
//! tracing, kind/sort fixpoints, the bounded carefulness monitor). This
//! bench puts a number on that margin across the protocol suite, and
//! shows that the syntactic passes alone are solver-free (their column
//! should be microseconds regardless of protocol size).
//!
//! Run with: `cargo run --release -p nuspi-bench --bin bench_lint`

use nuspi_bench::report::{timed_stable, Table};
use nuspi_cfa::analyze_with_attacker;
use nuspi_diagnostics::{lint, LintContext, PassRegistry};
use nuspi_protocols::suite;
use std::time::Duration;

const BUDGET: Duration = Duration::from_millis(150);

fn main() {
    println!("bench_lint: full lint vs bare solve vs syntactic-only\n");
    let mut table = Table::new([
        "protocol",
        "bare solve",
        "full lint",
        "syntactic only",
        "lint/solve",
    ]);
    for spec in suite() {
        let secret = spec.policy.secrets().collect();
        let t_solve = timed_stable(BUDGET, || {
            let _ = analyze_with_attacker(&spec.process, &secret);
        });
        let t_lint = timed_stable(BUDGET, || {
            let _ = lint(&spec.process, &spec.policy);
        });
        let t_syn = timed_stable(BUDGET, || {
            let ctx = LintContext::new(&spec.process, &spec.policy);
            let _ = PassRegistry::syntactic_only().run(&ctx);
        });
        table.row([
            spec.name.to_owned(),
            format!("{:.3}ms", t_solve.as_secs_f64() * 1e3),
            format!("{:.3}ms", t_lint.as_secs_f64() * 1e3),
            format!("{:.4}ms", t_syn.as_secs_f64() * 1e3),
            format!("{:.2}x", t_lint.as_secs_f64() / t_solve.as_secs_f64()),
        ]);
    }
    println!("{}", table.render());
}
