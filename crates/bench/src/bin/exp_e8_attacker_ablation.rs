//! Experiment E8 (ablation) — why Definition 4 needs both directions of
//! `κ(n) = Val_P`.
//!
//! Compares, per protocol: the *plain* confinement check (`⊆` only, on
//! the least solution of `P` alone) against the *attacker-closed* check
//! (Lemma 1's estimate), and the bounded intruder's verdict as ground
//! truth. A row where plain says "confined" but an attack exists is a
//! false negative of the plain check — the untagged Otway–Rees type-flaw
//! is exactly such a row, and the attacker-closed check eliminates it.

use nuspi_bench::report::Table;
use nuspi_cfa::{analyze, FlowVar};
use nuspi_protocols::suite;
use nuspi_security::{confinement, reveals, AbstractKind, IntruderConfig, Knowledge};

fn main() {
    println!("E8 (ablation): plain vs attacker-closed confinement vs intruder ground truth\n");
    let cheap = IntruderConfig {
        max_depth: 16,
        max_states: 20_000,
        max_injections: 12,
        ..IntruderConfig::default()
    };
    let forging = IntruderConfig {
        max_depth: 8,
        max_states: 60_000,
        max_injections: 10,
        pair_components: 8,
        ..IntruderConfig::default()
    };
    let mut table = Table::new([
        "protocol",
        "plain ⊆-check",
        "attacker-closed",
        "attack exists",
        "plain verdict",
    ]);
    let mut plain_false_negatives = 0;
    let mut closed_false_negatives = 0;
    for spec in suite() {
        // Plain: least solution of P alone, ⊆-direction only.
        let sol = analyze(&spec.process);
        let kinds = AbstractKind::compute(&sol, &spec.policy);
        let plain_confined = sol.channels().into_iter().all(|c| {
            !spec.policy.is_public(c)
                || sol
                    .var_id(FlowVar::Kappa(c))
                    .map(|id| !kinds.facts(id).may_secret)
                    .unwrap_or(true)
        }) && spec.policy.free_secret_names(&spec.process).is_empty();

        // Attacker-closed (the shipped check).
        let closed_confined = confinement(&spec.process, &spec.policy).is_confined();

        // Ground truth: bounded intruder.
        let public_names: Vec<_> = spec
            .process
            .free_names()
            .into_iter()
            .map(|n| n.canonical())
            .filter(|n| spec.policy.is_public(*n))
            .collect();
        let k0 = Knowledge::from_names(public_names);
        let attack = reveals(&spec.process, &k0, spec.secret, &cheap)
            .or_else(|| reveals(&spec.process, &k0, spec.secret, &forging));

        let plain_fn = plain_confined && attack.is_some();
        let closed_fn = closed_confined && attack.is_some();
        plain_false_negatives += usize::from(plain_fn);
        closed_false_negatives += usize::from(closed_fn);
        table.row([
            spec.name.to_owned(),
            plain_confined.to_string(),
            closed_confined.to_string(),
            attack.is_some().to_string(),
            if plain_fn {
                "FALSE NEGATIVE".to_owned()
            } else {
                "ok".to_owned()
            },
        ]);
    }
    println!("{}", table.render());
    println!("plain ⊆-only check misses {plain_false_negatives} attack(s);");
    println!("attacker-closed check misses {closed_false_negatives}.");
    assert!(
        plain_false_negatives >= 1,
        "the untagged Otway–Rees type-flaw must expose the plain check"
    );
    assert_eq!(
        closed_false_negatives, 0,
        "the attacker-closed check must be attack-sound on the suite"
    );
    println!(
        "\nE8 PASS: Definition 4's ⊇ direction (the most powerful attacker) is\n\
         load-bearing — dropping it admits a certified-yet-broken protocol."
    );
}
