//! Thin front end for the `equiv` bench suite (see
//! `nuspi_bench::suites`): prints the human tables and writes the
//! machine-readable `BENCH_equiv.json` report for `bench_gate`.
//!
//! Run with: `cargo run --release -p nuspi-bench --bin bench_equiv`
//! (`--smoke` shrinks the per-measurement time budget).

use nuspi_bench::report::bench_dir;
use nuspi_bench::suites;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let run = suites::run("equiv", smoke).expect("known suite");
    print!("{}", run.human);
    let path = run
        .report
        .write_to(&bench_dir())
        .expect("write bench report");
    eprintln!("report: {}", path.display());
}
