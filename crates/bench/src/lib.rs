//! # nuspi-bench — workloads, theorem checkers and experiment harness
//!
//! Support library for the reproduction's experiment binaries
//! (`exp_e1_wmf` … `exp_f1_scaling`, see EXPERIMENTS.md) and Criterion
//! benches:
//!
//! * [`workloads`] — parametric process families for the O(n³) scaling
//!   figure;
//! * [`genproc`] — seeded random closed-process generation for the
//!   subject-reduction fuzz;
//! * [`flatref`] — a naive reference implementation of the analysis for
//!   flat processes, used to cross-validate the grammar solver *exactly*;
//! * [`theorems`] — machine checks of Theorems 1–3;
//! * [`report`] — table rendering and log–log slope fitting;
//! * [`testkit`] — a std-only property-testing harness (seeded
//!   generators plus greedy shrinking) replacing the external `proptest`
//!   dependency in this offline build.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flatref;
pub mod gate;
pub mod genproc;
pub mod report;
pub mod suites;
pub mod testkit;
pub mod theorems;
pub mod workloads;
