//! Parametric workload generators for the scaling experiments.
//!
//! The paper claims the least CFA solution is computable in polynomial
//! (cubic) time. These families grow a process along one dimension `n` so
//! the solver's asymptotics can be measured:
//!
//! * [`relay_chain`] — `n` relays forwarding a value hop by hop: linear
//!   flow structure, exercises subset-edge propagation.
//! * [`crypto_chain`] — `n` re-encryption hops, each decrypting with key
//!   `kᵢ` and re-encrypting under `kᵢ₊₁`: exercises the decryption
//!   conditionals and the language-intersection oracle.
//! * [`star_broadcast`] — one sender, `n` receivers on one channel: a
//!   dense κ fan-out.
//! * [`wmf_sessions`] — `n` independent Wide-Mouthed-Frog sessions with
//!   disjoint channel/key spaces: realistic protocol scaling.
//! * [`mixer`] — `n` processes all talking over one shared channel:
//!   worst-case κ mixing (quadratic flow relationships).
//! * [`interleaved`] — a SplitMix64-seeded corpus of thousands of relay
//!   and crypto sessions, component-shuffled so sessions interleave in
//!   text order: the work-stealing and incremental solvers' home turf.
//!
//! [`scenario`] resolves the *named* family instances the bench suite
//! and the regression gate refer to by string (`wmf-sessions-16`,
//! `mixer-32`, `interleaved-10000x4`, …).

use nuspi_semantics::rng::{Rng, SplitMix64};
use nuspi_syntax::{parse_process, Digest128, Process, StableHasher128};
use std::hash::Hasher;

fn parse(src: &str) -> Process {
    parse_process(src).unwrap_or_else(|e| panic!("workload does not parse: {e}\n{src}"))
}

/// `n` relays: `c0(x).c1<x>.0 | c1(x).c2<x>.0 | … | c0<seed>.0`.
pub fn relay_chain(n: usize) -> Process {
    let mut src = String::from("c0<seed>.0");
    for i in 0..n {
        src.push_str(&format!(" | c{i}(x). c{}<x>.0", i + 1));
    }
    parse(&src)
}

/// `n` re-encryption hops: hop `i` decrypts with `ki` and re-encrypts
/// under `ki+1`; a final consumer decrypts the last hop.
pub fn crypto_chain(n: usize) -> Process {
    let mut src = String::from("c0<{seed, new r0}:k0>.0");
    for i in 0..n {
        src.push_str(&format!(
            " | c{i}(x). case x of {{y}}:k{i} in c{}<{{y, new rr{i}}}:k{}>.0",
            i + 1,
            i + 1
        ));
    }
    src.push_str(&format!(" | c{n}(z). case z of {{w}}:k{n} in done<w>.0"));
    parse(&src)
}

/// One sender broadcasting on a single channel, `n` receivers forwarding
/// to their own sinks.
pub fn star_broadcast(n: usize) -> Process {
    let mut src = String::from("hub<payload>.0");
    for i in 0..n {
        src.push_str(&format!(" | hub(x). sink{i}<x>.0"));
    }
    parse(&src)
}

/// `n` independent WMF sessions with disjoint channels, keys and
/// payloads (session `i` uses `cASi`, `kASi`, …).
pub fn wmf_sessions(n: usize) -> Process {
    let mut parts = Vec::new();
    for i in 0..n {
        parts.push(format!(
            "(new m{i}) (new kAS{i}) (new kBS{i}) (
               ((new kAB{i}) cAS{i}<{{kAB{i}, new ra{i}}}:kAS{i}>. cAB{i}<{{m{i}, new rb{i}}}:kAB{i}>.0
                | cBS{i}(t{i}). case t{i} of {{y{i}}}:kBS{i} in cAB{i}(z{i}). case z{i} of {{q{i}}}:y{i} in 0)
               | cAS{i}(x{i}). case x{i} of {{s{i}}}:kAS{i} in cBS{i}<{{s{i}, new rc{i}}}:kBS{i}>.0
             )"
        ));
    }
    parse(&parts.join(" | "))
}

/// The secret/public partition for [`wmf_sessions`].
pub fn wmf_sessions_policy(n: usize) -> nuspi_security::Policy {
    let mut secrets = Vec::new();
    for i in 0..n {
        secrets.push(format!("m{i}"));
        secrets.push(format!("kAS{i}"));
        secrets.push(format!("kBS{i}"));
        secrets.push(format!("kAB{i}"));
    }
    nuspi_security::Policy::with_secrets(secrets.iter().map(String::as_str))
}

/// A replicated WMF server (`!cAS(x)…`) serving `n` initiator/responder
/// pairs that share the long-term keys — exercises replication in both
/// the analysis (the CFA treats `!P` transparently) and the executor
/// (bounded unfolding).
pub fn replicated_wmf(n: usize) -> Process {
    let mut parts = vec!["!(cAS(x). case x of {s}:kAS in cBS<{s, new rs}:kBS>.0)".to_owned()];
    for i in 0..n {
        parts.push(format!(
            "(new m{i}) (new kAB{i}) cAS<{{kAB{i}, new ra{i}}}:kAS>. cAB<{{m{i}, new rb{i}}}:kAB{i}>.0"
        ));
        parts.push(format!(
            "cBS(t{i}). case t{i} of {{y{i}}}:kBS in cAB(z{i}). case z{i} of {{q{i}}}:y{i} in 0"
        ));
    }
    parse(&format!("(new kAS) (new kBS) ({})", parts.join(" | ")))
}

/// The policy for [`replicated_wmf`].
pub fn replicated_wmf_policy(n: usize) -> nuspi_security::Policy {
    let mut secrets = vec!["kAS".to_owned(), "kBS".to_owned()];
    for i in 0..n {
        secrets.push(format!("m{i}"));
        secrets.push(format!("kAB{i}"));
    }
    nuspi_security::Policy::with_secrets(secrets.iter().map(String::as_str))
}

/// The seed behind every *named* `interleaved-{S}x{D}` instance: the
/// registry, the bench suite, and the golden-digest pin all use it, so
/// the corpus a gate measures is byte-identical to the one the tests
/// fingerprint.
pub const INTERLEAVED_SEED: u64 = 0x5eed_cafe_2026_0001;

/// The source text of an interleaved-session corpus: `sessions`
/// pipelines of `depth` hops each, three quarters plain relays and one
/// quarter ciphertext relays decrypted at the last hop under a key
/// drawn from a 16-key pool, with one session in eight draining into a
/// small set of shared hub channels. All components are then shuffled
/// by the same SplitMix64 stream, so neighbouring text is almost never
/// the same session — the corpus shape the work-stealing solver and the
/// component-digesting incremental solver are built for.
///
/// The text is a pure function of `(sessions, depth, seed)`: same
/// arguments, same bytes, on any machine and under any thread count.
///
/// # Panics
///
/// Panics when `sessions` or `depth` is zero.
pub fn interleaved_source(sessions: usize, depth: usize, seed: u64) -> String {
    assert!(sessions > 0 && depth > 0, "interleaved: empty family");
    let mut rng = SplitMix64::seed_from_u64(seed);
    let hubs = 8.min(sessions);
    let mut parts: Vec<String> = Vec::with_capacity(sessions * (depth + 1) + hubs);
    for g in 0..hubs {
        parts.push(format!("hub{g}(hg{g}). 0"));
    }
    for i in 0..sessions {
        let crypto = rng.gen_range(0..4) == 0;
        let key = rng.gen_range(0..16);
        let hubbed = rng.gen_range(0..8) == 0;
        let hub = rng.gen_range(0..hubs);
        if crypto {
            parts.push(format!("s{i}h0<{{v{i}, new r{i}}}:key{key}>.0"));
        } else {
            parts.push(format!("s{i}h0<v{i}>.0"));
        }
        for j in 0..depth - 1 {
            parts.push(format!("s{i}h{j}(x{i}n{j}). s{i}h{}<x{i}n{j}>.0", j + 1));
        }
        let last = depth - 1;
        let sink = if hubbed {
            format!("hub{hub}")
        } else {
            format!("s{i}sink")
        };
        if crypto {
            parts.push(format!(
                "s{i}h{last}(z{i}). case z{i} of {{w{i}}}:key{key} in {sink}<w{i}>.0"
            ));
        } else {
            parts.push(format!("s{i}h{last}(z{i}). {sink}<z{i}>.0"));
        }
    }
    // Fisher–Yates off the same stream: the interleaving is part of the
    // corpus, not an afterthought.
    for i in (1..parts.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        parts.swap(i, j);
    }
    join_balanced(&parts)
}

/// Parenthesises `parts` into a balanced `|`-tree so that a
/// 10 000-session corpus parses, digests, and drops without deep
/// recursion — a flat left fold would nest ~50 000 `Par`s.
fn join_balanced(parts: &[String]) -> String {
    match parts {
        [] => "0".to_owned(),
        [one] => one.clone(),
        _ => {
            let mid = parts.len() / 2;
            format!(
                "({} | {})",
                join_balanced(&parts[..mid]),
                join_balanced(&parts[mid..])
            )
        }
    }
}

/// [`interleaved_source`], parsed.
pub fn interleaved(sessions: usize, depth: usize, seed: u64) -> Process {
    parse(&interleaved_source(sessions, depth, seed))
}

/// The stable 128-bit fingerprint of a corpus's source bytes — what the
/// golden-digest test pins and what a distrustful CI job can recompute.
pub fn corpus_digest(src: &str) -> Digest128 {
    let mut h = StableHasher128::new();
    h.write(src.as_bytes());
    h.finish128()
}

/// Resolves a *named* scenario: `relay-chain-{N}`, `crypto-chain-{N}`,
/// `star-broadcast-{N}`, `wmf-sessions-{N}`, `replicated-wmf-{N}`,
/// `mixer-{N}`, or `interleaved-{S}x{D}` (the latter always under
/// [`INTERLEAVED_SEED`]). `None` for anything else.
pub fn scenario(name: &str) -> Option<Process> {
    if let Some(rest) = name.strip_prefix("interleaved-") {
        let (s, d) = rest.split_once('x')?;
        let (s, d): (usize, usize) = (s.parse().ok()?, d.parse().ok()?);
        if s == 0 || d == 0 {
            return None;
        }
        return Some(interleaved(s, d, INTERLEAVED_SEED));
    }
    let (family, n) = name.rsplit_once('-')?;
    let n: usize = n.parse().ok()?;
    match family {
        "relay-chain" => Some(relay_chain(n)),
        "crypto-chain" => Some(crypto_chain(n)),
        "star-broadcast" => Some(star_broadcast(n)),
        "wmf-sessions" => Some(wmf_sessions(n)),
        "replicated-wmf" => Some(replicated_wmf(n)),
        "mixer" => Some(mixer(n)),
        _ => None,
    }
}

/// `n` peers all exchanging their names over one shared channel — the
/// densest κ mixing the calculus allows.
pub fn mixer(n: usize) -> Process {
    let mut parts = Vec::new();
    for i in 0..n {
        parts.push(format!("shared<p{i}>.0 | shared(v{i}). shared<v{i}>.0"));
    }
    parse(&parts.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_cfa::{analyze, FlowVar};
    use nuspi_syntax::{Symbol, Value};

    #[test]
    fn relay_chain_sizes_grow_linearly() {
        let s4 = relay_chain(4).size();
        let s8 = relay_chain(8).size();
        let s16 = relay_chain(16).size();
        assert_eq!(s16 - s8, 2 * (s8 - s4));
    }

    #[test]
    fn relay_chain_flows_end_to_end() {
        let n = 6;
        let sol = analyze(&relay_chain(n));
        let last = Symbol::intern(&format!("c{n}"));
        assert!(sol.contains(FlowVar::Kappa(last), &Value::name("seed")));
    }

    #[test]
    fn crypto_chain_flows_end_to_end() {
        let sol = analyze(&crypto_chain(5));
        assert!(sol.contains(FlowVar::Kappa(Symbol::intern("done")), &Value::name("seed")));
    }

    #[test]
    fn star_broadcast_reaches_every_sink() {
        let n = 5;
        let sol = analyze(&star_broadcast(n));
        for i in 0..n {
            let sink = Symbol::intern(&format!("sink{i}"));
            assert!(sol.contains(FlowVar::Kappa(sink), &Value::name("payload")));
        }
    }

    #[test]
    fn wmf_sessions_stay_confined() {
        let n = 3;
        let p = wmf_sessions(n);
        let policy = wmf_sessions_policy(n);
        let report = nuspi_security::confinement(&p, &policy);
        assert!(report.is_confined(), "{:?}", report.violations);
    }

    #[test]
    fn wmf_sessions_do_not_cross_contaminate() {
        let p = wmf_sessions(2);
        let sol = analyze(&p);
        // Session 0's payload never reaches session 1's channel.
        assert!(!sol.contains(
            FlowVar::Kappa(Symbol::intern("cAB1")),
            &Value::enc(
                vec![Value::name("m0")],
                nuspi_syntax::Name::global("rb0"),
                Value::name("kAB0")
            )
        ));
    }

    #[test]
    fn replicated_wmf_is_confined() {
        // Sessions share the long-term keys through a replicated server;
        // the κ-mixing across sessions must not leak any payload.
        let n = 3;
        let p = replicated_wmf(n);
        let policy = replicated_wmf_policy(n);
        let report = nuspi_security::confinement(&p, &policy);
        assert!(report.is_confined(), "{:?}", report.violations);
    }

    #[test]
    fn replicated_wmf_sessions_complete_dynamically() {
        use nuspi_semantics::{explore_tau, ExecConfig};
        let p = replicated_wmf(1);
        let cfg = ExecConfig {
            max_depth: 10,
            max_states: 3000,
            ..ExecConfig::default()
        };
        let stats = explore_tau(&p, &cfg, |_, _| true);
        assert!(stats.states > 3, "server must serve the session");
    }

    #[test]
    fn replicated_wmf_mixes_sessions_in_kappa_but_not_keys() {
        // With one shared server, both sessions' tickets travel on cBS —
        // but session 0's payload ciphertext never decrypts under session
        // 1's key.
        let p = replicated_wmf(2);
        let sol = analyze(&p);
        let cbs = sol.kappa(Symbol::intern("cBS"));
        assert!(!cbs.is_empty(), "tickets flow via the replicated server");
        let policy = replicated_wmf_policy(2);
        let report = nuspi_security::confinement(&p, &policy);
        assert!(report.is_confined());
    }

    #[test]
    fn interleaved_corpus_is_byte_identical_across_runs_and_threads() {
        let here = interleaved_source(64, 3, INTERLEAVED_SEED);
        let again = interleaved_source(64, 3, INTERLEAVED_SEED);
        assert_eq!(here, again, "same seed must give the same bytes");
        // Generation must not depend on which thread runs it: four
        // concurrent generators, one reference.
        let elsewhere: Vec<String> = (0..4)
            .map(|_| std::thread::spawn(|| interleaved_source(64, 3, INTERLEAVED_SEED)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect();
        for other in elsewhere {
            assert_eq!(here, other, "corpus bytes must be thread-independent");
        }
        assert_ne!(
            here,
            interleaved_source(64, 3, INTERLEAVED_SEED + 1),
            "a different seed must give a different corpus"
        );
    }

    #[test]
    fn interleaved_golden_corpus_digest_is_pinned() {
        // The fingerprint of the named `interleaved-64x3` corpus. If
        // this moves, every committed benchmark baseline over the
        // interleaved family silently measures a different workload —
        // re-pin only together with a re-bless.
        let src = interleaved_source(64, 3, INTERLEAVED_SEED);
        assert_eq!(
            corpus_digest(&src).to_hex(),
            "1ede7bedbff39a8ba08271fba253329f",
            "interleaved-64x3 corpus drifted"
        );
    }

    #[test]
    fn interleaved_corpus_is_closed_and_analyzable() {
        let p = interleaved(48, 3, INTERLEAVED_SEED);
        assert!(p.is_closed());
        let sol = analyze(&p);
        assert!(sol.stats().productions > 0);
        // Every plain relay session delivers its payload end to end.
        let src = interleaved_source(48, 3, INTERLEAVED_SEED);
        for i in 0..48 {
            if src.contains(&format!("s{i}sink<z{i}>")) {
                assert!(
                    sol.contains(
                        FlowVar::Kappa(Symbol::intern(&format!("s{i}sink"))),
                        &Value::name(format!("v{i}").as_str())
                    ),
                    "session {i} lost its payload"
                );
            }
        }
    }

    #[test]
    fn scenario_registry_resolves_names() {
        for (name, size) in [
            ("relay-chain-8", relay_chain(8).size()),
            ("crypto-chain-8", crypto_chain(8).size()),
            ("star-broadcast-8", star_broadcast(8).size()),
            ("wmf-sessions-4", wmf_sessions(4).size()),
            ("replicated-wmf-4", replicated_wmf(4).size()),
            ("mixer-8", mixer(8).size()),
            (
                "interleaved-16x3",
                interleaved(16, 3, INTERLEAVED_SEED).size(),
            ),
        ] {
            assert_eq!(scenario(name).unwrap().size(), size, "{name}");
        }
        for bad in [
            "interleaved-16",
            "interleaved-0x3",
            "interleaved-16x0",
            "nonesuch-8",
            "mixer-x",
            "mixer",
        ] {
            assert!(scenario(bad).is_none(), "{bad} must not resolve");
        }
    }

    /// Perf probe, not a correctness test: prints parse/solve/incremental
    /// timings over the interleaved family. Run on demand with
    /// `cargo test --release -p nuspi-bench interleaved_perf -- --ignored --nocapture`.
    #[test]
    #[ignore = "perf probe; run explicitly with --ignored --nocapture"]
    fn interleaved_perf_probe() {
        use std::time::Instant;
        for (s, d) in [(10, 4), (25, 4), (50, 4), (100, 4), (1000, 4), (10000, 4)] {
            let t0 = Instant::now();
            let src = interleaved_source(s, d, INTERLEAVED_SEED);
            let gen = t0.elapsed();
            let t0 = Instant::now();
            let p = nuspi_syntax::parse_process(&src).unwrap();
            let parse = t0.elapsed();
            println!(
                "interleaved-{s}x{d}: gen {gen:?} parse {parse:?} ({} bytes)",
                src.len()
            );
            for threads in [1usize, 2, 4, 8] {
                let t0 = Instant::now();
                let sol = nuspi_cfa::solve_parallel(nuspi_cfa::Constraints::generate(&p), threads);
                println!(
                    "  solve t{threads}: {:?} ({} prods)",
                    t0.elapsed(),
                    sol.stats().productions
                );
            }
            let edited = {
                let e = src.replacen("<v0>", "<v0edit>", 1);
                if e != src {
                    e
                } else {
                    src.replacen("{v0, ", "{v0edit, ", 1)
                }
            };
            let q = nuspi_syntax::parse_process(&edited).unwrap();
            let mut inc = nuspi_cfa::IncrementalSolver::new(1);
            let t0 = Instant::now();
            inc.solve(&p);
            println!("  incremental cold: {:?}", t0.elapsed());
            let t0 = Instant::now();
            let (_, st) = inc.solve(&q);
            println!("  incremental edit: {:?} ({st:?})", t0.elapsed());
            let t0 = Instant::now();
            let (_, st) = inc.solve(&q);
            println!("  incremental noop: {:?} ({st:?})", t0.elapsed());
        }
    }

    #[test]
    fn mixer_mixes_everything() {
        let n = 4;
        let sol = analyze(&mixer(n));
        let shared = Symbol::intern("shared");
        for i in 0..n {
            assert!(sol.contains(
                FlowVar::Kappa(shared),
                &Value::name(format!("p{i}").as_str())
            ));
        }
    }
}
