//! Parametric workload generators for the scaling experiments.
//!
//! The paper claims the least CFA solution is computable in polynomial
//! (cubic) time. These families grow a process along one dimension `n` so
//! the solver's asymptotics can be measured:
//!
//! * [`relay_chain`] — `n` relays forwarding a value hop by hop: linear
//!   flow structure, exercises subset-edge propagation.
//! * [`crypto_chain`] — `n` re-encryption hops, each decrypting with key
//!   `kᵢ` and re-encrypting under `kᵢ₊₁`: exercises the decryption
//!   conditionals and the language-intersection oracle.
//! * [`star_broadcast`] — one sender, `n` receivers on one channel: a
//!   dense κ fan-out.
//! * [`wmf_sessions`] — `n` independent Wide-Mouthed-Frog sessions with
//!   disjoint channel/key spaces: realistic protocol scaling.
//! * [`mixer`] — `n` processes all talking over one shared channel:
//!   worst-case κ mixing (quadratic flow relationships).

use nuspi_syntax::{parse_process, Process};

fn parse(src: &str) -> Process {
    parse_process(src).unwrap_or_else(|e| panic!("workload does not parse: {e}\n{src}"))
}

/// `n` relays: `c0(x).c1<x>.0 | c1(x).c2<x>.0 | … | c0<seed>.0`.
pub fn relay_chain(n: usize) -> Process {
    let mut src = String::from("c0<seed>.0");
    for i in 0..n {
        src.push_str(&format!(" | c{i}(x). c{}<x>.0", i + 1));
    }
    parse(&src)
}

/// `n` re-encryption hops: hop `i` decrypts with `ki` and re-encrypts
/// under `ki+1`; a final consumer decrypts the last hop.
pub fn crypto_chain(n: usize) -> Process {
    let mut src = String::from("c0<{seed, new r0}:k0>.0");
    for i in 0..n {
        src.push_str(&format!(
            " | c{i}(x). case x of {{y}}:k{i} in c{}<{{y, new rr{i}}}:k{}>.0",
            i + 1,
            i + 1
        ));
    }
    src.push_str(&format!(" | c{n}(z). case z of {{w}}:k{n} in done<w>.0"));
    parse(&src)
}

/// One sender broadcasting on a single channel, `n` receivers forwarding
/// to their own sinks.
pub fn star_broadcast(n: usize) -> Process {
    let mut src = String::from("hub<payload>.0");
    for i in 0..n {
        src.push_str(&format!(" | hub(x). sink{i}<x>.0"));
    }
    parse(&src)
}

/// `n` independent WMF sessions with disjoint channels, keys and
/// payloads (session `i` uses `cASi`, `kASi`, …).
pub fn wmf_sessions(n: usize) -> Process {
    let mut parts = Vec::new();
    for i in 0..n {
        parts.push(format!(
            "(new m{i}) (new kAS{i}) (new kBS{i}) (
               ((new kAB{i}) cAS{i}<{{kAB{i}, new ra{i}}}:kAS{i}>. cAB{i}<{{m{i}, new rb{i}}}:kAB{i}>.0
                | cBS{i}(t{i}). case t{i} of {{y{i}}}:kBS{i} in cAB{i}(z{i}). case z{i} of {{q{i}}}:y{i} in 0)
               | cAS{i}(x{i}). case x{i} of {{s{i}}}:kAS{i} in cBS{i}<{{s{i}, new rc{i}}}:kBS{i}>.0
             )"
        ));
    }
    parse(&parts.join(" | "))
}

/// The secret/public partition for [`wmf_sessions`].
pub fn wmf_sessions_policy(n: usize) -> nuspi_security::Policy {
    let mut secrets = Vec::new();
    for i in 0..n {
        secrets.push(format!("m{i}"));
        secrets.push(format!("kAS{i}"));
        secrets.push(format!("kBS{i}"));
        secrets.push(format!("kAB{i}"));
    }
    nuspi_security::Policy::with_secrets(secrets.iter().map(String::as_str))
}

/// A replicated WMF server (`!cAS(x)…`) serving `n` initiator/responder
/// pairs that share the long-term keys — exercises replication in both
/// the analysis (the CFA treats `!P` transparently) and the executor
/// (bounded unfolding).
pub fn replicated_wmf(n: usize) -> Process {
    let mut parts = vec!["!(cAS(x). case x of {s}:kAS in cBS<{s, new rs}:kBS>.0)".to_owned()];
    for i in 0..n {
        parts.push(format!(
            "(new m{i}) (new kAB{i}) cAS<{{kAB{i}, new ra{i}}}:kAS>. cAB<{{m{i}, new rb{i}}}:kAB{i}>.0"
        ));
        parts.push(format!(
            "cBS(t{i}). case t{i} of {{y{i}}}:kBS in cAB(z{i}). case z{i} of {{q{i}}}:y{i} in 0"
        ));
    }
    parse(&format!("(new kAS) (new kBS) ({})", parts.join(" | ")))
}

/// The policy for [`replicated_wmf`].
pub fn replicated_wmf_policy(n: usize) -> nuspi_security::Policy {
    let mut secrets = vec!["kAS".to_owned(), "kBS".to_owned()];
    for i in 0..n {
        secrets.push(format!("m{i}"));
        secrets.push(format!("kAB{i}"));
    }
    nuspi_security::Policy::with_secrets(secrets.iter().map(String::as_str))
}

/// `n` peers all exchanging their names over one shared channel — the
/// densest κ mixing the calculus allows.
pub fn mixer(n: usize) -> Process {
    let mut parts = Vec::new();
    for i in 0..n {
        parts.push(format!("shared<p{i}>.0 | shared(v{i}). shared<v{i}>.0"));
    }
    parse(&parts.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuspi_cfa::{analyze, FlowVar};
    use nuspi_syntax::{Symbol, Value};

    #[test]
    fn relay_chain_sizes_grow_linearly() {
        let s4 = relay_chain(4).size();
        let s8 = relay_chain(8).size();
        let s16 = relay_chain(16).size();
        assert_eq!(s16 - s8, 2 * (s8 - s4));
    }

    #[test]
    fn relay_chain_flows_end_to_end() {
        let n = 6;
        let sol = analyze(&relay_chain(n));
        let last = Symbol::intern(&format!("c{n}"));
        assert!(sol.contains(FlowVar::Kappa(last), &Value::name("seed")));
    }

    #[test]
    fn crypto_chain_flows_end_to_end() {
        let sol = analyze(&crypto_chain(5));
        assert!(sol.contains(FlowVar::Kappa(Symbol::intern("done")), &Value::name("seed")));
    }

    #[test]
    fn star_broadcast_reaches_every_sink() {
        let n = 5;
        let sol = analyze(&star_broadcast(n));
        for i in 0..n {
            let sink = Symbol::intern(&format!("sink{i}"));
            assert!(sol.contains(FlowVar::Kappa(sink), &Value::name("payload")));
        }
    }

    #[test]
    fn wmf_sessions_stay_confined() {
        let n = 3;
        let p = wmf_sessions(n);
        let policy = wmf_sessions_policy(n);
        let report = nuspi_security::confinement(&p, &policy);
        assert!(report.is_confined(), "{:?}", report.violations);
    }

    #[test]
    fn wmf_sessions_do_not_cross_contaminate() {
        let p = wmf_sessions(2);
        let sol = analyze(&p);
        // Session 0's payload never reaches session 1's channel.
        assert!(!sol.contains(
            FlowVar::Kappa(Symbol::intern("cAB1")),
            &Value::enc(
                vec![Value::name("m0")],
                nuspi_syntax::Name::global("rb0"),
                Value::name("kAB0")
            )
        ));
    }

    #[test]
    fn replicated_wmf_is_confined() {
        // Sessions share the long-term keys through a replicated server;
        // the κ-mixing across sessions must not leak any payload.
        let n = 3;
        let p = replicated_wmf(n);
        let policy = replicated_wmf_policy(n);
        let report = nuspi_security::confinement(&p, &policy);
        assert!(report.is_confined(), "{:?}", report.violations);
    }

    #[test]
    fn replicated_wmf_sessions_complete_dynamically() {
        use nuspi_semantics::{explore_tau, ExecConfig};
        let p = replicated_wmf(1);
        let cfg = ExecConfig {
            max_depth: 10,
            max_states: 3000,
            ..ExecConfig::default()
        };
        let stats = explore_tau(&p, &cfg, |_, _| true);
        assert!(stats.states > 3, "server must serve the session");
    }

    #[test]
    fn replicated_wmf_mixes_sessions_in_kappa_but_not_keys() {
        // With one shared server, both sessions' tickets travel on cBS —
        // but session 0's payload ciphertext never decrypts under session
        // 1's key.
        let p = replicated_wmf(2);
        let sol = analyze(&p);
        let cbs = sol.kappa(Symbol::intern("cBS"));
        assert!(!cbs.is_empty(), "tickets flow via the replicated server");
        let policy = replicated_wmf_policy(2);
        let report = nuspi_security::confinement(&p, &policy);
        assert!(report.is_confined());
    }

    #[test]
    fn mixer_mixes_everything() {
        let n = 4;
        let sol = analyze(&mixer(n));
        let shared = Symbol::intern("shared");
        for i in 0..n {
            assert!(sol.contains(
                FlowVar::Kappa(shared),
                &Value::name(format!("p{i}").as_str())
            ));
        }
    }
}
